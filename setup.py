"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The offline environment lacks the `wheel` package that PEP-517 editable
installs require; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
