"""Workload generators for the consensus benches."""

from .generator import WorkloadSpec, generate_workload, uniform_kv, skewed_kv, bank_transfers

__all__ = [
    "WorkloadSpec",
    "bank_transfers",
    "generate_workload",
    "skewed_kv",
    "uniform_kv",
]
