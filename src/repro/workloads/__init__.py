"""Workload generators for the consensus benches and the serving layer."""

from .generator import (
    ArrivalShard,
    WorkloadSpec,
    bank_transfers,
    generate_workload,
    open_loop_arrivals,
    shard_arrivals,
    skewed_kv,
    tenant_ops,
    tenant_workloads,
    uniform_kv,
)

__all__ = [
    "ArrivalShard",
    "WorkloadSpec",
    "bank_transfers",
    "generate_workload",
    "open_loop_arrivals",
    "shard_arrivals",
    "skewed_kv",
    "tenant_ops",
    "tenant_workloads",
    "uniform_kv",
]
