"""Workload generators for the consensus benches and the serving layer."""

from .load import LoadResult, OrderHasher, run_pipeline_load, split_arrivals
from .generator import (
    ArrivalShard,
    WorkloadSpec,
    bank_transfers,
    generate_workload,
    open_loop_arrivals,
    shard_arrivals,
    skewed_kv,
    tenant_ops,
    tenant_workloads,
    uniform_kv,
)

__all__ = [
    "ArrivalShard",
    "LoadResult",
    "OrderHasher",
    "WorkloadSpec",
    "bank_transfers",
    "generate_workload",
    "open_loop_arrivals",
    "run_pipeline_load",
    "shard_arrivals",
    "skewed_kv",
    "split_arrivals",
    "tenant_ops",
    "tenant_workloads",
    "uniform_kv",
]
