"""Open-loop consensus load harness: drive a pipelined cluster to saturation.

:func:`run_pipeline_load` is the bridge between the workload generator and
the replication core: it takes a Poisson arrival stream from
:func:`~repro.workloads.generator.open_loop_arrivals`, splits it
round-robin across a fleet of multi-outstanding
:class:`~repro.consensus.client.BFTClient` processes, runs the MinBFT or
PBFT cluster under the deterministic scheduler with the **streaming
replication safety checker attached** (``fail_fast=True`` — a pipelining
bug that reorders or duplicates execution aborts the run at the violating
event, it cannot hide in an aggregate), and returns committed throughput,
latency order statistics, pipeline counters, and a replay witness.

The witness (``order_hash``) folds every dispatched event's
``(index, time, kind, pid)`` into SHA-256, so two runs of the same
configuration are either bit-identically scheduled or measurably not —
the property the benchmark's replayed cell asserts.

Sustaining 10⁵+ requests per sweep is feasible because the replicas now
prune per-slot state at checkpoint stabilization and deduplicate through
the bounded :class:`~repro.consensus.dedup.ClientDedup`; the harness
exposes ``peak_slot_state`` so soak tests can assert the bound held.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Optional

from ..analysis.stats import Summary, summarize
from ..consensus.harness import build_minbft_system, build_pbft_system
from ..consensus.safety import (
    ReplicationLivenessChecker,
    ReplicationStreamChecker,
)
from ..errors import ConfigurationError
from ..sim.trace import CUSTOM, TraceEvent, TraceObserver
from .generator import open_loop_arrivals


class OrderHasher(TraceObserver):
    """Replay witness: SHA-256 over every event's (index, time, kind, pid)."""

    def __init__(self) -> None:
        self._h = hashlib.sha256()

    def on_event(self, ev: TraceEvent) -> None:
        self._h.update(repr((ev.index, ev.time, ev.kind, ev.pid)).encode())

    def hexdigest(self) -> str:
        return self._h.hexdigest()


class _CompletionClock(TraceObserver):
    """Tracks the span of client completions for throughput accounting."""

    def __init__(self) -> None:
        self.first_sent: Optional[float] = None
        self.last_done: Optional[float] = None
        self.completions = 0

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind != CUSTOM:
            return
        tag = ev.field("event")
        if tag == "request_sent":
            if self.first_sent is None:
                self.first_sent = ev.time
        elif tag == "request_done":
            self.last_done = ev.time
            self.completions += 1


@dataclass(slots=True)
class LoadResult:
    """Outcome of one open-loop load cell."""

    protocol: str
    rate: float
    n_requests: int
    completed: int
    failed: int
    duration: float
    """First ``request_sent`` to last ``request_done`` (virtual time)."""
    throughput: float
    """Committed requests per unit virtual time over ``duration``."""
    latency: Optional[Summary]
    order_hash: str
    safety_ok: bool
    liveness_ok: bool
    peak_backlog: int
    peak_slot_state: int
    """Max per-slot/per-request entries held by any replica at run end."""
    consensus: Optional[dict]
    events_processed: int
    end_time: float
    violations: list = field(default_factory=list)

    @property
    def p50(self) -> float:
        return self.latency.p50 if self.latency is not None else float("nan")

    @property
    def p99(self) -> float:
        return self.latency.p99 if self.latency is not None else float("nan")


def split_arrivals(
    arrivals: list[tuple[float, tuple]], n_clients: int
) -> list[list[tuple[float, tuple]]]:
    """Round-robin an arrival stream across ``n_clients`` clients.

    Striding (``arrivals[c::n]``) keeps each client's sub-stream
    time-sorted and keeps per-client arrival rates statistically equal —
    a contiguous split would hand client 0 the whole early run and make
    the fleet sequential again.
    """
    if n_clients < 1:
        raise ConfigurationError(f"n_clients must be >= 1, got {n_clients}")
    return [list(arrivals[c::n_clients]) for c in range(n_clients)]


def run_pipeline_load(
    protocol: str = "minbft",
    n_requests: int = 1_000,
    rate: float = 50.0,
    f: int = 1,
    n_clients: int = 4,
    seed: int = 0,
    kind: str = "uniform-kv",
    app: str = "kv",
    window_size: int = 16,
    batching: Any = "adaptive",
    checkpoint_interval: int = 8,
    max_outstanding: int = 8,
    batch_delay: float = 0.2,
    req_timeout: float = 25.0,
    retry_timeout: float = 40.0,
    request_bound: float = 500.0,
    max_events: Optional[int] = None,
    trace_retention: Optional[int] = None,
    extra_observers: tuple = (),
) -> LoadResult:
    """Run one open-loop load cell against a pipelined cluster.

    ``batching`` is ``False`` (per-request slots), ``"fixed"`` (legacy
    fixed-delay batch timer), or ``"adaptive"`` (EWMA-sized batches).
    The streaming safety checker runs ``fail_fast`` — the call *raises*
    at the violating event on any ordering/duplication regression; the
    liveness auditor's verdict lands in ``liveness_ok`` (obligations are
    discharged by ``request_done`` or a typed ``request_failed``).

    Everything, including the adaptive batch caps, is a pure function of
    ``seed`` — re-running the same cell reproduces ``order_hash`` exactly.
    """
    if protocol not in ("minbft", "pbft"):
        raise ConfigurationError(f"unknown protocol {protocol!r}")
    arrivals = open_loop_arrivals(n_requests, seed=seed, rate=rate, kind=kind)
    per_client = split_arrivals(arrivals, n_clients)

    n = (2 * f + 1) if protocol == "minbft" else (3 * f + 1)
    hasher = OrderHasher()
    clock = _CompletionClock()
    safety = ReplicationStreamChecker(
        correct_replicas=range(n), fail_fast=True
    )
    liveness = ReplicationLivenessChecker(
        gst=0.0,
        request_bound=request_bound,
        fault_free_replicas=range(n),
        fault_free_clients=range(n, n + n_clients),
        f=f,
    )
    build = build_minbft_system if protocol == "minbft" else build_pbft_system
    sim, replicas, clients = build(
        f=f,
        n_clients=n_clients,
        app=app,
        seed=seed,
        req_timeout=req_timeout,
        retry_timeout=retry_timeout,
        client_arrivals=per_client,
        replica_options=dict(
            checkpoint_interval=checkpoint_interval,
            window_size=window_size,
            batching=bool(batching),
            batch_policy=batching if isinstance(batching, str) else None,
            batch_delay=batch_delay,
        ),
        client_options=dict(max_outstanding=max_outstanding),
        observers=(hasher, clock, safety, liveness, *extra_observers),
        # every auditor above streams, so soak runs can bound the trace
        # ring buffer instead of holding 10^6 events for a batch audit
        trace_retention=trace_retention,
    )
    limit = max_events if max_events is not None else max(60 * n_requests, 200_000)
    stats = sim.run_to_quiescence(max_events=limit)

    safety_report = safety.finish(
        expected_ops=None  # abandoned requests are legal under overload
    )
    liveness_report = liveness.finish(stats.end_time)
    latencies = [lat for c in clients for lat in c.latencies]
    completed = sum(len(c.results) for c in clients)
    failed = sum(len(c.failures) for c in clients)
    first = clock.first_sent if clock.first_sent is not None else 0.0
    last = clock.last_done if clock.last_done is not None else first
    duration = max(last - first, 1e-9)
    return LoadResult(
        protocol=protocol,
        rate=rate,
        n_requests=n_requests,
        completed=completed,
        failed=failed,
        duration=duration,
        throughput=completed / duration,
        latency=summarize(latencies) if latencies else None,
        order_hash=hasher.hexdigest(),
        safety_ok=safety_report.ok,
        liveness_ok=not liveness_report.violations,
        peak_backlog=max((c.peak_backlog for c in clients), default=0),
        peak_slot_state=max(r.slot_state_size() for r in replicas),
        consensus=stats.consensus,
        events_processed=stats.events_processed,
        end_time=stats.end_time,
        violations=list(safety_report.violations)
        + list(liveness_report.violations),
    )
