"""Deterministic client workload generators.

Each generator takes an explicit seed and returns plain op lists for the
:mod:`repro.consensus.apps` state machines, so benches are reproducible
and independent of simulation RNG streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Named workload recipe: ``kind`` + parameters."""

    kind: str
    n_ops: int
    seed: int = 0
    keys: int = 16
    write_ratio: float = 0.5
    zipf_s: float = 1.2
    accounts: int = 8


def uniform_kv(n_ops: int, seed: int = 0, keys: int = 16,
               write_ratio: float = 0.5) -> list[tuple]:
    """Uniform key choice, mixed put/get."""
    rng = random.Random(seed)
    ops: list[tuple] = []
    for i in range(n_ops):
        k = f"k{rng.randrange(keys)}"
        if rng.random() < write_ratio:
            ops.append(("put", k, f"v{seed}-{i}"))
        else:
            ops.append(("get", k))
    return ops


def skewed_kv(n_ops: int, seed: int = 0, keys: int = 16, zipf_s: float = 1.2,
              write_ratio: float = 0.5) -> list[tuple]:
    """Zipf-skewed key popularity (hot keys), mixed put/get."""
    if zipf_s <= 0:
        raise ConfigurationError(f"zipf_s must be positive, got {zipf_s}")
    rng = random.Random(seed)
    weights = [1.0 / ((rank + 1) ** zipf_s) for rank in range(keys)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    ops: list[tuple] = []
    for i in range(n_ops):
        x = rng.random()
        key_idx = next(idx for idx, c in enumerate(cumulative) if x <= c)
        k = f"k{key_idx}"
        if rng.random() < write_ratio:
            ops.append(("put", k, f"v{seed}-{i}"))
        else:
            ops.append(("get", k))
    return ops


def bank_transfers(n_ops: int, seed: int = 0, accounts: int = 8) -> list[tuple]:
    """Open accounts, deposit, then shuffle money around (order-sensitive)."""
    rng = random.Random(seed)
    names = [f"acct{i}" for i in range(accounts)]
    ops: list[tuple] = [("open", a) for a in names]
    ops += [("deposit", a, 100) for a in names]
    while len(ops) < n_ops:
        src, dst = rng.sample(names, 2)
        ops.append(("transfer", src, dst, rng.randrange(1, 50)))
    return ops[:n_ops]


_GENERATORS: dict[str, Callable[..., list[tuple]]] = {
    "uniform-kv": lambda s: uniform_kv(s.n_ops, s.seed, s.keys, s.write_ratio),
    "skewed-kv": lambda s: skewed_kv(s.n_ops, s.seed, s.keys, s.zipf_s, s.write_ratio),
    "bank": lambda s: bank_transfers(s.n_ops, s.seed, s.accounts),
}


def generate_workload(spec: WorkloadSpec) -> list[tuple]:
    """Materialize a :class:`WorkloadSpec` into an op list."""
    try:
        gen = _GENERATORS[spec.kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload kind {spec.kind!r}; available: {sorted(_GENERATORS)}"
        ) from None
    return gen(spec)


# ---------------------------------------------------------------------------
# Open-loop arrivals (for the one-big-run sweep sharder)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ArrivalShard:
    """One contiguous slice of an open-loop workload.

    ``index`` is the shard's position in the original arrival order —
    the merge key for deterministic recombination. Arrival times stay
    *absolute* (no rebasing): virtual time is free to skip, and keeping
    the original timestamps makes a shard's simulation independent of how
    many shards the workload was cut into before it.
    """

    index: int
    arrivals: tuple[tuple[float, tuple], ...]

    @property
    def span_end(self) -> float:
        return self.arrivals[-1][0] if self.arrivals else 0.0


def open_loop_arrivals(
    n_ops: int,
    seed: int = 0,
    rate: float = 10.0,
    kind: str = "uniform-kv",
    **spec_kwargs: Any,
) -> list[tuple[float, tuple]]:
    """A single open-loop workload: ``(arrival_time, op)`` pairs.

    Open-loop means arrivals are paced by an external clock, not by
    response completion — a Poisson process of intensity ``rate`` ops per
    time unit (exponential interarrivals), which is what makes the
    workload *shardable*: each op is issued independently of every other
    op's outcome, so cutting the timeline cuts no causal edges on the
    client side. Ops come from the named closed-loop generator; times and
    ops are both pure functions of ``seed``.
    """
    if rate <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate}")
    ops = generate_workload(WorkloadSpec(kind=kind, n_ops=n_ops, seed=seed,
                                         **spec_kwargs))
    rng = random.Random(seed ^ 0x6F70656E)  # independent of the op stream
    t = 0.0
    arrivals: list[tuple[float, tuple]] = []
    for op in ops:
        t += rng.expovariate(rate)
        arrivals.append((t, op))
    return arrivals


# ---------------------------------------------------------------------------
# Closed-loop tenant workloads (for the serving layer)
# ---------------------------------------------------------------------------


def _tenant_rng(seed: int, tenant_index: int) -> random.Random:
    # per-tenant stream, independent of every other tenant and of the
    # open-loop arrival stream above
    import hashlib

    digest = hashlib.sha256(f"tenant|{seed}|{tenant_index}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def tenant_ops(
    tenant_index: int,
    n_ops: int,
    seed: int = 0,
    kind: str = "bank",
    read_ratio: float = 0.3,
) -> list[tuple]:
    """One tenant's closed-loop op stream: private keyspace, mixed reads.

    Closed-loop is the *pacing* model the serving layer's
    :class:`~repro.service.ingress.TenantClient` implements — the next op
    is issued only after the previous one reached a terminal outcome
    (completed, rejected-and-retried, or abandoned), so offered load
    reacts to backpressure instead of accumulating like an open-loop
    stream. This generator supplies the op *content* for that client:
    each tenant works a private account/key (no cross-tenant write
    conflicts, so shedding one tenant never corrupts another's view) with
    ``read_ratio`` of ops being reads — the dimension a brownout keeps
    serving. Pure function of ``(seed, tenant_index)``.
    """
    if not 0 <= read_ratio <= 1:
        raise ConfigurationError(
            f"read_ratio must be in [0, 1], got {read_ratio}"
        )
    if kind not in ("bank", "kv"):
        raise ConfigurationError(
            f"tenant workload kind must be 'bank' or 'kv', got {kind!r}"
        )
    rng = _tenant_rng(seed, tenant_index)
    ops: list[tuple] = []
    if kind == "bank":
        acct = f"tenant{tenant_index}"
        ops.append(("open", acct))
        while len(ops) < n_ops:
            if rng.random() < read_ratio:
                ops.append(("balance", acct))
            else:
                ops.append(("deposit", acct, rng.randrange(1, 20)))
    else:
        key = f"tenant{tenant_index}"
        i = 0
        while len(ops) < n_ops:
            if rng.random() < read_ratio:
                ops.append(("get", key))
            else:
                ops.append(("put", key, f"v{tenant_index}-{i}"))
                i += 1
    return ops[:n_ops]


def tenant_workloads(
    n_tenants: int,
    ops_per_tenant: int,
    seed: int = 0,
    kind: str = "bank",
    read_ratio: float = 0.3,
) -> list[list[tuple]]:
    """Per-tenant op lists for a closed-loop fleet (see :func:`tenant_ops`)."""
    if n_tenants < 1:
        raise ConfigurationError(f"n_tenants must be >= 1, got {n_tenants}")
    return [
        tenant_ops(i, ops_per_tenant, seed=seed, kind=kind,
                   read_ratio=read_ratio)
        for i in range(n_tenants)
    ]


def shard_arrivals(
    arrivals: list[tuple[float, tuple]], n_shards: int
) -> list[ArrivalShard]:
    """Cut an open-loop workload into ``n_shards`` contiguous slices.

    Slices are near-equal by *op count* (boundary ``k`` falls at
    ``len * k // n_shards``), preserving arrival order within and across
    shards. The shard list is a pure function of ``(arrivals, n_shards)``
    — in particular independent of how many workers later execute it,
    which is what lets a sharded run reproduce a serial run bit-exactly.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    n = len(arrivals)
    shards = []
    for k in range(n_shards):
        lo = n * k // n_shards
        hi = n * (k + 1) // n_shards
        shards.append(ArrivalShard(index=k, arrivals=tuple(arrivals[lo:hi])))
    return shards
