"""Deterministic client workload generators.

Each generator takes an explicit seed and returns plain op lists for the
:mod:`repro.consensus.apps` state machines, so benches are reproducible
and independent of simulation RNG streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Named workload recipe: ``kind`` + parameters."""

    kind: str
    n_ops: int
    seed: int = 0
    keys: int = 16
    write_ratio: float = 0.5
    zipf_s: float = 1.2
    accounts: int = 8


def uniform_kv(n_ops: int, seed: int = 0, keys: int = 16,
               write_ratio: float = 0.5) -> list[tuple]:
    """Uniform key choice, mixed put/get."""
    rng = random.Random(seed)
    ops: list[tuple] = []
    for i in range(n_ops):
        k = f"k{rng.randrange(keys)}"
        if rng.random() < write_ratio:
            ops.append(("put", k, f"v{seed}-{i}"))
        else:
            ops.append(("get", k))
    return ops


def skewed_kv(n_ops: int, seed: int = 0, keys: int = 16, zipf_s: float = 1.2,
              write_ratio: float = 0.5) -> list[tuple]:
    """Zipf-skewed key popularity (hot keys), mixed put/get."""
    if zipf_s <= 0:
        raise ConfigurationError(f"zipf_s must be positive, got {zipf_s}")
    rng = random.Random(seed)
    weights = [1.0 / ((rank + 1) ** zipf_s) for rank in range(keys)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    ops: list[tuple] = []
    for i in range(n_ops):
        x = rng.random()
        key_idx = next(idx for idx, c in enumerate(cumulative) if x <= c)
        k = f"k{key_idx}"
        if rng.random() < write_ratio:
            ops.append(("put", k, f"v{seed}-{i}"))
        else:
            ops.append(("get", k))
    return ops


def bank_transfers(n_ops: int, seed: int = 0, accounts: int = 8) -> list[tuple]:
    """Open accounts, deposit, then shuffle money around (order-sensitive)."""
    rng = random.Random(seed)
    names = [f"acct{i}" for i in range(accounts)]
    ops: list[tuple] = [("open", a) for a in names]
    ops += [("deposit", a, 100) for a in names]
    while len(ops) < n_ops:
        src, dst = rng.sample(names, 2)
        ops.append(("transfer", src, dst, rng.randrange(1, 50)))
    return ops[:n_ops]


_GENERATORS: dict[str, Callable[..., list[tuple]]] = {
    "uniform-kv": lambda s: uniform_kv(s.n_ops, s.seed, s.keys, s.write_ratio),
    "skewed-kv": lambda s: skewed_kv(s.n_ops, s.seed, s.keys, s.zipf_s, s.write_ratio),
    "bank": lambda s: bank_transfers(s.n_ops, s.seed, s.accounts),
}


def generate_workload(spec: WorkloadSpec) -> list[tuple]:
    """Materialize a :class:`WorkloadSpec` into an op list."""
    try:
        gen = _GENERATORS[spec.kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload kind {spec.kind!r}; available: {sorted(_GENERATORS)}"
        ) from None
    return gen(spec)
