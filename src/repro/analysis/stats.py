"""Latency / throughput / message-count aggregation for benches."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class Summary:
    """Order statistics over a sample."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def row(self) -> str:
        return (
            f"n={self.count:5d} mean={self.mean:8.3f} p50={self.p50:8.3f} "
            f"p95={self.p95:8.3f} p99={self.p99:8.3f} "
            f"min={self.minimum:8.3f} max={self.maximum:8.3f}"
        )


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of a pre-sorted sample; q in [0, 1]."""
    if not sorted_values:
        raise ConfigurationError("percentile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"q must be in [0, 1], got {q}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    pos = q * (len(sorted_values) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    return float(sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac)


def summarize(values: Iterable[float]) -> Summary:
    """Full order-statistics summary of a sample."""
    vals = sorted(float(v) for v in values)
    if not vals:
        raise ConfigurationError("cannot summarize an empty sample")
    return Summary(
        count=len(vals),
        mean=sum(vals) / len(vals),
        p50=percentile(vals, 0.50),
        p95=percentile(vals, 0.95),
        p99=percentile(vals, 0.99),
        minimum=vals[0],
        maximum=vals[-1],
    )


@dataclass(frozen=True, slots=True)
class RunMetrics:
    """Protocol-level costs of one simulation run."""

    messages_sent: int
    messages_delivered: int
    sm_ops: int
    virtual_duration: float
    requests_completed: int

    @property
    def throughput(self) -> float:
        """Requests per unit of virtual time."""
        if self.virtual_duration <= 0:
            return 0.0
        return self.requests_completed / self.virtual_duration

    @property
    def messages_per_request(self) -> float:
        if self.requests_completed == 0:
            return float("inf")
        return self.messages_sent / self.requests_completed


def collect_metrics(sim, requests_completed: int) -> RunMetrics:
    """Extract :class:`RunMetrics` from a finished simulation."""
    return RunMetrics(
        messages_sent=sim.network.messages_sent,
        messages_delivered=sim.network.messages_delivered,
        sm_ops=sim.memory.ops_linearized,
        virtual_duration=sim.now,
        requests_completed=requests_completed,
    )
