"""Plain-text table rendering for the benchmark harnesses.

The benches print the same rows EXPERIMENTS.md records; this module keeps
the formatting in one place so outputs stay diffable run to run.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a rule under the header."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv(title: str, pairs: Sequence[tuple[str, Any]]) -> str:
    """Aligned key/value block for single-run reports."""
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title]
    for k, v in pairs:
        lines.append(f"  {k.ljust(width)} : {v}")
    return "\n".join(lines)
