"""Offline analysis of exported JSONL traces.

A run exported with :meth:`~repro.sim.trace.TraceStore.export_jsonl` is a
complete, deterministic artifact: this module loads it back, replays it
through streaming checkers (the same :class:`~repro.sim.trace.TraceObserver`
classes that run online), and renders summaries — without re-executing the
simulation. Typical post-mortem::

    from repro.analysis.tracefile import load_trace, replay_observers
    from repro.core.srb import SRBStreamChecker

    trace = load_trace("failing-run.jsonl")
    checker = SRBStreamChecker(0, correct=[1, 2, 3])
    replay_observers(trace, checker)
    print(checker.finish().all_violations())
"""

from __future__ import annotations

from typing import Any

from ..sim.trace import TraceObserver, TraceStore
from .report import format_kv, format_table


def load_trace(path: str) -> TraceStore:
    """Load a JSONL trace file into an indexed :class:`TraceStore`."""
    return TraceStore.load_jsonl(path)


def replay_observers(trace: TraceStore, *observers: TraceObserver) -> None:
    """Feed a loaded trace's events to streaming observers, in trace order.

    Thin alias of :meth:`TraceStore.replay_into`, named for the offline
    workflow: the exact checker classes that run online during a simulation
    re-audit an imported trace event by event.
    """
    trace.replay_into(*observers)


def trace_summary(trace: TraceStore) -> dict[str, Any]:
    """Structured overview of one trace: span, volume, per-kind/pid counts."""
    events = trace.events()
    return {
        "retained": len(events),
        "total_recorded": trace.total_recorded,
        "evicted": trace.evicted,
        "t_first": events[0].time if events else None,
        "t_last": events[-1].time if events else None,
        "kinds": trace.kind_counts(),
        "pids": trace.pid_counts(),
        "decisions": len(trace.decisions()),
    }


def format_trace_summary(trace: TraceStore, title: str = "trace") -> str:
    """Render :func:`trace_summary` as the benches' fixed-width tables."""
    s = trace_summary(trace)
    head = format_kv(
        title,
        [
            ("events retained", s["retained"]),
            ("total recorded", s["total_recorded"]),
            ("evicted", s["evicted"]),
            ("virtual time span", f"{s['t_first']} .. {s['t_last']}"),
            ("decide events", s["decisions"]),
        ],
    )
    kinds = format_table(
        ["kind", "count"],
        [(k, n) for k, n in sorted(s["kinds"].items())],
        title="events by kind",
    )
    pids = format_table(
        ["pid", "count"],
        [(p, n) for p, n in sorted(s["pids"].items())],
        title="events by pid",
    )
    return "\n\n".join([head, kinds, pids])
