"""Measurement aggregation and table rendering for the bench harnesses."""

from .report import format_kv, format_table
from .stats import RunMetrics, Summary, collect_metrics, percentile, summarize
from .tracefile import (
    format_trace_summary,
    load_trace,
    replay_observers,
    trace_summary,
)

__all__ = [
    "RunMetrics",
    "Summary",
    "collect_metrics",
    "format_kv",
    "format_table",
    "format_trace_summary",
    "load_trace",
    "percentile",
    "replay_observers",
    "summarize",
    "trace_summary",
]
