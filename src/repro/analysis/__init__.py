"""Measurement aggregation and table rendering for the bench harnesses."""

from .report import format_kv, format_table
from .stats import RunMetrics, Summary, collect_metrics, percentile, summarize

__all__ = [
    "RunMetrics",
    "Summary",
    "collect_metrics",
    "format_kv",
    "format_table",
    "percentile",
    "summarize",
]
