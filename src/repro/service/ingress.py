"""The service front-end: a simulated ingress fronting the replica group.

:class:`IngressProcess` is the trust and overload boundary between
multi-tenant clients and the MinBFT-replicated state machine. Tenants
submit ``SVC_REQ`` messages; the ingress *admits or sheds* them (see
:mod:`repro.service.admission`), queues admitted work in a bounded FIFO,
and dispatches up to ``max_inflight`` requests into consensus by
forwarding the tenant-signed ``REQUEST`` to every replica. Replicas
verify the tenant's own signature and reply directly to the tenant (the
ingress never holds authority to impersonate anyone); a courtesy
``SVC_DONE`` ack from the tenant releases the dispatch slot, with a lease
timeout as the lost-ack fallback.

**The input pump is the modeled bottleneck.** Real ingresses spend CPU
parsing, authenticating, and routing every inbound byte *before* they can
tell a duplicate from fresh work; in a simulator where message handling
is free, overload would be unobservable. The pump restores that cost:
inbound ``SVC_REQ`` frames land in an inbox and are processed strictly
one per ``proc_time`` of virtual time, so the ingress's service rate is
``1/proc_time`` and — critically — **duplicate retransmissions consume
real capacity** even though dedup discards them afterwards. That single
modeling choice is what makes retry storms metastable here exactly as in
production: a burst outage leaves every tenant retransmitting, the dup
arrival rate exceeds the pump rate, and the inbox grows without bound
while goodput pins to zero — unless admission control, retry budgets,
and backpressure (the protected configuration) bring arrivals back under
``1/proc_time``.

:class:`TenantClient` is the matching workload driver: a closed-loop
client that signs its own ops, retries on a timeout policy (optionally
jittered and bounded by a :class:`~repro.faults.timeouts.RetryBudget`),
honors typed ``SVC_REJECT`` backpressure by pausing for the advertised
``retry_after``, and emits the ``svc_sent`` / ``svc_done`` /
``svc_failed`` trace events the streaming service auditors key on.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional, Sequence

from ..crypto.signatures import Signer
from ..consensus.minbft import REPLY, REQUEST, request_domain
from ..errors import ConfigurationError, RetriesExhausted
from ..sim.process import Process
from ..types import ProcessId, Time
from .admission import (
    BoundedAdmissionQueue,
    FairShare,
    QueueDeadline,
    QueuedRequest,
    TokenBucket,
)
from .degrade import BrownoutController

SVC_REQ = "__svc_req__"
SVC_REJECT = "__svc_reject__"
SVC_DONE = "__svc_done__"

DEFAULT_READ_OPS = frozenset({"get", "balance"})
"""Op heads servable in brownout (read-only) mode, per the stock apps."""


class IngressProcess(Process):
    """Admission-controlled ingress between tenants and the replica group.

    Every policy is optional (``None`` disables it); with all of them off
    and ``queue_limit=None`` this is the *unprotected* configuration —
    an unbounded FIFO in front of consensus, the design the soak harness
    convicts. ``proc_time`` is the per-inbound-message pump cost (the
    service rate is its inverse); ``max_inflight`` bounds concurrent
    consensus dispatches; ``lease_timeout`` frees a dispatch slot whose
    completion ack never arrived.
    """

    PUMP_TAG = "svc-pump"
    LEASE_TAG = "svc-lease"

    def __init__(
        self,
        replicas: Sequence[ProcessId],
        proc_time: float = 0.25,
        reject_time: Optional[float] = None,
        max_inflight: int = 16,
        lease_timeout: float = 120.0,
        queue_limit: Optional[int] = None,
        bucket: Optional[TokenBucket] = None,
        fair: Optional[FairShare] = None,
        codel: Optional[QueueDeadline] = None,
        brownout: Optional[BrownoutController] = None,
        read_ops: frozenset[str] = DEFAULT_READ_OPS,
    ) -> None:
        super().__init__()
        if proc_time <= 0:
            raise ConfigurationError(f"proc_time must be > 0, got {proc_time}")
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if lease_timeout <= 0:
            raise ConfigurationError(
                f"lease_timeout must be > 0, got {lease_timeout}"
            )
        if reject_time is not None and reject_time <= 0:
            raise ConfigurationError(
                f"reject_time must be > 0, got {reject_time}"
            )
        self.replicas = tuple(replicas)
        self.proc_time = proc_time
        # saying no is a counter check, not a dispatch: a typed rejection
        # re-arms the pump after a fraction of the full service cost, so a
        # protected ingress can reject faster than tenants can ask (dup
        # *recognition* stays at full cost — parse/auth happen before the
        # dedup table is consulted, which is what makes retry storms real)
        self.reject_time = (
            reject_time if reject_time is not None else proc_time / 8.0
        )
        self.max_inflight = max_inflight
        self.lease_timeout = lease_timeout
        self.queue = BoundedAdmissionQueue(queue_limit)
        self.bucket = bucket
        self.fair = fair
        self.codel = codel
        self.brownout = brownout
        self.read_ops = read_ops
        self._inbox: deque[tuple[ProcessId, int, tuple, Any]] = deque()
        self._pump_busy = False
        # requests currently owned by the service: queued or dispatched
        self._in_service: set[tuple[ProcessId, int]] = set()
        self._inflight: dict[tuple[ProcessId, int], Optional[int]] = {}
        self._completed_wm: dict[ProcessId, int] = {}
        # counters (all numeric: they aggregate across ingresses and feed
        # RunStats.service / ChaosResult.stats["service"] verbatim)
        self.pumped = 0
        self.admitted = 0
        self.dispatched = 0
        self.completed = 0
        self.dup_discarded = 0
        self.lease_expired = 0
        self.rejects: dict[str, int] = {}
        self.inbox_peak = 0

    # -- inbound -----------------------------------------------------------

    def on_message(self, src: ProcessId, msg: Any) -> None:
        if not (isinstance(msg, tuple) and msg):
            return
        if msg[0] == SVC_REQ and len(msg) == 5:
            _, tenant, req_id, op, sig = msg
            if not (isinstance(tenant, int) and isinstance(req_id, int)):
                return
            self._inbox.append((tenant, req_id, op, sig))
            if len(self._inbox) > self.inbox_peak:
                self.inbox_peak = len(self._inbox)
            if not self._pump_busy:
                self._pump_busy = True
                self.ctx.set_timer(self.proc_time, self.PUMP_TAG)
        elif msg[0] == SVC_DONE and len(msg) == 4:
            _, tenant, req_id, _latency = msg
            if isinstance(tenant, int) and isinstance(req_id, int):
                self._on_done(tenant, req_id)

    # -- pump: one inbound request per proc_time ---------------------------

    def on_timer(self, tag: Any) -> None:
        if tag == self.PUMP_TAG:
            self._pump_one()
            return
        if isinstance(tag, tuple) and len(tag) == 3 and tag[0] == self.LEASE_TAG:
            self._on_lease_expiry(tag[1], tag[2])

    def _pump_one(self) -> None:
        if not self._inbox:
            self._pump_busy = False
            return
        tenant, req_id, op, sig = self._inbox.popleft()
        self.pumped += 1
        rejected = self._admit_or_shed(tenant, req_id, op, sig)
        if self._inbox:
            self.ctx.set_timer(
                self.reject_time if rejected else self.proc_time,
                self.PUMP_TAG,
            )
        else:
            self._pump_busy = False

    # -- admission pipeline ------------------------------------------------

    def _admit_or_shed(self, tenant: ProcessId, req_id: int, op: tuple,
                       sig: Any) -> bool:
        """Run the admission pipeline; True iff it ended in a typed reject."""
        now = self.ctx.now
        if self.brownout is not None:
            self.brownout.observe(
                now, len(self.queue), busy=bool(self._inflight)
            )
        key = (tenant, req_id)
        if req_id <= self._completed_wm.get(tenant, 0) or key in self._in_service:
            self.dup_discarded += 1
            return False
        if self.brownout is not None and self.brownout.sheds_all():
            self._reject(tenant, req_id, "overload")
            return True
        is_read = bool(op) and isinstance(op, tuple) and op[0] in self.read_ops
        if (
            self.brownout is not None
            and self.brownout.sheds_writes()
            and not is_read
        ):
            self._reject(tenant, req_id, "brownout_write")
            return True
        if self.fair is not None and not self.fair.try_admit(tenant):
            self._reject(tenant, req_id, "fair_share")
            return True
        if self.bucket is not None and not self.bucket.try_admit(now):
            self._reject(
                tenant, req_id, "rate_limited",
                retry_after=self.bucket.retry_after(now),
            )
            return True
        if not self.queue.try_push(QueuedRequest(tenant, req_id, op, sig, now)):
            self._reject(tenant, req_id, "queue_full")
            return True
        if self.fair is not None:
            self.fair.acquire(tenant)
        self._in_service.add(key)
        self.admitted += 1
        self._dispatch_ready()
        return False

    def _reject(self, tenant: ProcessId, req_id: int, reason: str,
                retry_after: Optional[float] = None) -> None:
        if retry_after is None:
            # back off for roughly the current backlog's drain time
            backlog = len(self._inbox) + len(self.queue)
            retry_after = max(1.0, backlog * self.proc_time)
        self.rejects[reason] = self.rejects.get(reason, 0) + 1
        self.ctx.record(
            "custom", event="svc_reject", tenant=tenant, req_id=req_id,
            reason=reason,
        )
        self.ctx.send(tenant, (SVC_REJECT, req_id, reason, retry_after))

    # -- dispatch into consensus -------------------------------------------

    def _dispatch_ready(self) -> None:
        now = self.ctx.now
        while len(self._inflight) < self.max_inflight:
            item = self.queue.pop()
            if item is None:
                return
            key = (item.tenant, item.req_id)
            sojourn = now - item.enqueued_at
            if self.codel is not None and self.codel.should_drop(now, sojourn):
                self._in_service.discard(key)
                if self.fair is not None:
                    self.fair.release(item.tenant)
                self._reject(item.tenant, item.req_id, "deadline")
                continue
            timer = self.ctx.set_timer(
                self.lease_timeout, (self.LEASE_TAG, item.tenant, item.req_id)
            )
            self._inflight[key] = timer
            self.dispatched += 1
            request = (REQUEST, item.tenant, item.req_id, item.op, item.sig)
            for r in self.replicas:
                self.ctx.send(r, request)

    def _on_done(self, tenant: ProcessId, req_id: int) -> None:
        wm = self._completed_wm.get(tenant, 0)
        if req_id > wm:
            self._completed_wm[tenant] = req_id
        key = (tenant, req_id)
        timer = self._inflight.pop(key, None)
        if key not in self._in_service:
            return  # lease already expired (or duplicate ack)
        self._in_service.discard(key)
        if timer is not None:
            self.ctx.cancel_timer(timer)
        if self.fair is not None:
            self.fair.release(tenant)
        self.completed += 1
        if self.brownout is not None:
            self.brownout.note_completion(self.ctx.now)
        self._dispatch_ready()

    def _on_lease_expiry(self, tenant: ProcessId, req_id: int) -> None:
        key = (tenant, req_id)
        if self._inflight.pop(key, None) is None:
            return  # completed meanwhile
        self._in_service.discard(key)
        if self.fair is not None:
            self.fair.release(tenant)
        self.lease_expired += 1
        self._dispatch_ready()

    # -- exported counters -------------------------------------------------

    def service_stats(self) -> dict[str, float]:
        """Numeric overload counters (see ``RunStats.service``)."""
        stats: dict[str, float] = {
            "pumped": self.pumped,
            "admitted": self.admitted,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "dup_discarded": self.dup_discarded,
            "lease_expired": self.lease_expired,
            "queue_depth_peak": self.queue.depth_peak,
            "queue_len_final": len(self.queue),
            "inbox_peak": self.inbox_peak,
            "inbox_len_final": len(self._inbox),
            "shed_total": sum(self.rejects.values()),
        }
        for reason, count in self.rejects.items():
            stats[f"shed_{reason}"] = count
        if self.brownout is not None:
            stats["brownout_entries"] = self.brownout.brownout_entries
            stats["open_entries"] = self.brownout.open_entries
            stats["recoveries"] = self.brownout.recoveries
            stats["final_mode"] = self.brownout.mode
        return stats


class TenantClient(Process):
    """Closed-loop tenant driving ops through the ingress.

    One outstanding request at a time (which also keeps the replicas'
    per-client reply cache coherent): sign, send ``SVC_REQ`` to the
    ingress, wait for ``reply_quorum`` matching replica ``REPLY``\\ s,
    ack with ``SVC_DONE``, think, repeat. Retransmission runs on
    ``timeout_policy`` — optionally wrapped in seed-deterministic jitter
    (``backoff_jitter``) and bounded by ``retry_budget`` (exhaustion is a
    terminal, typed ``svc_failed`` outcome). With
    ``honor_backpressure=True`` a typed ``SVC_REJECT`` pauses the tenant
    for the advertised ``retry_after`` (plus jitter) instead of feeding
    the retry storm; ``False`` models the legacy client that ignores
    backpressure entirely.
    """

    RETRY_TAG = "svc-retry"
    RESUBMIT_TAG = "svc-resubmit"

    def __init__(
        self,
        ingress: ProcessId,
        replicas: Sequence[ProcessId],
        reply_quorum: int,
        ops: Sequence[tuple],
        timeout_policy: Any = None,
        retry_timeout: float = 30.0,
        retry_budget: Any = None,
        backoff_jitter: float = 0.0,
        think_time: float = 0.0,
        honor_backpressure: bool = True,
        start_spread: float = 0.0,
    ) -> None:
        super().__init__()
        if reply_quorum < 1:
            raise ConfigurationError(
                f"reply quorum must be >= 1, got {reply_quorum}"
            )
        self.ingress = ingress
        self.replicas = tuple(replicas)
        self.reply_quorum = reply_quorum
        self.ops = list(ops)
        if timeout_policy is None:
            from ..faults.timeouts import FixedTimeout

            timeout_policy = FixedTimeout(retry_timeout)
        elif callable(timeout_policy) and not hasattr(timeout_policy, "current"):
            timeout_policy = timeout_policy()
        self.timeout_policy = timeout_policy
        if callable(retry_budget) and not hasattr(retry_budget, "try_spend"):
            retry_budget = retry_budget()
        self.retry_budget = retry_budget
        self.backoff_jitter = backoff_jitter
        self.think_time = think_time
        self.honor_backpressure = honor_backpressure
        self.start_spread = start_spread
        self.signer: Optional[Signer] = None  # injected by the harness
        self._rng: Any = None
        self._next_op = 0
        self._terminal_wm = 0  # highest req_id that reached a terminal outcome
        self._current_req_id: Optional[int] = None
        self._sent_at: Time = 0.0
        self._attempts = 0
        self._replies: dict[ProcessId, Any] = {}
        self._retry_timer: Optional[int] = None
        self.latencies: list[float] = []
        self.results: list[Any] = []
        self.failures: list[RetriesExhausted] = []
        self.rejections = 0
        self.retransmissions = 0

    @property
    def done(self) -> bool:
        return self._next_op >= len(self.ops) and self._current_req_id is None

    # -- lifecycle ---------------------------------------------------------

    def on_start(self) -> None:
        from ..faults.timeouts import JitteredPolicy, derive_jitter_rng

        self._rng = derive_jitter_rng(self.ctx.seed, "tenant", self.pid)
        if self.backoff_jitter > 0:
            self.timeout_policy = JitteredPolicy(
                self.timeout_policy, self._rng, jitter=self.backoff_jitter
            )
        if self.start_spread > 0:
            # de-synchronize the fleet's first wave of submissions
            self.ctx.set_timer(
                self._rng.random() * self.start_spread, "think"
            )
        else:
            self._submit_next()

    # -- submission / retransmission ---------------------------------------

    def _submit_next(self) -> None:
        if self._next_op >= len(self.ops):
            self.ctx.record("custom", event="tenant_done", ops=len(self.results))
            return
        req_id = self._next_op + 1
        self._current_req_id = req_id
        self._replies = {}
        self._sent_at = self.ctx.now
        self._attempts = 1
        if self.retry_budget is not None:
            self.retry_budget.note_send()
        self._send_request()
        self.ctx.record("custom", event="svc_sent", req_id=req_id)
        self._arm_retry()

    def _send_request(self) -> None:
        assert self.signer is not None
        req_id = self._current_req_id
        op = self.ops[self._next_op]
        sig = self.signer.sign(request_domain(self.pid, req_id, op))
        self.ctx.send(self.ingress, (SVC_REQ, self.pid, req_id, op, sig))

    def _arm_retry(self) -> None:
        self._retry_timer = self.ctx.set_timer(
            self.timeout_policy.current(), self.RETRY_TAG
        )

    def _cancel_retry(self) -> None:
        if self._retry_timer is not None:
            self.ctx.cancel_timer(self._retry_timer)
            self._retry_timer = None

    def on_timer(self, tag: Any) -> None:
        if tag == "think":
            self._submit_next()
            return
        if tag == self.RESUBMIT_TAG:
            if self._current_req_id is not None:
                self._send_request()
                self._arm_retry()
            return
        if tag != self.RETRY_TAG or self._current_req_id is None:
            return
        if self.retry_budget is not None and not self.retry_budget.try_spend():
            self._abandon_current()
            return
        self.retransmissions += 1
        self._attempts += 1
        self.timeout_policy.escalate()
        self._send_request()
        self._arm_retry()

    def _abandon_current(self) -> None:
        req_id = self._current_req_id
        assert req_id is not None
        failure = RetriesExhausted(req_id, self._attempts)
        self.failures.append(failure)
        self.ctx.record(
            "custom", event="svc_failed", req_id=req_id,
            reason="retries_exhausted", attempts=self._attempts,
        )
        self._retry_timer = None
        self._terminal_wm = max(self._terminal_wm, req_id)
        self._current_req_id = None
        self._next_op += 1
        self._after_terminal()

    def _after_terminal(self) -> None:
        if self.think_time > 0:
            self.ctx.set_timer(self.think_time, "think")
        else:
            self._submit_next()

    # -- completions and backpressure --------------------------------------

    def on_message(self, src: ProcessId, msg: Any) -> None:
        if not (isinstance(msg, tuple) and msg):
            return
        if msg[0] == REPLY and len(msg) == 5:
            self._on_reply(src, msg)
        elif msg[0] == SVC_REJECT and len(msg) == 4:
            self._on_reject(msg)

    def _on_reply(self, src: ProcessId, msg: tuple) -> None:
        _, _replica, req_id, result, _view = msg
        if src not in self.replicas:
            return
        if req_id != self._current_req_id:
            # a reply for a request this tenant already resolved (completed
            # earlier, or abandoned on budget exhaustion while it was still
            # queued at the ingress): ack it anyway, so the ingress frees
            # the dispatch slot now instead of waiting out the lease
            if isinstance(req_id, int) and 0 < req_id <= self._terminal_wm:
                self.ctx.send(self.ingress, (SVC_DONE, self.pid, req_id, 0.0))
            return
        self._replies[src] = result
        matching = sum(1 for v in self._replies.values() if v == result)
        if matching < self.reply_quorum:
            return
        latency = self.ctx.now - self._sent_at
        self.latencies.append(latency)
        self.results.append(result)
        self.timeout_policy.observe(latency)
        self.timeout_policy.note_progress()
        self.ctx.record(
            "custom", event="svc_done", req_id=req_id, latency=latency,
        )
        self.ctx.send(self.ingress, (SVC_DONE, self.pid, req_id, latency))
        self._cancel_retry()
        self._terminal_wm = max(self._terminal_wm, req_id)
        self._current_req_id = None
        self._next_op += 1
        self._after_terminal()

    def _on_reject(self, msg: tuple) -> None:
        _, req_id, _reason, retry_after = msg
        if req_id != self._current_req_id:
            return
        self.rejections += 1
        if not self.honor_backpressure:
            return  # legacy client: keeps hammering on its retry timer
        # honor the hint: pause (with jitter, so the shed herd does not
        # return in lockstep) and resubmit the same request
        self._cancel_retry()
        delay = max(float(retry_after), 0.1)
        delay *= 1.0 + 0.5 * self._rng.random()
        self.ctx.set_timer(delay, self.RESUBMIT_TAG)
