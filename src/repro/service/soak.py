"""Deterministic overload soak harness with a planted metastable retry storm.

The fixture this module exists for is the classic *metastable failure*:
a service runs healthily below saturation, a **transient** network outage
makes every client retransmit, and the retry traffic alone — duplicates
the ingress must still pay pump time to recognize — exceeds the service
rate. The queue of work grows, which makes clients wait longer, which
makes them retry more: the overload now **sustains itself after the
trigger is gone**. Goodput pins near zero forever even though the
network has been perfect since GST.

Both arms of the experiment run the same replicas, the same tenants' op
streams, the same planted burst, the same seed:

- **unprotected** (:func:`unprotected_profile`): unbounded admission
  queue, no shed policies, tenants with fixed never-escalating timeouts,
  unbounded retries, backpressure ignored. The post-burst dup rate
  (``n_tenants / timeout``) exceeds the pump rate (``1 / proc_time``),
  the work-in-system passes the unstable equilibrium, and the collapse
  is permanent — convicted by the :class:`ServiceLivenessAuditor` (post-
  GST requests stop reaching *any* terminal outcome within the bound).
- **protected** (:func:`protected_profile`): bounded queue + token
  bucket + per-tenant fair share + CoDel + brownout at the ingress;
  retry budgets, jittered escalating backoff, and honored backpressure
  at the tenants. Retries can never amplify offered load past the
  configured budget ratio, so post-GST arrivals fall back under the pump
  rate and the service recovers — the same auditor comes back clean.

The liveness contract is deliberately *answer-oriented*: an obligation
armed at ``svc_sent`` is satisfied by **any terminal outcome** — a
completion (``svc_done``), a typed rejection recorded at the ingress
(``svc_reject``), or a budgeted abandonment (``svc_failed``). Graceful
degradation means answering everyone quickly, not completing everyone;
the goodput criterion (SLA-windowed completions, measured by
``benchmarks/bench_service_overload.py``) separately rules out the
degenerate "reject everything" strategy.

Everything is a pure function of the seed: the planted burst is placed
relative to the schedule's GST, tenant jitter streams derive from
``(seed, "tenant", pid)``, and :func:`run_service_chaos` registers as
chaos protocols ``service`` / ``service-storm`` so the standard sweep /
replay tooling (and its serial ≡ parallel bit-identity) applies.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from ..consensus.minbft import MinBFTReplica
from ..consensus.safety import ReplicationStreamChecker
from ..crypto.serialize import crypto_stats, reset_crypto_caches
from ..crypto.signatures import SignatureScheme
from ..errors import ConfigurationError, PropertyViolation
from ..faults.adversaries import BurstWindow, GSTAdversary
from ..hardware.trinc import TrincAuthority
from ..sim.adversary import Adversary, ReliableAsynchronous
from ..sim.runner import Simulation
from ..sim.liveness import DeadlineMonitor, LivenessReport
from ..sim.trace import CUSTOM, TraceEvent, TraceObserver
from ..types import ProcessId, Time
from .admission import FairShare, QueueDeadline, TokenBucket
from .degrade import BrownoutController
from .ingress import IngressProcess, TenantClient

__all__ = [
    "PlantedBurstGST",
    "ServiceLivenessAuditor",
    "ServiceProfile",
    "build_service_system",
    "protected_profile",
    "run_service_chaos",
    "unprotected_profile",
]


# ---------------------------------------------------------------------------
# Profiles: the two arms of the experiment
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ServiceProfile:
    """One complete serving-layer configuration (ingress + tenant knobs).

    A zero/negative value disables the corresponding optional policy
    (``queue_limit=None`` likewise removes the queue bound), so the
    unprotected arm is expressed in the same vocabulary as the protected
    one — the experiment varies *policy*, never topology.
    """

    name: str
    protected: bool
    # ingress
    proc_time: float = 0.35
    reject_time: Optional[float] = None
    max_inflight: int = 16
    lease_timeout: float = 90.0
    queue_limit: Optional[int] = None
    bucket_rate: float = 0.0
    bucket_burst: float = 8.0
    fair_per_tenant: int = 0
    codel_target: float = 0.0
    codel_interval: float = 4.0
    brownout_depth: float = 0.0
    brownout_phi: float = 6.0
    # tenants
    tenant_timeout: float = 5.0
    tenant_backoff: float = 1.0
    tenant_max_timeout: float = 600.0
    backoff_jitter: float = 0.0
    retry_ratio: float = -1.0
    retry_reserve: float = 3.0
    honor_backpressure: bool = False
    think_time: float = 15.0
    start_spread: float = 5.0

    def make_ingress(self, replicas: Sequence[ProcessId]) -> IngressProcess:
        return IngressProcess(
            replicas=replicas,
            proc_time=self.proc_time,
            reject_time=self.reject_time,
            max_inflight=self.max_inflight,
            lease_timeout=self.lease_timeout,
            queue_limit=self.queue_limit,
            bucket=(
                TokenBucket(self.bucket_rate, self.bucket_burst)
                if self.bucket_rate > 0 else None
            ),
            fair=(
                FairShare(self.fair_per_tenant)
                if self.fair_per_tenant > 0 else None
            ),
            codel=(
                QueueDeadline(self.codel_target, self.codel_interval)
                if self.codel_target > 0 else None
            ),
            brownout=(
                BrownoutController(
                    self.brownout_depth, phi_high=self.brownout_phi
                )
                if self.brownout_depth > 0 else None
            ),
        )

    def tenant_kwargs(self) -> dict[str, Any]:
        from ..faults.timeouts import FixedTimeout, RetryBudget

        timeout, backoff, cap = (
            self.tenant_timeout, self.tenant_backoff, self.tenant_max_timeout
        )
        kwargs: dict[str, Any] = {
            # zero-arg factories: every tenant resolves a FRESH instance
            "timeout_policy": lambda: FixedTimeout(
                timeout, backoff=backoff, max_timeout=cap
            ),
            "backoff_jitter": self.backoff_jitter,
            "think_time": self.think_time,
            "honor_backpressure": self.honor_backpressure,
            "start_spread": self.start_spread,
        }
        if self.retry_ratio >= 0:
            ratio, reserve = self.retry_ratio, self.retry_reserve
            kwargs["retry_budget"] = lambda: RetryBudget(
                ratio=ratio, min_reserve=reserve
            )
        return kwargs


def protected_profile(**overrides: Any) -> ServiceProfile:
    """Every defense on: bounded queue, shed policies, budgets, jitter."""
    profile = ServiceProfile(
        name="protected",
        protected=True,
        lease_timeout=40.0,
        queue_limit=24,
        bucket_rate=2.5,
        bucket_burst=8.0,
        fair_per_tenant=2,
        codel_target=8.0,
        codel_interval=4.0,
        brownout_depth=12.0,
        # patience must exceed the system's own designed sojourn
        # (queue_limit * proc_time + consensus slack ~= 10.5s), or tenants
        # spend their retry budgets on requests that were going to complete
        tenant_timeout=12.0,
        tenant_backoff=2.0,
        tenant_max_timeout=60.0,
        backoff_jitter=0.5,
        retry_ratio=0.1,
        retry_reserve=3.0,
        honor_backpressure=True,
    )
    return dataclasses.replace(profile, **overrides) if overrides else profile


def unprotected_profile(**overrides: Any) -> ServiceProfile:
    """Every defense off: the metastable-collapse baseline.

    Fixed 5s timeouts that never escalate, unbounded retries, unbounded
    admission queue, backpressure ignored — the configuration whose
    post-burst duplicate rate (``n_tenants / 5s``) exceeds the pump rate
    and therefore never recovers.
    """
    profile = ServiceProfile(name="unprotected", protected=False)
    return dataclasses.replace(profile, **overrides) if overrides else profile


# ---------------------------------------------------------------------------
# The planted trigger
# ---------------------------------------------------------------------------


class PlantedBurstGST(GSTAdversary):
    """GST adversary with one deliberate full-network outage before GST.

    The metastable-failure *trigger*: a total loss window of
    ``burst_len`` time units ending ``burst_gap`` before GST. During the
    window every tenant's outstanding request (and every reply) is lost,
    so at GST the whole fleet is simultaneously retransmitting — the
    correlated state that tips an unprotected service past its unstable
    equilibrium. Placement is derived from ``gst``, so the fixture moves
    with the schedule and stays a pure function of the seed.

    Subclassing note: windows are (re)generated at :meth:`bind`, so the
    planted burst must be appended inside :meth:`_generate_windows` —
    appending to ``bursts`` after construction would be erased when the
    simulation binds its RNG.
    """

    def __init__(
        self,
        n: int,
        gst: Time,
        delta: float = 1.0,
        burst_len: float = 28.0,
        burst_gap: float = 2.0,
        **chaos_kwargs: Any,
    ) -> None:
        if burst_len <= 0:
            raise ConfigurationError(
                f"burst_len must be > 0, got {burst_len}"
            )
        if burst_gap < 0:
            raise ConfigurationError(
                f"burst_gap must be >= 0, got {burst_gap}"
            )
        end = gst - burst_gap
        start = max(end - burst_len, 0.0)
        if start >= end:
            raise ConfigurationError(
                f"planted burst [{start}, {end}) is empty; gst={gst} too small"
            )
        self.planted = BurstWindow(start=start, end=end, drop=1.0)
        super().__init__(n, gst=gst, delta=delta, **chaos_kwargs)

    def _generate_windows(self) -> None:
        super()._generate_windows()
        self.bursts = tuple(sorted(
            (*self.bursts, self.planted), key=lambda b: b.start
        ))


def storm_adversary(n: int, gst: Time, delta: float) -> PlantedBurstGST:
    """The storm fixture's adversary: quiet network except the planted burst.

    Background chaos is deliberately zero — the experiment isolates the
    *overload* failure mode, so the only fault is the trigger itself (the
    generic ``service`` protocol covers composed chaos).
    """
    return PlantedBurstGST(
        n=n,
        gst=gst,
        delta=delta,
        drop_probability=0.0,
        dup_probability=0.0,
        straggler_probability=0.0,
        n_bursts=0,
        n_partitions=0,
    )


# ---------------------------------------------------------------------------
# Liveness contract
# ---------------------------------------------------------------------------


class ServiceLivenessAuditor(TraceObserver):
    """Streaming post-GST auditor for the serving layer's answer contract.

    Every request a fault-free tenant submits (``svc_sent``) must reach
    *some* terminal outcome within ``bound`` of ``max(t_sent, gst)``:

    - ``svc_done`` — completed with a reply quorum;
    - ``svc_reject`` recorded at the ingress — a typed refusal (graceful
      degradation IS an answer; the goodput metric separately penalizes
      answering everything with rejections);
    - ``svc_failed`` — the tenant's own budgeted abandonment (a terminal
      *decision*, reached in bounded time by construction of the budget).

    A metastably collapsed service violates this contract wholesale: the
    unbounded inbox keeps requests in limbo — no reply, no rejection —
    past any bound. Deadline expiry is permanent, so the streaming and
    batch verdicts agree exactly as for the replication auditors.
    """

    def __init__(
        self,
        gst: Time,
        bound: float,
        tenants: Iterable[ProcessId],
        ingress: ProcessId,
        fail_fast: bool = False,
    ) -> None:
        if bound <= 0:
            raise ConfigurationError(f"bound must be > 0, got {bound}")
        self.gst = gst
        self.bound = bound
        self.tenants = set(tenants)
        self.ingress = ingress
        self.fail_fast = fail_fast
        self.monitor = DeadlineMonitor()
        self.online_violations: list[tuple[int, str]] = []
        self.armed = 0
        self.satisfied = 0

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind != CUSTOM:
            return
        self._expire(ev)
        tag = ev.field("event")
        if tag == "svc_sent" and ev.pid in self.tenants:
            req_id = ev.field("req_id")
            self.monitor.expect(
                ("svc", ev.pid, req_id),
                max(ev.time, self.gst) + self.bound,
                f"request {req_id} from tenant {ev.pid} (sent t={ev.time:g}) "
                "reached no terminal outcome (done/rejected/abandoned)",
            )
            self.armed += 1
        elif tag in ("svc_done", "svc_failed") and ev.pid in self.tenants:
            if self.monitor.satisfy(("svc", ev.pid, ev.field("req_id"))):
                self.satisfied += 1
        elif tag == "svc_reject" and ev.pid == self.ingress:
            key = ("svc", ev.field("tenant"), ev.field("req_id"))
            if self.monitor.satisfy(key):
                self.satisfied += 1

    def _expire(self, ev: TraceEvent) -> None:
        for ob in self.monitor.advance(ev.time):
            self.online_violations.append((ev.index, ob.message))
            if self.fail_fast:
                raise PropertyViolation(
                    "service-liveness",
                    f"event #{ev.index} (t={ev.time:g}): {ob.message}",
                )

    def finish(self, end_time: Optional[Time] = None) -> LivenessReport:
        report = LivenessReport(
            obligations_armed=self.armed,
            obligations_satisfied=self.satisfied,
        )
        report.violations = [m for _, m in self.online_violations]
        violated, unresolved = self.monitor.flush(end_time)
        report.violations += [ob.message for ob in violated]
        report.unresolved = [ob.message for ob in unresolved]
        return report


# ---------------------------------------------------------------------------
# System builder
# ---------------------------------------------------------------------------


def _replica_vc_policy(req_timeout: float) -> Any:
    """View-change timer for served replicas: escalating, not fixed.

    Under storm load, arrival-to-execution latency can legitimately exceed
    any fixed bound while the primary is perfectly healthy; a constant
    timer then triggers a view change on every expiry, and each view
    change re-proposes the un-checkpointed log. Exponential backoff makes
    repeated unproductive view changes geometrically rarer (progress still
    resets the timer, so a genuinely dead primary is replaced promptly).
    """
    from ..faults.timeouts import FixedTimeout

    return FixedTimeout(req_timeout, backoff=2.0, max_timeout=600.0)


def build_service_system(
    profile: Optional[ServiceProfile] = None,
    n_tenants: int = 8,
    ops_per_tenant: int = 6,
    f: int = 1,
    app: str = "bank",
    seed: int = 0,
    adversary: Optional[Adversary] = None,
    req_timeout: float = 90.0,
    checkpoint_interval: int = 32,
    reliable: bool | dict = True,
    trace_retention: Optional[int] = None,
    observers: Sequence[Any] = (),
    workloads: Optional[Sequence[Sequence[tuple]]] = None,
) -> tuple[Simulation, list[MinBFTReplica], IngressProcess, list[TenantClient]]:
    """A ready-to-run served deployment: replicas + ingress + tenant fleet.

    Pid layout: replicas ``0..n-1``, ingress ``n``, tenants
    ``n+1..n+n_tenants``. Tenants sign their own requests (the ingress
    holds no signing authority and merely forwards tenant-signed
    ``REQUEST`` tuples), replicas verify and reply directly to the tenant
    — the ingress is an overload boundary, not a trust boundary. Replicas
    run with batching on: a saturated ingress dispatches up to
    ``max_inflight`` distinct tenants concurrently and one slot carries
    the whole batch window.
    """
    if f < 1:
        raise ConfigurationError(f"f must be >= 1, got {f}")
    if n_tenants < 1:
        raise ConfigurationError(f"n_tenants must be >= 1, got {n_tenants}")
    from ..consensus.apps import make_app
    from ..consensus.usig import USIG, USIGVerifier
    from ..workloads.generator import tenant_workloads

    profile = profile if profile is not None else protected_profile()
    n = 2 * f + 1
    total = n + 1 + n_tenants
    scheme = SignatureScheme(total, seed=seed)
    authority = TrincAuthority(n, seed=seed)
    verifier = USIGVerifier(authority)

    replicas: list[MinBFTReplica] = []
    for pid in range(n):
        replicas.append(MinBFTReplica(
            n=n,
            usig=USIG(authority.trinket(pid)),
            verifier=verifier,
            scheme=scheme,
            signer=scheme.signer(pid),
            app=make_app(app),
            req_timeout=req_timeout,
            # checkpointing is load-bearing under sustained load: without a
            # stable checkpoint every view change re-proposes the log from
            # seq 0, and under overload those floods dominate the run
            checkpoint_interval=checkpoint_interval,
            batching=True,
            timeout_policy=_replica_vc_policy(req_timeout),
        ))

    ingress = profile.make_ingress(range(n))

    if workloads is None:
        workloads = tenant_workloads(
            n_tenants, ops_per_tenant, seed=seed,
            kind="bank" if app == "bank" else "kv",
        )
    tenant_kwargs = profile.tenant_kwargs()
    tenants: list[TenantClient] = []
    for i in range(n_tenants):
        tenant = TenantClient(
            ingress=n,
            replicas=range(n),
            reply_quorum=f + 1,
            ops=list(workloads[i]),
            **tenant_kwargs,
        )
        tenant.signer = scheme.signer(n + 1 + i)
        tenants.append(tenant)

    hosted = [*replicas, ingress, *tenants]
    if reliable:
        from ..faults.channel import wrap_reliable

        kwargs = reliable if isinstance(reliable, dict) else {}
        hosted = wrap_reliable(hosted, **kwargs)
    adversary = (
        adversary if adversary is not None else ReliableAsynchronous(0.01, 0.5)
    )
    sim = Simulation(hosted, adversary, seed=seed,
                     trace_retention=trace_retention, observers=observers)
    return sim, replicas, ingress, tenants


# ---------------------------------------------------------------------------
# Chaos protocol runner
# ---------------------------------------------------------------------------


def run_service_chaos(
    schedule: Any,
    n_tenants: Optional[int] = None,
    ops_per_tenant: Optional[int] = None,
    protected: bool = True,
    storm: bool = False,
    app: str = "bank",
    liveness_bound: Optional[float] = None,
    profile: Optional[ServiceProfile] = None,
) -> Any:
    """The serving layer under one fault schedule; a standard ChaosResult.

    Two modes share this runner:

    - ``storm=False`` (protocol ``service``): generic seeded chaos —
      loss, duplication, bursts, partitions, replica crash/recovery —
      against a modestly loaded protected service. The robustness
      regression: composed faults must not break the answer contract.
    - ``storm=True`` (protocol ``service-storm``): the planted
      metastable retry-storm fixture on an otherwise quiet network,
      sized so the unprotected arm's duplicate rate exceeds the pump
      rate. ``protected=True`` must come back clean; ``protected=False``
      must be convicted by the liveness auditor — both are asserted by
      ``tests/test_service_soak.py`` on every quick-sweep seed.

    Safety (replica execution order) is audited by the standard
    :class:`~repro.consensus.safety.ReplicationStreamChecker` in both
    arms — overload collapse is a *liveness* failure; consensus safety
    must hold even mid-storm.
    """
    from ..faults.chaos import (
        DEFAULT_CHANNEL,
        ChaosResult,
        _apply_crashes,
        _simcore_stats,
    )
    from ..faults.channel import ReliableProcess

    reset_crypto_caches()
    if n_tenants is None:
        n_tenants = 32 if storm else 6
    if ops_per_tenant is None:
        ops_per_tenant = 60 if storm else 6
    if liveness_bound is None:
        liveness_bound = 150.0 if storm else 300.0
    prof = profile if profile is not None else (
        protected_profile() if protected else unprotected_profile()
    )
    f = 1
    n = 2 * f + 1
    total = n + 1 + n_tenants
    if storm:
        adversary: Adversary = storm_adversary(
            total, gst=schedule.gst, delta=schedule.delta
        )
    else:
        adversary = schedule.make_adversary(total)
    channel_kwargs = dict(DEFAULT_CHANNEL)
    sim, replicas, ingress, tenants = build_service_system(
        profile=prof,
        n_tenants=n_tenants,
        ops_per_tenant=ops_per_tenant,
        f=f,
        app=app,
        seed=schedule.seed,
        adversary=adversary,
        reliable=channel_kwargs,
        # the auditors stream; full retention of a storm run's millions of
        # events would dominate memory without ever being read back
        trace_retention=50_000,
    )

    def restart_replica(pid: ProcessId) -> ReliableProcess:
        from ..consensus.apps import make_app

        old = replicas[pid]
        fresh = MinBFTReplica(
            n=old.n,
            usig=old.usig,  # trusted hardware survives the reboot
            verifier=old.verifier,
            scheme=old.scheme,
            signer=old.signer,
            app=make_app(app),  # application state was volatile
            req_timeout=old.req_timeout,
            checkpoint_interval=old.checkpoint_interval,
            batching=True,
            timeout_policy=_replica_vc_policy(old.req_timeout),
        )
        replicas[pid] = fresh
        return ReliableProcess(fresh, **channel_kwargs)

    _apply_crashes(sim, schedule, restart_factory=restart_replica)

    correct_replicas = [
        p for p in schedule.fault_free_pids(total) if p < n
    ]
    checker = ReplicationStreamChecker(correct_replicas, fail_fast=True)
    sim.attach_observer(checker)
    tenant_pids = range(n + 1, n + 1 + n_tenants)
    live = ServiceLivenessAuditor(
        gst=schedule.gst,
        bound=liveness_bound,
        tenants=tenant_pids,
        ingress=n,
    )
    sim.attach_observer(live)

    def stats() -> dict[str, Any]:
        return {
            "messages_sent": sim.network.messages_sent,
            "dropped": adversary.messages_dropped,
            "restarts": len(sim.restarted_pids),
            "service": sim.collect_service_stats(),
            "crypto": crypto_stats().as_dict(),
            "simcore": _simcore_stats(sim),
        }

    protocol = "service-storm" if storm else "service"
    arm = prof.name
    described = (
        f"arm={arm} tenants={n_tenants} pump={1.0 / prof.proc_time:.2f}/s\n"
        + schedule.describe() + "\n" + adversary.describe()
    )
    try:
        sim.run(until=schedule.horizon)
    except PropertyViolation:
        abort_index, _ = checker.online_violations[0]
        return ChaosResult(
            protocol=protocol,
            seed=schedule.seed,
            ok=False,
            violations=[f"event #{i}: {m}"
                        for i, m in checker.online_violations],
            schedule=described,
            stats=stats(),
            abort_index=abort_index,
        )
    report = checker.finish()
    violations = report.violations + report.liveness_violations
    live_report = live.finish(end_time=schedule.horizon)
    return ChaosResult(
        protocol=protocol,
        seed=schedule.seed,
        ok=not violations and live_report.ok,
        violations=violations,
        schedule=described,
        stats=stats(),
        liveness_violations=live_report.violations,
    )
