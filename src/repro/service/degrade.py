"""Brownout / circuit-breaker control: degrade before collapsing.

A saturated replicated service has a narrow good region between "admit
everything" (unbounded queues, metastable retry storms) and "reject
everything" (self-inflicted outage). :class:`BrownoutController` walks a
three-state ladder through that region:

- ``NORMAL`` — full service;
- ``BROWNOUT`` — writes are shed with typed rejections, reads still
  serve: the replicated bank keeps answering ``balance``/``get`` while
  mutations wait out the overload (the classic brownout trade — shed the
  expensive dimension, keep the cheap one);
- ``OPEN`` — the circuit breaker: everything is shed with a
  ``retry_after`` hint while the backlog drains.

Saturation is detected from two *independent* signals, combined because
each alone has a blind spot:

- **queue depth** (EWMA-smoothed) — sensitive to arrival overload, blind
  to a stalled backend (a wedged consensus group with an empty queue);
- **phi-accrual silence** on the completion stream
  (:class:`~repro.faults.detector.AccrualFailureDetector` fed with one
  heartbeat per completed request) — sensitive to backend stall, blind to
  a fast-draining-but-flooded queue.

Escalation takes either signal; recovery (hysteresis) requires *both*
calm for ``cooldown`` consecutive evaluations, so the controller cannot
flap at the threshold. All inputs are virtual-time deterministic; the
controller holds no RNG.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from ..faults.detector import AccrualFailureDetector
from ..types import Time

__all__ = ["BrownoutController", "NORMAL", "BROWNOUT", "OPEN", "MODE_NAMES"]

NORMAL = 0
BROWNOUT = 1
OPEN = 2
MODE_NAMES = {NORMAL: "normal", BROWNOUT: "brownout", OPEN: "open"}

_COMPLETIONS = 0  # the single pseudo-peer the detector scores


class BrownoutController:
    """Saturation ladder over queue-depth EWMA + completion-silence phi.

    The ingress calls :meth:`note_completion` per finished request,
    :meth:`observe` per admission-time evaluation (every inbound request
    pays one cheap EWMA update), and gates writes/everything on
    :attr:`mode`. ``depth_high`` sets the BROWNOUT threshold on the
    smoothed queue depth; ``open_factor * depth_high`` sets OPEN;
    recovery needs the smoothed depth under ``depth_low`` *and* phi under
    ``phi_high / 2`` for ``cooldown`` consecutive observations.
    """

    __slots__ = (
        "depth_high", "depth_low", "open_factor", "phi_high", "cooldown",
        "alpha", "detector", "mode", "ewma_depth", "_calm_streak",
        "brownout_entries", "open_entries", "recoveries", "_last_eval",
    )

    def __init__(
        self,
        depth_high: float,
        depth_low: Optional[float] = None,
        open_factor: float = 2.0,
        phi_high: float = 4.0,
        cooldown: int = 8,
        alpha: float = 0.2,
        detector: Optional[AccrualFailureDetector] = None,
    ) -> None:
        if depth_high <= 0:
            raise ConfigurationError(f"depth_high must be > 0, got {depth_high}")
        depth_low = depth_low if depth_low is not None else depth_high / 4.0
        if not 0 < depth_low < depth_high:
            raise ConfigurationError(
                f"depth_low must be in (0, depth_high), got {depth_low}"
            )
        if open_factor <= 1.0:
            raise ConfigurationError(
                f"open_factor must be > 1, got {open_factor}"
            )
        if phi_high <= 0:
            raise ConfigurationError(f"phi_high must be > 0, got {phi_high}")
        if cooldown < 1:
            raise ConfigurationError(f"cooldown must be >= 1, got {cooldown}")
        if not 0 < alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.depth_high = depth_high
        self.depth_low = depth_low
        self.open_factor = open_factor
        self.phi_high = phi_high
        self.cooldown = cooldown
        self.alpha = alpha
        self.detector = detector if detector is not None else AccrualFailureDetector(
            threshold=phi_high
        )
        self.mode = NORMAL
        self.ewma_depth = 0.0
        self._calm_streak = 0
        self.brownout_entries = 0
        self.open_entries = 0
        self.recoveries = 0
        self._last_eval: Time = 0.0

    # -- inputs ------------------------------------------------------------

    def note_completion(self, now: Time) -> None:
        """One finished request — a heartbeat on the completion stream."""
        self.detector.heartbeat(_COMPLETIONS, now)

    def phi(self, now: Time) -> float:
        return self.detector.phi(_COMPLETIONS, now)

    # -- evaluation --------------------------------------------------------

    def observe(self, now: Time, queue_depth: int, busy: bool = True) -> int:
        """Fold one queue-depth sample in and (re)evaluate; returns mode.

        ``busy`` says whether the backend currently has work outstanding.
        Completion silence only indicts a *busy* backend — an idle one is
        silent because it is idle, and shedding-induced silence must not
        latch the controller in brownout (the shed writes stop the
        completion heartbeat, which would otherwise hold phi high and
        keep the writes shed forever).
        """
        self.ewma_depth += self.alpha * (queue_depth - self.ewma_depth)
        self._last_eval = now
        phi = self.phi(now) if busy else 0.0
        hot = self.ewma_depth > self.depth_high or phi > self.phi_high
        critical = self.ewma_depth > self.depth_high * self.open_factor
        if critical and self.mode != OPEN:
            self.mode = OPEN
            self.open_entries += 1
            self._calm_streak = 0
            return self.mode
        if hot:
            self._calm_streak = 0
            if self.mode == NORMAL:
                self.mode = BROWNOUT
                self.brownout_entries += 1
            return self.mode
        # calm sample: recovery only after a full cooldown streak
        if self.mode != NORMAL:
            calm = (
                self.ewma_depth < self.depth_low
                and phi < self.phi_high / 2.0
            )
            if calm:
                self._calm_streak += 1
                if self._calm_streak >= self.cooldown:
                    # step down one rung at a time: OPEN drains through
                    # BROWNOUT rather than slamming straight to full service
                    self.mode -= 1
                    self.recoveries += 1
                    self._calm_streak = 0
            else:
                self._calm_streak = 0
        return self.mode

    # -- queries -----------------------------------------------------------

    @property
    def mode_name(self) -> str:
        return MODE_NAMES[self.mode]

    def sheds_writes(self) -> bool:
        return self.mode >= BROWNOUT

    def sheds_all(self) -> bool:
        return self.mode >= OPEN

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BrownoutController(mode={self.mode_name}, "
            f"ewma_depth={self.ewma_depth:.1f})"
        )
