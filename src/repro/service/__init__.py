"""Overload-robust serving layer for the replicated lattice service.

The serving layer stands between multi-tenant workload generators and
the MinBFT replica group, and exists to answer one question: *what
happens to a replicated service pushed past saturation, and what
machinery keeps it from collapsing?* Four modules:

- :mod:`~repro.service.admission` — the shed policies (token bucket,
  per-tenant fair share, CoDel queue-deadline) and the bounded queue;
- :mod:`~repro.service.degrade` — the brownout / circuit-breaker ladder
  (full service → read-only → shed-everything) driven by queue-depth
  EWMA and phi-accrual silence on the completion stream;
- :mod:`~repro.service.ingress` — the ingress process (serialized input
  pump, admission pipeline, bounded dispatch into consensus) and the
  backpressure-aware :class:`~repro.service.ingress.TenantClient`;
- :mod:`~repro.service.soak` — the deterministic soak harness with the
  planted metastable retry-storm fixture: unprotected, goodput collapses
  after a transient burst and never recovers; protected, the service
  degrades gracefully and recovers after GST — convicted/cleared by the
  streaming service-liveness auditor.

Everything is a pure function of the run seed (jitter streams derive
from it); the chaos registry gains ``service`` / ``service-storm``
protocols so the same sweep/replay/one-big-run tooling applies.
"""

from .admission import (
    AdmissionDecision,
    BoundedAdmissionQueue,
    FairShare,
    QueueDeadline,
    QueuedRequest,
    REASONS,
    TokenBucket,
)
from .degrade import BROWNOUT, BrownoutController, MODE_NAMES, NORMAL, OPEN
from .ingress import (
    DEFAULT_READ_OPS,
    IngressProcess,
    SVC_DONE,
    SVC_REJECT,
    SVC_REQ,
    TenantClient,
)
from .soak import (
    PlantedBurstGST,
    ServiceLivenessAuditor,
    ServiceProfile,
    build_service_system,
    protected_profile,
    run_service_chaos,
    unprotected_profile,
)

__all__ = [
    "AdmissionDecision",
    "BoundedAdmissionQueue",
    "BROWNOUT",
    "BrownoutController",
    "DEFAULT_READ_OPS",
    "FairShare",
    "IngressProcess",
    "MODE_NAMES",
    "NORMAL",
    "OPEN",
    "PlantedBurstGST",
    "QueueDeadline",
    "QueuedRequest",
    "REASONS",
    "ServiceLivenessAuditor",
    "ServiceProfile",
    "SVC_DONE",
    "SVC_REJECT",
    "SVC_REQ",
    "TenantClient",
    "TokenBucket",
    "build_service_system",
    "protected_profile",
    "run_service_chaos",
    "unprotected_profile",
]
