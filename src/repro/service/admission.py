"""Admission control: the policies that decide what a saturated ingress sheds.

An overloaded service has exactly one good option: answer *something* to
*everyone*, fast — and the only way to afford that is to refuse real work.
This module packages the three standard refusal policies as small
deterministic objects the :class:`~repro.service.ingress.IngressProcess`
composes, plus the bounded queue they guard:

- :class:`TokenBucket` — a global rate limiter: sustained admission at
  ``rate`` with bursts up to ``burst``, refilled continuously from virtual
  time (no timers, no RNG — a pure function of the admission timestamps);
- :class:`FairShare` — per-tenant isolation: no tenant may hold more than
  ``per_tenant`` requests in the service (queued + dispatched) at once, so
  one greedy or retry-storming tenant cannot evict everyone else;
- :class:`QueueDeadline` — CoDel-style sojourn control at *dequeue* time:
  when even the queue head has waited longer than ``target`` persistently
  (for an ``interval``), the queue is standing rather than bursty and the
  stale head is shed — with the classic ``interval / sqrt(drops)`` control
  law tightening while the condition persists;
- :class:`BoundedAdmissionQueue` — the FIFO itself, with a hard ``maxlen``
  (``None`` disables the bound — the "unprotected" configuration the soak
  harness convicts).

Every rejection carries one of the :data:`REASONS` strings; the ingress
turns them into typed ``SVC_REJECT`` answers with a ``retry_after`` hint,
which is what makes shedding *graceful*: clients get an actionable answer
in bounded time instead of silence from a growing queue.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Optional

from ..errors import ConfigurationError
from ..types import Time

__all__ = [
    "AdmissionDecision",
    "BoundedAdmissionQueue",
    "FairShare",
    "QueueDeadline",
    "QueuedRequest",
    "REASONS",
    "TokenBucket",
]

REASONS = (
    "queue_full",
    "rate_limited",
    "fair_share",
    "deadline",
    "brownout_write",
    "overload",
)
"""The closed set of rejection reasons a ``SVC_REJECT`` may carry."""


class AdmissionDecision:
    """Outcome of one admission check: admitted, or shed with a reason."""

    __slots__ = ("admitted", "reason")

    def __init__(self, admitted: bool, reason: Optional[str] = None) -> None:
        if not admitted and reason not in REASONS:
            raise ConfigurationError(f"unknown rejection reason {reason!r}")
        self.admitted = admitted
        self.reason = reason

    def __bool__(self) -> bool:
        return self.admitted

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            "AdmissionDecision(admitted)" if self.admitted
            else f"AdmissionDecision(shed: {self.reason})"
        )


_ADMIT = AdmissionDecision(True)


class TokenBucket:
    """Continuous-refill token bucket over virtual time.

    ``rate`` tokens accrue per time unit up to ``burst``; each admission
    spends one. Deterministic by construction: the token level is a pure
    function of the admission history and the (virtual) clock, so sweeps
    replay bit-identically. ``retry_after()`` estimates when a token will
    next be available — the backpressure hint shed clients receive.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "admitted", "shed")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._last: Time = 0.0
        self.admitted = 0
        self.shed = 0

    def _refill(self, now: Time) -> None:
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now

    @property
    def tokens(self) -> float:
        return self._tokens

    def try_admit(self, now: Time) -> bool:
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.admitted += 1
            return True
        self.shed += 1
        return False

    def retry_after(self, now: Time) -> float:
        """Time until one token accrues (0 when one is available now)."""
        self._refill(now)
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate


class FairShare:
    """Per-tenant outstanding-work cap (queued + dispatched).

    Per-tenant counters move on explicit :meth:`acquire` / :meth:`release`
    calls from the ingress; :meth:`try_admit` sheds a tenant already at its
    cap. Isolation, not fairness-scheduling: a well-behaved tenant's share
    of the service can never be consumed by a storming one.
    """

    __slots__ = ("per_tenant", "_held", "shed")

    def __init__(self, per_tenant: int) -> None:
        if per_tenant < 1:
            raise ConfigurationError(
                f"per_tenant must be >= 1, got {per_tenant}"
            )
        self.per_tenant = per_tenant
        self._held: dict[Any, int] = {}
        self.shed = 0

    def held(self, tenant: Any) -> int:
        return self._held.get(tenant, 0)

    def try_admit(self, tenant: Any) -> bool:
        if self._held.get(tenant, 0) >= self.per_tenant:
            self.shed += 1
            return False
        return True

    def acquire(self, tenant: Any) -> None:
        self._held[tenant] = self._held.get(tenant, 0) + 1

    def release(self, tenant: Any) -> None:
        held = self._held.get(tenant, 0)
        if held <= 1:
            self._held.pop(tenant, None)
        else:
            self._held[tenant] = held - 1


class QueueDeadline:
    """CoDel-style standing-queue detection at dequeue time.

    :meth:`should_drop` is consulted with each dequeued request's sojourn
    time. A sojourn above ``target`` starts (or continues) an
    above-target episode; once the episode has lasted ``interval``, the
    request is shed and the next drop point tightens to
    ``interval / sqrt(drop_count)`` — Controlled Delay's control law,
    which distinguishes a *standing* queue (bad: latency with no
    throughput benefit) from a transient burst (fine: absorbed within one
    interval). A single below-target sojourn ends the episode.
    """

    __slots__ = ("target", "interval", "_first_above", "_next_drop",
                 "_drop_count", "shed")

    def __init__(self, target: float, interval: float) -> None:
        if target <= 0 or interval <= 0:
            raise ConfigurationError(
                f"target/interval must be > 0, got {target}/{interval}"
            )
        self.target = target
        self.interval = interval
        self._first_above: Optional[Time] = None
        self._next_drop: Optional[Time] = None
        self._drop_count = 0
        self.shed = 0

    def should_drop(self, now: Time, sojourn: float) -> bool:
        if sojourn <= self.target:
            self._first_above = None
            self._next_drop = None
            self._drop_count = 0
            return False
        if self._first_above is None:
            self._first_above = now
            self._next_drop = now + self.interval
            return False
        if now < self._next_drop:
            return False
        self._drop_count += 1
        self.shed += 1
        self._next_drop = now + self.interval / math.sqrt(self._drop_count)
        return True


class QueuedRequest:
    """One admitted request parked in the ingress queue."""

    __slots__ = ("tenant", "req_id", "op", "sig", "enqueued_at")

    def __init__(self, tenant: int, req_id: int, op: tuple, sig: Any,
                 enqueued_at: Time) -> None:
        self.tenant = tenant
        self.req_id = req_id
        self.op = op
        self.sig = sig
        self.enqueued_at = enqueued_at


class BoundedAdmissionQueue:
    """FIFO admission queue with an optional hard bound.

    ``maxlen=None`` removes the bound — the unprotected configuration
    whose collapse the soak harness demonstrates. ``depth_peak`` tracks
    the high-watermark for the exported service stats.
    """

    __slots__ = ("maxlen", "_q", "depth_peak", "enqueued", "shed")

    def __init__(self, maxlen: Optional[int]) -> None:
        if maxlen is not None and maxlen < 1:
            raise ConfigurationError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._q: deque[QueuedRequest] = deque()
        self.depth_peak = 0
        self.enqueued = 0
        self.shed = 0

    def __len__(self) -> int:
        return len(self._q)

    def try_push(self, item: QueuedRequest) -> bool:
        if self.maxlen is not None and len(self._q) >= self.maxlen:
            self.shed += 1
            return False
        self._q.append(item)
        self.enqueued += 1
        if len(self._q) > self.depth_peak:
            self.depth_peak = len(self._q)
        return True

    def pop(self) -> Optional[QueuedRequest]:
        return self._q.popleft() if self._q else None

    def head_sojourn(self, now: Time) -> float:
        """Waiting time of the oldest queued request (0 when empty)."""
        return now - self._q[0].enqueued_at if self._q else 0.0
