"""Figure 1, executable: the classification lattice of communication models.

The paper's only figure is a diagram where "A → B indicates A can implement
B". This module encodes every node and arrow; each arrow carries a
*runnable construction plus checker*, so the figure can be regenerated from
executions rather than asserted. Negative (separation) results are arrows
too — running one executes the proof's adversarial scenarios and verifies
the claimed violation.

Nodes::

    synchrony (bidirectional rounds)
        │
    unidirectionality  ══  shared-memory hardware (SWMR / sticky / PEATS)
        │            ╲ (×: not upward, §4.1 scenarios)
    SRB / non-equivocation  ══  trusted logs (TrInc / A2M / enclaves)
        │        (f=1 corner: RB → unidirectionality)
    asynchrony (zero-directional)

Use :func:`run_classification` for the full evidence table and
:func:`render_figure` for the text rendering the FIG1 bench prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..crypto.signatures import SignatureScheme
from ..errors import PropertyViolation
from ..hardware.a2m_from_trinc import TrincA2MChecker, TrincBackedA2M
from ..hardware.trinc import TrincAuthority
from ..sim.adversary import LockStepSynchronous, ReliableAsynchronous
from ..sim.runner import Simulation
from .directionality import check_directionality
from .rounds import LockStepRoundTransport, RoundProcess
from .srb import check_srb
from .srb_from_trinc import SRBFromTrInc
from .srb_from_uni import build_sm_srb_system
from .srb_oracle import SRBOracle
from .separations import run_srb_separation
from .trinc_from_srb import SRBTrincVerifier, SRBTrinket
from .uni_from_rb_corner import CornerCaseRoundTransport
from .uni_from_sm import ALL_SM_TRANSPORTS, build_objects_for

# -- nodes ---------------------------------------------------------------------

SYNC = "synchrony"
UNI = "unidirectionality"
SM_HW = "shared-memory-hardware"
SRB = "srb"
LOGS = "trusted-logs"
ASYNC = "asynchrony"

NODES: dict[str, str] = {
    SYNC: "Lock-step synchrony (bidirectional rounds)",
    UNI: "Unidirectional communication",
    SM_HW: "Shared memory with ACLs (SWMR, sticky bits, PEATS)",
    SRB: "Sequenced reliable broadcast / non-equivocation",
    LOGS: "Trusted logs (TrInc, A2M, SGX-style attested logs)",
    ASYNC: "Asynchronous message passing (zero-directional)",
}

POSITIVE = "implements"
NEGATIVE = "cannot-implement"
CONDITIONAL = "implements-iff"


@dataclass(slots=True)
class ArrowEvidence:
    """Outcome of executing one arrow's construction/scenario."""

    ok: bool
    details: str


@dataclass(slots=True)
class Arrow:
    """One edge of Figure 1 with its executable verification."""

    arrow_id: str
    src: str
    dst: str
    kind: str
    claim: str
    paper_ref: str
    run: Callable[[int], ArrowEvidence] = field(repr=False)


# -- arrow implementations -------------------------------------------------------


def _arrow_sync_uni(seed: int) -> ArrowEvidence:
    """Bidirectional rounds are (by definition) also unidirectional."""
    n = 4

    class Chat(RoundProcess):
        def on_round_start(self):
            self.rounds.begin_round(("hi", self.pid))

        def on_round_complete(self, label):
            if isinstance(label, int) and label < 3:
                self.rounds.begin_round(("hi", self.pid, label + 1))

    sim = Simulation(
        [Chat(LockStepRoundTransport(period=2.0)) for _ in range(n)],
        LockStepSynchronous(delta=1.0),
        seed=seed,
    )
    sim.run(until=40.0)
    rep = check_directionality(sim.trace, range(n))
    ok = rep.is_bidirectional and rep.is_unidirectional and rep.pairs_checked > 0
    return ArrowEvidence(
        ok, f"{rep.pairs_checked} pairs over {rep.rounds_checked} lock-step rounds: "
            f"{rep.classify()}"
    )


def _arrow_sm_uni(seed: int) -> ArrowEvidence:
    """Every ACL shared-memory primitive yields unidirectional rounds (§3.2)."""
    n = 4
    results = []
    for name, cls in ALL_SM_TRANSPORTS.items():
        class Chat(RoundProcess):
            def on_round_start(self):
                self.rounds.begin_round(("hi", self.pid), label=("r", 1))

        sim = Simulation(
            [Chat(cls()) for _ in range(n)],
            ReliableAsynchronous(0.01, 1.5),
            seed=seed,
        )
        for obj in build_objects_for(name, n):
            sim.memory.register(obj)
        sim.run(until=200.0)
        rep = check_directionality(sim.trace, range(n))
        results.append((name, rep.is_unidirectional, rep.pairs_checked))
    ok = all(u for _, u, _ in results) and all(p > 0 for _, _, p in results)
    return ArrowEvidence(
        ok, "; ".join(f"{name}: uni={u} ({p} pairs)" for name, u, p in results)
    )


def _arrow_uni_srb(seed: int) -> ArrowEvidence:
    """Algorithm 1: unidirectional rounds implement SRB with n >= 2t+1 (§4.2)."""
    n, t = 5, 2
    sim, procs, _scheme = build_sm_srb_system(n=n, t=t, sender=0, seed=seed)
    sim.at(0.5, lambda: procs[0].broadcast("alpha"))
    sim.at(1.0, lambda: procs[0].broadcast("beta"))
    sim.crash_at(n - 1, 3.0)
    sim.run(until=500.0)
    rep = check_srb(sim.trace, sender=0, correct=range(n - 1))
    return ArrowEvidence(
        rep.ok,
        f"n={n}, t={t}, 1 crash: {len(rep.deliveries)} deliveries, "
        + ("all four SRB properties hold" if rep.ok else rep.all_violations()[0]),
    )


def _arrow_srb_trinc(seed: int) -> ArrowEvidence:
    """Theorem 1: SRB implements the TrInc interface."""
    from ..sim.process import Process

    n = 4

    class Node(Process):
        def __init__(self):
            super().__init__()
            self.verifier = SRBTrincVerifier(n)

    procs = [Node() for _ in range(n)]
    oracle = SRBOracle(seed=seed)
    sim = Simulation(procs, seed=seed)
    oracle.bind(sim)
    for p in range(n):
        oracle.subscribe(p, procs[p].verifier.on_deliver)
    trinkets = [SRBTrinket(oracle.sender_handle(p)) for p in range(n)]
    produced = {}

    def drive():
        produced["a1"] = trinkets[0].attest(1, "m1")
        produced["a2"] = trinkets[0].attest(7, "m2")
        produced["dup"] = trinkets[0].attest_unchecked(7, "conflicting")

    sim.at(0.1, drive)
    sim.run_to_quiescence()
    complete = all(
        procs[p].verifier.check_attestation(produced["a1"], 0)
        and procs[p].verifier.check_attestation(produced["a2"], 0)
        for p in range(n)
    )
    sound = all(
        not procs[p].verifier.check_attestation(produced["dup"], 0)
        and not procs[p].verifier.check_attestation(produced["a1"], 1)
        for p in range(n)
    )
    return ArrowEvidence(
        complete and sound,
        f"completeness={complete}, duplicate-counter & wrong-trinket rejected={sound}",
    )


def _arrow_trinc_a2m(seed: int) -> ArrowEvidence:
    """Levin et al.: TrInc implements the A2M interface."""
    auth = TrincAuthority(2, seed=seed)
    host = TrincBackedA2M(auth.trinket(0))
    checker = TrincA2MChecker(auth)
    log = host.create_log()
    for i, v in enumerate(["a", "b", "c"], start=1):
        host.append(log, v)
    lk = host.lookup(log, 2)
    ep = host.end(log, nonce=("challenge", seed))
    ok = (
        lk is not None
        and checker.check_lookup(lk, 0, log, 2)
        and not checker.check_lookup(lk, 0, log, 3)
        and ep is not None
        and checker.check_end(ep, 0, log, nonce=("challenge", seed))
        and not checker.check_end(ep, 0, log, nonce="stale")
        and ep.length == 3
    )
    return ArrowEvidence(ok, "lookup/end proofs verify; position and nonce pinned")


def _arrow_logs_srb(seed: int) -> ArrowEvidence:
    """Trusted logs give SRB over plain asynchronous links (no quorum)."""
    n = 4
    auth = TrincAuthority(n, seed=seed)
    procs = [
        SRBFromTrInc(0, n, auth, trinket=auth.trinket(p) if p == 0 else None)
        for p in range(n)
    ]
    sim = Simulation(procs, ReliableAsynchronous(0.01, 0.8), seed=seed)
    sim.at(0.1, lambda: procs[0].broadcast("x"))
    sim.at(0.2, lambda: procs[0].broadcast("y"))
    sim.run_to_quiescence()
    rep = check_srb(sim.trace, 0, range(n))
    return ArrowEvidence(
        rep.ok,
        f"n={n}: {len(rep.deliveries)} deliveries; "
        + ("all four SRB properties hold" if rep.ok else rep.all_violations()[0]),
    )


def _arrow_srb_not_uni(seed: int) -> ArrowEvidence:
    """§4.1: SRB cannot implement unidirectionality (n > 2f, f > 1)."""
    out = run_srb_separation(n=6, f=2, seed=seed)
    return ArrowEvidence(
        out.separation_holds,
        f"n=6, f=2: scenario-3 unidirectionality violations="
        f"{len(out.directionality3.unidirectional_violations)}, "
        f"views indistinguishable (Q/C1/C2)="
        f"{out.indistinguishable_q}/{out.indistinguishable_c1}/{out.indistinguishable_c2}",
    )


def _arrow_rb_uni_corner(seed: int) -> ArrowEvidence:
    """Appendix B: reliable broadcast implements unidirectionality iff f=1, n>=3."""
    n = 3
    scheme = SignatureScheme(n, seed=seed)
    oracle = SRBOracle(
        policy=lambda s, r, k, now: None if (s, r) in ((0, 1), (1, 0)) else 0.05,
        seed=seed,
    )

    class P(RoundProcess):
        def on_round_start(self):
            self.rounds.begin_round(("v", self.pid), label="r1")

    procs = [
        P(CornerCaseRoundTransport(oracle, scheme, scheme.signer(pid)))
        for pid in range(n)
    ]
    sim = Simulation(procs, seed=seed)
    oracle.bind(sim)
    sim.run(until=100.0)
    rep = check_directionality(sim.trace, range(n))
    ends = len(sim.trace.events("round_end"))
    ok = rep.is_unidirectional and ends == n
    return ArrowEvidence(
        ok,
        f"n=3, f=1, direct 0<->1 links withheld: rounds ended={ends}/{n}, "
        f"{rep.classify()}",
    )


def _arrow_uni_async(seed: int) -> ArrowEvidence:
    """Unidirectionality trivially implements zero-directional communication."""
    return ArrowEvidence(
        True, "by definition: any unidirectional round is a round"
    )


def _arrow_uni_not_sync(seed: int) -> ArrowEvidence:
    """Strong validity agreement separates synchrony from unidirectionality:
    solvable under lock-step rounds at n >= 2f+1 (Dolev–Strong per input),
    impossible over unidirectional rounds at n <= 3f (three-world demo)."""
    from ..agreement.strong_sync import build_strong_agreement_system
    from ..agreement.strong_worlds import run_strong_validity_impossibility
    from ..agreement.definitions import STRONG, check_agreement

    # positive half: synchrony solves strong validity at n = 3, f = 1
    sim, _procs = build_strong_agreement_system(3, 1, ["v", "v", "v"], seed=seed)
    sim.run(until=60.0)
    rep = check_agreement(sim.trace, STRONG, {p: "v" for p in range(3)},
                          range(3), all_correct=True)
    sync_ok = rep.ok and all(v == "v" for v in rep.commits.values())

    # negative half: the same problem defeats unidirectionality at n = 3f
    out = run_strong_validity_impossibility(seed=seed)
    return ArrowEvidence(
        sync_ok and out.impossibility_demonstrated,
        f"synchrony solves strong validity at n=3,f=1: {sync_ok}; "
        f"unidirectional candidate splits 0/1 in world 3 "
        f"(views match forced worlds: {out.p0_view_matches_w1}/"
        f"{out.p1_view_matches_w2})",
    )


ARROWS: tuple[Arrow, ...] = (
    Arrow("SYNC->UNI", SYNC, UNI, POSITIVE,
          "bidirectional rounds are unidirectional", "definitions", _arrow_sync_uni),
    Arrow("SM->UNI", SM_HW, UNI, POSITIVE,
          "write-then-scan over any ACL object gives unidirectional rounds",
          "§3.2 Claim", _arrow_sm_uni),
    Arrow("UNI->SRB", UNI, SRB, POSITIVE,
          "Algorithm 1 (L1/L2 proofs), n >= 2t+1", "§4.2 Claim 2", _arrow_uni_srb),
    Arrow("SRB->TRINC", SRB, LOGS, POSITIVE,
          "SRB implements the TrInc interface", "Theorem 1", _arrow_srb_trinc),
    Arrow("TRINC->A2M", LOGS, LOGS, POSITIVE,
          "TrInc implements the A2M interface", "§3.1 (Levin et al.)",
          _arrow_trinc_a2m),
    Arrow("LOGS->SRB", LOGS, SRB, POSITIVE,
          "trusted logs give SRB over asynchronous links", "§3.1", _arrow_logs_srb),
    Arrow("SRB-x->UNI", SRB, UNI, NEGATIVE,
          "SRB cannot implement unidirectionality (n > 2f, f > 1)",
          "§4.1 Claim 1", _arrow_srb_not_uni),
    Arrow("RB->UNI@f=1", SRB, UNI, CONDITIONAL,
          "reliable broadcast implements unidirectionality when f=1, n>=3",
          "Appendix B", _arrow_rb_uni_corner),
    Arrow("UNI->ASYNC", UNI, ASYNC, POSITIVE,
          "unidirectional rounds are rounds", "definitions", _arrow_uni_async),
    Arrow("UNI-x->SYNC", UNI, SYNC, NEGATIVE,
          "unidirectionality cannot reach synchrony: strong validity "
          "agreement separates them (n <= 3f)", "draft Claim clm:unidirSBA",
          _arrow_uni_not_sync),
)


@dataclass(slots=True)
class ClassificationResult:
    """Evidence for every arrow; the executable Figure 1."""

    evidence: dict[str, ArrowEvidence]

    @property
    def all_ok(self) -> bool:
        return all(e.ok for e in self.evidence.values())

    def failures(self) -> list[str]:
        return [a for a, e in self.evidence.items() if not e.ok]

    def assert_ok(self) -> None:
        if not self.all_ok:
            raise PropertyViolation(
                "figure-1", f"arrows failed verification: {self.failures()}"
            )


def run_classification(seed: int = 0,
                       arrow_ids: Optional[list[str]] = None) -> ClassificationResult:
    """Execute (a subset of) the Figure-1 arrows and collect evidence."""
    wanted = set(arrow_ids) if arrow_ids is not None else None
    evidence = {}
    for arrow in ARROWS:
        if wanted is not None and arrow.arrow_id not in wanted:
            continue
        evidence[arrow.arrow_id] = arrow.run(seed)
    return ClassificationResult(evidence=evidence)


def render_figure(result: ClassificationResult) -> str:
    """Text rendering of Figure 1 with per-arrow verification status."""
    lines = [
        "Figure 1 — Classifying trusted hardware via unidirectional communication",
        "(A -> B: A can implement B; x: provably cannot; ?: conditional)",
        "",
        "    synchrony (bidirectional)",
        "        |   ^",
        "        v   x (strong validity agreement separates)",
        "    UNIDIRECTIONALITY  <==>  shared-memory hardware (SWMR/sticky/PEATS)",
        "        |        ^",
        "        v        x (except f=1)",
        "    SRB / non-equivocation  <==>  trusted logs (TrInc/A2M)",
        "        |",
        "        v",
        "    asynchrony (zero-directional)",
        "",
        f"{'arrow':14} {'kind':18} {'ok':3}  claim / evidence",
        "-" * 100,
    ]
    for arrow in ARROWS:
        ev = result.evidence.get(arrow.arrow_id)
        if ev is None:
            continue
        mark = "yes" if ev.ok else "NO"
        lines.append(f"{arrow.arrow_id:14} {arrow.kind:18} {mark:3}  {arrow.claim}")
        lines.append(f"{'':14} {'':18} {'':3}  [{arrow.paper_ref}] {ev.details}")
    return "\n".join(lines)
