"""Algorithm 1: Sequenced Reliable Broadcast from unidirectional rounds.

The paper's §4.2 construction (adapted from Aguilera et al.'s SWMR
algorithm by replacing writes with round-sends and reads with receives),
with ``n >= 2t+1``:

- the **sender** signs ``(k, m)`` and posts it to all;
- on receiving the sender's value for the next expected ``k``, a process
  *copies* it — signs it and sends it in the unidirectional round labeled
  ``("copy", sender, k)``;
- when that round has finished **and** it has ``t+1`` signed copies of its
  adopted value **and** it has seen no conflicting sender-signed value, it
  compiles an **L1 proof** (the t+1 copier signatures), signs it, and sends
  it in round ``("l1", sender, k)``;
- when that round has finished and it holds ``t+1`` valid L1 proofs from
  distinct builders, it compiles an **L2 proof** and posts it;
- a process delivers ``(k, m)`` upon holding a valid L2 proof for its next
  expected sequence number, forwarding the proof so everyone else
  eventually delivers too (relay).

Why unidirectionality is exactly what's needed (paper's key argument): two
correct processes that copied *conflicting* values both send in the same
``("copy", sender, k)`` round; at least one receives the other's copy —
which embeds a valid sender signature on the other value — **before its own
round ends**, and therefore refuses to compile an L1 proof. Hence correct
processes never build contradicting L1 proofs; since an L2 proof needs
``t+1`` L1 *builder* signatures and at most ``t`` builders are Byzantine,
no two L2 proofs for different values can exist, for any sequence number.

Message shapes (round payloads)::

    ("VAL",  k, m, sig_s)                              # post by sender
    ("COPY", k, m, sig_s, sig_copier)                  # round ("copy", s, k)
    ("L1",   k, m, sig_s, copies, sig_builder)         # round ("l1", s, k)
        copies = ((j, sig_j), ...) with >= t+1 distinct j
    ("L2",   k, m, sig_s, l1items)                     # post
        l1items = ((builder, copies, sig_builder), ...) with >= t+1 builders

Signature domains are tagged and bind the sender pid and seq, so proofs
cannot be replayed across instances, sequence numbers, or values.
"""

from __future__ import annotations

from typing import Any, Optional

from ..crypto.serialize import caching_enabled, canonical_bytes, type_fingerprint
from ..crypto.signatures import Signature, SignatureScheme, Signer
from ..errors import ConfigurationError, SignatureError
from ..sim.adversary import Adversary, ReliableAsynchronous
from ..sim.runner import Simulation
from ..types import ProcessId, SeqNum
from .rounds import (
    Label,
    MessagePassingRoundTransport,
    POST,
    RoundProcess,
    RoundTransport,
    SharedMemoryRoundTransport,
)

WAIT_SENDER = "WaitForSender"
WAIT_L1 = "WaitForL1Proof"
WAIT_L2 = "WaitForL2Proof"

# -- signature domains -------------------------------------------------------------


def val_domain(sender: ProcessId, k: SeqNum, m: Any) -> tuple:
    return ("SRB-VAL", sender, k, m)


def copy_domain(sender: ProcessId, k: SeqNum, m: Any) -> tuple:
    return ("SRB-COPY", sender, k, m)


def l1_domain(sender: ProcessId, k: SeqNum, m: Any) -> tuple:
    return ("SRB-L1", sender, k, m)


# -- proof validation (pure functions, reused by checkers and benches) ---------------
#
# Every relay hop and every receiver re-validates the same proof objects:
# an L2 proof for (k, m) embeds t+1 L1 proofs of t+1 copier signatures
# each, and the proof tuple travels *by reference* through the simulated
# network — an O(n * t^2) pile of redundant HMACs per broadcast without
# memoization. The validators below memoize their verdicts in the scheme's
# ``memo`` table keyed by the proof's canonical serialization *and* its
# type fingerprint: the serialization alone erases distinctions the
# validators isinstance-check (a list-shaped copy of a proof serializes
# identically to the genuine tuple but must be rejected, and must not
# share — or poison — the genuine proof's cache entry). With both in the
# key, a structurally identical proof is fully validated once per scheme
# and then answered from the cache, and verdicts are bit-identical to the
# uncached path: validation is a deterministic pure function of
# (content, exact types), and anything that fails to serialize (Byzantine
# garbage) falls through to the uncached validator.

_MEMO_MISS = object()


def _proof_memo_key(scheme: SignatureScheme, kind: str, *parts: Any):
    """Content- and type-committed memo key, or None when uncacheable."""
    if not caching_enabled():
        return None
    try:
        return (kind, canonical_bytes(parts), type_fingerprint(parts))
    except SignatureError:
        return None


def validate_copies(
    scheme: SignatureScheme,
    sender: ProcessId,
    k: SeqNum,
    m: Any,
    copies: Any,
    t: int,
) -> bool:
    """>= t+1 distinct copiers, each with a valid COPY signature on (k, m)."""
    if not isinstance(copies, tuple):
        return False
    seen: set[ProcessId] = set()
    domain = copy_domain(sender, k, m)
    for item in copies:
        if not (isinstance(item, tuple) and len(item) == 2):
            continue
        j, sig = item
        if not isinstance(sig, Signature) or sig.signer != j or j in seen:
            continue
        if scheme.verify(domain, sig):
            seen.add(j)
    return len(seen) >= t + 1


def _validate_l1_item_uncached(
    scheme: SignatureScheme,
    sender: ProcessId,
    k: SeqNum,
    m: Any,
    item: Any,
    t: int,
) -> Optional[ProcessId]:
    if not (isinstance(item, tuple) and len(item) == 3):
        return None
    builder, copies, sig = item
    if not isinstance(sig, Signature) or sig.signer != builder:
        return None
    if not scheme.verify(l1_domain(sender, k, m), sig):
        return None
    if not validate_copies(scheme, sender, k, m, copies, t):
        return None
    return builder


def validate_l1_item(
    scheme: SignatureScheme,
    sender: ProcessId,
    k: SeqNum,
    m: Any,
    item: Any,
    t: int,
) -> Optional[ProcessId]:
    """Validate one L1 proof ``(builder, copies, sig_builder)``; returns builder.

    Memoized per scheme on the serialized ``(sender, k, m, item, t)``
    content — relays and L2 assembly re-validate each L1 proof for free.
    """
    key = _proof_memo_key(scheme, "srb-l1", sender, k, m, item, t)
    if key is None:
        return _validate_l1_item_uncached(scheme, sender, k, m, item, t)
    verdict = scheme.memo.get(key, _MEMO_MISS)
    if verdict is _MEMO_MISS:
        verdict = _validate_l1_item_uncached(scheme, sender, k, m, item, t)
        scheme.memo.put(key, verdict)
    return verdict


def _validate_l2_uncached(
    scheme: SignatureScheme,
    sender: ProcessId,
    payload: Any,
    t: int,
) -> Optional[tuple[SeqNum, Any]]:
    if not (isinstance(payload, tuple) and len(payload) == 5 and payload[0] == "L2"):
        return None
    _, k, m, sig_s, l1items = payload
    if not isinstance(k, int) or k < 1:
        return None
    if not isinstance(sig_s, Signature) or sig_s.signer != sender:
        return None
    if not scheme.verify(val_domain(sender, k, m), sig_s):
        return None
    if not isinstance(l1items, tuple):
        return None
    builders: set[ProcessId] = set()
    for item in l1items:
        b = validate_l1_item(scheme, sender, k, m, item, t)
        if b is not None:
            builders.add(b)
    if len(builders) < t + 1:
        return None
    return (k, m)


def validate_l2(
    scheme: SignatureScheme,
    sender: ProcessId,
    payload: Any,
    t: int,
) -> Optional[tuple[SeqNum, Any]]:
    """Validate an L2 payload; returns ``(k, m)`` when sound, else ``None``.

    Memoized per scheme on the serialized payload: the L2 proof is posted
    once and then re-checked by every receiver and forwarded by every
    relay — with the memo the full pyramid is validated once per scheme.
    """
    key = _proof_memo_key(scheme, "srb-l2", sender, payload, t)
    if key is None:
        return _validate_l2_uncached(scheme, sender, payload, t)
    verdict = scheme.memo.get(key, _MEMO_MISS)
    if verdict is _MEMO_MISS:
        verdict = _validate_l2_uncached(scheme, sender, payload, t)
        scheme.memo.put(key, verdict)
    return verdict


class SRBFromUnidirectional(RoundProcess):
    """One process of the Algorithm-1 SRB system.

    Construct one per process with the *same* ``sender`` and ``t``; call
    :meth:`broadcast` on the sender's instance. Deliveries arrive at
    :meth:`on_deliver` and in the trace as ``bcast_deliver`` events.
    """

    def __init__(
        self,
        transport: RoundTransport,
        sender: ProcessId,
        t: int,
        scheme: SignatureScheme,
        signer: Signer,
    ) -> None:
        super().__init__(transport)
        if t < 0:
            raise ConfigurationError(f"t must be non-negative, got {t}")
        self.sender = sender
        self.t = t
        self.scheme = scheme
        self.signer = signer
        # sender side
        self.my_seq: SeqNum = 0
        # receiver side
        self.next_seq: SeqNum = 1
        self.state = WAIT_SENDER
        self._vals: dict[SeqNum, tuple[Any, Signature]] = {}
        self._conflict: set[SeqNum] = set()
        self._copies: dict[SeqNum, dict[ProcessId, Signature]] = {}
        self._l1s: dict[SeqNum, dict[ProcessId, tuple]] = {}
        self._l2s: dict[SeqNum, tuple] = {}
        self._copied: set[SeqNum] = set()
        self._sent_l1: set[SeqNum] = set()
        self._sent_l2: set[SeqNum] = set()
        self._forwarded: set[SeqNum] = set()
        self._copy_round_done: set[SeqNum] = set()
        self._l1_round_done: set[SeqNum] = set()
        # babble hardening: structurally invalid round payloads vs.
        # well-formed artifacts whose proofs fail validation — both
        # rejected, counted separately for the chaos harness
        self.malformed_rejects = 0
        self.proof_rejects = 0

    # -- public API -------------------------------------------------------------

    def broadcast(self, message: Any) -> SeqNum:
        """(Sender only.) Broadcast ``message`` with the next sequence number."""
        if self.pid != self.sender:
            raise ConfigurationError(
                f"process {self.pid} is not the sender ({self.sender})"
            )
        self.my_seq += 1
        k = self.my_seq
        sig = self.signer.sign(val_domain(self.sender, k, message))
        self.ctx.record("bcast", seq=k, value=message)
        self.rounds.post(("VAL", k, message, sig))
        return k

    def on_deliver(self, sender: ProcessId, seq: SeqNum, message: Any) -> None:
        """Application hook; override in subclasses or observe the trace."""

    # -- message ingestion -----------------------------------------------------------

    def on_round_message(self, label: Label, src: ProcessId, payload: Any) -> None:
        if not (isinstance(payload, tuple) and payload and isinstance(payload[0], str)):
            self.malformed_rejects += 1
            return
        kind = payload[0]
        if kind == "VAL" and len(payload) == 4:
            _, k, m, sig_s = payload
            if not self._note_val(k, m, sig_s):
                self.proof_rejects += 1
        elif kind == "COPY" and len(payload) == 5:
            _, k, m, sig_s, sig_copier = payload
            if not self._note_val(k, m, sig_s):
                self.proof_rejects += 1
                return
            if (
                isinstance(sig_copier, Signature)
                and self.scheme.verify(copy_domain(self.sender, k, m), sig_copier)
            ):
                adopted = self._vals.get(k)
                if adopted is not None and adopted[0] == m:
                    self._copies.setdefault(k, {})[sig_copier.signer] = sig_copier
            else:
                self.proof_rejects += 1
        elif kind == "L1" and len(payload) == 6:
            _, k, m, sig_s, copies, sig_builder = payload
            if not self._note_val(k, m, sig_s):
                self.proof_rejects += 1
                return
            adopted = self._vals.get(k)
            if adopted is None or adopted[0] != m:
                return
            builder = validate_l1_item(
                self.scheme, self.sender, k, m, (
                    sig_builder.signer if isinstance(sig_builder, Signature) else -1,
                    copies,
                    sig_builder,
                ), self.t,
            )
            if builder is not None:
                self._l1s.setdefault(k, {})[builder] = (builder, copies, sig_builder)
            else:
                self.proof_rejects += 1
        elif kind == "L2" and len(payload) == 5:
            checked = validate_l2(self.scheme, self.sender, payload, self.t)
            if checked is not None:
                k, _m = checked
                self._l2s.setdefault(k, payload)
            else:
                self.proof_rejects += 1
        else:
            # unknown kind or wrong arity: Byzantine babble
            self.malformed_rejects += 1
        self._maybe_deliver()
        self._advance()

    def _note_val(self, k: Any, m: Any, sig_s: Any) -> bool:
        """Register a sender-signed value; returns True when the signature is valid.

        Also performs the algorithm's conflict detection: a second *distinct*
        validly-signed value for the same ``k`` poisons that sequence number
        (this process will never compile an L1 proof for it).
        """
        if not isinstance(k, int) or k < 1:
            return False
        if not isinstance(sig_s, Signature) or sig_s.signer != self.sender:
            return False
        if not self.scheme.verify(val_domain(self.sender, k, m), sig_s):
            return False
        adopted = self._vals.get(k)
        if adopted is None:
            self._vals[k] = (m, sig_s)
        elif adopted[0] != m:
            self._conflict.add(k)
        return True

    # -- round completion -------------------------------------------------------------

    def on_round_complete(self, label: Label) -> None:
        if isinstance(label, tuple) and len(label) == 3:
            phase, sender, k = label
            if sender == self.sender and isinstance(k, int):
                if phase == "copy":
                    self._copy_round_done.add(k)
                elif phase == "l1":
                    self._l1_round_done.add(k)
        self._maybe_deliver()
        self._advance()

    # -- the state machine -------------------------------------------------------------

    def _advance(self) -> None:
        """Drive participation in the pipeline for the current ``next_seq``."""
        progressed = True
        while progressed:
            progressed = False
            k = self.next_seq
            if self.state == WAIT_SENDER:
                adopted = self._vals.get(k)
                if adopted is not None and k not in self._copied:
                    m, sig_s = adopted
                    self._copied.add(k)
                    my_sig = self.signer.sign(copy_domain(self.sender, k, m))
                    self.rounds.begin_round_queued(
                        ("COPY", k, m, sig_s, my_sig), ("copy", self.sender, k)
                    )
                    self.state = WAIT_L1
                    progressed = True
            elif self.state == WAIT_L1:
                if (
                    k in self._copy_round_done
                    and k not in self._conflict
                    and len(self._copies.get(k, {})) >= self.t + 1
                    and k not in self._sent_l1
                ):
                    m, sig_s = self._vals[k]
                    copies = tuple(sorted(self._copies[k].items()))
                    my_sig = self.signer.sign(l1_domain(self.sender, k, m))
                    self._sent_l1.add(k)
                    self.rounds.begin_round_queued(
                        ("L1", k, m, sig_s, copies, my_sig), ("l1", self.sender, k)
                    )
                    self.state = WAIT_L2
                    progressed = True
            elif self.state == WAIT_L2:
                if (
                    k in self._l1_round_done
                    and len(self._l1s.get(k, {})) >= self.t + 1
                    and k not in self._sent_l2
                ):
                    m, sig_s = self._vals[k]
                    l1items = tuple(
                        self._l1s[k][b] for b in sorted(self._l1s[k])
                    )[: self.t + 1]
                    l2 = ("L2", k, m, sig_s, tuple(l1items))
                    self._sent_l2.add(k)
                    self._l2s.setdefault(k, l2)
                    self.rounds.post(l2)
                    self._forwarded.add(k)
                    self._maybe_deliver()
                    progressed = True

    def _maybe_deliver(self) -> None:
        """The paper's ``maybeDeliver``: drain valid L2 proofs in order."""
        while True:
            k = self.next_seq
            proof = self._l2s.get(k)
            if proof is None:
                return
            checked = validate_l2(self.scheme, self.sender, proof, self.t)
            if checked is None:  # stored proofs were validated; belt and braces
                del self._l2s[k]
                return
            _, m = checked
            if k not in self._forwarded:
                self._forwarded.add(k)
                self.rounds.post(proof)
            self.ctx.record("bcast_deliver", sender=self.sender, seq=k, value=m)
            self.on_deliver(self.sender, k, m)
            self.next_seq = k + 1
            self.state = WAIT_SENDER

    # -- counters ---------------------------------------------------------------

    def consensus_stats(self) -> dict[str, Any]:
        """Counters for chaos-harness aggregation (numeric values are
        summed key-wise across processes)."""
        return {
            "delivered": self.next_seq - 1,
            "conflicts_detected": len(self._conflict),
            "malformed_rejects": self.malformed_rejects,
            "proof_rejects": self.proof_rejects,
        }


# ---------------------------------------------------------------------------
# Convenience builders
# ---------------------------------------------------------------------------


def build_sm_srb_system(
    n: int,
    t: int,
    sender: ProcessId = 0,
    seed: int = 0,
    adversary: Adversary | None = None,
    process_factory=None,
) -> tuple[Simulation, list[SRBFromUnidirectional], SignatureScheme]:
    """An Algorithm-1 SRB system over shared-memory unidirectional rounds.

    Returns ``(simulation, processes, scheme)`` ready to run; the SWMR-style
    append-only logs are registered on the simulation. ``process_factory``
    (pid, transport, scheme, signer) → Process lets tests substitute
    Byzantine variants for chosen pids.
    """
    if n < 2 * t + 1:
        raise ConfigurationError(
            f"Algorithm 1 requires n >= 2t+1 (got n={n}, t={t})"
        )
    if not (0 <= sender < n):
        raise ConfigurationError(f"sender {sender} out of range (n={n})")
    scheme = SignatureScheme(n, seed=seed)
    processes: list[Any] = []
    for pid in range(n):
        transport = SharedMemoryRoundTransport()
        signer = scheme.signer(pid)
        if process_factory is not None:
            proc = process_factory(pid, transport, scheme, signer)
        else:
            proc = SRBFromUnidirectional(transport, sender, t, scheme, signer)
        processes.append(proc)
    adversary = adversary if adversary is not None else ReliableAsynchronous(0.01, 1.0)
    sim = Simulation(processes, adversary, seed=seed)
    for log in SharedMemoryRoundTransport.build_logs(n):
        sim.memory.register(log)
    return sim, processes, scheme


def build_mp_srb_system(
    n: int,
    t: int,
    sender: ProcessId = 0,
    seed: int = 0,
    adversary: Adversary | None = None,
    reliable: bool | dict = False,
    process_factory=None,
    trace_retention: int | None = None,
    observers: tuple = (),
    scheduler_factory=None,
) -> tuple[Simulation, list[SRBFromUnidirectional], SignatureScheme]:
    """An Algorithm-1 SRB system over message-passing rounds.

    Message-passing rounds are only zero-directional under full asynchrony
    (see :mod:`repro.core.rounds`), so this deployment does not carry the
    construction's Byzantine-sender guarantee — it is the crash/loss-fault
    configuration the chaos harness exercises. ``reliable`` wraps every
    process in a :class:`~repro.faults.channel.ReliableProcess` (pass a
    dict to forward ReliableChannel options) so the protocol stays live on
    lossy links; the returned process list always holds the *inner* SRB
    instances.
    """
    if n < 2 * t + 1:
        raise ConfigurationError(
            f"Algorithm 1 requires n >= 2t+1 (got n={n}, t={t})"
        )
    if not (0 <= sender < n):
        raise ConfigurationError(f"sender {sender} out of range (n={n})")
    scheme = SignatureScheme(n, seed=seed)
    processes: list[Any] = []
    for pid in range(n):
        transport = MessagePassingRoundTransport(f=t)
        signer = scheme.signer(pid)
        if process_factory is not None:
            proc = process_factory(pid, transport, scheme, signer)
        else:
            proc = SRBFromUnidirectional(transport, sender, t, scheme, signer)
        processes.append(proc)
    hosted: list[Any] = processes
    if reliable:
        from ..faults.channel import wrap_reliable  # lazy: faults builds on sim

        kwargs = reliable if isinstance(reliable, dict) else {}
        hosted = wrap_reliable(processes, **kwargs)
    adversary = adversary if adversary is not None else ReliableAsynchronous(0.01, 1.0)
    sim = Simulation(hosted, adversary, seed=seed,
                     trace_retention=trace_retention, observers=observers,
                     scheduler_factory=scheduler_factory)
    return sim, processes, scheme
