"""Executable separation: SRB cannot implement unidirectionality (§4.1).

An impossibility theorem cannot be *proven* by running code, but its proof
is a recipe for three concrete executions, and those we can run and audit.
The paper's argument (n > 2f, f > 1; sets Q of size n-f, C1 = {p}, C2 of
size f-1):

- **Scenario 1** — p ∈ C1 crashed from the start; C2→Q messages arbitrarily
  delayed; everything else immediate. Q and C2 must finish the round
  (from their view, C1 ∪ C2 could be the ≤ f faulty set / they hear all
  correct processes). A C2 process finishes *without hearing C1*.
- **Scenario 2** — mirror image: C2 crashed, C1→Q delayed. C1 finishes
  without hearing C2.
- **Scenario 3** — nobody faulty; everything out of C1 and out of C2 to
  the other sets delayed. Indistinguishable to Q from both scenarios, to
  C1 from Scenario 2, to C2 from Scenario 1 — so C1 and C2 both finish the
  round having heard nothing from each other: **unidirectionality fails**.

:func:`run_srb_separation` executes all three against a *candidate*
round-over-SRB protocol and verifies (a) the required round completions,
(b) the pairwise view-indistinguishabilities, (c) the unidirectionality
violation in Scenario 3. The default candidate waits for round messages
from ``n - f`` distinct SRB streams — the most a fault-tolerant protocol
can wait for without risking waiting on the faulty set forever; the runner
accepts any :class:`RoundProcess`-compatible candidate factory so stronger
heuristics (e.g. two-phase forwarding, which rescues only ``f = 1``) can be
plugged in and shown to fail too.

:func:`run_srb_separation_exhaustive` strengthens the quantifier: instead
of one seeded delivery order per scenario, it model-checks every order of
the deliveries *to the corner sets* C1 ∪ C2 (the processes the argument is
about; deliveries to Q are deterministic glue under the focus bound) and
asserts the proof obligations at every quiescent leaf, with view-**set**
equality replacing per-seed view equality across scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..errors import ConfigurationError, PropertyViolation
from ..sim.partition import srb_separation_sets
from ..sim.process import Process
from ..sim.runner import Simulation
from ..types import ProcessId, ProcessSet, Time
from .directionality import DirectionalityReport, check_directionality
from .srb_oracle import SRBOracle, SRBSenderHandle

IMMEDIATE = 0.05
"""Delay used for 'received immediately' links (constant, for determinism)."""


class CandidateSRBRound(Process):
    """A round implemented over SRB: broadcast, wait for n-f streams, finish.

    Records the standard round trace events so
    :func:`~repro.core.directionality.check_directionality` audits it like
    any transport. ``on_finished`` hook marks "starts the next round".
    """

    LABEL = 1  # single common round

    def __init__(self, oracle: SRBOracle, f: int) -> None:
        super().__init__()
        self.oracle = oracle
        self.f = f
        self._heard: set[ProcessId] = set()
        self._handle: Optional[SRBSenderHandle] = None
        self.finished = False

    def on_start(self) -> None:
        self.oracle.subscribe(self.pid, self._on_deliver)
        self._handle = self.oracle.sender_handle(self.pid)
        self.ctx.record("round_begin", round=self.LABEL)
        self.ctx.record("round_sent", round=self.LABEL, payload=("hello", self.pid))
        self._handle.broadcast(("R", self.LABEL, ("hello", self.pid)))

    def _on_deliver(self, src: ProcessId, seq: int, value: Any) -> None:
        if not (isinstance(value, tuple) and len(value) == 3 and value[0] == "R"):
            return
        _, label, payload = value
        if label != self.LABEL:
            return
        self.ctx.record("round_recv", round=label, src=src, payload=payload)
        self._heard.add(src)
        if not self.finished and len(self._heard) >= self.ctx.n - self.f:
            self.finished = True
            self.ctx.record("round_end", round=label)
            self.ctx.record("custom", event="next_round_started")


CandidateFactory = Callable[[SRBOracle, int], Process]


@dataclass(slots=True)
class ScenarioResult:
    """One scenario's simulation plus which processes finished the round."""

    name: str
    sim: Simulation
    finished: frozenset[ProcessId]

    def view(self, pid: ProcessId) -> tuple:
        return self.sim.trace.local_view(pid)


@dataclass(slots=True)
class SeparationOutcome:
    """Everything :func:`run_srb_separation` verified, for reporting."""

    n: int
    f: int
    sets: dict[str, ProcessSet]
    scenario1: ScenarioResult
    scenario2: ScenarioResult
    scenario3: ScenarioResult
    directionality3: DirectionalityReport
    indistinguishable_q: bool
    indistinguishable_c1: bool
    indistinguishable_c2: bool

    @property
    def separation_holds(self) -> bool:
        return (
            not self.directionality3.is_unidirectional
            and self.indistinguishable_q
            and self.indistinguishable_c1
            and self.indistinguishable_c2
        )

    def assert_holds(self) -> None:
        if not self.separation_holds:
            problems = []
            if self.directionality3.is_unidirectional:
                problems.append("no unidirectionality violation in Scenario 3")
            if not self.indistinguishable_q:
                problems.append("Q distinguishes the scenarios")
            if not self.indistinguishable_c1:
                problems.append("C1 distinguishes Scenario 3 from Scenario 2")
            if not self.indistinguishable_c2:
                problems.append("C2 distinguishes Scenario 3 from Scenario 1")
            raise PropertyViolation("srb-uni-separation", "; ".join(problems))


def _policy_for(
    scenario: int, sets: dict[str, ProcessSet]
) -> Callable[[ProcessId, ProcessId, int, Time], Optional[float]]:
    q, c1, c2 = sets["Q"], sets["C1"], sets["C2"]

    def in_(ps: ProcessSet, pid: ProcessId) -> bool:
        return pid in ps

    def policy(s: ProcessId, r: ProcessId, seq: int, now: Time) -> Optional[float]:
        if scenario == 1:
            # C1 crashed (sends nothing anyway); C2 -> Q arbitrarily delayed
            if in_(c2, s) and in_(q, r):
                return None
        elif scenario == 2:
            # C2 silent; C1 -> Q arbitrarily delayed
            if in_(c1, s) and in_(q, r):
                return None
        elif scenario == 3:
            # everything out of C1 / C2 to *other* sets arbitrarily delayed
            if in_(c1, s) and not in_(c1, r):
                return None
            if in_(c2, s) and not in_(c2, r):
                return None
        else:  # pragma: no cover
            raise ConfigurationError(f"unknown scenario {scenario}")
        return IMMEDIATE

    return policy


def _run_scenario(
    scenario: int,
    n: int,
    f: int,
    sets: dict[str, ProcessSet],
    factory: CandidateFactory,
    seed: int,
    horizon: float,
) -> ScenarioResult:
    oracle = SRBOracle(policy=_policy_for(scenario, sets), seed=seed)
    processes = [factory(oracle, f) for _ in range(n)]
    sim = Simulation(processes, seed=seed)
    oracle.bind(sim)
    if scenario == 1:
        for pid in sets["C1"]:
            sim.declare_byzantine(pid)
            sim.crash(pid)  # crashes at the very beginning, sends nothing
    elif scenario == 2:
        for pid in sets["C2"]:
            sim.declare_byzantine(pid)
            sim.crash(pid)
    sim.run(until=horizon)
    finished = frozenset(
        ev.pid
        for ev in sim.trace.events(
            "custom", predicate=lambda e: e.field("event") == "next_round_started"
        )
    )
    return ScenarioResult(name=f"scenario{scenario}", sim=sim, finished=finished)


def run_srb_separation(
    n: int,
    f: int,
    factory: CandidateFactory = CandidateSRBRound,
    seed: int = 0,
    horizon: float = 200.0,
) -> SeparationOutcome:
    """Execute the three scenarios of §4.1 against a candidate protocol.

    Requires ``n > 2f`` and ``f > 1`` (the regime of the claim). Raises
    :class:`~repro.errors.PropertyViolation` via
    :meth:`SeparationOutcome.assert_holds` when the candidate *survives*
    (e.g. run it with f=1 and a corner-case-style candidate to see the
    separation fail to apply — see tests).
    """
    sets = srb_separation_sets(n, f)
    s1 = _run_scenario(1, n, f, sets, factory, seed, horizon)
    s2 = _run_scenario(2, n, f, sets, factory, seed, horizon)
    s3 = _run_scenario(3, n, f, sets, factory, seed, horizon)

    q, c1, c2 = sets["Q"], sets["C1"], sets["C2"]

    # The proof's obligations on scenarios 1 and 2: the "surviving" sides
    # must have started their next round.
    for pid in q:
        if pid not in s1.finished or pid not in s2.finished or pid not in s3.finished:
            raise PropertyViolation(
                "srb-uni-separation",
                f"candidate deadlocked: Q member {pid} did not finish in some scenario "
                "(a round protocol must tolerate f absent processes)",
            )

    # Indistinguishability checks (content+order of each process's view).
    ind_q = all(
        s3.view(pid) == s1.view(pid) == s2.view(pid) for pid in q
    )
    ind_c1 = all(s3.view(pid) == s2.view(pid) for pid in c1)
    ind_c2 = all(s3.view(pid) == s1.view(pid) for pid in c2)

    report3 = check_directionality(s3.sim.trace, correct=range(n))

    return SeparationOutcome(
        n=n,
        f=f,
        sets=sets,
        scenario1=s1,
        scenario2=s2,
        scenario3=s3,
        directionality3=report3,
        indistinguishable_q=ind_q,
        indistinguishable_c1=ind_c1,
        indistinguishable_c2=ind_c2,
    )


# ---------------------------------------------------------------------------
# Exhaustive (model-checked) separation
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class ExhaustiveSeparationOutcome:
    """The separation verified over *every* schedule at the configured bound.

    ``explorations`` maps ``scenario1``/``scenario2``/``scenario3`` to
    their :class:`~repro.mc.explorer.ExplorationResult`; ``problems``
    collects every failed proof obligation (capped per category), each
    tagged with the replayable schedule id of the offending leaf.
    """

    n: int
    f: int
    sets: dict[str, ProcessSet]
    explorations: dict[str, Any]
    problems: list[str]

    @property
    def schedules(self) -> int:
        return sum(r.schedules for r in self.explorations.values())

    @property
    def complete(self) -> bool:
        return all(r.complete for r in self.explorations.values())

    @property
    def separation_holds(self) -> bool:
        return not self.problems

    def assert_holds(self) -> None:
        if self.problems:
            raise PropertyViolation(
                "srb-uni-separation-exhaustive", "; ".join(self.problems)
            )


def _scenario_factory(
    scenario: int,
    n: int,
    f: int,
    sets: dict[str, ProcessSet],
    factory: CandidateFactory,
    seed: int,
) -> Callable[[], Simulation]:
    def build() -> Simulation:
        oracle = SRBOracle(policy=_policy_for(scenario, sets), seed=seed)
        processes = [factory(oracle, f) for _ in range(n)]
        sim = Simulation(processes, seed=seed)
        oracle.bind(sim)
        crashed = sets["C1"] if scenario == 1 else (
            sets["C2"] if scenario == 2 else ()
        )
        for pid in crashed:
            sim.declare_byzantine(pid)
            sim.crash(pid)
        return sim

    return build


def run_srb_separation_exhaustive(
    n: int,
    f: int,
    factory: CandidateFactory = CandidateSRBRound,
    seed: int = 0,
    *,
    dpor: bool = True,
    max_steps: Optional[int] = None,
    max_schedules: Optional[int] = None,
    max_reported: int = 4,
) -> ExhaustiveSeparationOutcome:
    """§4.1 with the schedule quantifier made real: check *all* orders.

    Each scenario is explored with focus ``choice_targets = C1 ∪ C2``:
    every interleaving of the deliveries to the corner processes branches,
    while deliveries inside Q — which the argument never reorders — drain
    canonically. At every quiescent leaf the proof obligations hold or the
    leaf's schedule id is recorded as a problem:

    - the scenario's surviving processes all finished the round;
    - in Scenario 3, directionality is violated (C1 and C2 both finished
      without hearing each other);

    and across scenarios, the *sets* of per-process local views must
    coincide exactly as the indistinguishability argument demands — Q
    cannot tell any scenario apart, C1 cannot tell 3 from 2, C2 cannot
    tell 3 from 1. ``max_steps`` / ``max_schedules`` bound quick runs
    (``complete`` reports whether the bound cut anything off).
    """
    from ..mc.explorer import explore
    from ..mc.schedule import schedule_id as _sid

    sets = srb_separation_sets(n, f)
    q, c1, c2 = sets["Q"], sets["C1"], sets["C2"]
    corners = tuple(sorted(set(c1) | set(c2)))
    required = {
        1: frozenset(q) | frozenset(c2),
        2: frozenset(q) | frozenset(c1),
        3: frozenset(range(n)),
    }
    views: dict[int, dict[ProcessId, set]] = {
        s: {p: set() for p in range(n)} for s in (1, 2, 3)
    }
    explorations: dict[str, Any] = {}
    problems: list[str] = []

    for scenario in (1, 2, 3):
        name = f"scenario{scenario}"
        reported = [0, 0]  # [unfinished, directionality] caps per scenario

        def on_leaf(state, schedule, _s=scenario, _name=name, _rep=reported):
            sim = state
            finished = frozenset(
                ev.pid
                for ev in sim.trace.events(
                    "custom",
                    predicate=lambda e: e.field("event") == "next_round_started",
                )
            )
            missing = required[_s] - finished
            if missing and _rep[0] < max_reported:
                _rep[0] += 1
                problems.append(
                    f"{_name}: processes {sorted(missing)} never finished "
                    f"in schedule {_sid(schedule)}"
                )
            for pid in range(n):
                views[_s][pid].add(sim.trace.local_view(pid))
            if _s == 3:
                report = check_directionality(sim.trace, correct=range(n))
                if report.is_unidirectional and _rep[1] < max_reported:
                    _rep[1] += 1
                    problems.append(
                        "scenario3: no unidirectionality violation in "
                        f"schedule {_sid(schedule)}"
                    )

        explorations[name] = explore(
            _scenario_factory(scenario, n, f, sets, factory, seed),
            on_leaf=on_leaf,
            dpor=dpor,
            choice_targets=corners,
            max_steps=max_steps,
            max_schedules=max_schedules,
        )

    if all(r.complete for r in explorations.values()):
        # view-SET equality is a statement about the whole schedule space;
        # capped quick runs cover different prefixes per scenario, where
        # comparing the partial sets would only manufacture noise
        v1, v2, v3 = views[1], views[2], views[3]
        if not all(v3[p] == v1[p] == v2[p] for p in q):
            problems.append("Q view sets distinguish the scenarios")
        if not all(v3[p] == v2[p] for p in c1):
            problems.append(
                "C1 view sets distinguish Scenario 3 from Scenario 2"
            )
        if not all(v3[p] == v1[p] for p in c2):
            problems.append(
                "C2 view sets distinguish Scenario 3 from Scenario 1"
            )

    return ExhaustiveSeparationOutcome(
        n=n, f=f, sets=sets, explorations=explorations, problems=problems
    )
