"""Theorem 1: Sequenced Reliable Broadcast implements the TrInc interface.

The paper's construction, verbatim in structure::

    attestation Attest(seq-num c, message m):
        Broadcast(k, (c, m))        # k = this stream's broadcast seq number
        return (k, (c, m))

    bool CheckAttestation(a, q):
        upon delivering (k, (c, m)) from q:
            if C[q] < c: store (k, (c, m)); C[q] = c
        return (a is stored for q)

Why it satisfies TrInc's contract:

- *completeness*: a correctly produced attestation is eventually stored and
  validated everywhere (SRB properties 1 & 2 — every correct process
  delivers the broadcast, and a correct attester uses strictly increasing
  ``c``, so the ``C[q] < c`` check passes);
- *soundness*: an attestation validates only if it was delivered from
  ``q``'s stream (SRB integrity — ``q`` really broadcast it), and at most
  one attestation per ``(q, c)`` can ever validate anywhere: deliveries
  from ``q`` arrive in the same sequence order at every process (SRB
  properties 2 & 3), so the first broadcast carrying counter value ``c``
  is stored by everyone and every later one fails ``C[q] < c`` — exactly
  TrInc's "a Trinket does not produce a new valid attestation for a
  sequence number that has already been used".

The module exposes the same duck-typed surface as
:class:`repro.hardware.trinc.Trinket` / ``TrincAuthority.check`` so tests
can run one suite against both the hardware and the SRB-backed
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..errors import AttestationError
from ..types import ProcessId, SeqNum
from .srb_oracle import SRBOracle, SRBSenderHandle


@dataclass(frozen=True, slots=True)
class SRBAttestation:
    """The (k, (c, m)) tuple of the paper, with the attester id for checking."""

    attester: ProcessId
    broadcast_seq: SeqNum  # k — position in the attester's SRB stream
    counter: SeqNum        # c — the TrInc sequence number being claimed
    message: Any           # m

    def __repr__(self) -> str:
        return (
            f"SRBAttestation(T{self.attester}: k={self.broadcast_seq}, "
            f"c={self.counter}, m={self.message!r})"
        )


class SRBTrinket:
    """The per-process attester side (a Trinket implemented over SRB).

    A *correct* host calls :meth:`attest`, which enforces the monotone
    counter locally and broadcasts; a Byzantine host can bypass the local
    check by calling :meth:`attest_unchecked` (it owns its stream) — the
    point of the theorem is that verifiers are still safe.
    """

    def __init__(self, handle: SRBSenderHandle) -> None:
        self._handle = handle
        self._last: SeqNum = 0
        self.attest_calls = 0
        self.attest_refusals = 0

    @property
    def pid(self) -> ProcessId:
        return self._handle.pid

    def last_seq(self) -> SeqNum:
        return self._last

    def attest(self, c: SeqNum, m: Any) -> Optional[SRBAttestation]:
        """Paper's ``Attest``: broadcast and return (k, (c, m)); None if stale c."""
        self.attest_calls += 1
        if not isinstance(c, int):
            raise AttestationError(f"sequence number must be an int, got {c!r}")
        if c <= 0:
            raise AttestationError(f"sequence numbers start at 1, got {c}")
        if c <= self._last:
            self.attest_refusals += 1
            return None
        self._last = c
        k = self._handle.broadcast((c, m))
        return SRBAttestation(self.pid, k, c, m)

    def attest_unchecked(self, c: SeqNum, m: Any) -> SRBAttestation:
        """Byzantine-host path: broadcast an arbitrary (c, m) claim.

        Exists so tests can drive the adversarial executions of the
        theorem's proof; verifiers must reject replays/duplicates.
        """
        k = self._handle.broadcast((c, m))
        return SRBAttestation(self.pid, k, c, m)


class SRBTrincVerifier:
    """The per-process verifier side (``CheckAttestation`` plus its storage).

    One instance per process; wire :meth:`on_deliver` as the process's SRB
    oracle subscription (or call it from a protocol's delivery hook).
    """

    def __init__(self, n: int) -> None:
        self._n = n
        self._counters: dict[ProcessId, SeqNum] = {q: 0 for q in range(n)}
        self._stored: dict[tuple[ProcessId, SeqNum], tuple[SeqNum, Any]] = {}
        self.deliveries = 0
        self.rejected_stale = 0

    # -- delivery ingestion (the 'upon delivering' clause) -----------------------

    def on_deliver(self, sender: ProcessId, seq: SeqNum, value: Any) -> None:
        self.deliveries += 1
        if not (isinstance(value, tuple) and len(value) == 2):
            return  # a Byzantine stream may carry junk
        c, m = value
        if not isinstance(c, int) or c <= 0:
            return
        if self._counters.get(sender, 0) < c:
            self._stored[(sender, c)] = (seq, m)
            self._counters[sender] = c
        else:
            self.rejected_stale += 1

    # -- the paper's CheckAttestation -----------------------------------------------

    def check_attestation(self, a: Any, q: ProcessId) -> bool:
        if not isinstance(a, SRBAttestation):
            return False
        if a.attester != q:
            return False
        stored = self._stored.get((q, a.counter))
        if stored is None:
            return False
        k, m = stored
        return k == a.broadcast_seq and m == a.message

    def highest_counter(self, q: ProcessId) -> SeqNum:
        return self._counters.get(q, 0)
