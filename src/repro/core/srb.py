"""Sequenced Reliable Broadcast: the interface and its four-property checker.

The paper's Definition 1. A designated *sender* broadcasts messages with
consecutive sequence numbers (1, 2, …); the primitive guarantees:

1. **validity** — a correct sender's every message is eventually delivered
   by every correct process;
2. **agreement (relay + no-duplicity)** — if some correct process delivers
   ``m`` with sequence number ``k`` from ``p``, eventually every correct
   process delivers the same ``m`` with ``k`` from ``p``;
3. **sequencing** — deliveries from ``p`` happen in sequence-number order
   with no gaps;
4. **integrity** — a delivered message was actually broadcast by ``p``.

Implementations record ``bcast`` events when the sender broadcasts and
``bcast_deliver`` events on delivery. Two checking modes share one
incremental core (:class:`SRBStreamChecker`):

- **batch** — :func:`check_srb` audits a finished trace (index-backed: it
  walks only the ``bcast``/``bcast_deliver`` events, not the whole trace);
- **streaming** — attach an :class:`SRBStreamChecker` as a
  :class:`~repro.sim.trace.TraceObserver` and it maintains the same state
  online; with ``fail_fast=True`` a *permanent* safety violation
  (sequencing gap, agreement conflict) raises at the exact violating
  event instead of after the run.

"Eventually" is interpreted as *by the end of the run* — callers are
responsible for running long enough past quiescence (the benches use
generous horizons and verify network fairness separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..errors import ConfigurationError, PropertyViolation
from ..sim.liveness import DeadlineMonitor, LivenessReport
from ..sim.process import Process
from ..sim.trace import BCAST, BCAST_DELIVER, Trace, TraceEvent, TraceObserver
from ..types import Delivery, ProcessId, SeqNum, Time


class SRBroadcast(Process):
    """Interface for SRB implementations (the sender-side API).

    A concrete SRB protocol subclasses this (or embeds equivalent logic) —
    application code calls :meth:`broadcast` on the sender and overrides
    :meth:`on_deliver` everywhere. Implementations must call
    :meth:`_record_broadcast` / :meth:`_record_delivery` so traces are
    checkable.
    """

    def broadcast(self, message: Any) -> SeqNum:
        """(Sender only.) Broadcast ``message`` with the next sequence number."""
        raise NotImplementedError

    def on_deliver(self, sender: ProcessId, seq: SeqNum, message: Any) -> None:
        """Application hook: ``(seq, message)`` from ``sender`` was delivered."""

    # -- trace plumbing ----------------------------------------------------------

    def _record_broadcast(self, seq: SeqNum, message: Any) -> None:
        self.ctx.record("bcast", seq=seq, value=message)

    def _record_delivery(self, sender: ProcessId, seq: SeqNum, message: Any) -> None:
        self.ctx.record("bcast_deliver", sender=sender, seq=seq, value=message)
        self.on_deliver(sender, seq, message)


@dataclass(slots=True)
class SRBReport:
    """Audit result for one sender's broadcast stream in one trace."""

    sender: ProcessId
    broadcasts: list[tuple[SeqNum, Any]] = field(default_factory=list)
    deliveries: list[Delivery] = field(default_factory=list)
    validity_violations: list[str] = field(default_factory=list)
    agreement_violations: list[str] = field(default_factory=list)
    sequencing_violations: list[str] = field(default_factory=list)
    integrity_violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.validity_violations
            or self.agreement_violations
            or self.sequencing_violations
            or self.integrity_violations
        )

    def all_violations(self) -> list[str]:
        return (
            [f"validity: {v}" for v in self.validity_violations]
            + [f"agreement: {v}" for v in self.agreement_violations]
            + [f"sequencing: {v}" for v in self.sequencing_violations]
            + [f"integrity: {v}" for v in self.integrity_violations]
        )

    def assert_ok(self) -> None:
        if not self.ok:
            vs = self.all_violations()
            raise PropertyViolation(
                "SRB", vs[0] + (f" (+{len(vs) - 1} more)" if len(vs) > 1 else "")
            )


class SRBStreamChecker(TraceObserver):
    """Incremental SRB state shared by the batch and streaming checkers.

    Feed it ``bcast`` / ``bcast_deliver`` events (any other kinds are
    ignored) — as a live :class:`~repro.sim.trace.TraceObserver`, through
    :meth:`~repro.sim.trace.TraceStore.replay_into`, or via
    :func:`check_srb`'s batch scan. :meth:`finish` then audits the four
    properties over the accumulated state; its report is identical to the
    pre-refactor whole-trace scan by construction.

    Online detection: sequencing gaps and agreement conflicts are
    *permanent* the moment they happen (no later event can undo them), so
    they are flagged on arrival in :attr:`online_violations` with the
    violating event's trace index; ``fail_fast=True`` additionally raises
    :class:`~repro.errors.PropertyViolation` right there, aborting the
    simulation step that recorded the event. Liveness properties
    (validity, agreement relay) only resolve at end of run and are checked
    in :meth:`finish`.
    """

    def __init__(
        self,
        sender: ProcessId,
        correct: Iterable[ProcessId],
        sender_correct: bool = True,
        expect_complete: bool = True,
        fail_fast: bool = False,
    ) -> None:
        self.sender = sender
        self.correct_set = sorted(set(correct))
        self.sender_correct = sender_correct
        self.expect_complete = expect_complete
        self.fail_fast = fail_fast
        self.broadcasts: list[tuple[SeqNum, Any]] = []
        self.deliveries: list[Delivery] = []
        self.by_receiver: dict[ProcessId, list[Delivery]] = {
            p: [] for p in self.correct_set
        }
        self.value_of: dict[SeqNum, tuple[ProcessId, Any]] = {}
        self.online_violations: list[tuple[int, str]] = []
        self.events_consumed = 0

    # -- streaming ---------------------------------------------------------

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind == BCAST:
            if ev.pid == self.sender:
                self.events_consumed += 1
                self.broadcasts.append((ev.field("seq"), ev.field("value")))
        elif ev.kind == BCAST_DELIVER:
            if ev.field("sender") != self.sender:
                return
            self.events_consumed += 1
            d = Delivery(
                receiver=ev.pid,
                sender=self.sender,
                seq=ev.field("seq"),
                value=ev.field("value"),
                time=ev.time,
            )
            self.deliveries.append(d)
            deliveries = self.by_receiver.get(d.receiver)
            if deliveries is None:
                return  # not a correct process; its stream is unconstrained
            deliveries.append(d)
            # sequencing: the i-th delivery must carry seq i+1 — a mismatch
            # can never be fixed by later events
            if d.seq != len(deliveries):
                self._flag(
                    ev,
                    f"sequencing: process {d.receiver} delivery "
                    f"#{len(deliveries)} has seq {d.seq}",
                )
            # agreement conflict: two correct processes, same seq,
            # different value — permanent
            known = self.value_of.get(d.seq)
            if known is None:
                self.value_of[d.seq] = (d.receiver, d.value)
            elif known[1] != d.value:
                self._flag(
                    ev,
                    f"agreement: seq {d.seq}: process {known[0]} delivered "
                    f"{known[1]!r} but process {d.receiver} delivered "
                    f"{d.value!r}",
                )

    def _flag(self, ev: TraceEvent, message: str) -> None:
        self.online_violations.append((ev.index, message))
        if self.fail_fast:
            raise PropertyViolation(
                "SRB-stream", f"event #{ev.index} (t={ev.time:g}): {message}"
            )

    # -- batch feeding -----------------------------------------------------

    def consume(self, trace: Trace) -> "SRBStreamChecker":
        """Feed a finished trace through the index-backed event queries."""
        for ev in trace.events(BCAST, pid=self.sender):
            self.on_event(ev)
        for ev in trace.events(BCAST_DELIVER):
            self.on_event(ev)
        return self

    # -- final audit -------------------------------------------------------

    def finish(self) -> SRBReport:
        """Audit the four SRB properties over the accumulated state."""
        correct_set = self.correct_set
        by_receiver = self.by_receiver
        report = SRBReport(sender=self.sender)
        report.broadcasts = list(self.broadcasts)
        report.deliveries = list(self.deliveries)

        # --- sequencing (property 3): in-order, gap-free, no duplicates --------
        for p in correct_set:
            seqs = [d.seq for d in by_receiver[p]]
            for i, s in enumerate(seqs):
                if s != i + 1:
                    report.sequencing_violations.append(
                        f"process {p} delivery #{i + 1} has seq {s} "
                        f"(full order: {seqs})"
                    )
                    break

        # --- agreement part 1: no two correct processes disagree on a seq ------
        value_of: dict[SeqNum, tuple[ProcessId, Any]] = {}
        for p in correct_set:
            for d in by_receiver[p]:
                if d.seq in value_of:
                    q, v = value_of[d.seq]
                    if v != d.value:
                        report.agreement_violations.append(
                            f"seq {d.seq}: process {q} delivered {v!r} but "
                            f"process {p} delivered {d.value!r}"
                        )
                else:
                    value_of[d.seq] = (p, d.value)

        # set-indexed views of each receiver's stream: the relay/validity
        # audits below are membership tests, not linear rescans per seq
        # (identical verdicts — ``(seq, value) in pairs`` is exactly
        # ``any(d.seq == seq and d.value == value)``)
        seqs_of = {p: {d.seq for d in by_receiver[p]} for p in correct_set}
        try:
            pairs_of = {
                p: {(d.seq, d.value) for d in by_receiver[p]} for p in correct_set
            }
        except TypeError:  # unhashable payloads: keep the linear-scan audit
            pairs_of = None

        # --- agreement part 2 (relay, liveness): all-or-nothing per seq --------
        if self.expect_complete:
            for seq, (q, v) in sorted(value_of.items()):
                for p in correct_set:
                    if seq not in seqs_of[p]:
                        report.agreement_violations.append(
                            f"seq {seq}: delivered by process {q} but never by "
                            f"process {p}"
                        )

        # --- validity (property 1) -----------------------------------------------
        if self.sender_correct and self.expect_complete:
            for seq, value in report.broadcasts:
                for p in correct_set:
                    delivered = (
                        (seq, value) in pairs_of[p]
                        if pairs_of is not None
                        else any(
                            d.seq == seq and d.value == value
                            for d in by_receiver[p]
                        )
                    )
                    if not delivered:
                        report.validity_violations.append(
                            f"sender broadcast ({seq}, {value!r}) but process {p} "
                            "did not deliver it"
                        )

        # --- integrity (property 4) ------------------------------------------------
        broadcast_set = set(report.broadcasts)
        for p in correct_set:
            for d in by_receiver[p]:
                if (d.seq, d.value) not in broadcast_set:
                    if self.sender_correct:
                        report.integrity_violations.append(
                            f"process {p} delivered ({d.seq}, {d.value!r}) which the "
                            "correct sender never broadcast"
                        )
                    elif not any(v == d.value for (_s, v) in report.broadcasts):
                        report.integrity_violations.append(
                            f"process {p} delivered ({d.seq}, {d.value!r}); the "
                            "Byzantine sender never even produced that value"
                        )
        return report


class SRBLivenessChecker(TraceObserver):
    """Streaming post-GST delivery-liveness auditor for SRB streams.

    Every ``bcast`` recorded by a fault-free process at time ``t`` owes a
    matching ``bcast_deliver`` at every fault-free receiver by
    ``max(t, gst) + bound`` — the timed refinement of SRB validity under
    partial synchrony. Before GST nothing is owed; a broadcast sent in the
    chaotic era's deadline simply starts at GST.

    Batch (:meth:`consume`) and streaming verdicts agree by construction:
    both push the same events in trace order through one
    :class:`~repro.sim.liveness.DeadlineMonitor`. With ``fail_fast=True``
    an expired delivery deadline raises at the first later event (expiry
    is permanent). Obligations whose deadlines fall past the end of the
    run come back as ``unresolved``, not violated.
    """

    def __init__(
        self,
        gst: Time,
        bound: float,
        fault_free: Iterable[ProcessId],
        fail_fast: bool = False,
    ) -> None:
        if bound <= 0:
            raise ConfigurationError(f"bound must be > 0, got {bound}")
        self.gst = gst
        self.bound = bound
        self.fault_free = sorted(set(fault_free))
        self._ff_set = set(self.fault_free)
        self.fail_fast = fail_fast
        self.monitor = DeadlineMonitor()
        self.online_violations: list[tuple[int, str]] = []
        self.armed = 0
        self.satisfied = 0

    # -- streaming ---------------------------------------------------------

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind == BCAST and ev.pid in self._ff_set:
            self._expire(ev)
            seq, value = ev.field("seq"), ev.field("value")
            deadline = max(ev.time, self.gst) + self.bound
            for receiver in self.fault_free:
                self.monitor.expect(
                    ("dlv", ev.pid, seq, receiver),
                    deadline,
                    f"broadcast #{seq} by fault-free sender {ev.pid} "
                    f"(t={ev.time:g}, {value!r}) never delivered by "
                    f"fault-free process {receiver}",
                )
                self.armed += 1
        elif ev.kind == BCAST_DELIVER and ev.pid in self._ff_set:
            self._expire(ev)
            key = ("dlv", ev.field("sender"), ev.field("seq"), ev.pid)
            if self.monitor.satisfy(key):
                self.satisfied += 1

    def _expire(self, ev: TraceEvent) -> None:
        for ob in self.monitor.advance(ev.time):
            self.online_violations.append((ev.index, ob.message))
            if self.fail_fast:
                raise PropertyViolation(
                    "SRB-liveness-stream",
                    f"event #{ev.index} (t={ev.time:g}): {ob.message}",
                )

    # -- batch feeding -----------------------------------------------------

    def consume(self, trace: Trace) -> "SRBLivenessChecker":
        """Feed a finished trace, merging both kinds back into trace order."""
        merged = sorted(
            [*trace.events(BCAST), *trace.events(BCAST_DELIVER)],
            key=lambda ev: ev.index,
        )
        for ev in merged:
            self.on_event(ev)
        return self

    # -- final audit -------------------------------------------------------

    def finish(self, end_time: Optional[Time] = None) -> LivenessReport:
        report = LivenessReport(
            obligations_armed=self.armed, obligations_satisfied=self.satisfied
        )
        report.violations = [m for _, m in self.online_violations]
        violated, unresolved = self.monitor.flush(end_time)
        report.violations += [ob.message for ob in violated]
        report.unresolved = [ob.message for ob in unresolved]
        return report


def check_srb_liveness(
    trace: Trace,
    gst: Time,
    bound: float,
    fault_free: Iterable[ProcessId],
    end_time: Optional[Time] = None,
) -> LivenessReport:
    """Batch post-GST delivery-liveness audit (same core as streaming)."""
    return (
        SRBLivenessChecker(gst=gst, bound=bound, fault_free=fault_free)
        .consume(trace)
        .finish(end_time=end_time)
    )


def check_srb(
    trace: Trace,
    sender: ProcessId,
    correct: Iterable[ProcessId],
    sender_correct: bool = True,
    expect_complete: bool = True,
) -> SRBReport:
    """Audit the four SRB properties for ``sender``'s stream (batch mode).

    ``expect_complete=True`` treats the run as long enough that every
    "eventually" should have resolved; set it False for truncated runs
    (then only safety — agreement consistency, sequencing, integrity —
    is checked, not liveness).

    With a Byzantine sender (``sender_correct=False``) validity is not
    required and integrity is checked against the union of values the
    Byzantine code *recorded* as broadcast (our Byzantine senders attest
    whatever they send; a value delivered that was never even recorded
    means forged provenance — always a violation).
    """
    return (
        SRBStreamChecker(
            sender,
            correct,
            sender_correct=sender_correct,
            expect_complete=expect_complete,
        )
        .consume(trace)
        .finish()
    )


def deliveries_by_process(
    trace: Trace, sender: ProcessId
) -> dict[ProcessId, list[tuple[SeqNum, Any]]]:
    """Convenience: per-receiver ordered (seq, value) lists for ``sender``."""
    out: dict[ProcessId, list[tuple[SeqNum, Any]]] = {}
    for d in trace.broadcast_deliveries():
        if d.sender == sender:
            out.setdefault(d.receiver, []).append((d.seq, d.value))
    return out
