"""Round-based communication: the engine and its transports.

The paper's classification is phrased in terms of *rounds*: a system
"implements rounds" with some directionality guarantee (bidirectional /
unidirectional / zero-directional). This module gives protocols a uniform
round API — :class:`RoundProcess` — over pluggable transports whose
guarantees differ:

========================================  =================================
transport                                 guarantee (under the right adversary)
========================================  =================================
:class:`SharedMemoryRoundTransport`       **unidirectional** under full
                                          asynchrony (paper §3.2: write own
                                          object, then scan all)
:class:`MessagePassingRoundTransport`     zero-directional (waits for n-f
                                          round messages; classic asynchrony)
:class:`LockStepRoundTransport`           bidirectional under lock-step
                                          synchrony (global round boundaries)
:class:`TimedRoundTransport`              unidirectional when ``wait >= 2Δ``
                                          under Δ-bounded delays (draft
                                          "Δ-synchronous communication");
                                          zero-directional for small waits
========================================  =================================

**Round labels.** A round is identified by a protocol-chosen hashable
*label* rather than a bare number. The paper's "round r" quantifies over a
common label both processes use; under asynchrony different processes
cannot align position-based counters, but they *can* agree on semantic
labels like ``("copy", sender, seq)`` — which is exactly what Algorithm 1
needs. ``begin_round(payload)`` without a label uses this process's round
count (1, 2, …), matching the classic numbered-round reading.

Besides rounds, every transport offers :meth:`RoundTransport.post` — a
plain eventually-delivered "send to all" with no round obligation (in the
shared-memory world: append without waiting for a scan). Protocols use it
for relays that need only eventual delivery.

Trace events ``round_begin/round_sent/round_recv/round_end`` feed the
:mod:`repro.core.directionality` checker; posts are delivered to
``on_round_message`` with the distinguished label :data:`POST`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Hashable, Optional

from ..errors import ConfigurationError, SimulationError
from ..hardware.registers import AppendOnlyRegister
from ..sim.process import Process
from ..types import ProcessId

ROUND_MSG = "__round__"
POST = ("__post__",)
"""Label carried by non-round :meth:`RoundTransport.post` messages."""

Label = Hashable


class RoundTransport:
    """Base class for round transports; subclasses implement the mechanics.

    A transport is attached to exactly one host :class:`RoundProcess`. The
    host forwards simulator events to the ``handle_*`` hooks; a hook returns
    True when it consumed the event.

    Rounds are sequential per process: at most one active at a time.
    :meth:`begin_round_queued` defers a round until the active one
    completes, which is what multi-phase protocols (Algorithm 1) use.
    """

    def __init__(self) -> None:
        self.host: Optional["RoundProcess"] = None
        self.active_label: Optional[Label] = None
        self.rounds_begun = 0
        self._labels_used: set[Label] = set()
        self._queue: deque[tuple[Label | None, Any]] = deque()
        self._delivered: set[tuple[ProcessId, Label, Any]] = set()

    # -- wiring ---------------------------------------------------------------

    def attach(self, host: "RoundProcess") -> None:
        if self.host is not None:
            raise ConfigurationError("round transport attached twice")
        self.host = host

    def start(self) -> None:
        """Called from the host's ``on_start``."""

    # -- host API ----------------------------------------------------------------

    def begin_round(self, payload: Any, label: Label | None = None) -> Label:
        """Send ``payload`` in a new round; returns the round's label.

        Raises if a round is already active (use :meth:`begin_round_queued`)
        or if the label was used before by this process.
        """
        if self.host is None:
            raise SimulationError("transport not attached")
        if self.active_label is not None:
            raise SimulationError(
                f"process {self.host.pid}: round {self.active_label!r} still "
                f"active; queue the new round instead"
            )
        return self._begin(payload, label)

    def begin_round_queued(self, payload: Any, label: Label | None = None) -> None:
        """Begin the round now if idle, else after active/queued rounds end."""
        if self.host is None:
            raise SimulationError("transport not attached")
        if self.active_label is None and not self._queue:
            self._begin(payload, label)
        else:
            self._queue.append((label, payload))

    def post(self, payload: Any) -> None:
        """Eventually-delivered send-to-all with no round semantics."""
        raise NotImplementedError

    # -- subclass responsibilities ----------------------------------------------------

    def _send(self, label: Label, payload: Any) -> None:
        raise NotImplementedError

    def handle_message(self, src: ProcessId, msg: Any) -> bool:
        return False

    def handle_op_result(self, object_name: str, op: str, handle: int,
                         result: Any) -> bool:
        return False

    def handle_timer(self, tag: Any) -> bool:
        return False

    # -- shared plumbing -----------------------------------------------------------------

    def _begin(self, payload: Any, label: Label | None) -> Label:
        assert self.host is not None
        self.rounds_begun += 1
        if label is None:
            label = self.rounds_begun
        if label in self._labels_used:
            raise SimulationError(
                f"process {self.host.pid}: round label {label!r} reused"
            )
        self._labels_used.add(label)
        self.active_label = label
        ctx = self.host.ctx
        ctx.record("round_begin", round=label)
        ctx.record("round_sent", round=label, payload=payload)
        self._send(label, payload)
        return label

    def _deliver(self, label: Label, src: ProcessId, payload: Any) -> None:
        """Report a message once per (src, label, payload)."""
        try:
            key = (src, label, payload)
            fresh = key not in self._delivered
            if fresh:
                self._delivered.add(key)
        except TypeError:  # unhashable Byzantine payload: deliver, host validates
            fresh = True
        if fresh:
            assert self.host is not None
            self.host.ctx.record("round_recv", round=label, src=src, payload=payload)
            self.host.on_round_message(label, src, payload)

    def _complete(self, label: Label) -> None:
        assert self.host is not None
        if label != self.active_label:
            return
        self.active_label = None
        self.host.ctx.record("round_end", round=label)
        self.host.on_round_complete(label)
        if self._queue and self.active_label is None:
            next_label, payload = self._queue.popleft()
            self._begin(payload, next_label)


class RoundProcess(Process):
    """A process that communicates through a :class:`RoundTransport`.

    Subclasses implement ``on_round_message`` / ``on_round_complete`` (and
    may use the normal :class:`~repro.sim.process.Process` hooks; transport
    events are filtered out before ``on_other_message`` is called).
    """

    def __init__(self, transport: RoundTransport) -> None:
        super().__init__()
        self.rounds = transport

    # -- override points ----------------------------------------------------------

    def on_round_message(self, label: Label, src: ProcessId, payload: Any) -> None:
        """A payload from ``src`` tagged with round ``label`` became visible.

        ``label`` is :data:`POST` for non-round posts.
        """

    def on_round_complete(self, label: Label) -> None:
        """This process's round ``label`` satisfied the end condition."""

    def on_round_start(self) -> None:
        """Called once at simulation start (after the transport is live)."""

    def on_other_message(self, src: ProcessId, msg: Any) -> None:
        """Non-transport message (protocols mixing rounds with direct sends)."""

    # -- plumbing -------------------------------------------------------------------

    def on_start(self) -> None:
        self.rounds.attach(self)
        self.rounds.start()
        self.on_round_start()

    def on_message(self, src: ProcessId, msg: Any) -> None:
        if not self.rounds.handle_message(src, msg):
            self.on_other_message(src, msg)

    def on_timer(self, tag: Any) -> None:
        self.rounds.handle_timer(tag)

    def on_op_result(self, object_name: str, op: str, handle: int, result: Any) -> None:
        self.rounds.handle_op_result(object_name, op, handle, result)


# ---------------------------------------------------------------------------
# Shared-memory transport (the paper's §3.2 construction)
# ---------------------------------------------------------------------------


class SharedMemoryRoundTransport(RoundTransport):
    """Unidirectional rounds from per-process append-only objects.

    The construction of the paper's Claim in §3.2 (due to Aguilera et al.):
    to send in round ``r``, append ``(r, payload)`` to your own object, then
    read objects ``o_1 … o_n``; the round ends when one full scan that
    *started after your append linearized* has completed. For any two
    correct processes that both send in a round, the later appender's
    counted scan must see the earlier appender's entry — unidirectionality.
    The argument never uses the label, so it holds per label, concurrent or
    not.

    The transport keeps rescanning (with exponential backoff once nothing
    changes) so entries appended later are still delivered — shared-memory
    "reception" is reading, and readers poll. Polling frequency affects
    only latency, never the unidirectionality argument. :meth:`post` is a
    plain append: eventual delivery via everyone's scans.
    """

    SCAN_TAG = "__sm_round_scan__"

    def __init__(
        self,
        log_prefix: str = "roundlog",
        first_scan_delay: float = 0.05,
        idle_backoff: float = 1.6,
        max_interval: float = 30.0,
    ) -> None:
        super().__init__()
        self.log_prefix = log_prefix
        self.first_scan_delay = first_scan_delay
        self.idle_backoff = idle_backoff
        self.max_interval = max_interval
        self._append_handle: Optional[int] = None
        self._append_done_label: Optional[Label] = None
        self._scan_handles: dict[int, ProcessId] = {}
        self._scan_counts_label: Optional[Label] = None
        self._scan_running = False
        self._seen_lengths: dict[ProcessId, int] = {}
        self._interval = first_scan_delay
        self._new_data = False
        self.scans_completed = 0

    # -- setup helper ------------------------------------------------------------

    @staticmethod
    def build_logs(n: int, prefix: str = "roundlog") -> list[AppendOnlyRegister]:
        """The per-process append-only objects; register them on the simulation."""
        return [AppendOnlyRegister(f"{prefix}{i}", owner=i) for i in range(n)]

    def _log_name(self, pid: ProcessId) -> str:
        return f"{self.log_prefix}{pid}"

    # -- round mechanics ------------------------------------------------------------

    def start(self) -> None:
        assert self.host is not None
        self._seen_lengths = {p: 0 for p in range(self.host.ctx.n)}
        self.host.ctx.set_timer(self.first_scan_delay, self.SCAN_TAG)

    # -- object-specific hooks (overridden by the SWMR / PEATS / sticky
    # variants in repro.core.uni_from_sm; the unidirectionality argument only
    # needs "publish to own object, then scan all objects") -------------------

    def _publish(self, entry: tuple) -> Optional[int]:
        """Make ``entry = (label, payload)`` readable by everyone; returns handle."""
        assert self.host is not None
        return self.host.ctx.invoke(
            self._log_name(self.host.pid), "append", entry
        )

    def _scan_one(self, p: ProcessId) -> Optional[int]:
        """Issue the read of process ``p``'s object for the current scan."""
        assert self.host is not None
        return self.host.ctx.invoke(
            self._log_name(p), "read_from", self._seen_lengths[p]
        )

    def _is_own_publish(self, object_name: str, op: str) -> bool:
        """Whether an op response belongs to a fire-and-forget publish."""
        return object_name.startswith(self.log_prefix) and op == "append"

    def _send(self, label: Label, payload: Any) -> None:
        self._append_done_label = None
        self._append_handle = self._publish((label, payload))

    def post(self, payload: Any) -> None:
        self._publish((POST, payload))
        self._poke()

    def _poke(self) -> None:
        """Make sure scanning resumes promptly after new local activity."""
        self._interval = self.first_scan_delay

    def handle_op_result(self, object_name, op, handle, result) -> bool:
        assert self.host is not None
        if handle == self._append_handle:
            self._append_handle = None
            self._append_done_label = self.active_label
            # the next scan to *start* counts toward completing this round
            if not self._scan_running:
                self._begin_scan()
            return True
        if handle in self._scan_handles:
            src = self._scan_handles.pop(handle)
            self._ingest(src, result)
            if not self._scan_handles:
                self._finish_scan()
            return True
        if self._is_own_publish(object_name, op):
            return True  # a post's publish response: nothing to do
        return False

    def handle_timer(self, tag: Any) -> bool:
        if tag != self.SCAN_TAG:
            return False
        if not self._scan_running:
            self._begin_scan()
        return True

    def _begin_scan(self) -> None:
        assert self.host is not None
        self._scan_running = True
        self._new_data = False
        # a scan "counts" for the active round iff its append already linearized
        self._scan_counts_label = self._append_done_label
        for p in range(self.host.ctx.n):
            handle = self._scan_one(p)
            if handle is not None:
                self._scan_handles[handle] = p

    def _ingest(self, src: ProcessId, result: Any) -> None:
        if not isinstance(result, tuple):
            return
        start = self._seen_lengths[src]
        self._seen_lengths[src] = start + len(result)
        if result:
            self._new_data = True
        for entry in result:
            if isinstance(entry, tuple) and len(entry) == 2:
                self._deliver(entry[0], src, entry[1])

    def _finish_scan(self) -> None:
        assert self.host is not None
        self._scan_running = False
        self.scans_completed += 1
        counted = self._scan_counts_label
        if (
            self.active_label is not None
            and counted is not None
            and counted == self.active_label
        ):
            self._complete(counted)
        # keep watching: rescan soon while things move, back off when idle
        if self._new_data or self.active_label is not None or self._append_handle is not None:
            self._interval = self.first_scan_delay
        else:
            self._interval = min(self._interval * self.idle_backoff, self.max_interval)
        self.host.ctx.set_timer(self._interval, self.SCAN_TAG)


# ---------------------------------------------------------------------------
# Message-passing transports
# ---------------------------------------------------------------------------


class MessagePassingRoundTransport(RoundTransport):
    """Asynchronous rounds: wait for same-label messages from ``n - f`` senders.

    This is the best a classic asynchronous system can do, and it is
    **zero-directional**: the ``n - f`` heard senders need not include any
    particular correct process (the draft's "Asynchronous communication"
    paragraph). Messages for other labels are delivered on arrival.
    """

    def __init__(self, f: int) -> None:
        super().__init__()
        if f < 0:
            raise ConfigurationError(f"f must be non-negative, got {f}")
        self.f = f
        self._heard: dict[Label, set[ProcessId]] = {}

    def _send(self, label: Label, payload: Any) -> None:
        assert self.host is not None
        self.host.ctx.broadcast((ROUND_MSG, label, payload), include_self=True)

    def post(self, payload: Any) -> None:
        assert self.host is not None
        self.host.ctx.broadcast((ROUND_MSG, POST, payload), include_self=True)

    def handle_message(self, src: ProcessId, msg: Any) -> bool:
        if not (isinstance(msg, tuple) and len(msg) == 3 and msg[0] == ROUND_MSG):
            return False
        _, label, payload = msg
        try:
            hash(label)
        except TypeError:
            return True  # malformed label from a Byzantine sender: drop
        self._deliver(label, src, payload)
        if label == POST:
            return True
        heard = self._heard.setdefault(label, set())
        heard.add(src)
        assert self.host is not None
        if (
            self.active_label is not None
            and label == self.active_label
            and len(heard) >= self.host.ctx.n - self.f
        ):
            self._complete(label)
        return True


class LockStepRoundTransport(RoundTransport):
    """Globally synchronized rounds: boundary ``k`` opens round label ``k``.

    Under a :class:`~repro.sim.adversary.LockStepSynchronous` adversary with
    ``delta <= period``, every message sent at a round boundary arrives
    before the round's closing boundary — **bidirectional** rounds (classic
    lock-step synchrony). Payloads queued mid-round are sent at the next
    boundary; custom labels are rejected because lock-step round identity
    *is* the global boundary index.
    """

    BOUNDARY_TAG = "__lockstep_boundary__"

    def __init__(self, period: float = 2.0) -> None:
        super().__init__()
        if period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        self.period = period
        self._boundary = 0
        self._pending: deque[Any] = deque()

    def start(self) -> None:
        assert self.host is not None
        self.host.ctx.set_timer(self.period, self.BOUNDARY_TAG)

    def _begin(self, payload: Any, label: Label | None) -> Label:
        if label is not None:
            raise ConfigurationError(
                "lock-step rounds are labeled by the global boundary index; "
                "custom labels are not supported"
            )
        self._pending.append(payload)
        return self._boundary + 1  # the earliest boundary that could carry it

    def post(self, payload: Any) -> None:
        assert self.host is not None
        self.host.ctx.broadcast((ROUND_MSG, POST, payload), include_self=True)

    def _send(self, label: Label, payload: Any) -> None:
        assert self.host is not None
        self.host.ctx.broadcast((ROUND_MSG, label, payload), include_self=True)

    def handle_timer(self, tag: Any) -> bool:
        if tag != self.BOUNDARY_TAG:
            return False
        assert self.host is not None
        ctx = self.host.ctx
        # close the finishing round…
        if self.active_label is not None:
            label = self.active_label
            self.active_label = None
            ctx.record("round_end", round=label)
            self.host.on_round_complete(label)
        self._boundary += 1
        # …and open the next one if a payload is waiting
        if self._pending:
            payload = self._pending.popleft()
            label = self._boundary
            self._labels_used.add(label)
            self.rounds_begun += 1
            self.active_label = label
            ctx.record("round_begin", round=label)
            ctx.record("round_sent", round=label, payload=payload)
            self._send(label, payload)
        ctx.set_timer(self.period, self.BOUNDARY_TAG)
        return True

    def handle_message(self, src: ProcessId, msg: Any) -> bool:
        if not (isinstance(msg, tuple) and len(msg) == 3 and msg[0] == ROUND_MSG):
            return False
        _, label, payload = msg
        try:
            hash(label)
        except TypeError:
            return True
        self._deliver(label, src, payload)
        return True


class TimedRoundTransport(RoundTransport):
    """Timeout rounds for the Δ-synchronous model (draft section).

    A round is: send to all, then wait ``wait`` time, then end. Under
    Δ-bounded message delays, ``wait >= 2Δ`` yields **unidirectional**
    rounds even when processes start a given label at arbitrary offsets:
    if p misses q's label-L message (q started later than p's end minus Δ),
    then p's message, sent at p's start, arrived at q at most Δ later —
    before q's round began — and is buffered, so q has it before q's round
    ends. Waits below 2Δ lose the guarantee (benchmarked in Q2).
    """

    WAIT_TAG = "__timed_round_end__"

    def __init__(self, wait: float) -> None:
        super().__init__()
        if wait <= 0:
            raise ConfigurationError(f"wait must be positive, got {wait}")
        self.wait = wait

    def _send(self, label: Label, payload: Any) -> None:
        assert self.host is not None
        self.host.ctx.broadcast((ROUND_MSG, label, payload), include_self=True)
        self.host.ctx.set_timer(self.wait, (self.WAIT_TAG, label))

    def post(self, payload: Any) -> None:
        assert self.host is not None
        self.host.ctx.broadcast((ROUND_MSG, POST, payload), include_self=True)

    def handle_timer(self, tag: Any) -> bool:
        if isinstance(tag, tuple) and len(tag) == 2 and tag[0] == self.WAIT_TAG:
            self._complete(tag[1])
            return True
        return False

    def handle_message(self, src: ProcessId, msg: Any) -> bool:
        if not (isinstance(msg, tuple) and len(msg) == 3 and msg[0] == ROUND_MSG):
            return False
        _, label, payload = msg
        try:
            hash(label)
        except TypeError:
            return True
        self._deliver(label, src, payload)
        return True
