"""An idealized SRB primitive ("oracle") for constructions that assume SRB.

Theorem 1 and the separation scenarios take sequenced reliable broadcast as
*given* and build on top of it. Running those constructions over the full
Algorithm-1 stack would entangle two results; the oracle instead provides
SRB's four properties by construction, with adversary-controllable delivery
delays — exactly the "system with SRB" the proofs quantify over.

Guarantees enforced:

- per (sender, receiver), deliveries happen in sequence order (property 3);
- every broadcast is eventually delivered to every live process — unless
  the run's :class:`DeliveryPolicy` deliberately withholds it, which models
  the proofs' "arbitrarily delayed" links (the ledger records this, like
  the network's);
- only the holder of a sender's :class:`SRBSenderHandle` can broadcast on
  that sender's stream (integrity): a Byzantine process can misuse *its
  own* stream (that is exactly what TrInc-from-SRB must survive) but never
  forge another's.

The oracle schedules deliveries directly on the simulation scheduler,
independent of the message network — SRB here is a primitive, not a
protocol running over links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..errors import ConfigurationError
from ..sim.events import Callback
from ..sim.runner import Simulation
from ..types import ProcessId, SeqNum, Time

DeliveryPolicy = Callable[[ProcessId, ProcessId, SeqNum, Time], Optional[float]]
"""``(sender, receiver, seq, now) -> delay`` or ``None`` to withhold for the run."""


@dataclass(frozen=True, slots=True)
class WithheldDelivery:
    sender: ProcessId
    receiver: ProcessId
    seq: SeqNum
    value: Any


class SRBOracle:
    """Simulation-level sequenced-reliable-broadcast service.

    Construct first, hand to the processes/transports that use it, then
    attach it to the simulation with :meth:`bind` (or pass ``sim=``
    directly when construction order allows).
    """

    def __init__(
        self,
        sim: Simulation | None = None,
        policy: DeliveryPolicy | None = None,
        min_delay: float = 0.05,
        max_delay: float = 1.0,
        seed: int = 0,
        record_trace: bool = True,
    ) -> None:
        self._sim: Simulation | None = sim
        self.record_trace = record_trace
        """When the oracle serves as a *transport* underneath another
        broadcast protocol, set False so its bcast/bcast_deliver events do
        not mix with the higher layer's in the trace checkers."""
        self._rng = random.Random(seed * 1_000_003 + 17)
        self._min = min_delay
        self._max = max_delay
        self._policy = policy
        self._next_seq: dict[ProcessId, SeqNum] = {}
        # enforce in-order delivery per (sender, receiver)
        self._last_delivery_time: dict[tuple[ProcessId, ProcessId], Time] = {}
        # program-order chaining for controlled-schedule mode, where
        # timestamps do not constrain dispatch order (sequencing, property 3)
        self._last_delivery_event: dict[tuple[ProcessId, ProcessId], Any] = {}
        self._subscribers: dict[ProcessId, Callable[[ProcessId, SeqNum, Any], None]] = {}
        self._handles: set[ProcessId] = set()
        self.withheld: list[WithheldDelivery] = []
        self.broadcasts = 0

    # -- wiring ------------------------------------------------------------------

    def bind(self, sim: Simulation) -> "SRBOracle":
        """Attach to the simulation (required before any broadcast)."""
        if self._sim is not None and self._sim is not sim:
            raise ConfigurationError("SRB oracle already bound to a simulation")
        self._sim = sim
        return self

    @property
    def sim(self) -> Simulation:
        if self._sim is None:
            raise ConfigurationError("SRB oracle used before bind(sim)")
        return self._sim

    def subscribe(self, pid: ProcessId,
                  on_deliver: Callable[[ProcessId, SeqNum, Any], None]) -> None:
        """Register ``pid``'s delivery callback (one per process)."""
        if pid in self._subscribers:
            raise ConfigurationError(f"process {pid} already subscribed to SRB oracle")
        self._subscribers[pid] = on_deliver

    def sender_handle(self, pid: ProcessId) -> "SRBSenderHandle":
        """Capability to broadcast on ``pid``'s stream; issued once."""
        if pid in self._handles:
            raise ConfigurationError(f"sender handle for {pid} already issued")
        self._handles.add(pid)
        return SRBSenderHandle(self, pid)

    # -- core ----------------------------------------------------------------------

    def _broadcast(self, sender: ProcessId, value: Any) -> SeqNum:
        sim = self.sim
        seq = self._next_seq.get(sender, 0) + 1
        self._next_seq[sender] = seq
        self.broadcasts += 1
        now = sim.now
        if self.record_trace:
            sim.trace.record(now, "bcast", sender, seq=seq, value=value)
        controlled = sim.scheduler.controlled
        for receiver in range(sim.n):
            if controlled and receiver in sim.crashed_pids:
                # no restarts in controlled mode: the delivery would be a
                # no-op choice point, pure state-space blowup
                self.withheld.append(WithheldDelivery(sender, receiver, seq, value))
                continue
            if self._policy is not None:
                delay = self._policy(sender, receiver, seq, now)
            else:
                delay = self._rng.uniform(self._min, self._max)
            if delay is None:
                self.withheld.append(WithheldDelivery(sender, receiver, seq, value))
                continue
            at = now + max(delay, 0.0)
            key = (sender, receiver)
            # in-order per stream: never deliver seq k before seq k-1
            at = max(at, self._last_delivery_time.get(key, 0.0))
            self._last_delivery_time[key] = at
            ev = sim.scheduler.schedule_at(
                at,
                Callback(
                    fn=lambda s=sender, r=receiver, k=seq, v=value: self._deliver(s, r, k, v),
                    label=f"srb-deliver-{sender}->{receiver}#{seq}",
                    pid=receiver,
                    choice=True,
                ),
                # controlled mode ignores timestamps, so sequencing is kept
                # by chaining each stream's delivery behind its predecessor
                after=self._last_delivery_event.get(key),
            )
            self._last_delivery_event[key] = ev
        return seq

    def _deliver(self, sender: ProcessId, receiver: ProcessId,
                 seq: SeqNum, value: Any) -> None:
        sim = self.sim
        if receiver in sim.crashed_pids:
            return
        if self.record_trace:
            sim.trace.record(
                sim.now, "bcast_deliver", receiver, sender=sender, seq=seq,
                value=value,
            )
        cb = self._subscribers.get(receiver)
        if cb is not None:
            cb(sender, seq, value)


class SRBSenderHandle:
    """Capability to broadcast on one sender stream of an :class:`SRBOracle`."""

    __slots__ = ("_oracle", "_pid")

    def __init__(self, oracle: SRBOracle, pid: ProcessId) -> None:
        self._oracle = oracle
        self._pid = pid

    @property
    def pid(self) -> ProcessId:
        return self._pid

    def broadcast(self, value: Any) -> SeqNum:
        """Broadcast ``value`` on this stream; returns its sequence number."""
        return self._oracle._broadcast(self._pid, value)
