"""The corner case (Appendix B): reliable broadcast ⇒ unidirectionality
when ``f = 1`` and ``n >= 3``.

The separation of §4.1 needs ``f > 1``; this module makes the complementary
positive result executable. The paper's two-phase protocol, per process
``p`` with round input ``v``:

- **Phase 1**: broadcast ``(v, σ_p)`` (``σ_p`` an unforgeable signature);
  wait for phase-1 messages with valid signatures from ``n-1`` distinct
  processes (own included — at most one process is faulty, so ``n-1``
  always eventually arrive).
- **Phase 2**: forward *all* phase-1 messages received; wait for phase-2
  bundles from ``n-1`` distinct processes, each containing at least two
  valid signatures from distinct processes.

Why unidirectionality holds for every pair of correct processes p, p'
(paper's argument): if neither hears the other directly, every process in
the remaining set Q heard at least one of them in phase 1 (Q's phase-1
waits completed, and they can be missing at most one sender). Both p and
p' receive all of Q's phase-2 bundles; a valid bundle carries ``n-1``
signed values and is unforgeable, so Q's bundles必 contain the heard
value — delivering p's value to p' (or vice versa) before the waiting
side's round ends.

The construction consumes *reliable broadcast* as a primitive; we run it
over the :class:`~repro.core.srb_oracle.SRBOracle` (SRB is a sequenced RB,
and only RB strength is used). It is packaged as a
:class:`~repro.core.rounds.RoundTransport`, so the same directionality
checker and the same Algorithm-1 SRB stack run over it unchanged.
"""

from __future__ import annotations

from typing import Any, Optional

from ..crypto.signatures import Signature, SignatureScheme, Signer
from ..errors import ConfigurationError
from ..types import ProcessId
from .rounds import Label, POST, RoundTransport
from .srb_oracle import SRBOracle, SRBSenderHandle


def _p1_domain(label: Label, payload: Any) -> tuple:
    return ("CC-P1", label, payload)


class CornerCaseRoundTransport(RoundTransport):
    """Unidirectional rounds from reliable broadcast, for ``f = 1``.

    All correct processes must eventually begin every label they expect to
    complete (rounds are collective); with ``f = 1`` at most one process
    may stay silent and the ``n-1`` waits still terminate.
    """

    def __init__(self, oracle: SRBOracle, scheme: SignatureScheme,
                 signer: Signer, f: int = 1) -> None:
        super().__init__()
        if f != 1:
            raise ConfigurationError(
                f"the corner-case construction is proven only for f=1 (got f={f}); "
                "for f>1 the paper shows it is impossible (§4.1)"
            )
        self.oracle = oracle
        self.scheme = scheme
        self.signer = signer
        self._handle: Optional[SRBSenderHandle] = None
        # per-label phase-1 records: label -> {src: (payload, sig)}
        self._p1: dict[Label, dict[ProcessId, tuple[Any, Signature]]] = {}
        # per-label phase-2 senders seen
        self._p2: dict[Label, set[ProcessId]] = {}
        self._p2_sent: set[Label] = set()

    # -- wiring -------------------------------------------------------------------

    def start(self) -> None:
        assert self.host is not None
        pid = self.host.pid
        self._handle = self.oracle.sender_handle(pid)
        self.oracle.subscribe(pid, self._on_rb_deliver)

    # -- sending ---------------------------------------------------------------------

    def _send(self, label: Label, payload: Any) -> None:
        assert self._handle is not None
        sig = self.signer.sign(_p1_domain(label, payload))
        self._handle.broadcast(("P1", label, payload, sig))

    def post(self, payload: Any) -> None:
        assert self._handle is not None
        self._handle.broadcast(("POST", payload))

    # -- the protocol ----------------------------------------------------------------

    def _on_rb_deliver(self, src: ProcessId, seq: int, value: Any) -> None:
        if not (isinstance(value, tuple) and value and isinstance(value[0], str)):
            return
        kind = value[0]
        if kind == "POST" and len(value) == 2:
            self._deliver(POST, src, value[1])
        elif kind == "P1" and len(value) == 4:
            _, label, payload, sig = value
            self._ingest_p1(src, label, payload, sig, direct_src=src)
            self._check_progress(label)
        elif kind == "P2" and len(value) == 3:
            _, label, bundle = value
            if not isinstance(bundle, tuple):
                return
            # count valid distinct signers inside the bundle
            valid_signers: set[ProcessId] = set()
            for item in bundle:
                if not (isinstance(item, tuple) and len(item) == 3):
                    continue
                p1_src, payload, sig = item
                if self._valid_p1(p1_src, label, payload, sig):
                    valid_signers.add(p1_src)
                    self._ingest_p1(p1_src, label, payload, sig, direct_src=src)
            if len(valid_signers) >= 2:
                try:
                    self._p2.setdefault(label, set()).add(src)
                except TypeError:
                    return
                self._check_progress(label)

    def _valid_p1(self, src: ProcessId, label: Label, payload: Any, sig: Any) -> bool:
        return (
            isinstance(sig, Signature)
            and sig.signer == src
            and self.scheme.verify(_p1_domain(label, payload), sig)
        )

    def _ingest_p1(self, p1_src: ProcessId, label: Label, payload: Any,
                   sig: Any, direct_src: ProcessId) -> None:
        if not self._valid_p1(p1_src, label, payload, sig):
            return
        try:
            records = self._p1.setdefault(label, {})
        except TypeError:
            return
        if p1_src not in records:
            records[p1_src] = (payload, sig)
            self._deliver(label, p1_src, payload)

    def _check_progress(self, label: Label) -> None:
        assert self.host is not None
        n = self.host.ctx.n
        records = self._p1.get(label, {})
        # Phase 1 -> Phase 2: n-1 distinct signed values collected
        if len(records) >= n - 1 and label not in self._p2_sent:
            # forward only if we ourselves are participating in this label
            if label in self._labels_used:
                self._p2_sent.add(label)
                bundle = tuple(
                    (src, payload, sig)
                    for src, (payload, sig) in sorted(records.items())
                )
                assert self._handle is not None
                self._handle.broadcast(("P2", label, bundle))
        # Phase 2 completion: n-1 distinct valid bundles
        if (
            self.active_label is not None
            and label == self.active_label
            and len(self._p2.get(label, set())) >= n - 1
        ):
            self._complete(label)
