"""SRB from trusted logs: TrInc- and A2M-based sequenced reliable broadcast.

The other direction of the paper's §3.1 equivalence ("trusted logs are
weaker than SRB" is Theorem 1; this module shows they are also *at least*
SRB): over plain asynchronous message passing, a sender equipped with a
trusted log gives everyone sequenced reliable broadcast — with **no quorum
at all** (any ``n >= f+1``), because non-equivocation is enforced by the
hardware rather than by intersecting quorums.

Construction (the classic A2M/TrInc pattern, cf. Chun et al., Levin et al.):

- the sender binds its k-th message to counter value ``k`` of its trinket
  (or entry ``k`` of its A2M log) and sends the attestation to all;
- an attestation for ``(k, m)`` is *valid* only if its counter step is
  consecutive (``prev = k-1``) — since a counter value can be bound at most
  once, at most one message can ever be valid per ``k``;
- every process echoes the first valid attestation it obtains for each
  ``k`` (attestations are transferable), giving the relay property;
- deliver in counter order, buffering out-of-order arrivals.

A Byzantine sender can skip counter values or go silent, which only makes
its *own* stream stop delivering (allowed — SRB property 1 binds only
correct senders); it can never get two messages accepted for one ``k``.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ConfigurationError
from ..hardware.a2m import A2MAuthority, A2MDevice, A2MStatement, LOOKUP
from ..hardware.trinc import Attestation, Trinket, TrincAuthority
from ..sim.process import Process
from ..types import ProcessId, SeqNum

TL_MSG = "SRB-TL"


class _TrustedLogSRBBase(Process):
    """Shared echo/ordering machinery; subclasses plug in attest/verify."""

    def __init__(self, sender: ProcessId, n: int) -> None:
        super().__init__()
        if n < 1:
            raise ConfigurationError(f"n must be positive, got {n}")
        self.sender = sender
        self.n = n
        self.my_seq: SeqNum = 0
        self.next_seq: SeqNum = 1
        self._pending: dict[SeqNum, tuple[Any, Any]] = {}  # seq -> (m, evidence)
        self._echoed: set[SeqNum] = set()

    # -- subclass hooks -----------------------------------------------------------

    def _attest_next(self, k: SeqNum, message: Any) -> Any:
        """Produce transferable evidence binding ``message`` to position ``k``."""
        raise NotImplementedError

    def _verify(self, evidence: Any) -> Optional[tuple[SeqNum, Any]]:
        """Return ``(k, m)`` if ``evidence`` validly binds m to position k."""
        raise NotImplementedError

    # -- sender API --------------------------------------------------------------

    def broadcast(self, message: Any) -> SeqNum:
        if self.pid != self.sender:
            raise ConfigurationError(
                f"process {self.pid} is not the sender ({self.sender})"
            )
        self.my_seq += 1
        k = self.my_seq
        evidence = self._attest_next(k, message)
        self.ctx.record("bcast", seq=k, value=message)
        self.ctx.broadcast((TL_MSG, evidence), include_self=True)
        return k

    def on_deliver(self, sender: ProcessId, seq: SeqNum, message: Any) -> None:
        """Application hook."""

    # -- receive path ---------------------------------------------------------------

    def on_message(self, src: ProcessId, msg: Any) -> None:
        if not (isinstance(msg, tuple) and len(msg) == 2 and msg[0] == TL_MSG):
            return
        checked = self._verify(msg[1])
        if checked is None:
            return
        k, m = checked
        if k < self.next_seq or k in self._pending:
            return
        self._pending[k] = (m, msg[1])
        if k not in self._echoed:
            self._echoed.add(k)
            self.ctx.broadcast((TL_MSG, msg[1]), include_self=False)
        self._drain()

    def _drain(self) -> None:
        while self.next_seq in self._pending:
            k = self.next_seq
            m, _evidence = self._pending.pop(k)
            self.ctx.record("bcast_deliver", sender=self.sender, seq=k, value=m)
            self.on_deliver(self.sender, k, m)
            self.next_seq = k + 1


class SRBFromTrInc(_TrustedLogSRBBase):
    """SRB where positions are consecutive TrInc counter steps.

    All processes need the :class:`~repro.hardware.trinc.TrincAuthority`;
    only the sender holds a trinket (pass ``trinket=None`` elsewhere).
    """

    def __init__(
        self,
        sender: ProcessId,
        n: int,
        authority: TrincAuthority,
        trinket: Trinket | None = None,
        counter_id: int = 0,
    ) -> None:
        super().__init__(sender, n)
        self.authority = authority
        self.trinket = trinket
        self.counter_id = counter_id

    def _attest_next(self, k: SeqNum, message: Any) -> Attestation:
        if self.trinket is None:
            raise ConfigurationError(f"process {self.pid} holds no trinket")
        att = self.trinket.attest(k, message, counter_id=self.counter_id)
        if att is None:
            raise ConfigurationError(
                f"trinket counter already past {k}; broadcast stream corrupted"
            )
        return att

    def _verify(self, evidence: Any) -> Optional[tuple[SeqNum, Any]]:
        a = evidence
        if not isinstance(a, Attestation):
            return None
        if a.counter_id != self.counter_id:
            return None
        if a.prev != a.seq - 1:  # consecutive steps only: position = seq
            return None
        if not self.authority.check(a, self.sender):
            return None
        return (a.seq, a.message)


class SRBFromA2M(_TrustedLogSRBBase):
    """SRB where positions are entries of one A2M log.

    The sender appends each message and circulates the attested LOOKUP
    statement for its entry; receivers verify with the authority.
    """

    def __init__(
        self,
        sender: ProcessId,
        n: int,
        authority: A2MAuthority,
        device: A2MDevice | None = None,
    ) -> None:
        super().__init__(sender, n)
        self.authority = authority
        self.device = device
        self._log_id: Optional[int] = None

    def _attest_next(self, k: SeqNum, message: Any) -> A2MStatement:
        if self.device is None:
            raise ConfigurationError(f"process {self.pid} holds no A2M device")
        if self._log_id is None:
            self._log_id = self.device.create_log()
        idx = self.device.append(self._log_id, message)
        if idx != k:
            raise ConfigurationError(
                f"A2M log out of step: appended at {idx}, expected {k}"
            )
        stmt = self.device.lookup(self._log_id, k)
        assert stmt is not None  # we just appended entry k
        return stmt

    def _verify(self, evidence: Any) -> Optional[tuple[SeqNum, Any]]:
        s = evidence
        if not isinstance(s, A2MStatement):
            return None
        if s.kind != LOOKUP:
            return None
        if s.log_id != 1:  # the broadcast stream is the sender's first log
            return None
        if not self.authority.check(s, self.sender):
            return None
        return (s.index, s.value)
