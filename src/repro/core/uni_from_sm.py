"""Unidirectional rounds from *every* ACL-guarded shared-memory primitive.

The paper's Claim (§3.2) is deliberately broad: *any* shared-memory system
where each process ``p_i`` has some object ``o_i`` that only ``p_i`` can
modify and everyone can read yields unidirectional communication — this
covers SWMR registers, sticky bits, PEATS, and "all objects considered in
[Malkhi et al.]". The default
:class:`~repro.core.rounds.SharedMemoryRoundTransport` uses per-process
append-only logs; this module instantiates the same write-then-scan recipe
over the other hardware:

- :class:`SWMRRoundTransport` — plain single-writer multi-reader registers;
  the owner rewrites its register with its full entry history (the classic
  encoding of a log in a register);
- :class:`PEATSRoundTransport` — one policy-enforced tuple space; the
  policy only lets process *i* insert tuples tagged with *i* and forbids
  removal, which is exactly the "modify own / read all" shape;
- :class:`StickyChainRoundTransport` — per-process chains of write-once
  sticky registers; entry ``k`` of process ``i`` lives in sticky register
  ``(i, k)``, and a scan follows each chain until the first unset cell.

All three inherit the scan/round-accounting skeleton, so the
unidirectionality argument (publish linearizes before the counted scan's
reads) is common; each subclass only redefines how to publish and read.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ConfigurationError
from ..hardware.peats import PEATS, WILDCARD, single_inserter_per_slot
from ..hardware.registers import SWMRRegister
from ..hardware.sticky import StickyRegister, UNSET
from ..sim.shared_memory import SharedObject
from ..types import ProcessId
from .rounds import SharedMemoryRoundTransport


class SWMRRoundTransport(SharedMemoryRoundTransport):
    """Write-then-scan rounds over plain SWMR registers.

    The register of process ``i`` always holds the tuple of *all* entries
    ``i`` has published (a register is overwritten, so the history must be
    carried — this is the standard register encoding of an append-only
    log and keeps reads atomic snapshots).
    """

    def __init__(self, reg_prefix: str = "swmr", **kwargs: Any) -> None:
        super().__init__(log_prefix=reg_prefix, **kwargs)
        self._my_history: list[tuple] = []

    @staticmethod
    def build_objects(n: int, prefix: str = "swmr") -> list[SWMRRegister]:
        return [SWMRRegister(f"{prefix}{i}", owner=i, initial=()) for i in range(n)]

    def _publish(self, entry: tuple) -> Optional[int]:
        assert self.host is not None
        self._my_history.append(entry)
        return self.host.ctx.invoke(
            self._log_name(self.host.pid), "write", tuple(self._my_history)
        )

    def _scan_one(self, p: ProcessId) -> Optional[int]:
        assert self.host is not None
        return self.host.ctx.invoke(self._log_name(p), "read")

    def _is_own_publish(self, object_name: str, op: str) -> bool:
        return object_name.startswith(self.log_prefix) and op == "write"

    def _ingest(self, src: ProcessId, result: Any) -> None:
        if not isinstance(result, tuple):
            return
        start = self._seen_lengths[src]
        if len(result) > start:
            self._new_data = True
            self._seen_lengths[src] = len(result)
            for entry in result[start:]:
                if isinstance(entry, tuple) and len(entry) == 2:
                    self._deliver(entry[0], src, entry[1])


class PEATSRoundTransport(SharedMemoryRoundTransport):
    """Write-then-scan rounds over one policy-enforced tuple space.

    Entries are ``(owner, seq, label, payload)``; the policy admits an
    ``out`` only when the entry's owner slot matches the inserting process,
    and rejects every ``inp`` — the space behaves as a union of
    per-process append-only logs. One ``rdall`` over the whole space is a
    scan of "all objects".
    """

    def __init__(self, space_name: str = "roundspace", **kwargs: Any) -> None:
        super().__init__(log_prefix=space_name, **kwargs)
        self.space_name = space_name
        self._my_count = 0
        self._scan_handle: Optional[int] = None

    @staticmethod
    def build_objects(n: int, space_name: str = "roundspace") -> list[PEATS]:
        return [PEATS(space_name, policy=single_inserter_per_slot(0), arity=4)]

    def _publish(self, entry: tuple) -> Optional[int]:
        assert self.host is not None
        self._my_count += 1
        label, payload = entry
        return self.host.ctx.invoke(
            self.space_name, "out", (self.host.pid, self._my_count, label, payload)
        )

    def _is_own_publish(self, object_name: str, op: str) -> bool:
        return object_name == self.space_name and op == "out"

    # one rdall is the whole scan: issue it for "process 0" and skip the rest
    def _scan_one(self, p: ProcessId) -> Optional[int]:
        assert self.host is not None
        if p != 0:
            return None
        return self.host.ctx.invoke(
            self.space_name, "rdall", (WILDCARD, WILDCARD, WILDCARD, WILDCARD)
        )

    def _ingest(self, src: ProcessId, result: Any) -> None:
        # ``src`` is the placeholder 0; true sources are inside the entries.
        if not isinstance(result, tuple):
            return
        for entry in result:
            if not (isinstance(entry, tuple) and len(entry) == 4):
                continue
            owner, seq, label, payload = entry
            if not isinstance(owner, int):
                continue
            key = owner
            if isinstance(seq, int) and seq > self._seen_lengths.get(key, 0):
                self._seen_lengths[key] = seq
                self._new_data = True
            self._deliver(label, owner, payload)


class StickyChainRoundTransport(SharedMemoryRoundTransport):
    """Write-then-scan rounds over chains of write-once sticky registers.

    Process ``i``'s k-th entry is written (once, ever) into sticky register
    ``sticky_{i}_{k}``; scanning a process means following its chain from
    the last known set cell until the first unset one. ``capacity`` bounds
    each chain (sticky registers must be pre-allocated).
    """

    def __init__(self, capacity: int = 64, reg_prefix: str = "sticky", **kwargs: Any) -> None:
        super().__init__(log_prefix=reg_prefix, **kwargs)
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._my_count = 0
        self._chain_ptr: dict[ProcessId, int] = {}
        self._chain_done: set[ProcessId] = set()

    @staticmethod
    def build_objects(n: int, capacity: int = 64,
                      prefix: str = "sticky") -> list[StickyRegister]:
        return [
            StickyRegister(f"{prefix}_{i}_{k}", owner=i)
            for i in range(n)
            for k in range(capacity)
        ]

    def _cell(self, p: ProcessId, k: int) -> str:
        return f"{self.log_prefix}_{p}_{k}"

    def _publish(self, entry: tuple) -> Optional[int]:
        assert self.host is not None
        if self._my_count >= self.capacity:
            raise ConfigurationError(
                f"sticky chain capacity {self.capacity} exhausted at "
                f"process {self.host.pid}"
            )
        handle = self.host.ctx.invoke(
            self._cell(self.host.pid, self._my_count), "write", entry
        )
        self._my_count += 1
        return handle

    def _is_own_publish(self, object_name: str, op: str) -> bool:
        return object_name.startswith(self.log_prefix) and op == "write"

    def _begin_scan(self) -> None:  # fresh chain-progress bookkeeping per scan
        self._chain_done = set()
        super()._begin_scan()

    def _scan_one(self, p: ProcessId) -> Optional[int]:
        assert self.host is not None
        ptr = self._chain_ptr.setdefault(p, 0)
        if ptr >= self.capacity:
            self._chain_done.add(p)
            return None
        return self.host.ctx.invoke(self._cell(p, ptr), "read")

    def handle_op_result(self, object_name, op, handle, result) -> bool:
        # chain-following: a set cell triggers a read of the next cell within
        # the same scan; an unset cell ends that process's chain for the scan.
        if handle in self._scan_handles:
            src = self._scan_handles.pop(handle)
            if result is not UNSET and isinstance(result, tuple) and len(result) == 2:
                self._new_data = True
                self._chain_ptr[src] = self._chain_ptr.get(src, 0) + 1
                self._deliver(result[0], src, result[1])
                nxt = self._scan_one(src)
                if nxt is not None:
                    self._scan_handles[nxt] = src
            if not self._scan_handles:
                self._finish_scan()
            return True
        return super().handle_op_result(object_name, op, handle, result)

    def _ingest(self, src: ProcessId, result: Any) -> None:  # pragma: no cover
        raise AssertionError("sticky transport ingests inline in handle_op_result")


ALL_SM_TRANSPORTS = {
    "append-log": SharedMemoryRoundTransport,
    "swmr": SWMRRoundTransport,
    "peats": PEATSRoundTransport,
    "sticky": StickyChainRoundTransport,
}
"""Name → transport class, for parameterized tests and the FIG1 bench."""


def build_objects_for(name: str, n: int) -> list[SharedObject]:
    """Build the shared objects the named transport needs for ``n`` processes."""
    if name == "append-log":
        return list(SharedMemoryRoundTransport.build_logs(n))
    if name == "swmr":
        return list(SWMRRoundTransport.build_objects(n))
    if name == "peats":
        return list(PEATSRoundTransport.build_objects(n))
    if name == "sticky":
        return list(StickyChainRoundTransport.build_objects(n))
    raise ConfigurationError(f"unknown shared-memory transport {name!r}")
