"""The paper's contribution, executable.

- :mod:`~repro.core.rounds` — the round engine and its transports (shared
  memory = unidirectional; async message passing = zero-directional;
  lock-step = bidirectional; timed = unidirectional at 2Δ).
- :mod:`~repro.core.directionality` — the bi/uni/zero checkers.
- :mod:`~repro.core.srb` — sequenced reliable broadcast spec + checker.
- :mod:`~repro.core.srb_from_uni` — Algorithm 1 (L1/L2 proofs, n ≥ 2t+1).
- :mod:`~repro.core.srb_from_trinc` — SRB from trusted logs (no quorum).
- :mod:`~repro.core.trinc_from_srb` — Theorem 1 (SRB ⇒ TrInc interface).
- :mod:`~repro.core.srb_oracle` — idealized SRB for constructions above it.
- :mod:`~repro.core.uni_from_sm` — §3.2 over SWMR / PEATS / sticky bits.
- :mod:`~repro.core.uni_from_rb_corner` — Appendix B (f = 1 corner case).
- :mod:`~repro.core.separations` — §4.1's three scenarios, executed.
- :mod:`~repro.core.classification` — Figure 1 as runnable arrows.
"""

from .classification import (
    ARROWS,
    Arrow,
    ArrowEvidence,
    ClassificationResult,
    NODES,
    render_figure,
    run_classification,
)
from .directionality import (
    BIDIRECTIONAL,
    DirectionalityReport,
    DirectionalityStreamChecker,
    UNIDIRECTIONAL,
    ZERO_DIRECTIONAL,
    check_directionality,
)
from .rounds import (
    Label,
    LockStepRoundTransport,
    MessagePassingRoundTransport,
    POST,
    RoundProcess,
    RoundTransport,
    SharedMemoryRoundTransport,
    TimedRoundTransport,
)
from .separations import (
    CandidateSRBRound,
    SeparationOutcome,
    run_srb_separation,
)
from .srb import (
    SRBLivenessChecker,
    SRBReport,
    SRBStreamChecker,
    SRBroadcast,
    check_srb,
    check_srb_liveness,
    deliveries_by_process,
)
from .srb_from_trinc import SRBFromA2M, SRBFromTrInc
from .srb_from_uni import (
    SRBFromUnidirectional,
    build_mp_srb_system,
    build_sm_srb_system,
    validate_l2,
)
from .srb_oracle import SRBOracle, SRBSenderHandle
from .trinc_from_srb import SRBAttestation, SRBTrincVerifier, SRBTrinket
from .uni_from_rb_corner import CornerCaseRoundTransport
from .uni_from_sm import (
    ALL_SM_TRANSPORTS,
    PEATSRoundTransport,
    StickyChainRoundTransport,
    SWMRRoundTransport,
    build_objects_for,
)

__all__ = [
    "ALL_SM_TRANSPORTS",
    "ARROWS",
    "Arrow",
    "ArrowEvidence",
    "BIDIRECTIONAL",
    "CandidateSRBRound",
    "ClassificationResult",
    "CornerCaseRoundTransport",
    "DirectionalityReport",
    "Label",
    "LockStepRoundTransport",
    "MessagePassingRoundTransport",
    "NODES",
    "PEATSRoundTransport",
    "POST",
    "RoundProcess",
    "RoundTransport",
    "SRBAttestation",
    "SRBFromA2M",
    "SRBFromTrInc",
    "SRBFromUnidirectional",
    "SRBOracle",
    "SRBReport",
    "SRBSenderHandle",
    "SRBTrincVerifier",
    "SRBTrinket",
    "SRBroadcast",
    "SeparationOutcome",
    "SharedMemoryRoundTransport",
    "StickyChainRoundTransport",
    "SWMRRoundTransport",
    "TimedRoundTransport",
    "UNIDIRECTIONAL",
    "ZERO_DIRECTIONAL",
    "build_objects_for",
    "build_mp_srb_system",
    "build_sm_srb_system",
    "DirectionalityStreamChecker",
    "SRBLivenessChecker",
    "SRBStreamChecker",
    "check_directionality",
    "check_srb",
    "check_srb_liveness",
    "deliveries_by_process",
    "render_figure",
    "run_classification",
    "run_srb_separation",
    "validate_l2",
]
