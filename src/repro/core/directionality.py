"""Directionality checkers: bidirectional / unidirectional / zero-directional.

The paper's central definitions (Section 3.2 and the draft's "Old stuff"
section) quantify, for rounds, how much communication between pairs of
correct processes is guaranteed:

- **bidirectional**: if p sends to q in round r, q receives p's round-r
  message before q begins round r+1;
- **unidirectional**: if p and q both send in round r, at least one of them
  receives the other's round-r message before its own round r ends;
- **zero-directional**: neither direction is guaranteed.

These are properties of *systems* (all schedules), so a single trace can
refute a level but never prove it. The checker therefore reports, per
trace: which levels were *violated*, and the strongest level *consistent
with* the trace. Benches run many adversarial schedules and aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import PropertyViolation
from ..sim.trace import Trace
from ..types import ProcessId, RoundId

BIDIRECTIONAL = "bidirectional"
UNIDIRECTIONAL = "unidirectional"
ZERO_DIRECTIONAL = "zero-directional"


@dataclass(frozen=True, slots=True)
class PairViolation:
    """A pair of correct processes and a round where a guarantee failed."""

    p: ProcessId
    q: ProcessId
    round: RoundId
    detail: str


@dataclass(slots=True)
class DirectionalityReport:
    """Result of checking one trace."""

    rounds_checked: int = 0
    pairs_checked: int = 0
    bidirectional_violations: list[PairViolation] = field(default_factory=list)
    unidirectional_violations: list[PairViolation] = field(default_factory=list)

    @property
    def is_bidirectional(self) -> bool:
        """No bidirectional violation observed (necessary, not sufficient)."""
        return not self.bidirectional_violations

    @property
    def is_unidirectional(self) -> bool:
        return not self.unidirectional_violations

    def classify(self) -> str:
        """Strongest directionality level consistent with this trace."""
        if self.is_bidirectional:
            return BIDIRECTIONAL
        if self.is_unidirectional:
            return UNIDIRECTIONAL
        return ZERO_DIRECTIONAL

    def assert_unidirectional(self) -> None:
        if self.unidirectional_violations:
            v = self.unidirectional_violations[0]
            raise PropertyViolation(
                "unidirectionality",
                f"pair ({v.p}, {v.q}) round {v.round}: {v.detail} "
                f"(+{len(self.unidirectional_violations) - 1} more)",
            )


@dataclass(frozen=True, slots=True)
class _RoundView:
    """What one process did in one of its rounds, in trace-index terms."""

    sent_index: Optional[int]  # None: participated without sending
    end_index: Optional[int]  # None: round never completed in this trace
    received_from: dict[ProcessId, int]  # src -> first receive index for this round


def _collect(trace: Trace, pids: Iterable[ProcessId]) -> dict[ProcessId, dict[RoundId, _RoundView]]:
    pidset = set(pids)
    sent: dict[tuple[ProcessId, RoundId], int] = {}
    ended: dict[tuple[ProcessId, RoundId], int] = {}
    received: dict[tuple[ProcessId, RoundId], dict[ProcessId, int]] = {}
    for ev in trace:
        if ev.pid not in pidset:
            continue
        if ev.kind == "round_sent":
            sent.setdefault((ev.pid, ev.field("round")), ev.index)
        elif ev.kind == "round_end":
            ended.setdefault((ev.pid, ev.field("round")), ev.index)
        elif ev.kind == "round_recv":
            r = ev.field("round")
            src = ev.field("src")
            received.setdefault((ev.pid, r), {}).setdefault(src, ev.index)
    out: dict[ProcessId, dict[RoundId, _RoundView]] = {p: {} for p in pidset}
    keys = set(sent) | set(ended) | set(received)
    for p, r in keys:
        out[p][r] = _RoundView(
            sent_index=sent.get((p, r)),
            end_index=ended.get((p, r)),
            received_from=received.get((p, r), {}),
        )
    return out


def check_directionality(
    trace: Trace, correct: Iterable[ProcessId]
) -> DirectionalityReport:
    """Check one trace against the three directionality definitions.

    Only rounds in which **both** processes of a pair sent are examined
    (that is the paper's premise for unidirectionality); the bidirectional
    check additionally covers the one-sided case — if p sent in round r and
    q completed its round r without hearing p, bidirectionality is violated
    regardless of whether q sent.

    Rounds that a process never completed (trace ended first) impose no
    obligation on that process but still witness receipt for the other side.
    """
    correct = sorted(set(correct))
    views = _collect(trace, correct)
    report = DirectionalityReport()
    # labels may be any hashable; preserve first-appearance order
    all_rounds = list(dict.fromkeys(r for p in correct for r in views[p]))
    report.rounds_checked = len(all_rounds)

    for i, p in enumerate(correct):
        for q in correct[i + 1 :]:
            for r in all_rounds:
                vp = views[p].get(r)
                vq = views[q].get(r)
                # --- bidirectional obligations (one-sided) ---
                for sender, receiver, vs, vr in ((p, q, vp, vq), (q, p, vq, vp)):
                    if vs is None or vs.sent_index is None:
                        continue
                    if vr is None or vr.end_index is None:
                        continue
                    got = vr.received_from.get(sender)
                    if got is None or got > vr.end_index:
                        report.bidirectional_violations.append(
                            PairViolation(
                                sender,
                                receiver,
                                r,
                                f"{receiver} ended round {r} without {sender}'s message",
                            )
                        )
                # --- unidirectional obligation (both sent) ---
                if vp is None or vq is None:
                    continue
                if vp.sent_index is None or vq.sent_index is None:
                    continue
                report.pairs_checked += 1
                p_ok = _received_in_round(vp, q)
                q_ok = _received_in_round(vq, p)
                if not p_ok and not q_ok:
                    # obligation only binds if both rounds actually ended
                    if vp.end_index is not None and vq.end_index is not None:
                        report.unidirectional_violations.append(
                            PairViolation(
                                p,
                                q,
                                r,
                                "neither process received the other's round "
                                f"{r} message before its round ended",
                            )
                        )
    return report


def _received_in_round(view: _RoundView, src: ProcessId) -> bool:
    got = view.received_from.get(src)
    if got is None:
        return False
    return view.end_index is None or got <= view.end_index
