"""Directionality checkers: bidirectional / unidirectional / zero-directional.

The paper's central definitions (Section 3.2 and the draft's "Old stuff"
section) quantify, for rounds, how much communication between pairs of
correct processes is guaranteed:

- **bidirectional**: if p sends to q in round r, q receives p's round-r
  message before q begins round r+1;
- **unidirectional**: if p and q both send in round r, at least one of them
  receives the other's round-r message before its own round r ends;
- **zero-directional**: neither direction is guaranteed.

These are properties of *systems* (all schedules), so a single trace can
refute a level but never prove it. The checker therefore reports, per
trace: which levels were *violated*, and the strongest level *consistent
with* the trace. Benches run many adversarial schedules and aggregate.

Both checking modes share one incremental core
(:class:`DirectionalityStreamChecker`): batch :func:`check_directionality`
feeds a finished trace through the per-kind indexes; attached as a live
:class:`~repro.sim.trace.TraceObserver` with ``fail_fast=True`` the same
core detects violations online — a directionality violation is permanent
the moment the relevant ``round_end`` passes without the required receipt,
so the run aborts at that exact event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import PropertyViolation
from ..sim.trace import (
    ROUND_END,
    ROUND_RECV,
    ROUND_SENT,
    Trace,
    TraceEvent,
    TraceObserver,
)
from ..types import ProcessId, RoundId

BIDIRECTIONAL = "bidirectional"
UNIDIRECTIONAL = "unidirectional"
ZERO_DIRECTIONAL = "zero-directional"


@dataclass(frozen=True, slots=True)
class PairViolation:
    """A pair of correct processes and a round where a guarantee failed."""

    p: ProcessId
    q: ProcessId
    round: RoundId
    detail: str


@dataclass(slots=True)
class DirectionalityReport:
    """Result of checking one trace."""

    rounds_checked: int = 0
    pairs_checked: int = 0
    bidirectional_violations: list[PairViolation] = field(default_factory=list)
    unidirectional_violations: list[PairViolation] = field(default_factory=list)

    @property
    def is_bidirectional(self) -> bool:
        """No bidirectional violation observed (necessary, not sufficient)."""
        return not self.bidirectional_violations

    @property
    def is_unidirectional(self) -> bool:
        return not self.unidirectional_violations

    def classify(self) -> str:
        """Strongest directionality level consistent with this trace."""
        if self.is_bidirectional:
            return BIDIRECTIONAL
        if self.is_unidirectional:
            return UNIDIRECTIONAL
        return ZERO_DIRECTIONAL

    def assert_unidirectional(self) -> None:
        if self.unidirectional_violations:
            v = self.unidirectional_violations[0]
            raise PropertyViolation(
                "unidirectionality",
                f"pair ({v.p}, {v.q}) round {v.round}: {v.detail} "
                f"(+{len(self.unidirectional_violations) - 1} more)",
            )


@dataclass(frozen=True, slots=True)
class _RoundView:
    """What one process did in one of its rounds, in trace-index terms."""

    sent_index: Optional[int]  # None: participated without sending
    end_index: Optional[int]  # None: round never completed in this trace
    received_from: dict[ProcessId, int]  # src -> first receive index for this round


class DirectionalityStreamChecker(TraceObserver):
    """Incremental round-view collection shared by batch and streaming modes.

    Maintains first-occurrence ``round_sent`` / ``round_end`` /
    ``round_recv`` indexes per ``(pid, round)`` as events arrive —
    equivalent state to the pre-refactor whole-trace ``_collect`` scan.
    :meth:`finish` then runs the pair/round audit over the collected views
    and produces the exact same report as the old batch checker.

    With ``fail_fast=True`` the checker also evaluates obligations online,
    at the events where they become *definite*: a ``round_end`` that passes
    without the required receipt (later receives carry higher trace
    indexes, so they cannot retroactively satisfy the obligation), or a
    straggling ``round_sent`` arriving after the peer's round already
    ended. :meth:`finish` remains authoritative for the full report.
    """

    def __init__(
        self, correct: Iterable[ProcessId], fail_fast: bool = False
    ) -> None:
        self.correct = sorted(set(correct))
        self._pidset = set(self.correct)
        self.fail_fast = fail_fast
        self.sent: dict[tuple[ProcessId, RoundId], int] = {}
        self.ended: dict[tuple[ProcessId, RoundId], int] = {}
        self.received: dict[tuple[ProcessId, RoundId], dict[ProcessId, int]] = {}
        self.round_order: dict[RoundId, None] = {}
        self.online_violations: list[tuple[int, PairViolation]] = []

    # -- streaming ---------------------------------------------------------

    def on_event(self, ev: TraceEvent) -> None:
        if ev.pid not in self._pidset:
            return
        if ev.kind == ROUND_SENT:
            r = ev.field("round")
            self.round_order.setdefault(r, None)
            if (ev.pid, r) not in self.sent:
                self.sent[(ev.pid, r)] = ev.index
                if self.fail_fast:
                    self._check_late_send(ev, ev.pid, r)
        elif ev.kind == ROUND_END:
            r = ev.field("round")
            self.round_order.setdefault(r, None)
            if (ev.pid, r) not in self.ended:
                self.ended[(ev.pid, r)] = ev.index
                if self.fail_fast:
                    self._check_round_end(ev, ev.pid, r)
        elif ev.kind == ROUND_RECV:
            r = ev.field("round")
            self.round_order.setdefault(r, None)
            src = ev.field("src")
            self.received.setdefault((ev.pid, r), {}).setdefault(src, ev.index)

    def _got_in_round(self, p: ProcessId, r: RoundId, src: ProcessId) -> bool:
        got = self.received.get((p, r), {}).get(src)
        if got is None:
            return False
        end = self.ended.get((p, r))
        return end is None or got <= end

    def _check_round_end(self, ev: TraceEvent, p: ProcessId, r: RoundId) -> None:
        # p's round r just ended; any sender already on record whose message
        # p has not received in-round is now a definite bidirectional miss.
        for s in self.correct:
            if s == p or (s, r) not in self.sent:
                continue
            if not self._got_in_round(p, r, s):
                self._flag(
                    ev,
                    PairViolation(
                        s, p, r, f"{p} ended round {r} without {s}'s message"
                    ),
                    bidirectional=True,
                )
        # unidirectional: pairs where both sent and both have now ended with
        # neither having heard the other in-round.
        if (p, r) not in self.sent:
            return
        for q in self.correct:
            if q == p or (q, r) not in self.sent or (q, r) not in self.ended:
                continue
            if not self._got_in_round(p, r, q) and not self._got_in_round(q, r, p):
                a, b = (p, q) if p < q else (q, p)
                self._flag(
                    ev,
                    PairViolation(
                        a,
                        b,
                        r,
                        "neither process received the other's round "
                        f"{r} message before its round ended",
                    ),
                    bidirectional=False,
                )

    def _check_late_send(self, ev: TraceEvent, s: ProcessId, r: RoundId) -> None:
        # s's first round-r send arrived after some peers already ended round
        # r — those peers can no longer have received it in-round.
        for p in self.correct:
            if p == s or (p, r) not in self.ended:
                continue
            if not self._got_in_round(p, r, s):
                self._flag(
                    ev,
                    PairViolation(
                        s, p, r, f"{p} ended round {r} without {s}'s message"
                    ),
                    bidirectional=True,
                )

    def _flag(
        self, ev: TraceEvent, violation: PairViolation, bidirectional: bool
    ) -> None:
        self.online_violations.append((ev.index, violation))
        if self.fail_fast and not bidirectional:
            raise PropertyViolation(
                "unidirectionality-stream",
                f"event #{ev.index} (t={ev.time:g}): pair "
                f"({violation.p}, {violation.q}) round {violation.round}: "
                f"{violation.detail}",
            )

    # -- batch feeding -----------------------------------------------------

    def consume(self, trace: Trace) -> "DirectionalityStreamChecker":
        """Feed a finished trace through the per-kind indexes.

        First-occurrence indexes are insensitive to interleaving across
        kinds, so feeding kind by kind reproduces the chronological scan's
        state exactly (online checks are skipped — they assume event
        order — and :meth:`finish` does the full audit).
        """
        online, self.fail_fast = self.fail_fast, False
        try:
            for kind in (ROUND_SENT, ROUND_END, ROUND_RECV):
                for ev in trace.events(kind):
                    self.on_event(ev)
        finally:
            self.fail_fast = online
        return self

    # -- final audit -------------------------------------------------------

    def views(self) -> dict[ProcessId, dict[RoundId, _RoundView]]:
        out: dict[ProcessId, dict[RoundId, _RoundView]] = {
            p: {} for p in self.correct
        }
        keys = set(self.sent) | set(self.ended) | set(self.received)
        for p, r in keys:
            out[p][r] = _RoundView(
                sent_index=self.sent.get((p, r)),
                end_index=self.ended.get((p, r)),
                received_from=self.received.get((p, r), {}),
            )
        return out

    def finish(self) -> DirectionalityReport:
        """Audit the collected views; identical to the pre-refactor scan."""
        correct = self.correct
        views = self.views()
        report = DirectionalityReport()
        # labels may be any hashable; preserve first-appearance order
        all_rounds = list(
            dict.fromkeys(
                r for r in self.round_order
                if any(r in views[p] for p in correct)
            )
        )
        report.rounds_checked = len(all_rounds)

        for i, p in enumerate(correct):
            for q in correct[i + 1 :]:
                for r in all_rounds:
                    vp = views[p].get(r)
                    vq = views[q].get(r)
                    # --- bidirectional obligations (one-sided) ---
                    for sender, receiver, vs, vr in ((p, q, vp, vq), (q, p, vq, vp)):
                        if vs is None or vs.sent_index is None:
                            continue
                        if vr is None or vr.end_index is None:
                            continue
                        got = vr.received_from.get(sender)
                        if got is None or got > vr.end_index:
                            report.bidirectional_violations.append(
                                PairViolation(
                                    sender,
                                    receiver,
                                    r,
                                    f"{receiver} ended round {r} without {sender}'s message",
                                )
                            )
                    # --- unidirectional obligation (both sent) ---
                    if vp is None or vq is None:
                        continue
                    if vp.sent_index is None or vq.sent_index is None:
                        continue
                    report.pairs_checked += 1
                    p_ok = _received_in_round(vp, q)
                    q_ok = _received_in_round(vq, p)
                    if not p_ok and not q_ok:
                        # obligation only binds if both rounds actually ended
                        if vp.end_index is not None and vq.end_index is not None:
                            report.unidirectional_violations.append(
                                PairViolation(
                                    p,
                                    q,
                                    r,
                                    "neither process received the other's round "
                                    f"{r} message before its round ended",
                                )
                            )
        return report


def check_directionality(
    trace: Trace, correct: Iterable[ProcessId]
) -> DirectionalityReport:
    """Check one trace against the three directionality definitions.

    Only rounds in which **both** processes of a pair sent are examined
    (that is the paper's premise for unidirectionality); the bidirectional
    check additionally covers the one-sided case — if p sent in round r and
    q completed its round r without hearing p, bidirectionality is violated
    regardless of whether q sent.

    Rounds that a process never completed (trace ended first) impose no
    obligation on that process but still witness receipt for the other side.
    """
    return DirectionalityStreamChecker(correct).consume(trace).finish()


def _received_in_round(view: _RoundView, src: ProcessId) -> bool:
    got = view.received_from.get(src)
    if got is None:
        return False
    return view.end_index is None or got <= view.end_index
