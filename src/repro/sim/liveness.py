"""Deadline bookkeeping shared by the streaming liveness auditors.

Safety checkers flag events that *happened* wrongly; liveness checkers must
flag events that *failed to happen* by some bound. The streaming form of
that is a deadline heap: each obligation ("request r completes", "view
change to v terminates at replica p", "broadcast #s reaches receiver q")
registers a key and an absolute deadline; each observed event first
advances virtual time, expiring every obligation whose deadline passed —
a *permanent* violation, since the obligation was for a time range now in
the past — and then may satisfy obligations.

Batch and streaming verdicts are identical by construction: the batch path
replays the recorded trace through the same monitor in event order, and
:meth:`DeadlineMonitor.flush` expires obligations whose deadlines fall
before the end of the observed run. Obligations whose deadlines lie
*beyond* the end of the run are reported as ``unresolved`` rather than
violated — the run simply did not last long enough to judge them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Hashable, Optional

from ..errors import PropertyViolation
from ..types import Time

__all__ = ["DeadlineMonitor", "LivenessReport", "Obligation"]


@dataclass(slots=True)
class LivenessReport:
    """Verdict of a deadline-based liveness audit."""

    violations: list[str] = field(default_factory=list)
    unresolved: list[str] = field(default_factory=list)
    obligations_armed: int = 0
    obligations_satisfied: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_ok(self) -> None:
        if not self.ok:
            raise PropertyViolation("liveness", "; ".join(self.violations[:3]))


class Obligation:
    """One pending liveness obligation (slots; thousands may be live)."""

    __slots__ = ("key", "deadline", "message", "done")

    def __init__(self, key: Hashable, deadline: Time, message: str):
        self.key = key
        self.deadline = deadline
        self.message = message
        self.done = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Obligation({self.key!r}, by={self.deadline}, done={self.done})"


class DeadlineMonitor:
    """A heap of keyed obligations with lazy-deletion satisfaction.

    - :meth:`expect` registers an obligation (re-registering a live key
      replaces its deadline — the laxer of the two wins, so repeated
      ``expect`` calls cannot tighten an already-promised bound);
    - :meth:`satisfy` discharges a key (no-op if absent — liveness events
      may be reported more than once);
    - :meth:`advance` pops every obligation whose deadline is strictly
      before ``now`` and returns them as violations;
    - :meth:`flush` does the same for an end-of-run time and additionally
      reports the still-pending tail as unresolved.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[Time, int, Obligation]] = []
        self._live: dict[Hashable, Obligation] = {}
        self._seq = 0  # FIFO tiebreak for equal deadlines → deterministic order

    def __len__(self) -> int:
        return len(self._live)

    def pending(self) -> list[Obligation]:
        """Live obligations, soonest deadline first (for reports/tests)."""
        return sorted(self._live.values(), key=lambda o: (o.deadline, o.message))

    def expect(self, key: Hashable, deadline: Time, message: str) -> None:
        prior = self._live.get(key)
        if prior is not None:
            if deadline <= prior.deadline:
                return
            prior.done = True  # superseded; lazy-deleted from the heap
        ob = Obligation(key, deadline, message)
        self._live[key] = ob
        heapq.heappush(self._heap, (deadline, self._seq, ob))
        self._seq += 1

    def satisfy(self, key: Hashable) -> bool:
        ob = self._live.pop(key, None)
        if ob is None:
            return False
        ob.done = True
        return True

    def advance(self, now: Time) -> list[Obligation]:
        """Expire obligations with ``deadline < now``; they are permanent."""
        expired: list[Obligation] = []
        heap = self._heap
        while heap and heap[0][0] < now:
            _, _, ob = heapq.heappop(heap)
            if ob.done:
                continue
            self._live.pop(ob.key, None)
            expired.append(ob)
        return expired

    def flush(self, end_time: Optional[Time]) -> tuple[list[Obligation], list[Obligation]]:
        """End-of-run audit: ``(violated, unresolved)``.

        ``violated`` are obligations due strictly before ``end_time``;
        ``unresolved`` are the rest — the run ended before their deadline,
        so no verdict is possible. ``end_time=None`` treats everything
        still pending as unresolved (no final clock available).
        """
        violated = self.advance(end_time) if end_time is not None else []
        unresolved = self.pending()
        for ob in unresolved:
            ob.done = True
        self._live.clear()
        self._heap.clear()
        return violated, unresolved
