"""Process model for message-passing simulations.

A process is an event-driven state machine: the simulation calls
``on_start`` once, then ``on_message`` / ``on_timer`` / ``on_op_result`` as
events arrive. All interaction with the outside world goes through the
:class:`Context` capability the simulation injects — processes never touch
the scheduler or network directly, which is what lets the simulation
interpose crashes, Byzantine wrappers, and trace recording uniformly.
"""

from __future__ import annotations

import random
from typing import Any, Optional, TYPE_CHECKING

from ..errors import SimulationError
from ..types import ProcessId, Time
from .trace import DECIDE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .runner import Simulation


class Context:
    """Per-process capability for acting on the simulated world.

    Each live process owns exactly one context. Crashing a process disables
    its context, after which all actions become silent no-ops — mirroring a
    crashed machine whose queued instructions have no external effect.
    """

    __slots__ = ("_sim", "_pid", "_alive", "rng", "_incarnation")

    def __init__(
        self,
        sim: "Simulation",
        pid: ProcessId,
        rng: random.Random,
        incarnation: int = 0,
    ) -> None:
        self._sim = sim
        self._pid = pid
        self._alive = True
        self.rng = rng
        self._incarnation = incarnation

    # -- identity ----------------------------------------------------------

    @property
    def pid(self) -> ProcessId:
        return self._pid

    @property
    def incarnation(self) -> int:
        """0 for the original boot, k after the k-th crash-recovery restart.

        Protocols normally ignore this; recovery-aware code (and tests) can
        use it to tell reboots apart in traces.
        """
        return self._incarnation

    @property
    def n(self) -> int:
        return self._sim.n

    @property
    def seed(self) -> int:
        """The run seed — for deriving auxiliary deterministic RNG streams.

        Prefer ``ctx.rng`` for protocol randomness; use the seed only to
        derive *independent* streams (e.g. retransmit jitter) whose draws
        must not perturb, or be perturbed by, protocol-level RNG use.
        """
        return self._sim.seed

    @property
    def now(self) -> Time:
        return self._sim.now

    @property
    def alive(self) -> bool:
        return self._alive

    # -- messaging -----------------------------------------------------------

    def send(self, dst: ProcessId, msg: Any) -> None:
        """Send ``msg`` to ``dst`` over the adversarial network."""
        if not self._alive:
            return
        self._sim.network.submit(self._pid, dst, msg)

    def broadcast(self, msg: Any, include_self: bool = True) -> None:
        """Send ``msg`` to every process (the paper's "send to all").

        ``include_self`` defaults to True: "all" in the paper's pseudocode
        includes the sender, and self-delivery goes through the network like
        any other message (the adversary may delay it).
        """
        if not self._alive:
            return
        for dst in range(self._sim.n):
            if dst == self._pid and not include_self:
                continue
            self._sim.network.submit(self._pid, dst, msg)

    # -- timers ---------------------------------------------------------------

    def set_timer(self, delay: float, tag: Any) -> Optional[int]:
        """Schedule ``on_timer(tag)`` after ``delay``; returns a cancellable id."""
        if not self._alive:
            return None
        return self._sim.set_timer(self._pid, delay, tag)

    def cancel_timer(self, timer_id: int) -> None:
        if not self._alive:
            return
        self._sim.cancel_timer(timer_id)

    # -- shared memory ---------------------------------------------------------

    def invoke(self, object_name: str, op: str, *args: Any) -> Optional[int]:
        """Asynchronously invoke a shared-memory operation.

        The operation linearizes and responds at adversary-chosen later
        times; the result arrives via ``on_op_result``. Returns an
        invocation handle for correlating the response.
        """
        if not self._alive:
            return None
        return self._sim.memory.invoke(self._pid, object_name, op, args)

    # -- protocol-level trace records --------------------------------------------

    def decide(self, value: Any) -> None:
        """Record that this process commits/decides ``value``."""
        if not self._alive:
            return
        self._sim.trace.record(self._sim.now, DECIDE, self._pid, value=value)

    def record(self, kind: str, **fields: Any) -> None:
        """Record a protocol-defined trace event attributed to this process."""
        if not self._alive:
            return
        self._sim.trace.record(self._sim.now, kind, self._pid, **fields)

    # -- lifecycle (simulation-internal) -------------------------------------------

    def _kill(self) -> None:
        self._alive = False


class Process:
    """Base class for event-driven processes.

    Subclasses override the ``on_*`` hooks. ``self.ctx`` and ``self.pid``
    are injected by the simulation before ``on_start``; accessing them
    earlier raises.
    """

    def __init__(self) -> None:
        self._ctx: Optional[Context] = None

    # -- wiring -------------------------------------------------------------

    @property
    def ctx(self) -> Context:
        if self._ctx is None:
            raise SimulationError(
                f"{type(self).__name__} used before being attached to a simulation"
            )
        return self._ctx

    @property
    def pid(self) -> ProcessId:
        return self.ctx.pid

    def _attach(self, ctx: Context) -> None:
        if self._ctx is not None:
            raise SimulationError(
                f"{type(self).__name__} attached to two simulations"
            )
        self._ctx = ctx

    # -- crash recovery ------------------------------------------------------

    def remake(self) -> "Process":
        """Build the replacement instance for a crash-recovery restart.

        Called by :meth:`~repro.sim.runner.Simulation.restart` when no
        explicit factory is given. The replacement starts with fresh
        *volatile* state; durable state (trusted hardware, shared-memory
        objects) lives outside the process and is re-wired by the override.
        The default refuses: most protocols need constructor arguments the
        simulation cannot guess.
        """
        raise SimulationError(
            f"{type(self).__name__} does not implement remake(); pass a "
            "factory to Simulation.restart"
        )

    # -- event hooks ------------------------------------------------------------

    def on_start(self) -> None:
        """Called once when the simulation starts."""

    def on_message(self, src: ProcessId, msg: Any) -> None:
        """Called when a network message from ``src`` is delivered."""

    def on_timer(self, tag: Any) -> None:
        """Called when a timer set via ``ctx.set_timer`` fires."""

    def on_op_result(self, object_name: str, op: str, handle: int, result: Any) -> None:
        """Called when a shared-memory invocation completes."""
