"""Deterministic discrete-event scheduler: keyed heap + hierarchical timer wheel.

Determinism contract (unchanged since the first version): given the same
seed and the same sequence of ``schedule`` calls, a run produces the
identical event order on any platform — there is no wall-clock anywhere
and ties break by creation order. Everything below is an *implementation*
of global ``(time, creation_seq)`` order, never a relaxation of it.

Three structural changes over the pre-refactor loop (retained verbatim in
:mod:`repro.sim._reference` as the golden-determinism and benchmark
baseline):

- **Keyed heap entries.** The heap stores ``(time, seq, Event)`` tuples,
  not events. ``seq`` is globally unique, so a comparison never reaches
  the event object — every sift and ``heapify`` runs entirely on C-level
  float/int tuple comparisons instead of one Python ``__lt__`` call per
  level. On a 10^5-element pending set that turns a ~30-call Python pop
  into a C operation; it is the single largest win on deep-queue runs.
- **A hierarchical timer wheel** for :class:`~repro.sim.events.TimerFire`
  payloads. Timer churn dominates long runs — retransmission layers and
  adaptive-timeout policies arm timers they almost always cancel before
  expiry. A wheel-parked timer costs one dict-bucket append to arm and an
  O(1) mark to cancel; a cancelled timer evaporates when its bucket
  drains, having never touched the heap or a compaction pass. The wheel
  never dispatches: buckets whose time window the run loop is about to
  enter are drained *into the heap first* (events keep their original
  ``(time, seq)`` keys), so the heap top is the true global minimum at
  every dispatch — bit-identical order with the reference, property-
  tested in ``tests/test_simcore_determinism.py``.
- **A bounded free-list** recycling ``TimerFire`` event slots after
  dispatch (or tombstone sweep), sparing allocator/GC traffic on
  timer-heavy runs. Only timer events are recycled: their single external
  reference — the owning :class:`~repro.sim.runner.Simulation`'s timer
  table — is dropped before any user code runs, whereas callback/delivery
  events may be retained by producers (the SRB oracle chains them via
  ``after``) and must keep their identity forever. Consequence: a raw
  ``Event`` handle for a *timer* is invalidated once that timer fires or
  its tombstone is swept (the slot may already be a different event);
  cancel timers through ``Simulation.cancel_timer``, which tracks
  liveness. Cancel-after-fire on retained non-timer events stays inert
  exactly as before.

Controlled-schedule mode (bounded model checking) bypasses both the wheel
and the free-list: schedule ids index canonical ``co_enabled`` order and
must replay against byte-stable event identities, so timers go straight
to the heap and nothing is recycled there.
"""

from __future__ import annotations

import heapq
import math
import time as _time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ..errors import SimulationError
from ..types import Time
from .events import Event, Payload, TimerFire

_INF = math.inf


@dataclass(slots=True)
class RunStats:
    """Summary of one scheduler run segment."""

    events_processed: int = 0
    end_time: Time = 0.0
    exhausted: bool = False
    """True when the queue emptied (quiescence) rather than hitting a limit."""
    timer_wheel_hits: int = 0
    """Timers routed through the wheel during this segment (bucketed
    instead of heap-pushed) — deterministic for a fixed seed."""
    freelist_reuses: int = 0
    """Events allocated from the free-list during this segment instead of
    freshly — deterministic for a fixed seed."""
    events_per_sec: float = 0.0
    """Dispatch throughput of this segment (wall-clock derived — the one
    nondeterministic field; determinism comparisons must exclude it)."""
    consensus: Optional[dict] = None
    """Aggregated replication-pipeline counters (batches flushed, proposal
    stalls, window occupancy, noop slots, batch-size histogram), merged by
    the runner over every hosted process exposing ``consensus_stats()``.
    ``None`` when no process does. Deterministic for a fixed seed."""
    service: Optional[dict] = None
    """Aggregated serving-layer counters (queue depth peaks, admitted /
    shed / degraded-mode tallies), summed by the runner over every hosted
    process exposing ``service_stats()``. ``None`` when no process does.
    Counter values are pure functions of the seed, so the dict belongs in
    the deterministic fields."""

    def deterministic_fields(self) -> tuple:
        """Everything but the wall-clock throughput, for bit-identity checks."""
        return (
            self.events_processed,
            self.end_time,
            self.exhausted,
            self.timer_wheel_hits,
            self.freelist_reuses,
            self.consensus,
            self.service,
        )


class _TimerWheel:
    """Sparse hierarchical timer wheel over virtual (float) time.

    Three tiers of slot granularity ``base``, ``base*fanout``,
    ``base*fanout²``; a timer lands in the finest tier whose horizon
    (``fanout`` slots) covers its distance from *now* at insert time.
    Buckets are plain lists in insertion order, keyed by the single int
    ``(slot << 2) | tier`` — int dict keys hash for free, and the whole
    arm path is one if-chain, one division, one ``dict.get`` and one
    ``list.append`` (inlined in :meth:`Scheduler._enqueue`; it is the
    hottest code in timer-heavy runs). A mini-heap of
    ``(window_start, key)`` pairs tracks
    un-drained buckets, and ``next_start`` caches the earliest window so
    the run loop's per-dispatch merge check is one attribute read.

    Draining moves a bucket's surviving events into the caller's keyed
    heap (tombstones are swept without ever touching it); events carry
    their original ``(time, seq)`` keys so the merged order is exact. A
    bucket is drained once its *window start* reaches the dispatch
    candidate's time — events later in the window enter the heap a little
    early, which costs a few C comparisons but can never reorder anything.
    """

    __slots__ = ("base", "fanout", "h0", "h1", "g1", "g2", "buckets",
                 "bucket_heap", "next_start", "live", "tombstones")

    def __init__(self, base: float, fanout: int) -> None:
        self.base = base
        self.fanout = fanout
        self.h0 = base * fanout  # tier-0 horizon
        self.g1 = base * fanout  # tier-1 granularity
        self.h1 = self.g1 * fanout
        self.g2 = self.g1 * fanout  # tier-2 granularity (unbounded horizon)
        self.buckets: dict[int, list[Event]] = {}
        self.bucket_heap: list[tuple[float, int]] = []
        self.next_start = math.inf
        self.live = 0
        self.tombstones = 0

    def _refresh_next_start(self) -> None:
        heap = self.bucket_heap
        buckets = self.buckets
        while heap:
            start, key = heap[0]
            if key in buckets:
                self.next_start = start
                return
            heapq.heappop(heap)  # stale key left by a compaction rebuild
        self.next_start = math.inf

    def drain_next(self, heap: list[tuple[float, int, Event]],
                   freelist: "_FreeList") -> None:
        """Move the earliest bucket's survivors into the keyed ``heap``.

        Bulk transfer: survivors are appended and the heap re-heapified in
        one C call rather than sifted in one ``heappush`` at a time — a
        draining bucket is usually the same order of magnitude as the
        near-horizon heap it joins, where O(n) ``heapify`` beats k
        O(log n) pushes outright.
        """
        while True:
            _start, key = heapq.heappop(self.bucket_heap)
            bucket = self.buckets.pop(key, None)
            if bucket is not None:
                break
        if self.tombstones:
            survivors: list[tuple[float, int, Event]] = []
            keep = survivors.append
            for ev in bucket:
                ev.in_wheel = False
                if ev.cancelled or not ev.queued:
                    self.tombstones -= 1
                    ev.queued = False
                    freelist.release(ev)
                else:
                    keep((ev.time, ev.seq, ev))
        else:
            for ev in bucket:
                ev.in_wheel = False
            survivors = [(ev.time, ev.seq, ev) for ev in bucket]
        self.live -= len(survivors)
        heap.extend(survivors)
        heapq.heapify(heap)  # C tuple comparisons
        self._refresh_next_start()

    def compact(self, freelist: "_FreeList") -> None:
        """Sweep tombstones out of every bucket in place (O(wheel),
        amortized O(1) per cancellation — the wheel-side analog of heap
        compaction).

        Buckets are filtered, never re-keyed: an event's slot key is a
        pure function of its (immutable) time, so surviving events stay
        exactly where they are and the sweep costs one list rebuild per
        bucket instead of a tier-math insert per survivor. Emptied buckets
        drop out of the dict; their ``bucket_heap`` entries go stale and
        are skipped lazily by :meth:`_refresh_next_start` / :meth:`drain_next`.
        """
        live = 0
        release = freelist.release
        for key, bucket in list(self.buckets.items()):
            keep = []
            ap = keep.append
            for ev in bucket:
                if ev.cancelled or not ev.queued:
                    ev.queued = False
                    ev.in_wheel = False
                    release(ev)
                else:
                    ap(ev)
            if keep:
                self.buckets[key] = keep
                live += len(keep)
            else:
                del self.buckets[key]
        self.live = live
        self.tombstones = 0
        self._refresh_next_start()

    def events(self) -> Iterator[Event]:
        """Every live event still parked in the wheel, unordered."""
        for bucket in self.buckets.values():
            for ev in bucket:
                if ev.queued and not ev.cancelled:
                    yield ev


class _FreeList:
    """Bounded pool of recycled ``TimerFire`` event slots.

    The acquire side lives inlined in :meth:`Scheduler._enqueue` (the arm
    path is too hot for a method call); this class owns the pool, the
    release-side filtering, and the reuse counter.
    """

    __slots__ = ("slots", "max_size", "reuses")

    def __init__(self, max_size: int) -> None:
        self.slots: list[Event] = []
        self.max_size = max_size
        self.reuses = 0

    def release(self, ev: Event) -> None:
        """Pool ``ev``'s slot if it is a (dead) timer and there is room."""
        if type(ev.payload) is TimerFire and len(self.slots) < self.max_size:
            ev.payload = None  # type: ignore[assignment] — drop the refs now
            ev.after = None
            ev.in_wheel = False
            self.slots.append(ev)


class Scheduler:
    """Event queue with virtual time.

    The owner installs a ``dispatch`` callable that interprets event
    payloads; the scheduler itself knows nothing about processes or
    networks, which keeps it reusable for both the message-passing and
    shared-memory layers.
    """

    #: lazily-deleted events never trigger compaction below this heap size —
    #: small heaps drain their tombstones through normal pops for free
    COMPACT_MIN_HEAP = 128
    #: wheel tombstones likewise ride for free below this population
    COMPACT_MIN_WHEEL = 256
    #: timer-wheel geometry: tier k buckets span WHEEL_BASE * WHEEL_FANOUT**k
    #: time units; from a 1-unit finest slot the three tiers bracket every
    #: delay the protocol stacks draw (RTT-scale retransmits through
    #: multi-hundred-unit GST recovery timers)
    WHEEL_BASE = 1.0
    WHEEL_FANOUT = 32
    #: recycled-event pool bound — wheel buckets release their swept
    #: tombstones in per-window bursts, so the pool must hold a full
    #: window's worth of churn to keep the arm path allocation-free
    #: (~1 MB of Event slots at the bound; still trivial for memory)
    FREELIST_MAX = 8192

    def __init__(self) -> None:
        # heap entries are (time, seq, Event): seq is unique, so heap
        # comparisons stay in C and never call Event.__lt__
        self._heap: list[tuple[float, int, Event]] = []
        self._wheel = _TimerWheel(self.WHEEL_BASE, self.WHEEL_FANOUT)
        self._freelist = _FreeList(self.FREELIST_MAX)
        self._seq = 0
        self._now: Time = 0.0
        self._live = 0
        self._dead_in_heap = 0
        self.compactions = 0
        self.wheel_compactions = 0
        self.timer_wheel_hits = 0
        self._running = False
        self.dispatch: Optional[Callable[[Event], None]] = None
        self.controlled = False
        """Controlled-schedule mode (bounded model checking): the owner
        picks events with :meth:`step` instead of :meth:`run` popping heap
        order. The clock only moves forward (``max`` over dispatched event
        times) and :meth:`schedule_at` clamps past times to *now* — an
        event dispatched "early" relative to its timestamp may leave the
        clock ahead of producers that compute absolute times. The timer
        wheel and the free-list are bypassed in this mode: schedule-id
        replay depends on stable event identities and a single canonical
        pending set."""

    @property
    def now(self) -> Time:
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-dispatched, not-cancelled events.

        A live counter maintained by ``schedule``/``cancel``/``run`` — O(1),
        never a recount (long chaos runs poll this in hot loops).
        """
        return self._live

    @property
    def freelist_reuses(self) -> int:
        """Events allocated from the recycled pool instead of freshly."""
        return self._freelist.reuses

    def iter_pending(self) -> Iterator[Event]:
        """Every live (pending, not cancelled) event, unordered.

        The diagnostic view across both storage tiers — recounts and
        invariant checks must use this rather than poking at ``_heap``,
        which holds neither parked timers nor only-live entries.
        """
        for _t, _s, ev in self._heap:
            if ev.queued and not ev.cancelled:
                yield ev
        yield from self._wheel.events()

    # -- intake ------------------------------------------------------------

    def _enqueue(self, time: Time, payload: Payload,
                 after: Event | None) -> Event:
        # The arm path is the hottest code in timer-heavy runs (several
        # schedules per dispatch), so the free-list acquire and the wheel
        # insert are inlined here rather than called: the method-dispatch
        # overhead alone is a measurable fraction of a bucket append.
        seq = self._seq
        self._seq = seq + 1
        if not self.controlled:
            fl = self._freelist
            slots = fl.slots
            if slots:
                # recycled slot: release() cleared payload/after/in_wheel,
                # so only the live fields need re-initializing
                ev = slots.pop()
                ev.time = time
                ev.seq = seq
                ev.payload = payload
                ev.cancelled = False
                ev.queued = True
                ev.fired = False
                ev.after = after
                fl.reuses += 1
            else:
                ev = Event(time=time, seq=seq, payload=payload, after=after)
            if type(payload) is TimerFire and time != _INF:
                wheel = self._wheel
                dt = time - self._now
                if dt < wheel.h0:
                    g = wheel.base
                    tier = 0
                elif dt < wheel.h1:
                    g = wheel.g1
                    tier = 1
                else:
                    g = wheel.g2
                    tier = 2
                slot = int(time / g)
                key = (slot << 2) | tier
                bucket = wheel.buckets.get(key)
                if bucket is None:
                    bucket = wheel.buckets[key] = []
                    start = slot * g
                    heapq.heappush(wheel.bucket_heap, (start, key))
                    if start < wheel.next_start:
                        wheel.next_start = start
                bucket.append(ev)
                wheel.live += 1
                ev.in_wheel = True
                self.timer_wheel_hits += 1
                self._live += 1
                return ev
        else:
            ev = Event(time=time, seq=seq, payload=payload, after=after)
        heapq.heappush(self._heap, (time, seq, ev))
        self._live += 1
        return ev

    def schedule(self, delay: float, payload: Payload,
                 after: Event | None = None) -> Event:
        """Enqueue ``payload`` to occur ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._enqueue(self._now + delay, payload, after)

    def schedule_at(self, time: Time, payload: Payload,
                    after: Event | None = None) -> Event:
        """Enqueue ``payload`` at absolute virtual time ``time``."""
        if time < self._now:
            if not self.controlled:
                raise SimulationError(
                    f"cannot schedule at {time} before current time {self._now}"
                )
            # controlled mode dispatched some event "late" in virtual time;
            # absolute-time producers are clamped to now instead of rejected
            time = self._now
        return self._enqueue(time, payload, after)

    # -- cancellation ------------------------------------------------------

    def cancel(self, event: Event) -> None:
        """Mark an event so it is skipped when reached (O(1) cancellation).

        Wheel-parked timers evaporate when their bucket drains — no heap
        tombstone, no compaction share, which is the wheel's whole win on
        cancel-heavy workloads. Heap tombstones are usually drained lazily
        by :meth:`run`, but cancel-heavy non-timer load can still
        accumulate far-future tombstones that never reach the top — so
        once dead entries outnumber live ones (and the structure is past
        its ``COMPACT_MIN_*`` floor) the heap or wheel is compacted in
        place: O(n) rebuild, amortized O(1) per cancellation, keeping each
        structure within 2x its live population.
        """
        if event.cancelled:
            return
        event.cancelled = True
        if not event.queued:
            # cancel-after-fire: the event already dispatched (or was
            # swept), so there is no tombstone to count and the removal
            # already decremented the live counter
            return
        self._live -= 1
        if event.in_wheel:
            wheel = self._wheel
            wheel.live -= 1
            wheel.tombstones += 1
            size = wheel.live + wheel.tombstones
            if size > self.COMPACT_MIN_WHEEL and wheel.tombstones * 2 > size:
                wheel.compact(self._freelist)
                self.wheel_compactions += 1
            return
        self._dead_in_heap += 1
        if (
            len(self._heap) > self.COMPACT_MIN_HEAP
            and self._dead_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (event order is unaffected:
        the surviving events carry their original (time, seq) keys).

        Mutates the list in place rather than rebinding ``self._heap``:
        ``run`` works through a local alias, and a cancel issued *inside a
        dispatch callback* can land here mid-run — rebinding would leave
        the loop draining a stale list."""
        release = self._freelist.release
        live = []
        for entry in self._heap:
            ev = entry[2]
            if ev.cancelled or not ev.queued:
                ev.queued = False
                release(ev)
            else:
                live.append(entry)
        self._heap[:] = live
        heapq.heapify(self._heap)  # C tuple comparisons throughout
        self._dead_in_heap = 0
        self.compactions += 1

    # -- choice-point API (controlled-schedule mode) -----------------------

    @property
    def next_seq(self) -> int:
        """The seq the next scheduled event will get.

        The model checker snapshots this around a dispatch to identify the
        events that dispatch created (their causal parents for the
        happens-before relation).
        """
        return self._seq

    def co_enabled(self) -> list[Event]:
        """Every pending, unblocked event, sorted by ``(time, seq)``.

        The *choice set* of controlled-schedule mode: any of these could be
        dispatched next. Sorting (with the explicit seq tie-break events
        already carry) makes the enumeration bit-identical across
        processes and Python versions — schedule ids index into this
        canonical order, so replay determinism depends on it.

        An event chained behind a predecessor (``after``) is excluded
        until the predecessor has *fired*. A predecessor cancelled before
        firing therefore blocks its successors **forever**: the chain
        models a producer's ordering guarantee ("never deliver #k before
        #k-1"), and a schedule in which #k-1 can no longer happen has no
        valid position for #k — unblocking it would let the model checker
        explore deliveries the real producer could never emit. (In
        practice a chain head is only cancelled when its target crashed,
        which cancels the successors too; blocked-forever is the safe
        default for any future producer that cancels mid-chain.)
        """
        out = [
            entry
            for entry in self._heap
            if entry[2].queued
            and not entry[2].cancelled
            and not (entry[2].after is not None and not entry[2].after.fired)
        ]
        for ev in self._wheel.events():
            if not (ev.after is not None and not ev.after.fired):
                out.append((ev.time, ev.seq, ev))
        out.sort()  # C tuple sort; never reaches the Event
        return [entry[2] for entry in out]

    def step(self, ev: Event) -> None:
        """Dispatch exactly ``ev``, out of heap order (controlled mode).

        The clock advances to ``max(now, ev.time)`` — never backwards —
        because a controlled schedule may fire a logically-later event
        before a timestamp-earlier one (that is the point: the asynchronous
        adversary is not bound by the delays the producers happened to
        draw).

        Mark-and-skip: the event is flagged dispatched and left in place
        as a tombstone for lazy sweeping, replacing the old
        ``heap.remove`` + full ``heapify`` pair that made deep controlled
        explorations quadratic in heap size.
        """
        if self.dispatch is None:
            raise SimulationError("no dispatch function installed")
        if ev.cancelled or not ev.queued:
            raise SimulationError(f"cannot step a non-pending event {ev!r}")
        ev.queued = False
        ev.fired = True
        self._live -= 1
        if ev.in_wheel:
            self._wheel.live -= 1
            self._wheel.tombstones += 1
        else:
            self._dead_in_heap += 1
        self._now = max(self._now, ev.time)
        self.dispatch(ev)

    # -- main loop ---------------------------------------------------------

    def run(
        self,
        until: Time | None = None,
        max_events: int | None = None,
    ) -> RunStats:
        """Dispatch events in order until quiescence, ``until``, or ``max_events``.

        Events with time strictly greater than ``until`` stay queued (a
        subsequent ``run`` may continue). Re-entrant calls are rejected.

        The loop body is deliberately flat — bound locals, hoisted
        ``until``/``max_events`` sentinels, the free-list release inlined —
        because at 10^6 events every attribute load in here is a visible
        slice of wall clock.
        """
        if self.dispatch is None:
            raise SimulationError("no dispatch function installed")
        if self._running:
            raise SimulationError("scheduler is already running (re-entrant run)")
        self._running = True
        stats = RunStats()
        wheel_hits0 = self.timer_wheel_hits
        reuses0 = self._freelist.reuses
        wall0 = _time.perf_counter()
        heap = self._heap
        wheel = self._wheel
        freelist = self._freelist
        fslots = freelist.slots
        fmax = freelist.max_size
        release = freelist.release
        heappop = heapq.heappop
        dispatch = self.dispatch
        horizon = _INF if until is None else until
        limit = math.inf if max_events is None else max_events
        processed = 0
        try:
            while processed < limit:
                if heap:
                    t, _seq, ev = heap[0]
                    ns = wheel.next_start
                    if ns <= t and ns <= horizon:
                        # merge point: a wheel bucket's window could hold
                        # an event at or before the heap candidate
                        wheel.drain_next(heap, freelist)
                        continue
                    if ev.cancelled or not ev.queued:
                        heappop(heap)
                        ev.queued = False
                        self._dead_in_heap -= 1
                        release(ev)
                        continue
                    if t > horizon:
                        break
                    heappop(heap)
                    ev.queued = False
                    ev.fired = True
                    self._live -= 1
                    self._now = t
                    dispatch(ev)
                    processed += 1
                    # inline freelist.release (the per-dispatch fast path)
                    payload = ev.payload
                    if type(payload) is TimerFire and len(fslots) < fmax:
                        ev.payload = None  # type: ignore[assignment]
                        ev.after = None
                        ev.in_wheel = False
                        fslots.append(ev)
                else:
                    ns = wheel.next_start
                    if ns <= horizon and ns != _INF:
                        wheel.drain_next(heap, freelist)
                        continue
                    if not wheel.live:
                        stats.exhausted = True
                    break  # the wheel holds only post-``until`` timers
        finally:
            self._running = False
            stats.events_processed = processed
        if until is not None and stats.exhausted:
            # Quiescent before the horizon: advance the clock to the horizon so
            # 'run until T' always ends at T regardless of queue contents.
            self._now = max(self._now, until)
        stats.end_time = self._now
        stats.timer_wheel_hits = self.timer_wheel_hits - wheel_hits0
        stats.freelist_reuses = self._freelist.reuses - reuses0
        wall = _time.perf_counter() - wall0
        if wall > 0.0:
            stats.events_per_sec = processed / wall
        return stats
