"""Deterministic discrete-event scheduler.

A binary heap of :class:`~repro.sim.events.Event` ordered by
``(time, creation_seq)``. Determinism: given the same seed and the same
sequence of ``schedule`` calls, a run produces the identical event order on
any platform — there is no wall-clock anywhere and ties break by creation
order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import SimulationError
from ..types import Time
from .events import Event, Payload


@dataclass(slots=True)
class RunStats:
    """Summary of one scheduler run segment."""

    events_processed: int = 0
    end_time: Time = 0.0
    exhausted: bool = False
    """True when the queue emptied (quiescence) rather than hitting a limit."""


class Scheduler:
    """Event queue with virtual time.

    The owner installs a ``dispatch`` callable that interprets event
    payloads; the scheduler itself knows nothing about processes or
    networks, which keeps it reusable for both the message-passing and
    shared-memory layers.
    """

    #: lazily-deleted events never trigger compaction below this heap size —
    #: small heaps drain their tombstones through normal pops for free
    COMPACT_MIN_HEAP = 128

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now: Time = 0.0
        self._live = 0
        self._cancelled_in_heap = 0
        self.compactions = 0
        self._running = False
        self.dispatch: Optional[Callable[[Event], None]] = None

    @property
    def now(self) -> Time:
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-dispatched, not-cancelled events.

        A live counter maintained by ``schedule``/``cancel``/``run`` — O(1),
        never a heap recount (long chaos runs poll this in hot loops).
        """
        return self._live

    def schedule(self, delay: float, payload: Payload) -> Event:
        """Enqueue ``payload`` to occur ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        ev = Event(time=self._now + delay, seq=self._seq, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def schedule_at(self, time: Time, payload: Payload) -> Event:
        """Enqueue ``payload`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        ev = Event(time=time, seq=self._seq, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def cancel(self, event: Event) -> None:
        """Mark an event so it is skipped when popped (O(1) cancellation).

        Tombstones are usually drained lazily by :meth:`run`, but
        cancel-heavy workloads (restart storms re-arming timers,
        adaptive-timeout churn) can accumulate thousands of far-future
        cancelled timers that never reach the top of the heap — so once
        cancelled events outnumber live ones (and the heap is beyond
        :data:`COMPACT_MIN_HEAP`), the heap is compacted in place: O(n)
        rebuild, amortized O(1) per cancellation, keeping the heap within
        2x the live event count.
        """
        if event.cancelled:
            return
        event.cancelled = True
        if not event.queued:
            # cancel-after-fire: the event was already popped and
            # dispatched, so there is no tombstone in the heap to count
            # and the pop already decremented the live counter
            return
        self._live -= 1
        self._cancelled_in_heap += 1
        if (
            len(self._heap) > self.COMPACT_MIN_HEAP
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (event order is unaffected:
        the surviving events carry their original (time, seq) keys)."""
        live = []
        for ev in self._heap:
            if ev.cancelled:
                ev.queued = False
            else:
                live.append(ev)
        self._heap = live
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.compactions += 1

    def run(
        self,
        until: Time | None = None,
        max_events: int | None = None,
    ) -> RunStats:
        """Dispatch events in order until quiescence, ``until``, or ``max_events``.

        Events with time strictly greater than ``until`` stay queued (a
        subsequent ``run`` may continue). Re-entrant calls are rejected.
        """
        if self.dispatch is None:
            raise SimulationError("no dispatch function installed")
        if self._running:
            raise SimulationError("scheduler is already running (re-entrant run)")
        self._running = True
        stats = RunStats()
        try:
            while self._heap:
                if max_events is not None and stats.events_processed >= max_events:
                    break
                ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    ev.queued = False
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(self._heap)
                ev.queued = False
                self._live -= 1
                self._now = ev.time
                self.dispatch(ev)
                stats.events_processed += 1
            else:
                stats.exhausted = True
        finally:
            self._running = False
        if until is not None and stats.exhausted:
            # Quiescent before the horizon: advance the clock to the horizon so
            # 'run until T' always ends at T regardless of queue contents.
            self._now = max(self._now, until)
        stats.end_time = self._now
        return stats
