"""Deterministic discrete-event scheduler.

A binary heap of :class:`~repro.sim.events.Event` ordered by
``(time, creation_seq)``. Determinism: given the same seed and the same
sequence of ``schedule`` calls, a run produces the identical event order on
any platform — there is no wall-clock anywhere and ties break by creation
order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import SimulationError
from ..types import Time
from .events import Event, Payload


@dataclass(slots=True)
class RunStats:
    """Summary of one scheduler run segment."""

    events_processed: int = 0
    end_time: Time = 0.0
    exhausted: bool = False
    """True when the queue emptied (quiescence) rather than hitting a limit."""


class Scheduler:
    """Event queue with virtual time.

    The owner installs a ``dispatch`` callable that interprets event
    payloads; the scheduler itself knows nothing about processes or
    networks, which keeps it reusable for both the message-passing and
    shared-memory layers.
    """

    #: lazily-deleted events never trigger compaction below this heap size —
    #: small heaps drain their tombstones through normal pops for free
    COMPACT_MIN_HEAP = 128

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now: Time = 0.0
        self._live = 0
        self._cancelled_in_heap = 0
        self.compactions = 0
        self._running = False
        self.dispatch: Optional[Callable[[Event], None]] = None
        self.controlled = False
        """Controlled-schedule mode (bounded model checking): the owner
        picks events with :meth:`step` instead of :meth:`run` popping heap
        order. The clock only moves forward (``max`` over dispatched event
        times) and :meth:`schedule_at` clamps past times to *now* — an
        event dispatched "early" relative to its timestamp may leave the
        clock ahead of producers that compute absolute times."""

    @property
    def now(self) -> Time:
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-dispatched, not-cancelled events.

        A live counter maintained by ``schedule``/``cancel``/``run`` — O(1),
        never a heap recount (long chaos runs poll this in hot loops).
        """
        return self._live

    def schedule(self, delay: float, payload: Payload,
                 after: Event | None = None) -> Event:
        """Enqueue ``payload`` to occur ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        ev = Event(time=self._now + delay, seq=self._seq, payload=payload,
                   after=after)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def schedule_at(self, time: Time, payload: Payload,
                    after: Event | None = None) -> Event:
        """Enqueue ``payload`` at absolute virtual time ``time``."""
        if time < self._now:
            if not self.controlled:
                raise SimulationError(
                    f"cannot schedule at {time} before current time {self._now}"
                )
            # controlled mode dispatched some event "late" in virtual time;
            # absolute-time producers are clamped to now instead of rejected
            time = self._now
        ev = Event(time=time, seq=self._seq, payload=payload, after=after)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def cancel(self, event: Event) -> None:
        """Mark an event so it is skipped when popped (O(1) cancellation).

        Tombstones are usually drained lazily by :meth:`run`, but
        cancel-heavy workloads (restart storms re-arming timers,
        adaptive-timeout churn) can accumulate thousands of far-future
        cancelled timers that never reach the top of the heap — so once
        cancelled events outnumber live ones (and the heap is beyond
        :data:`COMPACT_MIN_HEAP`), the heap is compacted in place: O(n)
        rebuild, amortized O(1) per cancellation, keeping the heap within
        2x the live event count.
        """
        if event.cancelled:
            return
        event.cancelled = True
        if not event.queued:
            # cancel-after-fire: the event was already popped and
            # dispatched, so there is no tombstone in the heap to count
            # and the pop already decremented the live counter
            return
        self._live -= 1
        self._cancelled_in_heap += 1
        if (
            len(self._heap) > self.COMPACT_MIN_HEAP
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (event order is unaffected:
        the surviving events carry their original (time, seq) keys)."""
        live = []
        for ev in self._heap:
            if ev.cancelled:
                ev.queued = False
            else:
                live.append(ev)
        self._heap = live
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.compactions += 1

    # -- choice-point API (controlled-schedule mode) -----------------------

    @property
    def next_seq(self) -> int:
        """The seq the next scheduled event will get.

        The model checker snapshots this around a dispatch to identify the
        events that dispatch created (their causal parents for the
        happens-before relation).
        """
        return self._seq

    def co_enabled(self) -> list[Event]:
        """Every pending, unblocked event, sorted by ``(time, seq)``.

        The *choice set* of controlled-schedule mode: any of these could be
        dispatched next. Sorting (with the explicit seq tie-break events
        already carry) makes the enumeration bit-identical across
        processes and Python versions — schedule ids index into this
        canonical order, so replay determinism depends on it. An event
        chained behind an undispatched predecessor (``after``) is excluded
        until the predecessor fires.
        """
        out = [
            ev
            for ev in self._heap
            if not ev.cancelled
            and not (
                ev.after is not None
                and ev.after.queued
                and not ev.after.cancelled
            )
        ]
        out.sort()
        return out

    def step(self, ev: Event) -> None:
        """Dispatch exactly ``ev``, out of heap order (controlled mode).

        The clock advances to ``max(now, ev.time)`` — never backwards —
        because a controlled schedule may fire a logically-later event
        before a timestamp-earlier one (that is the point: the asynchronous
        adversary is not bound by the delays the producers happened to
        draw).
        """
        if self.dispatch is None:
            raise SimulationError("no dispatch function installed")
        if ev.cancelled or not ev.queued:
            raise SimulationError(f"cannot step a non-pending event {ev!r}")
        self._heap.remove(ev)  # O(heap); controlled runs are small by design
        heapq.heapify(self._heap)
        ev.queued = False
        self._live -= 1
        self._now = max(self._now, ev.time)
        self.dispatch(ev)

    def run(
        self,
        until: Time | None = None,
        max_events: int | None = None,
    ) -> RunStats:
        """Dispatch events in order until quiescence, ``until``, or ``max_events``.

        Events with time strictly greater than ``until`` stay queued (a
        subsequent ``run`` may continue). Re-entrant calls are rejected.
        """
        if self.dispatch is None:
            raise SimulationError("no dispatch function installed")
        if self._running:
            raise SimulationError("scheduler is already running (re-entrant run)")
        self._running = True
        stats = RunStats()
        try:
            while self._heap:
                if max_events is not None and stats.events_processed >= max_events:
                    break
                ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    ev.queued = False
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(self._heap)
                ev.queued = False
                self._live -= 1
                self._now = ev.time
                self.dispatch(ev)
                stats.events_processed += 1
            else:
                stats.exhausted = True
        finally:
            self._running = False
        if until is not None and stats.exhausted:
            # Quiescent before the horizon: advance the clock to the horizon so
            # 'run until T' always ends at T regardless of queue contents.
            self._now = max(self._now, until)
        stats.end_time = self._now
        return stats
