"""The :class:`Simulation` façade: wiring, dispatch, lifecycle.

Typical usage::

    sim = Simulation(processes=[P0(), P1(), P2()], adversary=ReliableAsynchronous(), seed=7)
    sim.declare_byzantine(2)
    sim.crash_at(1, time=5.0)
    sim.restart_at(1, time=25.0, factory=lambda: P1())  # crash-recovery
    sim.run(until=100.0)
    checker.check(sim.trace, correct=sim.fault_free_pids)

Determinism contract: a simulation is fully determined by (process code,
adversary, seed). Per-process RNG streams and the adversary stream are
derived from the seed with a cryptographic hash so adding a process does
not shift every other stream.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Callable, Iterable, Optional, Sequence

from ..errors import ConfigurationError, SimulationError
from ..types import ProcessId, Time
from .adversary import Adversary, ReliableAsynchronous
from .events import (
    Callback,
    Event,
    MessageDeliver,
    OpLinearize,
    OpRespond,
    TimerFire,
    choice_target,
    is_choice,
)
from .network import Network
from .process import Context, Process
from .scheduler import RunStats, Scheduler
from .shared_memory import SharedMemorySystem
from .trace import (
    CUSTOM,
    DELIVER,
    OP_RESPOND,
    TIMER_FIRE,
    TIMER_SET,
    TraceObserver,
    TraceStore,
)


def _derive_rng(seed: int, *labels: Any) -> random.Random:
    material = "|".join(str(x) for x in (seed, *labels)).encode()
    digest = hashlib.sha256(material).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class Simulation:
    """One deterministic execution of ``n`` processes under an adversary."""

    DEFAULT_MAX_EVENTS = 5_000_000

    def __init__(
        self,
        processes: Sequence[Process],
        adversary: Adversary | None = None,
        seed: int = 0,
        horizon: Time = float("inf"),
        trace_retention: int | None = None,
        observers: Iterable[TraceObserver] = (),
        scheduler_factory: Callable[[], Scheduler] | None = None,
    ) -> None:
        """``scheduler_factory`` swaps the event-loop implementation under
        the same simulation — any object satisfying the ``Scheduler`` API.
        Used by ``benchmarks/bench_simcore.py`` and the golden-determinism
        tests to run identical workloads over the production loop and the
        retained pre-refactor loop (:mod:`repro.sim._reference`); leave it
        ``None`` everywhere else."""
        if not processes:
            raise ConfigurationError("a simulation needs at least one process")
        self.n = len(processes)
        self.seed = seed
        self.horizon = horizon
        self.scheduler = Scheduler() if scheduler_factory is None else scheduler_factory()
        self.scheduler.dispatch = self._dispatch
        self.trace = TraceStore(retention=trace_retention)
        self._record = self.trace.record
        self._handlers: dict[type, Callable[[Any], None]] = {
            MessageDeliver: self._on_deliver,
            TimerFire: self._on_timer_fire,
            OpLinearize: self._on_op_linearize,
            OpRespond: self._on_op_respond,
            Callback: self._on_callback,
        }
        for obs in observers:
            self.trace.subscribe(obs)
        adversary = adversary if adversary is not None else ReliableAsynchronous()
        adversary.bind(_derive_rng(seed, "adversary"))
        self.network = Network(self, adversary)
        self.memory = SharedMemorySystem(self)
        self._processes: list[Process] = list(processes)
        self._contexts: list[Context] = []
        self._byzantine: set[ProcessId] = set()
        self._crashed: set[ProcessId] = set()
        self._ever_crashed: set[ProcessId] = set()
        self._incarnations: dict[ProcessId, int] = {}
        self._timers: dict[int, Event] = {}
        self._timers_by_pid: dict[ProcessId, set[int]] = {}
        self._next_timer_id = 0
        self._started = False
        for pid, proc in enumerate(self._processes):
            ctx = Context(self, pid, _derive_rng(seed, "proc", pid))
            proc._attach(ctx)
            self._contexts.append(ctx)

    # -- basic accessors -----------------------------------------------------

    @property
    def now(self) -> Time:
        return self.scheduler.now

    def process(self, pid: ProcessId) -> Process:
        return self._processes[pid]

    @property
    def processes(self) -> Sequence[Process]:
        return tuple(self._processes)

    # -- observer bus ---------------------------------------------------------

    def attach_observer(self, observer: TraceObserver) -> TraceObserver:
        """Subscribe a streaming :class:`TraceObserver` to this run's trace.

        Online checkers attached here see every event as it is recorded and
        may raise (e.g. :class:`~repro.errors.PropertyViolation`) to abort
        the run at the exact violating event.
        """
        return self.trace.subscribe(observer)

    def detach_observer(self, observer: TraceObserver) -> None:
        self.trace.unsubscribe(observer)

    # -- fault management -----------------------------------------------------

    def declare_byzantine(self, *pids: ProcessId) -> "Simulation":
        """Mark processes as Byzantine for checkers; their code runs unchanged."""
        for pid in pids:
            self._check_pid(pid)
            self._byzantine.add(pid)
        return self

    @property
    def byzantine_pids(self) -> frozenset[ProcessId]:
        return frozenset(self._byzantine)

    @property
    def crashed_pids(self) -> frozenset[ProcessId]:
        return frozenset(self._crashed)

    @property
    def correct_pids(self) -> tuple[ProcessId, ...]:
        """Processes that are neither Byzantine nor crashed (at current time)."""
        return tuple(
            p for p in range(self.n) if p not in self._byzantine and p not in self._crashed
        )

    @property
    def fault_free_pids(self) -> tuple[ProcessId, ...]:
        """Processes that were never Byzantine and never crashed, whole run.

        The right "correct" set for whole-trace safety/liveness checkers in
        crash-recovery executions: a restarted process is live again but its
        pre-crash trace prefix belongs to a lost incarnation, so per-process
        stream checks (sequencing, executed-log contiguity) only apply to
        processes that stayed up throughout.
        """
        return tuple(
            p
            for p in range(self.n)
            if p not in self._byzantine and p not in self._ever_crashed
        )

    @property
    def restarted_pids(self) -> frozenset[ProcessId]:
        """Processes that crashed and were restarted at least once."""
        return frozenset(self._incarnations)

    def incarnation_of(self, pid: ProcessId) -> int:
        """How many times ``pid`` was restarted (0 = original boot)."""
        return self._incarnations.get(pid, 0)

    def crash(self, pid: ProcessId) -> None:
        """Crash ``pid`` now: no further events reach it, its sends stop.

        The crashed process's pending timers are purged — volatile state
        (and that includes armed timers) does not survive a crash, and long
        chaos runs must not accumulate dead timer entries.
        """
        self._check_pid(pid)
        if pid in self._crashed:
            return
        self._crashed.add(pid)
        self._ever_crashed.add(pid)
        self._contexts[pid]._kill()
        self._purge_timers(pid)
        if self.scheduler.controlled:
            # Controlled mode does not support restarts, so a pending
            # delivery to a crashed process is a no-op forever — cancel it
            # rather than let the model checker enumerate interleavings of
            # transitions that cannot change any state.
            for ev in self.scheduler.co_enabled():
                if is_choice(ev.payload) and choice_target(ev.payload) == pid:
                    self.scheduler.cancel(ev)
        self.trace.record(self.now, CUSTOM, pid, event="crash")

    def crash_at(self, pid: ProcessId, time: Time) -> None:
        """Schedule a crash of ``pid`` at virtual ``time``.

        The callback is a *choice* transition targeting ``pid``: in
        controlled-schedule mode the model checker reorders the crash
        against deliveries and timers at the same process (crash-before vs
        crash-after races), exactly like the deliver/timer/crash
        independence relation in :mod:`repro.mc.vclock`.
        """
        self._check_pid(pid)
        self.scheduler.schedule_at(
            time,
            Callback(
                fn=lambda: self.crash(pid),
                label=f"crash-{pid}",
                pid=pid,
                choice=True,
            ),
        )

    def restart(
        self, pid: ProcessId, factory: Callable[[], Process] | None = None
    ) -> Process:
        """Reboot a crashed process with fresh volatile state.

        ``factory`` builds the replacement instance (falling back to the old
        instance's :meth:`~repro.sim.process.Process.remake`). The
        replacement loses everything the old incarnation held in memory —
        protocol state, timers, unacked channel buffers — but *durable*
        state survives by construction: trusted-hardware objects (TrInc
        trinkets, A2M logs, USIGs) and registered shared-memory objects live
        outside the process, so a factory that re-wires the same hardware
        models exactly the paper's setting where the trusted component's
        state is what outlasts the host. Messages still in flight when the
        reboot completes are delivered to the new incarnation; messages that
        arrived during the outage were dropped.

        Returns the new process instance (also reachable via
        :meth:`process`).
        """
        self._check_pid(pid)
        if pid not in self._crashed:
            raise ConfigurationError(
                f"pid {pid} is not crashed; restart must follow a crash"
            )
        old = self._processes[pid]
        fresh = factory() if factory is not None else old.remake()
        if fresh is old:
            raise ConfigurationError(
                f"restart of pid {pid} must build a new instance; the old "
                "incarnation's volatile state is gone"
            )
        incarnation = self._incarnations.get(pid, 0) + 1
        self._incarnations[pid] = incarnation
        ctx = Context(
            self,
            pid,
            _derive_rng(self.seed, "proc", pid, "incarnation", incarnation),
            incarnation=incarnation,
        )
        fresh._attach(ctx)
        self._processes[pid] = fresh
        self._contexts[pid] = ctx
        self._crashed.discard(pid)
        self.trace.record(
            self.now, CUSTOM, pid, event="restart", incarnation=incarnation
        )
        if self._started:
            fresh.on_start()
        return fresh

    def restart_at(
        self,
        pid: ProcessId,
        time: Time,
        factory: Callable[[], Process] | None = None,
    ) -> None:
        """Schedule a restart of ``pid`` at virtual ``time``."""
        self._check_pid(pid)
        self.scheduler.schedule_at(
            time,
            Callback(fn=lambda: self.restart(pid, factory), label=f"restart-{pid}"),
        )

    def _purge_timers(self, pid: ProcessId) -> None:
        # Indexed by pid: a crash purges exactly the crashed process's armed
        # timers without scanning every pending timer in the simulation.
        # Sorted: set iteration order is an implementation detail of the
        # interpreter, and while cancellation order cannot change the event
        # schedule, replayed controlled schedules compare internal counters
        # (compactions) across processes — keep every iteration canonical.
        for timer_id in sorted(self._timers_by_pid.pop(pid, ())):
            self.scheduler.cancel(self._timers.pop(timer_id))

    def _check_pid(self, pid: ProcessId) -> None:
        if not (0 <= pid < self.n):
            raise ConfigurationError(f"pid {pid} out of range (n={self.n})")

    # -- timers ------------------------------------------------------------------

    def set_timer(self, pid: ProcessId, delay: float, tag: Any) -> int:
        timer_id = self._next_timer_id
        self._next_timer_id += 1
        ev = self.scheduler.schedule(delay, TimerFire(pid=pid, tag=tag, timer_id=timer_id))
        self._timers[timer_id] = ev
        self._timers_by_pid.setdefault(pid, set()).add(timer_id)
        self.trace.record(self.now, TIMER_SET, pid, tag=tag, timer_id=timer_id)
        return timer_id

    def cancel_timer(self, timer_id: int) -> None:
        ev = self._timers.pop(timer_id, None)
        if ev is not None:
            self._timers_by_pid.get(ev.payload.pid, set()).discard(timer_id)
            self.scheduler.cancel(ev)

    # -- scenario scripting ----------------------------------------------------------

    def at(self, time: Time, fn: Callable[[], None], label: str = "") -> None:
        """Run ``fn`` at virtual ``time`` (partition healing, fault injection…)."""
        self.scheduler.schedule_at(time, Callback(fn=fn, label=label))

    # -- controlled-schedule mode (bounded model checking) ---------------------------

    def enable_controlled(self) -> "Simulation":
        """Switch to controlled-schedule mode: the caller picks each event.

        Instead of :meth:`run` popping ``(time, seq)`` heap order, the
        owner (normally :class:`repro.mc.explorer.Explorer`) alternates
        :meth:`drain_forced` — deterministic glue events — with
        :meth:`choice_events` / :meth:`step_event` — the branching
        transitions of the schedule tree. Must be called before
        :meth:`start`; restarts (:meth:`restart_at`) are not supported in
        this mode (a restart script would have to race its own crash).
        """
        if self._started:
            raise ConfigurationError(
                "enable_controlled() must precede the first event"
            )
        self.scheduler.controlled = True
        return self

    def choice_events(self) -> list[Event]:
        """Co-enabled *choice* transitions, in canonical ``(time, seq)`` order.

        Deliveries, timer firings, and choice-marked callbacks (scripted
        crashes, SRB-oracle deliveries) that are pending and not chained
        behind an undispatched predecessor. Any of them may be stepped
        next; the set is sorted so schedule enumeration is bit-identical
        across processes and Python versions.
        """
        return [ev for ev in self.scheduler.co_enabled() if is_choice(ev.payload)]

    def step_event(self, ev: Event) -> None:
        """Dispatch exactly ``ev`` (controlled mode)."""
        self.start()
        self.scheduler.step(ev)

    def drain_forced(self, limit: int = 100_000) -> int:
        """Dispatch every pending *forced* event in ``(time, seq)`` order.

        Forced events — scenario callbacks, shared-memory linearizations —
        are deterministic glue between choices, not choice points: they
        run eagerly so the choice set the explorer sees contains only
        genuine scheduling freedom. Returns the number dispatched; a
        dispatch may create new forced events, which drain too (``limit``
        guards against a forced-event livelock).
        """
        self.start()
        drained = 0
        while True:
            # one at a time: a dispatch may create forced events that sort
            # before the rest, and the canonical order must reflect that
            forced = next(
                (
                    ev
                    for ev in self.scheduler.co_enabled()
                    if not is_choice(ev.payload)
                ),
                None,
            )
            if forced is None:
                return drained
            self.scheduler.step(forced)
            drained += 1
            if drained >= limit:
                raise SimulationError(
                    f"drain_forced dispatched {drained} events without "
                    "reaching a choice point; forced-event livelock?"
                )

    # -- main loop -----------------------------------------------------------------

    def start(self) -> None:
        """Deliver ``on_start`` to every process (idempotent)."""
        if self._started:
            return
        self._started = True
        for pid, proc in enumerate(self._processes):
            if pid not in self._crashed:
                proc.on_start()

    def run(
        self,
        until: Time | None = None,
        max_events: int | None = None,
    ) -> RunStats:
        """Start (if needed) and run to quiescence, ``until``, or the horizon."""
        self.start()
        if until is None and self.horizon != float("inf"):
            until = self.horizon
        limit = max_events if max_events is not None else self.DEFAULT_MAX_EVENTS
        stats = self.scheduler.run(until=until, max_events=limit)
        if max_events is None and stats.events_processed >= limit:
            raise SimulationError(
                f"simulation exceeded the default event cap ({limit}); "
                "likely a livelock — pass max_events explicitly to override"
            )
        stats.consensus = self.collect_consensus_stats()
        stats.service = self.collect_service_stats()
        return stats

    def run_to_quiescence(self, max_events: int | None = None) -> RunStats:
        """Run until no events remain (requires protocols that go quiet)."""
        self.start()
        limit = max_events if max_events is not None else self.DEFAULT_MAX_EVENTS
        stats = self.scheduler.run(until=None, max_events=limit)
        if not stats.exhausted:
            raise SimulationError(
                f"no quiescence after {stats.events_processed} events"
            )
        stats.consensus = self.collect_consensus_stats()
        stats.service = self.collect_service_stats()
        return stats

    def collect_consensus_stats(self) -> Optional[dict]:
        """Merge replication-pipeline counters over hosted processes.

        Any process (or :class:`~repro.faults.channel.ReliableProcess`
        inner) exposing ``consensus_stats() -> dict`` contributes; numeric
        values are summed key-wise and nested dicts (the batch-size
        histogram) are merged key-wise. Returns ``None`` when no hosted
        process exports pipeline counters, so non-consensus runs pay
        nothing and their :class:`RunStats` are unchanged.
        """
        total: Optional[dict] = None
        for proc in self._processes:
            inner = getattr(proc, "inner", proc)
            stats_fn = getattr(inner, "consensus_stats", None)
            if stats_fn is None:
                continue
            if total is None:
                total = {}
            for key, value in stats_fn().items():
                if isinstance(value, dict):
                    bucket = total.setdefault(key, {})
                    for k, v in value.items():
                        bucket[k] = bucket.get(k, 0) + v
                elif isinstance(value, (int, float)):
                    total[key] = total.get(key, 0) + value
        return total

    def collect_service_stats(self) -> Optional[dict]:
        """Sum serving-layer counters over hosted processes (duck-typed).

        Any process (or :class:`~repro.faults.channel.ReliableProcess`
        inner) exposing a ``service_stats() -> dict[str, number]`` method
        contributes; numeric values are summed key-wise. Returns ``None``
        when no hosted process exports service counters, so non-service
        runs pay nothing and their :class:`RunStats` are unchanged.
        """
        total: Optional[dict] = None
        for proc in self._processes:
            inner = getattr(proc, "inner", proc)
            stats_fn = getattr(inner, "service_stats", None)
            if stats_fn is None:
                continue
            if total is None:
                total = {}
            for key, value in stats_fn().items():
                if isinstance(value, (int, float)):
                    total[key] = total.get(key, 0) + value
        return total

    # -- dispatch -----------------------------------------------------------------
    #
    # One handler per payload type, selected by an exact-type table built in
    # __init__ (payload classes are frozen dataclasses — nothing subclasses
    # them). The table lookup replaces a five-way isinstance chain that ran
    # once per event; handlers take the payload directly and call the
    # prebound ``self._record`` (= ``self.trace.record`` resolved once)
    # instead of two attribute hops per trace record.

    def _dispatch(self, ev: Event) -> None:
        payload = ev.payload
        handler = self._handlers.get(type(payload))
        if handler is None:  # pragma: no cover - exhaustive over Payload union
            raise SimulationError(f"unknown event payload {payload!r}")
        handler(payload)

    def _on_deliver(self, payload: MessageDeliver) -> None:
        if payload.dst in self._crashed:
            return
        self.network.note_delivered(payload.duplicate)
        self._record(
            self.now, DELIVER, payload.dst, src=payload.src, msg=payload.msg
        )
        self._processes[payload.dst].on_message(payload.src, payload.msg)

    def _on_timer_fire(self, payload: TimerFire) -> None:
        if payload.timer_id not in self._timers:
            return  # cancelled
        del self._timers[payload.timer_id]
        self._timers_by_pid.get(payload.pid, set()).discard(payload.timer_id)
        if payload.pid in self._crashed:
            return
        self._record(self.now, TIMER_FIRE, payload.pid, tag=payload.tag)
        self._processes[payload.pid].on_timer(payload.tag)

    def _on_op_linearize(self, payload: OpLinearize) -> None:
        self.memory.linearize(payload)

    def _on_op_respond(self, payload: OpRespond) -> None:
        self.memory.complete(payload.handle)
        if payload.pid in self._crashed:
            return
        self._record(
            self.now,
            OP_RESPOND,
            payload.pid,
            handle=payload.handle,
            object=payload.object_name,
            op=payload.op,
        )
        self._processes[payload.pid].on_op_result(
            payload.object_name, payload.op, payload.handle, payload.result
        )

    def _on_callback(self, payload: Callback) -> None:
        payload.fn()
