"""Network adversaries: who controls delays, and how much.

The asynchronous model lets an adversary delay any message arbitrarily but
finitely. In a finite simulation we realize "arbitrarily" as *relative to
the run*: an adversary returns either a finite delay (the message arrives)
or :data:`WITHHELD` (the message does not arrive within this run — the
simulation's rendering of the proofs' "arbitrarily delayed"). The network
keeps a ledger of withheld messages so liveness checkers can distinguish
"protocol got stuck" from "adversary held the message", and so fairness
audits can verify that a claimed-asynchronous adversary never withheld
correct-to-correct traffic.

Adversaries also control shared-memory operation latency (invocation to
linearization, linearization to response), which is how asynchronous shared
memory schedules are produced.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Optional

from ..errors import ConfigurationError
from ..types import ProcessId, Time

WITHHELD = None
"""Sentinel delay meaning: not delivered within this run."""

Delay = Optional[float]


class Adversary:
    """Base adversary: uniform small random delays, nothing withheld.

    Subclasses override :meth:`message_delay` and/or :meth:`op_delays`.
    ``bind`` is called once by the simulation to provide a dedicated RNG
    stream (distinct from protocol randomness so adversary choices do not
    perturb protocol coin flips across configurations).
    """

    def __init__(self, min_delay: float = 0.1, max_delay: float = 1.0) -> None:
        if min_delay < 0 or max_delay < min_delay:
            raise ConfigurationError(
                f"invalid delay range [{min_delay}, {max_delay}]"
            )
        self.min_delay = min_delay
        self.max_delay = max_delay
        self._rng = random.Random(0)

    def bind(self, rng: random.Random) -> None:
        self._rng = rng

    # -- message passing ---------------------------------------------------

    def message_delay(
        self, src: ProcessId, dst: ProcessId, msg: Any, now: Time
    ) -> Delay:
        """Delay for a message submitted now, or :data:`WITHHELD`."""
        return self._rng.uniform(self.min_delay, self.max_delay)

    # -- shared memory -------------------------------------------------------

    def op_delays(
        self, pid: ProcessId, object_name: str, op: str, now: Time
    ) -> tuple[float, float]:
        """(invoke→linearize, linearize→respond) delays for a shared-memory op."""
        return (
            self._rng.uniform(self.min_delay, self.max_delay),
            self._rng.uniform(self.min_delay, self.max_delay),
        )


class ReliableAsynchronous(Adversary):
    """Standard asynchrony: random finite delays on every message and op."""


class LockStepSynchronous(Adversary):
    """Every message arrives exactly ``delta`` after it is sent.

    With processes that advance in lock-step on timer boundaries this yields
    bidirectional rounds (the classic synchronous model).
    """

    def __init__(self, delta: float = 1.0) -> None:
        super().__init__(min_delay=delta, max_delay=delta)
        self.delta = delta

    def message_delay(self, src, dst, msg, now):
        return self.delta

    def op_delays(self, pid, object_name, op, now):
        return (self.delta / 2, self.delta / 2)


class PartiallySynchronous(Adversary):
    """Arbitrary (but delivered) delays before GST, bounded by ``delta`` after.

    Messages sent before the global stabilization time are delivered at an
    adversary-chosen point up to ``pre_gst_slack`` after GST; messages sent
    after GST arrive within ``delta``.
    """

    def __init__(self, gst: float, delta: float = 1.0, pre_gst_slack: float = 5.0) -> None:
        super().__init__(min_delay=0.0, max_delay=delta)
        if gst < 0:
            raise ConfigurationError(f"gst must be non-negative, got {gst}")
        self.gst = gst
        self.delta = delta
        self.pre_gst_slack = pre_gst_slack

    def message_delay(self, src, dst, msg, now):
        if now >= self.gst:
            return self._rng.uniform(0.0, self.delta)
        deliver_at = self.gst + self._rng.uniform(0.0, self.pre_gst_slack)
        return deliver_at - now


class DuplicatingAsynchronous(ReliableAsynchronous):
    """At-least-once delivery: some messages arrive twice (or more).

    Real networks and retransmission layers duplicate; every protocol in
    this library must be idempotent under it. Duplication is signaled by
    returning a delay here *and* having the network schedule extra copies —
    implemented via :meth:`extra_deliveries`, which the network consults.
    """

    def __init__(self, dup_probability: float = 0.3, max_copies: int = 2,
                 min_delay: float = 0.1, max_delay: float = 1.0) -> None:
        super().__init__(min_delay, max_delay)
        if not 0.0 <= dup_probability <= 1.0:
            raise ConfigurationError(
                f"dup_probability must be in [0, 1], got {dup_probability}"
            )
        if max_copies < 1:
            raise ConfigurationError(f"max_copies must be >= 1, got {max_copies}")
        self.dup_probability = dup_probability
        self.max_copies = max_copies
        self.duplicates_injected = 0

    def extra_deliveries(self, src: ProcessId, dst: ProcessId, msg: Any,
                         now: Time) -> list[float]:
        """Delays for additional copies of this message (possibly empty)."""
        extras: list[float] = []
        while (
            len(extras) < self.max_copies - 1
            and self._rng.random() < self.dup_probability
        ):
            extras.append(self._rng.uniform(self.min_delay, self.max_delay * 3))
            self.duplicates_injected += 1
        return extras


class LinkRule:
    """A directed-link delay rule active during a time window.

    ``sources``/``destinations`` are process-id collections; a message
    matches when its endpoints are in them and its send time falls in
    ``[start, end)``. ``delay`` is either a float, :data:`WITHHELD`, or a
    callable ``(src, dst, msg, now) -> Delay``.
    """

    def __init__(
        self,
        sources: Iterable[ProcessId],
        destinations: Iterable[ProcessId],
        delay: Delay | Callable[[ProcessId, ProcessId, Any, Time], Delay],
        start: Time = 0.0,
        end: Time = float("inf"),
    ) -> None:
        self.sources = frozenset(sources)
        self.destinations = frozenset(destinations)
        self.delay = delay
        self.start = start
        self.end = end

    def matches(self, src: ProcessId, dst: ProcessId, now: Time) -> bool:
        return (
            src in self.sources
            and dst in self.destinations
            and self.start <= now < self.end
        )

    def resolve(self, src: ProcessId, dst: ProcessId, msg: Any, now: Time) -> Delay:
        if callable(self.delay):
            return self.delay(src, dst, msg, now)
        return self.delay


class ScriptedAdversary(Adversary):
    """Rule-list adversary used by scenario scripts.

    Rules are consulted in order; the first matching rule decides the fate
    of a message. Messages matching no rule fall through to ``fallback``
    (default: immediate-ish delivery with ``base_delay``). This is how the
    separation scenarios say "messages from C2 to Q are arbitrarily delayed;
    all other messages are received immediately".
    """

    def __init__(
        self,
        rules: Iterable[LinkRule] = (),
        base_delay: float = 0.01,
    ) -> None:
        super().__init__(min_delay=base_delay, max_delay=base_delay)
        self.rules: list[LinkRule] = list(rules)
        self.base_delay = base_delay

    def add_rule(self, rule: LinkRule) -> "ScriptedAdversary":
        self.rules.append(rule)
        return self

    def withhold(
        self,
        sources: Iterable[ProcessId],
        destinations: Iterable[ProcessId],
        start: Time = 0.0,
        end: Time = float("inf"),
    ) -> "ScriptedAdversary":
        """Convenience: arbitrarily delay all matching messages."""
        return self.add_rule(LinkRule(sources, destinations, WITHHELD, start, end))

    def message_delay(self, src, dst, msg, now):
        for rule in self.rules:
            if rule.matches(src, dst, now):
                return rule.resolve(src, dst, msg, now)
        return self.base_delay

    def op_delays(self, pid, object_name, op, now):
        return (self.base_delay, self.base_delay)


class PartitionAdversary(ScriptedAdversary):
    """Two-way partition between groups of processes, optionally healing.

    Messages crossing between any two distinct groups are withheld until
    ``heal_at`` (and delivered with ``base_delay`` after healing); messages
    within a group flow normally.
    """

    def __init__(
        self,
        groups: Iterable[Iterable[ProcessId]],
        heal_at: Time = float("inf"),
        base_delay: float = 0.01,
    ) -> None:
        super().__init__(base_delay=base_delay)
        self.groups = [frozenset(g) for g in groups]
        if len(self.groups) < 2:
            raise ConfigurationError("a partition needs at least two groups")
        seen: set[ProcessId] = set()
        for g in self.groups:
            if seen & g:
                raise ConfigurationError("partition groups overlap")
            seen |= g
        self.heal_at = heal_at
        for i, gi in enumerate(self.groups):
            for j, gj in enumerate(self.groups):
                if i != j:
                    if heal_at == float("inf"):
                        self.withhold(gi, gj)
                    else:
                        # Crossing messages sent before healing arrive just after it.
                        self.add_rule(
                            LinkRule(
                                gi,
                                gj,
                                lambda s, d, m, now: (self.heal_at - now) + self.base_delay,
                                end=heal_at,
                            )
                        )
