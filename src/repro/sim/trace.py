"""Structured execution traces: indexed store, observer bus, JSONL replay.

A :class:`TraceStore` (aliased ``Trace`` for compatibility) is an
append-only log of everything observable that happened in a run. Property
checkers (`repro.core.directionality`, `repro.core.srb`,
`repro.agreement.definitions`, `repro.consensus.safety`) consume traces
rather than protocol internals, so the same checker validates any
implementation of a primitive.

Three capabilities beyond a plain list:

- **Indexes.** Per-kind and per-pid indexes are maintained incrementally on
  :meth:`TraceStore.record`, so ``events(kind=...)``, ``events(pid=...)``,
  ``decisions()`` and ``local_view()`` cost O(matching events) instead of
  O(full trace). On chaos sweeps and 100k-event benches this is the hot
  path.
- **Observer bus.** :class:`TraceObserver` subscribers receive every event
  as it is recorded, enabling *online* checkers that maintain incremental
  state and fail at the violating event instead of rescanning the finished
  trace.
- **Bounded memory + JSONL.** A ``retention`` limit turns the store into a
  ring buffer (evicted events stay counted in per-kind/per-pid summaries),
  and :meth:`to_jsonl` / :meth:`from_jsonl` round-trip a trace through a
  line-oriented text format for offline analysis and deterministic replay.

Indistinguishability arguments (the separation scenarios) compare the
*local view* of a process between two executions: the ordered sequence of
events that process can observe (its own sends, its deliveries, timers, op
responses, and its protocol-level records). :meth:`TraceStore.local_view`
extracts exactly that.
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional, TextIO

from ..errors import ConfigurationError
from ..types import Delivery, Decision, ProcessId, Time

# Event kind constants — string tags keep the trace easy to filter and dump.
SEND = "send"
DELIVER = "deliver"
TIMER_SET = "timer_set"
TIMER_FIRE = "timer_fire"
OP_INVOKE = "op_invoke"
OP_LINEARIZE = "op_linearize"
OP_RESPOND = "op_respond"
DECIDE = "decide"
BCAST = "bcast"
BCAST_DELIVER = "bcast_deliver"
ROUND_BEGIN = "round_begin"
ROUND_SENT = "round_sent"
ROUND_RECV = "round_recv"
ROUND_END = "round_end"
CUSTOM = "custom"

# Kinds that are part of a process's *local view* — what it can observe.
# Sends/invocations are included (a process knows what it did); linearization
# points are not (they happen inside the shared memory, invisible until the
# response arrives).
_LOCAL_VIEW_KINDS = frozenset(
    {
        SEND,
        DELIVER,
        TIMER_SET,
        TIMER_FIRE,
        OP_INVOKE,
        OP_RESPOND,
        DECIDE,
        BCAST,
        BCAST_DELIVER,
        ROUND_BEGIN,
        ROUND_SENT,
        ROUND_RECV,
        ROUND_END,
        CUSTOM,
    }
)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One record in a trace.

    ``pid`` is the process the event belongs to (for :data:`DELIVER` that is
    the receiver; the sender appears in ``fields['src']``). ``fields`` is a
    flat mapping of event-kind-specific data.
    """

    index: int
    time: Time
    kind: str
    pid: ProcessId
    fields: dict[str, Any]

    def field(self, name: str, default: Any = None) -> Any:
        return self.fields.get(name, default)

    def view_key(self) -> tuple:
        """Content of this event as seen by ``pid`` (time excluded).

        Virtual timestamps differ between executions that are supposed to be
        indistinguishable, so views compare event *content and order* only.
        """
        return (self.kind, tuple(sorted(self.fields.items(), key=lambda kv: kv[0])))


class TraceObserver:
    """Streaming consumer of trace events.

    Subscribe with :meth:`TraceStore.subscribe`; :meth:`on_event` then runs
    synchronously inside every ``record`` call, in subscription order. An
    observer that raises aborts the recording call (and hence the
    simulation step that produced the event) — this is how fail-fast
    online checkers stop a run at the exact violating event.
    """

    def on_event(self, ev: TraceEvent) -> None:
        """Called once per recorded event, in trace order."""

    def on_evict(self, ev: TraceEvent) -> None:
        """Called when ``ev`` falls out of a bounded store's retention window."""


# ---------------------------------------------------------------------------
# JSONL value codec
# ---------------------------------------------------------------------------
#
# Trace fields carry the closed domain of protocol values (see
# repro.crypto.serialize): primitives, tuples/lists, bytes, frozensets,
# dicts. JSON cannot represent all of those natively, so non-native values
# are wrapped in single-key tag objects ("%t" tuple, "%b" bytes hex,
# "%s" frozenset, "%m" mapping, "%o" opaque repr). Plain dicts are always
# encoded as "%m" so a field value can never collide with a tag.


@dataclass(frozen=True, slots=True)
class OpaqueValue:
    """Placeholder for a value JSONL could not encode losslessly.

    Carries the original ``repr``; round-tripping an :class:`OpaqueValue`
    is stable (it re-encodes to the same line), but the original object is
    not reconstructed.
    """

    text: str

    def __repr__(self) -> str:  # keep dumps readable
        return f"<opaque {self.text}>"


def _encode_value(v: Any) -> Any:
    if v is None or isinstance(v, (bool, int, float, str)):
        return v
    if isinstance(v, (bytes, bytearray)):
        return {"%b": bytes(v).hex()}
    if isinstance(v, tuple):
        return {"%t": [_encode_value(x) for x in v]}
    if isinstance(v, list):
        return [_encode_value(x) for x in v]
    if isinstance(v, (frozenset, set)):
        items = [_encode_value(x) for x in v]
        items.sort(key=lambda e: json.dumps(e, sort_keys=True))
        return {"%s": items}
    if isinstance(v, dict):
        pairs = [[_encode_value(k), _encode_value(val)] for k, val in v.items()]
        pairs.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return {"%m": pairs}
    if isinstance(v, OpaqueValue):
        return {"%o": v.text}
    if isinstance(v, DataclassValue):
        # decoded stand-in: re-encode to the original tag, not as a
        # dataclass named "DataclassValue" — keeps round-trips stable
        return {"%d": v.qualname, "f": [_encode_value(x) for x in v.values]}
    if dataclasses.is_dataclass(v) and not isinstance(v, type):
        return {
            "%d": type(v).__qualname__,
            "f": [_encode_value(getattr(v, f.name)) for f in dataclasses.fields(v)],
        }
    return {"%o": repr(v)}


@dataclass(frozen=True, slots=True)
class DataclassValue:
    """Decoded stand-in for a dataclass field value from a JSONL trace.

    Offline analysis does not need the live class, just the name and field
    values; re-encoding a :class:`DataclassValue` is stable.
    """

    qualname: str
    values: tuple


def _decode_value(v: Any) -> Any:
    if isinstance(v, list):
        return [_decode_value(x) for x in v]
    if isinstance(v, dict):
        if "%b" in v:
            return bytes.fromhex(v["%b"])
        if "%t" in v:
            return tuple(_decode_value(x) for x in v["%t"])
        if "%s" in v:
            return frozenset(_decode_value(x) for x in v["%s"])
        if "%m" in v:
            return {_decode_value(k): _decode_value(val) for k, val in v["%m"]}
        if "%o" in v:
            return OpaqueValue(v["%o"])
        if "%d" in v:
            return DataclassValue(
                qualname=v["%d"], values=tuple(_decode_value(x) for x in v["f"])
            )
        raise ConfigurationError(f"unrecognized JSONL value tag in {v!r}")
    return v


def _encode_event(ev: TraceEvent) -> str:
    obj = {
        "i": ev.index,
        "t": ev.time,
        "k": ev.kind,
        "p": ev.pid,
        "f": {name: _encode_value(val) for name, val in ev.fields.items()},
    }
    return json.dumps(obj, separators=(",", ":"))


def _decode_event(line: str) -> TraceEvent:
    obj = json.loads(line)
    return TraceEvent(
        index=obj["i"],
        time=obj["t"],
        kind=obj["k"],
        pid=obj["p"],
        fields={name: _decode_value(val) for name, val in obj["f"].items()},
    )


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


class TraceStore:
    """Append-only event log with incremental indexes and an observer bus.

    ``retention`` bounds the number of events kept in memory: ``None``
    (default) keeps everything; ``N`` keeps the most recent ``N`` events in
    a ring buffer while :meth:`kind_counts` / :meth:`pid_counts` continue to
    cover the evicted prefix. Observers always see every event regardless
    of retention — streaming checkers are the intended consumer for runs
    too long to hold in full.

    Storage is *columnar*: five parallel lists (index, time, kind, pid,
    fields) instead of one :class:`TraceEvent` object per record. The
    frozen-dataclass construction cost — the single largest slice of
    ``record`` on million-event runs — is deferred to the first reader
    that actually needs an event object; a store nobody iterates (pure
    counters, or observer-only runs with retention=1) never pays it at
    all. The per-kind/per-pid indexes hold *logical positions* (ints)
    into the columns, so they are immune to the amortized front-eviction
    that keeps bounded stores O(retention): evicted rows are first marked
    dead at the front of the columns and physically deleted only once
    the dead prefix reaches half the column length — O(1) amortized per
    eviction, same as the old deque ``popleft``. The external API
    (``record``/``events``/iteration/JSONL/observers) is unchanged and
    still trades in :class:`TraceEvent` values, materialized on demand.
    """

    #: dead column prefixes shorter than this ride for free (and below
    #: half the column length a compaction would not be amortized-O(1))
    _EVICT_COMPACT_MIN = 64

    def __init__(self, retention: int | None = None) -> None:
        if retention is not None and retention < 1:
            raise ConfigurationError(f"retention must be >= 1, got {retention}")
        self.retention = retention
        # parallel columns; row i describes one recorded event
        self._c_index: list[int] = []
        self._c_time: list[Time] = []
        self._c_kind: list[str] = []
        self._c_pid: list[ProcessId] = []
        self._c_fields: list[dict[str, Any]] = []
        self._offset = 0  # logical position of physical row 0
        self._dead = 0  # evicted rows not yet physically deleted (front)
        self._by_kind: dict[str, deque[int]] = {}
        self._by_pid: dict[ProcessId, deque[int]] = {}
        self._observers: list[TraceObserver] = []
        self._next_index = 0
        self._evicted = 0
        self._evicted_by_kind: Counter[str] = Counter()
        self._evicted_by_pid: Counter[ProcessId] = Counter()

    # -- columnar plumbing -------------------------------------------------

    def _materialize(self, phys: int) -> TraceEvent:
        """Build the TraceEvent for physical row ``phys``."""
        return TraceEvent(
            index=self._c_index[phys],
            time=self._c_time[phys],
            kind=self._c_kind[phys],
            pid=self._c_pid[phys],
            fields=self._c_fields[phys],
        )

    def _live_rows(self) -> range:
        """Physical row numbers of the retained events, in trace order."""
        return range(self._dead, len(self._c_time))

    # -- recording -------------------------------------------------------

    def record(self, time: Time, kind: str, pid: ProcessId, **fields: Any) -> None:
        pos = self._offset + len(self._c_time)
        self._c_index.append(self._next_index)
        self._next_index += 1
        self._c_time.append(time)
        self._c_kind.append(kind)
        self._c_pid.append(pid)
        self._c_fields.append(fields)
        kind_dq = self._by_kind.get(kind)
        if kind_dq is None:
            kind_dq = self._by_kind[kind] = deque()
        kind_dq.append(pos)
        pid_dq = self._by_pid.get(pid)
        if pid_dq is None:
            pid_dq = self._by_pid[pid] = deque()
        pid_dq.append(pos)
        if self._observers:
            ev = TraceEvent(
                index=self._c_index[-1], time=time, kind=kind, pid=pid,
                fields=fields,
            )
            for obs in self._observers:
                obs.on_event(ev)
        if self.retention is not None and len(self) > self.retention:
            self._evict_oldest()

    def _append(self, ev: TraceEvent) -> None:
        """Append an already-built event (JSONL import path; keeps ``ev``'s
        own index, which need not be contiguous)."""
        pos = self._offset + len(self._c_time)
        self._c_index.append(ev.index)
        self._c_time.append(ev.time)
        self._c_kind.append(ev.kind)
        self._c_pid.append(ev.pid)
        self._c_fields.append(ev.fields)
        self._by_kind.setdefault(ev.kind, deque()).append(pos)
        self._by_pid.setdefault(ev.pid, deque()).append(pos)
        if self.retention is not None and len(self) > self.retention:
            self._evict_oldest()

    def _evict_oldest(self) -> None:
        phys = self._dead
        old = self._materialize(phys) if self._observers else None
        kind = self._c_kind[phys]
        pid = self._c_pid[phys]
        self._c_fields[phys] = None  # type: ignore[call-overload] — drop refs now
        self._dead += 1
        # The globally oldest retained event is necessarily at the front of
        # its own kind and pid index deques (indexes are in trace order).
        self._by_kind[kind].popleft()
        self._by_pid[pid].popleft()
        self._evicted += 1
        self._evicted_by_kind[kind] += 1
        self._evicted_by_pid[pid] += 1
        if (
            self._dead >= self._EVICT_COMPACT_MIN
            and self._dead * 2 >= len(self._c_time)
        ):
            n = self._dead
            del self._c_index[:n]
            del self._c_time[:n]
            del self._c_kind[:n]
            del self._c_pid[:n]
            del self._c_fields[:n]
            self._offset += n
            self._dead = 0
        if old is not None:
            for obs in self._observers:
                obs.on_evict(old)

    # -- observer bus -----------------------------------------------------

    def subscribe(self, observer: TraceObserver) -> TraceObserver:
        """Attach a streaming observer; returns it for chaining."""
        self._observers.append(observer)
        return observer

    def unsubscribe(self, observer: TraceObserver) -> None:
        self._observers.remove(observer)

    @property
    def observers(self) -> tuple[TraceObserver, ...]:
        return tuple(self._observers)

    def replay_into(self, *observers: TraceObserver) -> None:
        """Feed the retained events to ``observers`` in trace order.

        Offline streaming: run an online checker over a finished or
        imported trace without re-executing the simulation.
        """
        for ev in self:
            for obs in observers:
                obs.on_event(ev)

    # -- iteration / filtering -------------------------------------------

    def __len__(self) -> int:
        """Number of *retained* events (equals total recorded unless bounded)."""
        return len(self._c_time) - self._dead

    def __iter__(self) -> Iterator[TraceEvent]:
        for phys in self._live_rows():
            yield self._materialize(phys)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded, including any evicted by retention."""
        return self._next_index

    @property
    def evicted(self) -> int:
        return self._evicted

    def events(
        self,
        kind: str | None = None,
        pid: ProcessId | None = None,
        predicate: Callable[[TraceEvent], bool] | None = None,
    ) -> list[TraceEvent]:
        """All retained events matching the given filters, in trace order.

        Index-backed: filtering by ``kind`` and/or ``pid`` walks only the
        smaller matching index, not the whole trace — and the secondary
        filter of a combined query reads one column, never a full event.
        """
        off = self._offset
        if kind is not None and pid is not None:
            by_kind = self._by_kind.get(kind, ())
            by_pid = self._by_pid.get(pid, ())
            if len(by_kind) <= len(by_pid):
                pid_col = self._c_pid
                rows = (p - off for p in by_kind if pid_col[p - off] == pid)
            else:
                kind_col = self._c_kind
                rows = (p - off for p in by_pid if kind_col[p - off] == kind)
        elif kind is not None:
            rows = (p - off for p in self._by_kind.get(kind, ()))
        elif pid is not None:
            rows = (p - off for p in self._by_pid.get(pid, ()))
        else:
            rows = iter(self._live_rows())
        mat = self._materialize
        if predicate is None:
            return [mat(phys) for phys in rows]
        return [ev for ev in map(mat, rows) if predicate(ev)]

    # -- summaries (survive eviction) --------------------------------------

    def kind_counts(self) -> dict[str, int]:
        """Total events per kind, including evicted ones."""
        counts = Counter(self._evicted_by_kind)
        for kind, dq in self._by_kind.items():
            if dq:
                counts[kind] += len(dq)
        return dict(counts)

    def pid_counts(self) -> dict[ProcessId, int]:
        """Total events per pid, including evicted ones."""
        counts = Counter(self._evicted_by_pid)
        for pid, dq in self._by_pid.items():
            if dq:
                counts[pid] += len(dq)
        return dict(counts)

    # -- protocol-level conveniences --------------------------------------

    def decisions(self) -> list[Decision]:
        """All :data:`DECIDE` events as :class:`~repro.types.Decision` values."""
        return [
            Decision(pid=ev.pid, value=ev.field("value"), time=ev.time)
            for ev in self.events(DECIDE)
        ]

    def decision_of(self, pid: ProcessId) -> Optional[Decision]:
        """The first decision of ``pid``, or ``None``."""
        for ev in self.events(DECIDE, pid=pid):
            return Decision(pid=ev.pid, value=ev.field("value"), time=ev.time)
        return None

    def broadcast_deliveries(self) -> list[Delivery]:
        """All :data:`BCAST_DELIVER` events as :class:`~repro.types.Delivery` values."""
        return [
            Delivery(
                receiver=ev.pid,
                sender=ev.field("sender"),
                seq=ev.field("seq"),
                value=ev.field("value"),
                time=ev.time,
            )
            for ev in self.events(BCAST_DELIVER)
        ]

    def message_sends(self, src: ProcessId | None = None) -> list[TraceEvent]:
        return self.events(SEND, pid=src)

    def message_deliveries(self, dst: ProcessId | None = None) -> list[TraceEvent]:
        return self.events(DELIVER, pid=dst)

    # -- indistinguishability ----------------------------------------------

    def local_view(self, pid: ProcessId) -> tuple[tuple, ...]:
        """Ordered content of everything ``pid`` observed in this run.

        Index-backed: walks only ``pid``'s events. On a bounded store the
        view covers the retained window only (evicted events are gone);
        indistinguishability comparisons should use unbounded stores.
        """
        off = self._offset
        kind_col = self._c_kind
        fields_col = self._c_fields
        # view_key without materializing: (kind, sorted field items)
        return tuple(
            (
                kind_col[p - off],
                tuple(sorted(fields_col[p - off].items(), key=lambda kv: kv[0])),
            )
            for p in self._by_pid.get(pid, ())
            if kind_col[p - off] in _LOCAL_VIEW_KINDS
        )

    def views_equal(self, other: "TraceStore", pids: Iterable[ProcessId]) -> bool:
        """Whether every process in ``pids`` has the same local view in both traces."""
        return all(self.local_view(p) == other.local_view(p) for p in pids)

    def differing_views(
        self, other: "TraceStore", pids: Iterable[ProcessId]
    ) -> list[ProcessId]:
        """Processes whose local views differ between the two traces."""
        return [p for p in pids if self.local_view(p) != other.local_view(p)]

    # -- JSONL export / import ---------------------------------------------

    def to_jsonl(self) -> str:
        """Serialize the retained events, one JSON object per line."""
        return "\n".join(_encode_event(ev) for ev in self)

    def export_jsonl(self, path_or_file: str | TextIO) -> int:
        """Write the retained events as JSONL; returns the event count."""
        text = self.to_jsonl()
        if hasattr(path_or_file, "write"):
            path_or_file.write(text)
            if len(self):
                path_or_file.write("\n")
        else:
            with open(path_or_file, "w", encoding="utf-8") as fh:
                fh.write(text)
                if len(self):
                    fh.write("\n")
        return len(self)

    @classmethod
    def from_jsonl(
        cls, text: str, observers: Iterable[TraceObserver] = ()
    ) -> "TraceStore":
        """Rebuild a store from :meth:`to_jsonl` output.

        Events keep their original indexes and times. Fields that JSONL
        encodes losslessly (primitives, bytes, tuples, sets, mappings)
        decode to equal values; rich objects come back as stable
        :class:`DataclassValue`/:class:`OpaqueValue` stand-ins — so view
        comparisons are exact between *imported* traces, and checkers that
        read codec-native fields (all the shipped ones) report identically
        to the live run. ``observers`` are subscribed first and therefore
        replay the stream event by event — deterministic offline
        re-checking of an exported run.
        """
        store = cls()
        for obs in observers:
            store.subscribe(obs)
        last_index = -1
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            ev = _decode_event(line)
            if ev.index <= last_index:
                raise ConfigurationError(
                    f"JSONL trace indexes not increasing at event {ev.index}"
                )
            last_index = ev.index
            store._next_index = ev.index + 1
            store._append(ev)
            for obs in store._observers:
                obs.on_event(ev)
        return store

    @classmethod
    def load_jsonl(
        cls, path: str, observers: Iterable[TraceObserver] = ()
    ) -> "TraceStore":
        """Read a JSONL trace file exported by :meth:`export_jsonl`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_jsonl(fh.read(), observers=observers)

    # -- debugging ---------------------------------------------------------

    def dump(self, limit: int | None = None) -> str:
        """Human-readable rendering of the trace (for failing-test output)."""
        lines = []
        shown = 0
        for ev in self:
            if limit is not None and shown >= limit:
                break
            fields = " ".join(f"{k}={v!r}" for k, v in ev.fields.items())
            lines.append(f"[{ev.time:10.4f}] p{ev.pid:<3} {ev.kind:<14} {fields}")
            shown += 1
        if limit is not None and len(self) > limit:
            lines.append(f"… {len(self) - limit} more events")
        return "\n".join(lines)


# Backward-compatible name: the rest of the library (and downstream code)
# says ``Trace``; the indexed store is a drop-in replacement.
Trace = TraceStore
