"""Structured execution traces.

A :class:`Trace` is an append-only log of everything observable that happened
in a run. Property checkers (`repro.core.directionality`, `repro.core.srb`,
`repro.agreement.checkers`, `repro.consensus.safety`) consume traces rather
than protocol internals, so the same checker validates any implementation of
a primitive.

Indistinguishability arguments (the separation scenarios) compare the
*local view* of a process between two executions: the ordered sequence of
events that process can observe (its own sends, its deliveries, timers, op
responses, and its protocol-level records). :meth:`Trace.local_view`
extracts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional

from ..types import Delivery, Decision, ProcessId, Time

# Event kind constants — string tags keep the trace easy to filter and dump.
SEND = "send"
DELIVER = "deliver"
TIMER_SET = "timer_set"
TIMER_FIRE = "timer_fire"
OP_INVOKE = "op_invoke"
OP_LINEARIZE = "op_linearize"
OP_RESPOND = "op_respond"
DECIDE = "decide"
BCAST = "bcast"
BCAST_DELIVER = "bcast_deliver"
ROUND_BEGIN = "round_begin"
ROUND_SENT = "round_sent"
ROUND_RECV = "round_recv"
ROUND_END = "round_end"
CUSTOM = "custom"

# Kinds that are part of a process's *local view* — what it can observe.
# Sends/invocations are included (a process knows what it did); linearization
# points are not (they happen inside the shared memory, invisible until the
# response arrives).
_LOCAL_VIEW_KINDS = frozenset(
    {
        SEND,
        DELIVER,
        TIMER_SET,
        TIMER_FIRE,
        OP_INVOKE,
        OP_RESPOND,
        DECIDE,
        BCAST,
        BCAST_DELIVER,
        ROUND_BEGIN,
        ROUND_SENT,
        ROUND_RECV,
        ROUND_END,
        CUSTOM,
    }
)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One record in a trace.

    ``pid`` is the process the event belongs to (for :data:`DELIVER` that is
    the receiver; the sender appears in ``fields['src']``). ``fields`` is a
    flat mapping of event-kind-specific data.
    """

    index: int
    time: Time
    kind: str
    pid: ProcessId
    fields: dict[str, Any]

    def field(self, name: str, default: Any = None) -> Any:
        return self.fields.get(name, default)

    def view_key(self) -> tuple:
        """Content of this event as seen by ``pid`` (time excluded).

        Virtual timestamps differ between executions that are supposed to be
        indistinguishable, so views compare event *content and order* only.
        """
        return (self.kind, tuple(sorted(self.fields.items(), key=lambda kv: kv[0])))


class Trace:
    """Append-only event log with query helpers."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    # -- recording -------------------------------------------------------

    def record(self, time: Time, kind: str, pid: ProcessId, **fields: Any) -> None:
        self._events.append(
            TraceEvent(index=len(self._events), time=time, kind=kind, pid=pid, fields=fields)
        )

    # -- iteration / filtering -------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self,
        kind: str | None = None,
        pid: ProcessId | None = None,
        predicate: Callable[[TraceEvent], bool] | None = None,
    ) -> list[TraceEvent]:
        """All events matching the given filters, in trace order."""
        out = []
        for ev in self._events:
            if kind is not None and ev.kind != kind:
                continue
            if pid is not None and ev.pid != pid:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out

    # -- protocol-level conveniences --------------------------------------

    def decisions(self) -> list[Decision]:
        """All :data:`DECIDE` events as :class:`~repro.types.Decision` values."""
        return [
            Decision(pid=ev.pid, value=ev.field("value"), time=ev.time)
            for ev in self.events(DECIDE)
        ]

    def decision_of(self, pid: ProcessId) -> Optional[Decision]:
        """The first decision of ``pid``, or ``None``."""
        for d in self.decisions():
            if d.pid == pid:
                return d
        return None

    def broadcast_deliveries(self) -> list[Delivery]:
        """All :data:`BCAST_DELIVER` events as :class:`~repro.types.Delivery` values."""
        return [
            Delivery(
                receiver=ev.pid,
                sender=ev.field("sender"),
                seq=ev.field("seq"),
                value=ev.field("value"),
                time=ev.time,
            )
            for ev in self.events(BCAST_DELIVER)
        ]

    def message_sends(self, src: ProcessId | None = None) -> list[TraceEvent]:
        return self.events(SEND, pid=src)

    def message_deliveries(self, dst: ProcessId | None = None) -> list[TraceEvent]:
        return self.events(DELIVER, pid=dst)

    # -- indistinguishability ----------------------------------------------

    def local_view(self, pid: ProcessId) -> tuple[tuple, ...]:
        """Ordered content of everything ``pid`` observed in this run."""
        return tuple(
            ev.view_key()
            for ev in self._events
            if ev.pid == pid and ev.kind in _LOCAL_VIEW_KINDS
        )

    def views_equal(self, other: "Trace", pids: Iterable[ProcessId]) -> bool:
        """Whether every process in ``pids`` has the same local view in both traces."""
        return all(self.local_view(p) == other.local_view(p) for p in pids)

    def differing_views(
        self, other: "Trace", pids: Iterable[ProcessId]
    ) -> list[ProcessId]:
        """Processes whose local views differ between the two traces."""
        return [p for p in pids if self.local_view(p) != other.local_view(p)]

    # -- debugging ---------------------------------------------------------

    def dump(self, limit: int | None = None) -> str:
        """Human-readable rendering of the trace (for failing-test output)."""
        lines = []
        for ev in self._events[: limit if limit is not None else len(self._events)]:
            fields = " ".join(f"{k}={v!r}" for k, v in ev.fields.items())
            lines.append(f"[{ev.time:10.4f}] p{ev.pid:<3} {ev.kind:<14} {fields}")
        if limit is not None and len(self._events) > limit:
            lines.append(f"… {len(self._events) - limit} more events")
        return "\n".join(lines)
