"""The simulated point-to-point network.

Every ``send`` is submitted here; the attached
:class:`~repro.sim.adversary.Adversary` decides each message's delay or
withholds it for the rest of the run. The network keeps a ledger of
withheld messages so that:

- liveness checks can tell "the protocol deadlocked" apart from "the
  adversary never delivered the message", and
- fairness audits (`assert_fair_for`) can verify that an execution claimed
  to be *asynchronous* (where every message is eventually delivered) did
  not quietly drop correct-process traffic — required when a bench result
  depends on eventual delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, TYPE_CHECKING

from ..errors import PropertyViolation
from ..types import ProcessId, Time
from .adversary import Adversary, WITHHELD
from .events import MessageDeliver
from .trace import SEND

if TYPE_CHECKING:  # pragma: no cover
    from .runner import Simulation


@dataclass(frozen=True, slots=True)
class WithheldMessage:
    """Ledger entry for a message the adversary never delivered this run."""

    src: ProcessId
    dst: ProcessId
    msg: Any
    send_time: Time


class Network:
    """Adversary-mediated message transport.

    Statistics (``messages_sent``, ``messages_delivered``, ``bytes``-free
    message counts) feed the construction-cost benchmarks.
    """

    def __init__(self, sim: "Simulation", adversary: Adversary) -> None:
        self._sim = sim
        self.adversary = adversary
        self.withheld: list[WithheldMessage] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        self.duplicates_delivered = 0
        """Adversary-injected extra copies, counted apart from
        ``messages_delivered`` so ``delivery_ratio`` cannot exceed 1.0 under
        a :class:`~repro.sim.adversary.DuplicatingAsynchronous` adversary."""

    def submit(self, src: ProcessId, dst: ProcessId, msg: Any) -> None:
        """Accept a message from ``src`` addressed to ``dst``."""
        sim = self._sim
        now = sim.now
        sim.trace.record(now, SEND, src, dst=dst, msg=msg)
        self.messages_sent += 1
        if sim.scheduler.controlled and dst in sim.crashed_pids:
            # controlled mode has no restarts: a delivery to a crashed
            # process is a guaranteed no-op, and keeping it as a choice
            # point would multiply the explored state space for nothing
            self.withheld.append(WithheldMessage(src, dst, msg, now))
            return
        delay = self.adversary.message_delay(src, dst, msg, now)
        if delay is WITHHELD:
            self.withheld.append(WithheldMessage(src, dst, msg, now))
            return
        if delay < 0:
            delay = 0.0
        sim.scheduler.schedule(
            delay, MessageDeliver(src=src, dst=dst, msg=msg, send_time=now)
        )
        # at-least-once adversaries inject extra copies
        extra = getattr(self.adversary, "extra_deliveries", None)
        if extra is not None:
            for extra_delay in extra(src, dst, msg, now):
                sim.scheduler.schedule(
                    max(extra_delay, 0.0),
                    MessageDeliver(
                        src=src, dst=dst, msg=msg, send_time=now, duplicate=True
                    ),
                )

    def note_delivered(self, duplicate: bool = False) -> None:
        if duplicate:
            self.duplicates_delivered += 1
        else:
            self.messages_delivered += 1

    @property
    def delivery_ratio(self) -> float:
        """First-copy deliveries over submissions (1.0 = lossless so far)."""
        if self.messages_sent == 0:
            return 1.0
        return self.messages_delivered / self.messages_sent

    # -- controlled-schedule mode ---------------------------------------------

    def pending_deliveries(self) -> list:
        """Co-enabled, not-yet-dispatched deliveries in canonical order.

        The model checker's view of the network: every pending
        :class:`~repro.sim.events.MessageDeliver` event, sorted by
        ``(time, seq)`` — the same explicit tie-break the scheduler's
        choice-set enumeration uses, so the order is bit-identical across
        processes and Python versions.
        """
        return [
            ev
            for ev in self._sim.scheduler.co_enabled()
            if isinstance(ev.payload, MessageDeliver)
        ]

    # -- audits ---------------------------------------------------------------

    def withheld_between(
        self, sources: Iterable[ProcessId], destinations: Iterable[ProcessId]
    ) -> list[WithheldMessage]:
        src_set, dst_set = set(sources), set(destinations)
        return [
            w for w in self.withheld if w.src in src_set and w.dst in dst_set
        ]

    def assert_fair_for(self, correct: Iterable[ProcessId]) -> None:
        """Raise if any correct→correct message was withheld.

        An execution in the *asynchronous* model must eventually deliver all
        messages between correct processes; scenario scripts that withhold
        such messages are modeling "arbitrarily delayed" schedules and must
        not call this.
        """
        correct_set = set(correct)
        bad = self.withheld_between(correct_set, correct_set)
        if bad:
            w = bad[0]
            shown = repr(w.msg)
            if len(shown) > 120:
                shown = shown[:117] + "..."
            raise PropertyViolation(
                "network-fairness",
                f"{len(bad)} correct-to-correct messages withheld, e.g. "
                f"{w.src}->{w.dst} at t={w.send_time}: {shown}",
            )
