"""Retained pre-refactor scheduler: the heap-only reference loop.

This is the event loop as it stood before the timer-wheel/free-list
rewrite of :mod:`repro.sim.scheduler` — a single binary heap for every
payload type, no event recycling, ``step`` via ``heap.remove``. It is
kept verbatim for two jobs:

- **golden determinism** — ``tests/test_simcore_determinism.py`` drives
  this implementation and the production one through identical random
  schedule/cancel/run/step interleavings and asserts byte-identical
  dispatch order and :class:`~repro.sim.scheduler.RunStats`;
- **benchmark baseline** — ``benchmarks/bench_simcore.py`` measures the
  production loop's events/sec against this loop on the same profiles
  (the ISSUE's ≥5× bar is relative to this implementation).

Do not optimize this file. Behavioral fixes that change dispatch order
must be applied to both implementations (and are a red flag: the whole
point of the pair is that dispatch order never changes).
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Callable, Optional

from ..errors import SimulationError
from ..types import Time
from .events import Event, Payload
from .scheduler import RunStats


class _PreRefactorEvent(Event):
    """Event with the comparator the pre-refactor loop actually ran.

    The rewrite replaced the dataclass-generated ``order=True`` pair —
    which builds a ``(time, seq)`` tuple per operand per comparison — with
    hand-written field compares (see :class:`~repro.sim.events.Event`).
    Since this loop's whole job is *pre-refactor baseline fidelity*, its
    own events restore the generated comparator verbatim; letting the
    baseline borrow the optimized one would silently credit it with part
    of the rewrite it is supposed to measure. Ordering semantics are
    identical either way, so determinism cross-checks are unaffected.
    """

    __slots__ = ()

    def __lt__(self, other: Event) -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.seq) == (other.time, other.seq)


class HeapOnlyScheduler:
    """The pre-refactor :class:`~repro.sim.scheduler.Scheduler`.

    API-compatible with the production scheduler (``Simulation`` can be
    built over either), minus the wheel/free-list counters, which stay 0.
    """

    COMPACT_MIN_HEAP = 128

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now: Time = 0.0
        self._live = 0
        self._cancelled_in_heap = 0
        self.compactions = 0
        self.wheel_compactions = 0
        self.timer_wheel_hits = 0
        self.freelist_reuses = 0
        self._running = False
        self.dispatch: Optional[Callable[[Event], None]] = None
        self.controlled = False

    @property
    def now(self) -> Time:
        return self._now

    @property
    def pending(self) -> int:
        return self._live

    def iter_pending(self):
        """Every live (pending, not cancelled) event, unordered."""
        return (ev for ev in self._heap if not ev.cancelled and ev.queued)

    def schedule(self, delay: float, payload: Payload,
                 after: Event | None = None) -> Event:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        ev = _PreRefactorEvent(time=self._now + delay, seq=self._seq,
                               payload=payload, after=after)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def schedule_at(self, time: Time, payload: Payload,
                    after: Event | None = None) -> Event:
        if time < self._now:
            if not self.controlled:
                raise SimulationError(
                    f"cannot schedule at {time} before current time {self._now}"
                )
            time = self._now
        ev = _PreRefactorEvent(time=time, seq=self._seq, payload=payload,
                               after=after)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def cancel(self, event: Event) -> None:
        if event.cancelled:
            return
        event.cancelled = True
        if not event.queued:
            return
        self._live -= 1
        self._cancelled_in_heap += 1
        if (
            len(self._heap) > self.COMPACT_MIN_HEAP
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        live = []
        for ev in self._heap:
            if ev.cancelled:
                ev.queued = False
            else:
                live.append(ev)
        self._heap = live
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.compactions += 1

    @property
    def next_seq(self) -> int:
        return self._seq

    def co_enabled(self) -> list[Event]:
        out = [
            ev
            for ev in self._heap
            if not ev.cancelled
            and not (ev.after is not None and not ev.after.fired)
        ]
        out.sort()
        return out

    def step(self, ev: Event) -> None:
        if self.dispatch is None:
            raise SimulationError("no dispatch function installed")
        if ev.cancelled or not ev.queued:
            raise SimulationError(f"cannot step a non-pending event {ev!r}")
        self._heap.remove(ev)  # O(heap); controlled runs are small by design
        heapq.heapify(self._heap)
        ev.queued = False
        ev.fired = True
        self._live -= 1
        self._now = max(self._now, ev.time)
        self.dispatch(ev)

    def run(
        self,
        until: Time | None = None,
        max_events: int | None = None,
    ) -> RunStats:
        if self.dispatch is None:
            raise SimulationError("no dispatch function installed")
        if self._running:
            raise SimulationError("scheduler is already running (re-entrant run)")
        self._running = True
        stats = RunStats()
        wall0 = _time.perf_counter()
        try:
            while self._heap:
                if max_events is not None and stats.events_processed >= max_events:
                    break
                ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    ev.queued = False
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(self._heap)
                ev.queued = False
                ev.fired = True
                self._live -= 1
                self._now = ev.time
                self.dispatch(ev)
                stats.events_processed += 1
            else:
                stats.exhausted = True
        finally:
            self._running = False
        if until is not None and stats.exhausted:
            self._now = max(self._now, until)
        stats.end_time = self._now
        wall = _time.perf_counter() - wall0
        if wall > 0.0:
            stats.events_per_sec = stats.events_processed / wall
        return stats
