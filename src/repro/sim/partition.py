"""Helpers for the process-set partitions the paper's proofs use.

Every separation argument starts by splitting ``range(n)`` into named sets
(Q/C1/C2 in Section 4.1; P/Q/R/S in the draft's weak-agreement argument).
:func:`split` builds those sets positionally and validates coverage, so
scenario scripts stay declarative.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError
from ..types import ProcessSet, validate_partition


def split(n: int, sizes: Sequence[int], names: Sequence[str]) -> dict[str, ProcessSet]:
    """Partition ``range(n)`` into consecutive blocks of the given sizes.

    ``sizes`` must sum to ``n`` and match ``names`` in length. Returns a
    mapping from name to :class:`~repro.types.ProcessSet`; ids are assigned
    in order, e.g. ``split(4, [2, 1, 1], ["Q", "C1", "C2"])`` gives
    ``Q={0,1}, C1={2}, C2={3}``.
    """
    if len(sizes) != len(names):
        raise ConfigurationError(
            f"{len(sizes)} sizes but {len(names)} names"
        )
    if sum(sizes) != n:
        raise ConfigurationError(f"sizes {list(sizes)} do not sum to n={n}")
    if any(s < 0 for s in sizes):
        raise ConfigurationError(f"negative set size in {list(sizes)}")
    sets: dict[str, ProcessSet] = {}
    next_pid = 0
    for name, size in zip(names, sizes):
        sets[name] = ProcessSet(name, tuple(range(next_pid, next_pid + size)))
        next_pid += size
    validate_partition(n, sets.values())
    return sets


def srb_separation_sets(n: int, f: int) -> dict[str, ProcessSet]:
    """The Q/C1/C2 split of Section 4.1: |Q|=n-f, |C1|=1, |C2|=f-1.

    Requires ``f > 1`` and ``n > 2f`` — exactly the regime where the
    paper proves SRB cannot implement unidirectionality.
    """
    if f <= 1:
        raise ConfigurationError(
            f"the separation needs f > 1 (got f={f}); "
            "for f=1 the corner case applies (Appendix B)"
        )
    if n <= 2 * f:
        raise ConfigurationError(f"the separation needs n > 2f (got n={n}, f={f})")
    return split(n, [n - f, 1, f - 1], ["Q", "C1", "C2"])


def weak_agreement_sets(n: int, f: int) -> dict[str, ProcessSet]:
    """The P/Q/R/S split of the draft's weak-validity argument at n=2f.

    |P| = n-f-1, |Q| = 1, |R| = n-f-1, |S| = 1; requires n = 2f.
    """
    if n != 2 * f:
        raise ConfigurationError(
            f"the weak-agreement worlds are constructed at n = 2f (got n={n}, f={f})"
        )
    return split(n, [n - f - 1, 1, n - f - 1, 1], ["P", "Q", "R", "S"])
