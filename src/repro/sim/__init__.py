"""Deterministic discrete-event simulation of asynchronous distributed systems.

The substrate every protocol in this library runs on:

- :class:`~repro.sim.runner.Simulation` — the façade: processes, network,
  shared memory, virtual time, fault injection.
- :class:`~repro.sim.process.Process` — event-driven message-passing
  processes; :class:`~repro.sim.shared_memory.SMProgram` — sequential
  shared-memory programs.
- :mod:`~repro.sim.adversary` — delay/partition control: asynchronous,
  partially synchronous, lock-step synchronous, scripted.
- :class:`~repro.sim.trace.Trace` — the structured log all property
  checkers consume.
"""

from .adversary import (
    Adversary,
    DuplicatingAsynchronous,
    LinkRule,
    LockStepSynchronous,
    PartiallySynchronous,
    PartitionAdversary,
    ReliableAsynchronous,
    ScriptedAdversary,
    WITHHELD,
)
from .byzantine import (
    BabblerProcess,
    ByzantineWrapper,
    SilentProcess,
    drop_to,
    equivocate_by_destination,
    mutate_kind,
)
from .liveness import DeadlineMonitor, LivenessReport, Obligation
from .partition import split, srb_separation_sets, weak_agreement_sets
from .process import Context, Process
from .runner import Simulation
from .scheduler import RunStats, Scheduler
from .shared_memory import Op, SharedMemorySystem, SharedObject, Sleep, SMProgram
from .trace import Trace, TraceEvent, TraceObserver, TraceStore

__all__ = [
    "Adversary",
    "BabblerProcess",
    "ByzantineWrapper",
    "Context",
    "DeadlineMonitor",
    "DuplicatingAsynchronous",
    "LinkRule",
    "LivenessReport",
    "LockStepSynchronous",
    "Obligation",
    "Op",
    "PartiallySynchronous",
    "PartitionAdversary",
    "Process",
    "ReliableAsynchronous",
    "RunStats",
    "Scheduler",
    "ScriptedAdversary",
    "SharedMemorySystem",
    "SharedObject",
    "SilentProcess",
    "Simulation",
    "Sleep",
    "SMProgram",
    "Trace",
    "TraceEvent",
    "TraceObserver",
    "TraceStore",
    "WITHHELD",
    "drop_to",
    "equivocate_by_destination",
    "mutate_kind",
    "split",
    "srb_separation_sets",
    "weak_agreement_sets",
]
