"""Asynchronous shared memory: object registry, op scheduling, SM programs.

The model is the standard one for Byzantine shared memory (Section 2.1 of
the paper, "Shared memory with ACLs"): a collection of named linearizable
objects, each guarding its operations with an access-control policy. An
operation has three moments — *invocation* (the process issues it),
*linearization* (it takes effect atomically at the object), and *response*
(the result reaches the invoker). The adversary chooses both gaps, which is
exactly how adversarial asynchronous interleavings are produced.

Two ways to write shared-memory protocols:

- event-driven: a :class:`~repro.sim.process.Process` calls ``ctx.invoke``
  and handles ``on_op_result`` (used by the round engine);
- sequential: subclass :class:`SMProgram` and write ``program()`` as a
  generator that ``yield``-s one :class:`Op` at a time and receives its
  result — reads like the paper's pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Iterator, Optional, TYPE_CHECKING

from ..errors import AccessDeniedError, ConfigurationError, SimulationError
from ..types import ProcessId
from .events import OpLinearize, OpRespond
from .process import Process
from .trace import OP_INVOKE, OP_LINEARIZE

if TYPE_CHECKING:  # pragma: no cover
    from .runner import Simulation


class SharedObject:
    """Base class for linearizable shared objects.

    Subclasses (in ``repro.hardware``) implement operations as methods named
    ``op_<name>``; :meth:`execute` dispatches to them after consulting
    :meth:`check_access`. ``execute`` runs atomically at the linearization
    point — implementations must not block or call back into the simulation.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    # -- access control -------------------------------------------------------

    def check_access(self, pid: ProcessId, op: str, args: tuple) -> None:
        """Raise :class:`~repro.errors.AccessDeniedError` if forbidden.

        Default: every process may perform every operation. Hardware
        objects override this with ACLs / policies.
        """

    # -- dispatch -----------------------------------------------------------------

    def operations(self) -> list[str]:
        """Names of the operations this object exposes."""
        return sorted(
            name[len("op_"):] for name in dir(self) if name.startswith("op_")
        )

    def execute(self, pid: ProcessId, op: str, args: tuple) -> Any:
        method = getattr(self, f"op_{op}", None)
        if method is None:
            raise ConfigurationError(
                f"object {self.name!r} has no operation {op!r} "
                f"(available: {', '.join(self.operations())})"
            )
        self.check_access(pid, op, args)
        return method(pid, *args)


@dataclass(frozen=True, slots=True)
class PendingOp:
    """An invoked-but-not-responded operation, tracked by the registry."""

    handle: int
    pid: ProcessId
    object_name: str
    op: str
    args: tuple


class SharedMemorySystem:
    """Named-object registry plus asynchronous op scheduling."""

    def __init__(self, sim: "Simulation") -> None:
        self._sim = sim
        self._objects: dict[str, SharedObject] = {}
        self._next_handle = 0
        self._pending: dict[int, PendingOp] = {}
        self.ops_invoked = 0
        self.ops_linearized = 0

    # -- registry -----------------------------------------------------------------

    def register(self, obj: SharedObject) -> SharedObject:
        if obj.name in self._objects:
            raise ConfigurationError(f"object {obj.name!r} already registered")
        self._objects[obj.name] = obj
        return obj

    def get(self, name: str) -> SharedObject:
        try:
            return self._objects[name]
        except KeyError:
            raise ConfigurationError(f"no shared object named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._objects)

    # -- asynchronous invocation ------------------------------------------------------

    def invoke(self, pid: ProcessId, object_name: str, op: str, args: tuple) -> int:
        """Begin an operation; returns its handle. Effects happen later."""
        self.get(object_name)  # fail fast on unknown objects
        sim = self._sim
        handle = self._next_handle
        self._next_handle += 1
        self._pending[handle] = PendingOp(handle, pid, object_name, op, args)
        self.ops_invoked += 1
        sim.trace.record(
            sim.now, OP_INVOKE, pid, handle=handle, object=object_name, op=op, args=args
        )
        d_lin, d_resp = sim.network.adversary.op_delays(pid, object_name, op, sim.now)
        payload = OpLinearize(pid=pid, handle=handle, object_name=object_name, op=op, args=args)
        sim.scheduler.schedule(max(d_lin, 0.0), payload)
        # response delay is resolved at linearization time; stash it
        self._resp_delay = getattr(self, "_resp_delay", {})
        self._resp_delay[handle] = max(d_resp, 0.0)
        return handle

    def linearize(self, payload: OpLinearize) -> None:
        """Execute the operation atomically and schedule its response.

        Called by the simulation's dispatcher. Linearization happens even if
        the invoker crashed after invoking (an in-flight RDMA write still
        lands); the *response* is suppressed for crashed processes by the
        dispatcher.
        """
        sim = self._sim
        obj = self.get(payload.object_name)
        try:
            result: Any = obj.execute(payload.pid, payload.op, payload.args)
            ok = True
        except AccessDeniedError as exc:
            result = exc
            ok = False
        self.ops_linearized += 1
        sim.trace.record(
            sim.now,
            OP_LINEARIZE,
            payload.pid,
            handle=payload.handle,
            object=payload.object_name,
            op=payload.op,
            ok=ok,
        )
        delay = self._resp_delay.pop(payload.handle, 0.0)
        sim.scheduler.schedule(
            delay,
            OpRespond(
                pid=payload.pid,
                handle=payload.handle,
                object_name=payload.object_name,
                op=payload.op,
                result=result,
            ),
        )

    def complete(self, handle: int) -> None:
        self._pending.pop(handle, None)

    @property
    def pending_count(self) -> int:
        return len(self._pending)


# ---------------------------------------------------------------------------
# Sequential (generator) shared-memory programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Op:
    """One shared-memory operation, yielded by an :class:`SMProgram`."""

    object_name: str
    op: str
    args: tuple = ()

    @staticmethod
    def read(object_name: str, *args: Any) -> "Op":
        return Op(object_name, "read", tuple(args))

    @staticmethod
    def write(object_name: str, *args: Any) -> "Op":
        return Op(object_name, "write", tuple(args))

    @staticmethod
    def append(object_name: str, *args: Any) -> "Op":
        return Op(object_name, "append", tuple(args))


@dataclass(frozen=True, slots=True)
class Sleep:
    """Yield from an :class:`SMProgram` to pause for ``duration`` virtual time."""

    duration: float


class SMProgram(Process):
    """Sequential shared-memory process written as a generator.

    Override :meth:`program`; each ``yield Op(...)`` performs one operation
    (the generator resumes with its result), each ``yield Sleep(d)`` pauses.
    When the generator returns, its return value is recorded as the process
    output (``self.output``). Access violations are raised *into* the
    generator as :class:`~repro.errors.AccessDeniedError` so Byzantine
    programs can probe ACLs and react.
    """

    _SLEEP_TAG = "__sm_sleep__"

    def __init__(self) -> None:
        super().__init__()
        self._gen: Optional[Generator[Any, Any, Any]] = None
        self.output: Any = None
        self.finished = False

    def program(self) -> Iterator[Any]:
        """The sequential body; must be a generator. Override me."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- plumbing -------------------------------------------------------------

    def on_start(self) -> None:
        self._gen = self.program()
        self._advance(first=True)

    def _advance(self, first: bool = False, to_send: Any = None, throw: Any = None) -> None:
        if self._gen is None or self.finished:
            return
        try:
            if throw is not None:
                item = self._gen.throw(throw)
            elif first:
                item = next(self._gen)
            else:
                item = self._gen.send(to_send)
        except StopIteration as stop:
            self.finished = True
            self.output = stop.value
            self.ctx.record("custom", event="program_finished", output=stop.value)
            return
        if isinstance(item, Op):
            self.ctx.invoke(item.object_name, item.op, *item.args)
        elif isinstance(item, Sleep):
            self.ctx.set_timer(item.duration, self._SLEEP_TAG)
        else:
            raise SimulationError(
                f"SMProgram {type(self).__name__} yielded {item!r}; expected Op or Sleep"
            )

    def on_op_result(self, object_name: str, op: str, handle: int, result: Any) -> None:
        if isinstance(result, AccessDeniedError):
            self._advance(throw=result)
        else:
            self._advance(to_send=result)

    def on_timer(self, tag: Any) -> None:
        if tag == self._SLEEP_TAG:
            self._advance(to_send=None)
