"""Reusable Byzantine behaviors.

Two styles:

- standalone adversarial processes (:class:`SilentProcess`,
  :class:`BabblerProcess`) for scenarios where the Byzantine strategy is
  simple;
- :class:`ByzantineWrapper`, which hosts an unmodified correct protocol
  instance behind an intercepting context and lets an attack mutate, drop,
  duplicate, or selectively deliver its outgoing messages. This models the
  strongest realistic adversary for protocol-level tests: it follows the
  protocol except where the attack says otherwise, so it passes any
  syntactic validation the protocol performs.

Hardware capabilities are *not* bypassed by any of these: a wrapped process
still signs with its own signer and attests with its own trinket, exactly
like real compromised hosts with intact trusted hardware.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..types import ProcessId
from .process import Context, Process


class SilentProcess(Process):
    """Byzantine process that never sends anything (crash-at-start)."""


class BabblerProcess(Process):
    """Sends random junk to random processes every ``period`` time units.

    Exercises validation paths: correct protocols must ignore garbage.
    """

    def __init__(self, period: float = 1.0, fanout: int = 3, rounds: int = 20) -> None:
        super().__init__()
        self.period = period
        self.fanout = fanout
        self.rounds = rounds
        self._sent = 0

    def on_start(self) -> None:
        self.ctx.set_timer(self.period, "babble")

    def on_timer(self, tag: Any) -> None:
        if tag != "babble" or self._sent >= self.rounds:
            return
        self._sent += 1
        for _ in range(self.fanout):
            dst = self.ctx.rng.randrange(self.ctx.n)
            junk = ("JUNK", self.ctx.rng.getrandbits(32))
            self.ctx.send(dst, junk)
        self.ctx.set_timer(self.period, "babble")


# ---------------------------------------------------------------------------
# Wrapping attacks around correct protocol code
# ---------------------------------------------------------------------------

MessageFilter = Callable[[ProcessId, ProcessId, Any], Optional[Any]]
"""``(src, dst, msg) -> out``: ``None`` drops the message, a message is
sent in its place, and a **list of** ``(dst, msg)`` **pairs** replaces the
send with arbitrarily many (re-routed, duplicated, injected) sends — the
general shape active attacks need for replay and multi-destination
equivocation."""


class _InterceptingContext:
    """Duck-typed Context that applies a filter to outgoing messages.

    Wraps the real :class:`~repro.sim.process.Context`; everything except
    ``send``/``broadcast`` passes through. ``broadcast`` is decomposed into
    per-destination sends so a filter can equivocate (send different bodies
    to different destinations) — the attack the paper's hardware exists to
    prevent.
    """

    def __init__(self, real: Context, filt: MessageFilter) -> None:
        self._real = real
        self._filter = filt

    # pass-throughs -----------------------------------------------------------
    @property
    def pid(self) -> ProcessId:
        return self._real.pid

    @property
    def n(self) -> int:
        return self._real.n

    @property
    def now(self):
        return self._real.now

    @property
    def alive(self) -> bool:
        return self._real.alive

    @property
    def incarnation(self) -> int:
        return self._real.incarnation

    @property
    def seed(self) -> int:
        return self._real.seed

    @property
    def rng(self):
        return self._real.rng

    def set_timer(self, delay: float, tag: Any):
        return self._real.set_timer(delay, tag)

    def cancel_timer(self, timer_id: int) -> None:
        self._real.cancel_timer(timer_id)

    def invoke(self, object_name: str, op: str, *args: Any):
        return self._real.invoke(object_name, op, *args)

    def decide(self, value: Any) -> None:
        self._real.decide(value)

    def record(self, kind: str, **fields: Any) -> None:
        self._real.record(kind, **fields)

    # intercepted -----------------------------------------------------------------

    def send(self, dst: ProcessId, msg: Any) -> None:
        out = self._filter(self._real.pid, dst, msg)
        if out is None:
            return
        if isinstance(out, list):
            for d, m in out:
                self._real.send(d, m)
        else:
            self._real.send(dst, out)

    def broadcast(self, msg: Any, include_self: bool = True) -> None:
        for dst in range(self._real.n):
            if dst == self._real.pid and not include_self:
                continue
            self.send(dst, msg)


class ByzantineWrapper(Process):
    """Run ``inner`` (an unmodified protocol process) under a message filter.

    The wrapper's context slot is a property: *whatever* context is
    installed — the simulation's own at attach, a
    :class:`~repro.faults.channel._ReliableContext` when a
    :class:`~repro.faults.channel.ReliableProcess` hosts the wrapper, or a
    fresh context from ``sim.restart`` — is re-wrapped in the intercepting
    context before the inner process sees it. That keeps the attack in
    force across restarts and under any host-side interposition, with the
    filter applied *before* reliable-channel framing (the attack mutates
    protocol messages, not retransmission frames).
    """

    def __init__(self, inner: Process, message_filter: MessageFilter) -> None:
        super().__init__()
        self.inner = inner
        self._message_filter = message_filter

    @property
    def _ctx(self) -> Optional[Context]:
        return self.__dict__.get("_real_ctx")

    @_ctx.setter
    def _ctx(self, ctx: Optional[Context]) -> None:
        self.__dict__["_real_ctx"] = ctx
        # Process.__init__ assigns self._ctx = None before ``inner`` exists
        inner = self.__dict__.get("inner")
        if inner is not None and ctx is not None:
            inner._ctx = _InterceptingContext(ctx, self._message_filter)

    def remake(self) -> "ByzantineWrapper":
        """Restart support: the replacement comes back *wrapped*, with the
        same (stateful) filter, around the inner process's own remake."""
        return type(self)(self.inner.remake(), self._message_filter)

    def on_start(self) -> None:
        self.inner.on_start()

    def on_message(self, src: ProcessId, msg: Any) -> None:
        self.inner.on_message(src, msg)

    def on_timer(self, tag: Any) -> None:
        self.inner.on_timer(tag)

    def on_op_result(self, object_name: str, op: str, handle: int, result: Any) -> None:
        self.inner.on_op_result(object_name, op, handle, result)


# -- common filters -----------------------------------------------------------------


def drop_to(*victims: ProcessId) -> MessageFilter:
    """Suppress all messages to the given destinations (selective silence)."""

    victim_set = frozenset(victims)

    def filt(src: ProcessId, dst: ProcessId, msg: Any) -> Optional[Any]:
        return None if dst in victim_set else msg

    return filt


def mutate_kind(kind: str, mutator: Callable[[Any], Any]) -> MessageFilter:
    """Apply ``mutator`` to the body of messages whose ``kind`` matches.

    Works on the library's ``(kind, body...)`` tuple convention and on
    :class:`~repro.types.Message`; other messages pass through unchanged.
    """

    from ..types import Message

    def filt(src: ProcessId, dst: ProcessId, msg: Any) -> Optional[Any]:
        if isinstance(msg, Message) and msg.kind == kind:
            return Message(kind, mutator(msg.body))
        if isinstance(msg, tuple) and msg and msg[0] == kind:
            return (kind, *mutator(msg[1:]))
        return msg

    return filt


def equivocate_by_destination(
    kind: str, chooser: Callable[[ProcessId, Any], Any]
) -> MessageFilter:
    """Send destination-dependent bodies for ``kind`` messages.

    ``chooser(dst, body)`` returns the body destination ``dst`` should see —
    the canonical equivocation attack.
    """

    from ..types import Message

    def filt(src: ProcessId, dst: ProcessId, msg: Any) -> Optional[Any]:
        if isinstance(msg, Message) and msg.kind == kind:
            return Message(kind, chooser(dst, msg.body))
        if isinstance(msg, tuple) and msg and msg[0] == kind:
            return (kind, *chooser(dst, msg[1:]))
        return msg

    return filt
