"""Event types for the discrete-event scheduler.

Every behavior in a simulation — message delivery, timer expiry, a shared
memory operation reaching its linearization point, a response arriving back
at its invoker — is an :class:`Event` on the scheduler's heap. Events are
ordered by ``(time, seq)``; ``seq`` is a global creation counter that makes
tie-breaking deterministic and FIFO for same-time events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..types import ProcessId, Time


@dataclass(frozen=True, slots=True)
class MessageDeliver:
    """Deliver ``msg`` from ``src`` to ``dst`` (calls ``dst.on_message``).

    ``duplicate`` marks adversary-injected extra copies of an already
    scheduled delivery; the network counts them separately so delivery
    ratios stay meaningful under at-least-once adversaries.
    """

    src: ProcessId
    dst: ProcessId
    msg: Any
    send_time: Time
    duplicate: bool = False


@dataclass(frozen=True, slots=True)
class TimerFire:
    """Fire timer ``tag`` at process ``pid`` (calls ``on_timer``)."""

    pid: ProcessId
    tag: Any
    timer_id: int


@dataclass(frozen=True, slots=True)
class OpLinearize:
    """A shared-memory operation reaches its atomic linearization point."""

    pid: ProcessId
    handle: int
    object_name: str
    op: str
    args: tuple


@dataclass(frozen=True, slots=True)
class OpRespond:
    """The response of a linearized shared-memory operation reaches its invoker."""

    pid: ProcessId
    handle: int
    object_name: str
    op: str
    result: Any


@dataclass(frozen=True, slots=True)
class Callback:
    """Run an arbitrary zero-argument function (used by scenario scripts).

    ``pid`` attributes the callback to a process (the crash target, the
    delivery receiver) so the model checker can compute independence;
    ``choice`` marks it as a *schedulable choice* — a transition the
    bounded model checker may reorder against other choices (oracle
    deliveries, scripted crashes). Both are ignored by the normal
    heap-ordered run loop.
    """

    fn: Callable[[], None]
    label: str = ""
    pid: ProcessId | None = None
    choice: bool = False


Payload = MessageDeliver | TimerFire | OpLinearize | OpRespond | Callback


def is_choice(payload: Payload) -> bool:
    """Is this payload a reorderable transition for controlled-schedule mode?

    Message deliveries and timer firings are the adversary's levers in the
    asynchronous model; callbacks opt in via ``choice=True`` (SRB-oracle
    deliveries, scripted crashes). Linearization/response events and plain
    scenario callbacks stay *forced*: they dispatch in deterministic
    ``(time, seq)`` order between choices.
    """
    if isinstance(payload, (MessageDeliver, TimerFire)):
        return True
    return isinstance(payload, Callback) and payload.choice


def choice_target(payload: Payload) -> ProcessId | None:
    """The process whose state a transition touches (independence domain).

    Two transitions with different targets commute (delivering to p cannot
    affect q's next step); same-target transitions conflict. ``None`` means
    "unknown — treat as dependent with everything".
    """
    if isinstance(payload, MessageDeliver):
        return payload.dst
    if isinstance(payload, TimerFire):
        return payload.pid
    if isinstance(payload, (OpLinearize, OpRespond)):
        return payload.pid
    if isinstance(payload, Callback):
        return payload.pid
    return None  # pragma: no cover - exhaustive over Payload union


@dataclass(eq=False, slots=True)
class Event:
    """A scheduled occurrence. Ordering compares only ``(time, seq)``.

    ``__lt__``/``__eq__`` are hand-written rather than dataclass-generated:
    the generated comparators build a ``(time, seq)`` tuple per operand per
    comparison, and heap sift operations run one comparison per level — on
    10^6-event runs the tuple churn alone was a measurable slice of the
    loop. Semantics are identical to the old ``order=True`` pair.
    """

    time: Time
    seq: int
    payload: Payload = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    queued: bool = field(default=True, compare=False)
    """Logically pending (scheduled, not yet dispatched or drained).
    Cleared on every logical removal — dispatch, tombstone drain,
    compaction, controlled-mode ``step`` — so ``Scheduler.cancel`` can
    distinguish a pending event from one that already fired and keep its
    live/tombstone counters exact under cancel-after-fire. A ``queued``
    event may physically sit in the heap or in the timer wheel; a
    non-``queued`` one may linger in either as a tombstone until lazily
    swept."""
    fired: bool = field(default=False, compare=False)
    """Actually dispatched (as opposed to cancelled and swept). ``after``
    chains block on this: a successor is enabled only once its predecessor
    *fired* — a predecessor cancelled before firing blocks its successors
    forever (see :meth:`repro.sim.scheduler.Scheduler.co_enabled`)."""
    in_wheel: bool = field(default=False, compare=False)
    """Physically parked in the scheduler's timer wheel (as opposed to the
    heap). Storage bookkeeping only — cleared when the event drains into
    the heap; never consulted for ordering."""
    after: "Event | None" = field(default=None, compare=False)
    """Program-order predecessor: this event must not dispatch before
    ``after`` has. The heap run loop never needs it (producers encode order
    in timestamps, ties break by seq), but controlled-schedule mode ignores
    timestamps, so producers with an ordering *guarantee* — the SRB
    oracle's per-(sender, receiver) sequencing — chain their events
    explicitly and the model checker treats chained events as blocked until
    the predecessor fires."""

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.time == other.time and self.seq == other.seq
