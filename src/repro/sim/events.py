"""Event types for the discrete-event scheduler.

Every behavior in a simulation — message delivery, timer expiry, a shared
memory operation reaching its linearization point, a response arriving back
at its invoker — is an :class:`Event` on the scheduler's heap. Events are
ordered by ``(time, seq)``; ``seq`` is a global creation counter that makes
tie-breaking deterministic and FIFO for same-time events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..types import ProcessId, Time


@dataclass(frozen=True, slots=True)
class MessageDeliver:
    """Deliver ``msg`` from ``src`` to ``dst`` (calls ``dst.on_message``).

    ``duplicate`` marks adversary-injected extra copies of an already
    scheduled delivery; the network counts them separately so delivery
    ratios stay meaningful under at-least-once adversaries.
    """

    src: ProcessId
    dst: ProcessId
    msg: Any
    send_time: Time
    duplicate: bool = False


@dataclass(frozen=True, slots=True)
class TimerFire:
    """Fire timer ``tag`` at process ``pid`` (calls ``on_timer``)."""

    pid: ProcessId
    tag: Any
    timer_id: int


@dataclass(frozen=True, slots=True)
class OpLinearize:
    """A shared-memory operation reaches its atomic linearization point."""

    pid: ProcessId
    handle: int
    object_name: str
    op: str
    args: tuple


@dataclass(frozen=True, slots=True)
class OpRespond:
    """The response of a linearized shared-memory operation reaches its invoker."""

    pid: ProcessId
    handle: int
    object_name: str
    op: str
    result: Any


@dataclass(frozen=True, slots=True)
class Callback:
    """Run an arbitrary zero-argument function (used by scenario scripts)."""

    fn: Callable[[], None]
    label: str = ""


Payload = MessageDeliver | TimerFire | OpLinearize | OpRespond | Callback


@dataclass(order=True, slots=True)
class Event:
    """A scheduled occurrence. Ordering compares only ``(time, seq)``."""

    time: Time
    seq: int
    payload: Payload = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    queued: bool = field(default=True, compare=False)
    """Still in the scheduler's heap. Cleared on every removal — dispatch,
    tombstone drain, compaction — so ``Scheduler.cancel`` can distinguish a
    pending event from one that already fired and keep its live/tombstone
    counters exact under cancel-after-fire."""
