"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one ``except`` clause. Subpackages
raise the most specific subclass that applies; nothing in the library raises
bare ``Exception`` or ``ValueError`` for domain errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A simulation or protocol was configured inconsistently.

    Examples: a resilience bound is violated at construction time
    (``n <= 2f`` for a protocol requiring ``n >= 2f+1``), duplicate process
    ids, or an adversary attached to the wrong network.
    """


class SimulationError(ReproError):
    """The simulator itself was driven incorrectly.

    Examples: scheduling an event in the past, running a finished
    simulation, or re-entrant calls into the scheduler.
    """


class AccessDeniedError(ReproError):
    """A process invoked a hardware or shared-memory operation its ACL forbids."""

    def __init__(self, pid: int, object_name: str, operation: str) -> None:
        self.pid = pid
        self.object_name = object_name
        self.operation = operation
        super().__init__(
            f"process {pid} may not perform {operation!r} on {object_name!r}"
        )


class AttestationError(ReproError):
    """A trusted-hardware attestation request was invalid.

    Raised for example when a TrInc ``Attest`` is called with a sequence
    number not greater than the last attested one; note the paper's
    interface *returns null* in that case — the library mirrors that by
    returning ``None`` from the public API and reserves this exception for
    genuinely malformed calls (negative counters, oversized payloads).
    """


class SignatureError(ReproError):
    """A signature operation failed structurally (not a mere verification failure).

    Verification of a *well-formed but wrong* signature returns ``False``;
    this exception signals misuse, e.g. signing with a revoked signer.
    """


class ProtocolViolationError(ReproError):
    """A *correct* process observed a state that the protocol proves impossible.

    Protocol implementations raise this instead of silently continuing when
    an invariant that should hold for correct processes breaks (it indicates
    a bug in the library, or a checker being run on a trace from a different
    protocol).
    """


class RequestRejected(ReproError):
    """The serving layer refused a request with a typed, actionable answer.

    This is the *graceful-degradation* outcome: instead of queueing without
    bound (and converting overload into a liveness violation), the ingress
    answers immediately with a machine-readable reason and an advisory
    ``retry_after`` that backpressure-aware clients honor.
    """

    def __init__(self, req_id: int, reason: str, retry_after: float = 0.0) -> None:
        self.req_id = req_id
        self.reason = reason
        self.retry_after = retry_after
        super().__init__(
            f"request {req_id} rejected ({reason}), retry_after={retry_after}"
        )


class RetriesExhausted(ReproError):
    """A client gave up on a request after its retry budget ran dry.

    Surfaced instead of retrying forever: unbounded client retries are the
    amplification loop that turns a transient outage into a metastable one.
    """

    def __init__(self, req_id: int, attempts: int) -> None:
        self.req_id = req_id
        self.attempts = attempts
        super().__init__(
            f"request {req_id} abandoned after {attempts} attempts"
        )


class PropertyViolation(ReproError):
    """A trace checker found a violation of a specified property.

    Carries the property name and a human-readable witness so tests and
    benchmark harnesses can report precisely which guarantee failed.
    """

    def __init__(self, prop: str, witness: str) -> None:
        self.prop = prop
        self.witness = witness
        super().__init__(f"property {prop!r} violated: {witness}")
