"""The broadcast problem zoo (paper draft, "Problems Considered").

Three single-shot broadcast variants, ordered by strength of termination:

- **non-equivocating broadcast** — agreement (up to ⊥) + validity; correct
  processes may commit ⊥ when the sender misbehaves, and nothing forces
  termination under a faulty sender;
- **reliable broadcast** — adds all-or-nothing termination: if any correct
  process commits, all do;
- **Byzantine broadcast** — all correct processes must commit no matter
  what the sender does.

Committing is recorded with ``ctx.decide`` (trace kind ``decide``);
checkers audit finished traces. ``BOT`` is the distinguished "no value"
the non-equivocating variant may commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..errors import PropertyViolation
from ..sim.trace import Trace
from ..types import ProcessId


class _Bot:
    """Singleton ⊥ value; compares equal only to itself."""

    _instance: "_Bot | None" = None

    def __new__(cls) -> "_Bot":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"


BOT = _Bot()


@dataclass(slots=True)
class BroadcastReport:
    """Audit of one single-shot broadcast execution."""

    variant: str
    commits: dict[ProcessId, Any] = field(default_factory=dict)
    agreement_violations: list[str] = field(default_factory=list)
    validity_violations: list[str] = field(default_factory=list)
    termination_violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.agreement_violations
            or self.validity_violations
            or self.termination_violations
        )

    def all_violations(self) -> list[str]:
        return (
            [f"agreement: {v}" for v in self.agreement_violations]
            + [f"validity: {v}" for v in self.validity_violations]
            + [f"termination: {v}" for v in self.termination_violations]
        )

    def assert_ok(self) -> None:
        if not self.ok:
            vs = self.all_violations()
            raise PropertyViolation(self.variant, "; ".join(vs[:3]))


def _collect_commits(trace: Trace, correct: Iterable[ProcessId]) -> dict[ProcessId, Any]:
    commits: dict[ProcessId, Any] = {}
    for d in trace.decisions():
        if d.pid in commits:
            continue  # only the first decision counts; a second is a protocol bug
        commits[d.pid] = d.value
    return {p: v for p, v in commits.items() if p in set(correct)}


def check_nonequivocating_broadcast(
    trace: Trace,
    sender: ProcessId,
    sender_input: Any,
    correct: Iterable[ProcessId],
    sender_correct: bool,
) -> BroadcastReport:
    """Audit agreement-up-to-⊥ and correct-sender validity/termination."""
    correct = sorted(set(correct))
    report = BroadcastReport(variant="non-equivocating-broadcast")
    report.commits = _collect_commits(trace, correct)

    # values may be unhashable; compare pairwise instead of via a set
    committed = [(p, v) for p, v in sorted(report.commits.items()) if v is not BOT]
    for i in range(len(committed)):
        for j in range(i + 1, len(committed)):
            if committed[i][1] != committed[j][1]:
                report.agreement_violations.append(
                    f"process {committed[i][0]} committed {committed[i][1]!r} but "
                    f"process {committed[j][0]} committed {committed[j][1]!r}"
                )
    if sender_correct:
        for p in correct:
            if p not in report.commits:
                report.validity_violations.append(
                    f"sender correct but process {p} never committed"
                )
            elif report.commits[p] != sender_input:
                report.validity_violations.append(
                    f"sender correct with input {sender_input!r} but process {p} "
                    f"committed {report.commits[p]!r}"
                )
    return report


def check_reliable_broadcast(
    trace: Trace,
    sender: ProcessId,
    sender_input: Any,
    correct: Iterable[ProcessId],
    sender_correct: bool,
) -> BroadcastReport:
    """Non-equivocating checks plus all-or-nothing termination; no ⊥ commits."""
    correct = sorted(set(correct))
    report = BroadcastReport(variant="reliable-broadcast")
    report.commits = _collect_commits(trace, correct)

    committed = sorted(report.commits.items())
    for i in range(len(committed)):
        for j in range(i + 1, len(committed)):
            if committed[i][1] != committed[j][1]:
                report.agreement_violations.append(
                    f"process {committed[i][0]} committed {committed[i][1]!r} but "
                    f"process {committed[j][0]} committed {committed[j][1]!r}"
                )
    if report.commits and len(report.commits) != len(correct):
        silent = [p for p in correct if p not in report.commits]
        report.termination_violations.append(
            f"some correct processes committed but {silent} did not"
        )
    if sender_correct:
        for p in correct:
            if report.commits.get(p, sender_input) != sender_input:
                report.validity_violations.append(
                    f"process {p} committed {report.commits[p]!r} instead of the "
                    f"correct sender's input {sender_input!r}"
                )
            if p not in report.commits:
                report.validity_violations.append(
                    f"sender correct but process {p} never committed"
                )
    return report


def check_byzantine_broadcast(
    trace: Trace,
    sender: ProcessId,
    sender_input: Any,
    correct: Iterable[ProcessId],
    sender_correct: bool,
) -> BroadcastReport:
    """Reliable-broadcast checks plus unconditional termination."""
    report = check_reliable_broadcast(
        trace, sender, sender_input, correct, sender_correct
    )
    report.variant = "byzantine-broadcast"
    for p in sorted(set(correct)):
        if p not in report.commits:
            report.termination_violations.append(
                f"process {p} never committed (termination is unconditional)"
            )
    return report
