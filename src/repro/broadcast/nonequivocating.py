"""Non-equivocating broadcast from unidirectional rounds, n ≥ f+1.

The draft's conjecture-with-proof ("Unidirectional communication can solve
non-equivocating broadcast for n ≥ f+1"), executable::

    sender s with input v:   send (v, σ_s) to all
    process p:               upon receipt of (v, σ_s):
                                 send (v, σ_s) in the unidirectional round
                                 wait until the round ends
                                 if a different validly-signed (v', σ_s) was
                                 seen: commit ⊥, else commit v

Correctness hinges exactly on unidirectionality: if correct p commits
``v ≠ ⊥`` it saw only ``v``; for any correct q, either p got q's round
message (so q echoed ``v``) or q got p's before q's round ended — either
way q saw ``v`` and can commit only ``v`` or ⊥.

Note what this does **not** guarantee: termination when the sender is
faulty and silent toward some processes (those never start their round) —
that is why it is the *weakest* broadcast in the zoo.
"""

from __future__ import annotations

from typing import Any, Optional

from ..crypto.signatures import Signature, SignatureScheme, Signer
from ..errors import ConfigurationError
from ..types import ProcessId
from ..core.rounds import Label, POST, RoundProcess, RoundTransport
from .definitions import BOT


def _neb_domain(sender: ProcessId, value: Any) -> tuple:
    return ("NEB", sender, value)


class NonEquivocatingBroadcast(RoundProcess):
    """One process of the NEB protocol over any round transport.

    Over a unidirectional transport the agreement guarantee holds for any
    ``n >= f+1``; over a zero-directional transport it can fail — the
    benches demonstrate both.
    """

    ROUND_LABEL = "neb-echo"

    def __init__(
        self,
        transport: RoundTransport,
        sender: ProcessId,
        scheme: SignatureScheme,
        signer: Signer,
    ) -> None:
        super().__init__(transport)
        self.sender = sender
        self.scheme = scheme
        self.signer = signer
        self._adopted: Optional[tuple[Any, Signature]] = None
        self._saw_conflict = False
        self._committed = False

    # -- sender API ---------------------------------------------------------------

    def broadcast(self, value: Any) -> None:
        if self.pid != self.sender:
            raise ConfigurationError(
                f"process {self.pid} is not the sender ({self.sender})"
            )
        sig = self.signer.sign(_neb_domain(self.sender, value))
        self.ctx.record("bcast", seq=1, value=value)
        self.rounds.post(("NEB-VAL", value, sig))

    def on_commit(self, value: Any) -> None:
        """Application hook."""

    # -- protocol -------------------------------------------------------------------

    def on_round_message(self, label: Label, src: ProcessId, payload: Any) -> None:
        if not (
            isinstance(payload, tuple)
            and len(payload) == 3
            and payload[0] == "NEB-VAL"
        ):
            return
        _, value, sig = payload
        if not isinstance(sig, Signature) or sig.signer != self.sender:
            return
        if not self.scheme.verify(_neb_domain(self.sender, value), sig):
            return
        if self._adopted is None:
            self._adopted = (value, sig)
            # echo the signed value in the unidirectional round
            self.rounds.begin_round_queued(payload, self.ROUND_LABEL)
        elif self._adopted[0] != value:
            self._saw_conflict = True

    def on_round_complete(self, label: Label) -> None:
        if label != self.ROUND_LABEL or self._committed:
            return
        self._committed = True
        if self._saw_conflict or self._adopted is None:
            self.ctx.decide(BOT)
            self.on_commit(BOT)
        else:
            value = self._adopted[0]
            self.ctx.decide(value)
            self.on_commit(value)
