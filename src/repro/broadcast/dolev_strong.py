"""Dolev–Strong Byzantine broadcast under bidirectional (lock-step) rounds.

The classic witness that **bidirectional** communication sits strictly
above unidirectionality in the lattice: with transferable signatures and
lock-step rounds, Byzantine broadcast — unconditional termination — is
solvable for *any* ``f < n`` in ``f+1`` rounds. (Strong validity agreement
with ``n >= 2f+1`` follows by broadcasting everyone's input; the draft
notes both.)

Protocol: the sender signs its value and sends it in round 1. A process
that, by the end of round ``r``, has *extracted* a value carried by a
valid chain of ``r`` distinct signatures beginning with the sender's adds
its own signature and forwards the chain in round ``r+1``. After round
``f+1``: commit the single extracted value, or the default ⊥ when zero or
several values were extracted.

The ``r`` signatures requirement is what defeats late injection: to make a
correct process extract a value first seen at round ``r``, the adversary
must spend ``r-1`` distinct Byzantine signatures, so by round ``f+1`` a
fresh value needs ``f+1`` signatures — one of which is then from a correct
process, which would have forwarded it to everyone earlier.
"""

from __future__ import annotations

from typing import Any, Optional

from ..crypto.signatures import Signature, SignatureScheme, Signer
from ..errors import ConfigurationError
from ..types import ProcessId
from ..core.rounds import Label, LockStepRoundTransport, RoundProcess
from .definitions import BOT


def ds_domain(sender: ProcessId, value: Any, prev_signers: tuple) -> tuple:
    return ("DS", sender, value, prev_signers)


def validate_chain(
    scheme: SignatureScheme, sender: ProcessId, chain: Any
) -> Optional[tuple[Any, tuple[ProcessId, ...]]]:
    """Validate a signature chain; returns ``(value, signers)`` or None.

    A valid chain is ``(value, ((p0, s0), (p1, s1), ...))`` where ``p0`` is
    the sender, all ``p_i`` are distinct, and each ``s_i`` signs the value
    under the prefix of earlier signers.
    """
    if not (isinstance(chain, tuple) and len(chain) == 2):
        return None
    value, links = chain
    if not (isinstance(links, tuple) and links):
        return None
    signers: list[ProcessId] = []
    for link in links:
        if not (isinstance(link, tuple) and len(link) == 2):
            return None
        pid, sig = link
        if not isinstance(sig, Signature) or sig.signer != pid:
            return None
        if pid in signers:
            return None
        if not scheme.verify(ds_domain(sender, value, tuple(signers)), sig):
            return None
        signers.append(pid)
    if signers[0] != sender:
        return None
    return value, tuple(signers)


class DolevStrong(RoundProcess):
    """One process of Dolev–Strong over a lock-step round transport.

    Every process begins a (possibly empty) round at every boundary so the
    lock-step cadence is uniform; commits happen when round ``f+1`` ends.
    """

    def __init__(
        self,
        transport: LockStepRoundTransport,
        sender: ProcessId,
        f: int,
        scheme: SignatureScheme,
        signer: Signer,
        my_input: Any = None,
    ) -> None:
        super().__init__(transport)
        if f < 0:
            raise ConfigurationError(f"f must be non-negative, got {f}")
        self.sender = sender
        self.f = f
        self.scheme = scheme
        self.signer = signer
        self.my_input = my_input
        self._extracted: list[Any] = []
        self._outbox: list[tuple] = []
        self._committed = False

    # -- round driving -----------------------------------------------------------

    def on_round_start(self) -> None:
        if self.pid == self.sender:
            sig = self.signer.sign(ds_domain(self.sender, self.my_input, ()))
            self.ctx.record("bcast", seq=1, value=self.my_input)
            chain = (self.my_input, ((self.sender, sig),))
            self._note_extracted(self.my_input)
            self._outbox.append(chain)
        self.rounds.begin_round(tuple(self._outbox))
        self._outbox = []

    def on_round_complete(self, label: Label) -> None:
        if not isinstance(label, int):
            return
        if label <= self.f:  # rounds 1..f ended: keep forwarding
            self.rounds.begin_round(tuple(self._outbox))
            self._outbox = []
        elif label == self.f + 1 and not self._committed:
            self._committed = True
            if len(self._extracted) == 1:
                value = self._extracted[0]
            else:
                value = BOT
            self.ctx.decide(value)
            self.on_commit(value)

    def on_commit(self, value: Any) -> None:
        """Application hook."""

    # -- chain processing -----------------------------------------------------------

    def on_round_message(self, label: Label, src: ProcessId, payload: Any) -> None:
        if not isinstance(label, int) or not isinstance(payload, tuple):
            return
        for chain in payload:
            checked = validate_chain(self.scheme, self.sender, chain)
            if checked is None:
                continue
            value, signers = checked
            if len(signers) < label:  # late injection: not enough signatures
                continue
            if self._is_extracted(value) or self.pid in signers:
                continue
            self._note_extracted(value)
            if len(self._extracted) <= 2:  # two values already prove equivocation
                my_sig = self.signer.sign(ds_domain(self.sender, value, signers))
                self._outbox.append((value, (*chain[1], (self.pid, my_sig))))

    def _is_extracted(self, value: Any) -> bool:
        return any(v == value for v in self._extracted)

    def _note_extracted(self, value: Any) -> None:
        if not self._is_extracted(value):
            self._extracted.append(value)
