"""The broadcast problem zoo the classification is measured against.

- :mod:`~repro.broadcast.definitions` — non-equivocating / reliable /
  Byzantine broadcast specs with trace checkers, and the ⊥ value.
- :class:`~repro.broadcast.bracha.BrachaRBC` — the hardware-free
  asynchronous baseline (n ≥ 3f+1).
- :class:`~repro.broadcast.nonequivocating.NonEquivocatingBroadcast` —
  from unidirectional rounds, n ≥ f+1 (draft result).
- :class:`~repro.broadcast.dolev_strong.DolevStrong` — Byzantine broadcast
  under lock-step synchrony, any f < n, f+1 rounds.
"""

from .bracha import BrachaRBC
from .definitions import (
    BOT,
    BroadcastReport,
    check_byzantine_broadcast,
    check_nonequivocating_broadcast,
    check_reliable_broadcast,
)
from .dolev_strong import DolevStrong, ds_domain, validate_chain
from .nonequivocating import NonEquivocatingBroadcast

__all__ = [
    "BOT",
    "BrachaRBC",
    "BroadcastReport",
    "DolevStrong",
    "NonEquivocatingBroadcast",
    "check_byzantine_broadcast",
    "check_nonequivocating_broadcast",
    "check_reliable_broadcast",
    "ds_domain",
    "validate_chain",
]
