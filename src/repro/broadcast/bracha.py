"""Bracha's reliable broadcast — the n ≥ 3f+1 asynchronous baseline.

The classification's bottom line (why trusted hardware matters): without
any hardware assumption, reliable broadcast over asynchronous message
passing needs ``n >= 3f + 1``. This is the classic three-phase protocol:

- sender: ``SEND(v)`` to all;
- on ``SEND(v)`` from the sender: broadcast ``ECHO(v)`` (once);
- on ``ECHO(v)`` from ``⌈(n+f+1)/2⌉`` distinct processes, or ``READY(v)``
  from ``f+1``: broadcast ``READY(v)`` (once);
- on ``READY(v)`` from ``2f+1`` distinct processes: commit ``v``.

The benches run it next to :class:`~repro.core.srb_from_trinc.SRBFromTrInc`
to quantify what the hardware buys: the trusted-log broadcast keeps working
at ``n = 2f+1`` (and even ``n = f+1``) where Bracha's quorums are
unreachable, and uses a quorum-free echo (O(n²) messages vs Bracha's
3 phases of O(n²)).
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ConfigurationError
from ..sim.process import Process
from ..types import ProcessId


class BrachaRBC(Process):
    """One process of Bracha's reliable broadcast (single-shot).

    ``strict=True`` (default) refuses configurations below ``n >= 3f+1`` at
    construction; the resilience benches pass ``strict=False`` to *observe*
    how the protocol degrades below its bound (it loses liveness — quorums
    never form — rather than safety).
    """

    def __init__(self, sender: ProcessId, n: int, f: int, strict: bool = True) -> None:
        super().__init__()
        if strict and n < 3 * f + 1:
            raise ConfigurationError(
                f"Bracha RBC requires n >= 3f+1 (got n={n}, f={f})"
            )
        self.sender = sender
        self.n = n
        self.f = f
        self.echo_quorum = (n + f) // 2 + 1
        self.ready_amplify = f + 1
        self.ready_quorum = 2 * f + 1
        self._echoed = False
        self._readied = False
        self._committed = False
        self._echoes: dict[ProcessId, Any] = {}
        self._readies: dict[ProcessId, Any] = {}

    # -- sender API --------------------------------------------------------------

    def broadcast(self, value: Any) -> None:
        if self.pid != self.sender:
            raise ConfigurationError(
                f"process {self.pid} is not the sender ({self.sender})"
            )
        self.ctx.record("bcast", seq=1, value=value)
        self.ctx.broadcast(("SEND", value), include_self=True)

    def on_commit(self, value: Any) -> None:
        """Application hook."""

    # -- protocol ------------------------------------------------------------------

    def on_message(self, src: ProcessId, msg: Any) -> None:
        if not (isinstance(msg, tuple) and len(msg) == 2 and isinstance(msg[0], str)):
            return
        kind, value = msg
        if kind == "SEND" and src == self.sender and not self._echoed:
            self._echoed = True
            self.ctx.broadcast(("ECHO", value), include_self=True)
        elif kind == "ECHO":
            if src not in self._echoes:
                self._echoes[src] = value
                self._maybe_ready(value)
        elif kind == "READY":
            if src not in self._readies:
                self._readies[src] = value
                self._maybe_ready(value)
                self._maybe_commit(value)

    def _count_matching(self, records: dict[ProcessId, Any], value: Any) -> int:
        return sum(1 for v in records.values() if v == value)

    def _maybe_ready(self, value: Any) -> None:
        if self._readied:
            return
        if (
            self._count_matching(self._echoes, value) >= self.echo_quorum
            or self._count_matching(self._readies, value) >= self.ready_amplify
        ):
            self._readied = True
            self.ctx.broadcast(("READY", value), include_self=True)

    def _maybe_commit(self, value: Any) -> None:
        if self._committed:
            return
        if self._count_matching(self._readies, value) >= self.ready_quorum:
            self._committed = True
            self.ctx.record(
                "bcast_deliver", sender=self.sender, seq=1, value=value
            )
            self.ctx.decide(value)
            self.on_commit(value)
