"""Shared primitive types used across the ``repro`` library.

These are deliberately thin: plain ``int`` aliases for identifiers keep the
simulator fast and hashable, while the dataclasses here give structure to
values that travel between subsystems (messages, round labels, decisions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

ProcessId = int
"""Identifier of a process in a simulation, ``0..n-1``."""

RoundId = int
"""Logical round number of a round-based protocol, starting at 1."""

SeqNum = int
"""Sequence number attached to broadcast messages / attestations, from 1."""

Time = float
"""Virtual simulation time."""


@dataclass(frozen=True, slots=True)
class Message:
    """An application-level message traveling on the simulated network.

    ``kind`` is a short protocol-specific tag (e.g. ``"ECHO"``); ``body`` is
    an arbitrary *immutable* payload — protocols in this library use tuples,
    frozen dataclasses, strings, ints, and ``None`` so that messages can be
    canonically serialized and hashed.
    """

    kind: str
    body: Any = None

    def __repr__(self) -> str:  # keep traces compact
        return f"Message({self.kind!r}, {self.body!r})"


@dataclass(frozen=True, slots=True)
class RoundMessage:
    """A payload tagged with the round in which it was sent.

    Round-based protocols (Section "Unidirectional communication" of the
    paper) exchange these; the directionality checkers key receipt events on
    ``(sender, round)``.
    """

    round: RoundId
    payload: Any


@dataclass(frozen=True, slots=True)
class Decision:
    """A commit/decide event by a process in an agreement protocol.

    ``value`` may be ``repro.agreement.definitions.BOT`` for protocols that
    allow committing the distinguished "no value" symbol.
    """

    pid: ProcessId
    value: Any
    time: Time


@dataclass(frozen=True, slots=True)
class Delivery:
    """A broadcast delivery event: ``receiver`` delivered ``(seq, value)`` from ``sender``."""

    receiver: ProcessId
    sender: ProcessId
    seq: SeqNum
    value: Any
    time: Time


@dataclass(slots=True)
class ProcessSet:
    """A named, ordered set of process ids, used by scenario scripts.

    Scenario constructions in the paper partition processes into sets such
    as ``Q``, ``C1``, ``C2`` (Section 4.1) or ``P``, ``Q``, ``R``, ``S``
    (draft Claim on weak validity agreement); this helper keeps those
    partitions explicit and checkable.
    """

    name: str
    members: tuple[ProcessId, ...]

    def __post_init__(self) -> None:
        self.members = tuple(self.members)

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self.members

    def __iter__(self):
        return iter(self.members)

    def __len__(self) -> int:
        return len(self.members)


def validate_partition(n: int, sets: Iterable[ProcessSet]) -> None:
    """Check that ``sets`` exactly partition ``range(n)``.

    Raises ``repro.errors.ConfigurationError`` when ids are missing,
    duplicated, or out of range — scenario scripts call this before running.
    """

    from .errors import ConfigurationError

    seen: set[ProcessId] = set()
    for ps in sets:
        for pid in ps.members:
            if pid < 0 or pid >= n:
                raise ConfigurationError(
                    f"set {ps.name!r} contains out-of-range pid {pid} (n={n})"
                )
            if pid in seen:
                raise ConfigurationError(
                    f"pid {pid} appears in more than one set (second: {ps.name!r})"
                )
            seen.add(pid)
    if len(seen) != n:
        missing = sorted(set(range(n)) - seen)
        raise ConfigurationError(f"partition does not cover pids {missing}")


@dataclass(frozen=True, slots=True)
class Resilience:
    """An ``(n, f)`` pair with named constructors for the paper's thresholds."""

    n: int
    f: int

    def __post_init__(self) -> None:
        from .errors import ConfigurationError

        if self.n <= 0:
            raise ConfigurationError(f"n must be positive, got {self.n}")
        if self.f < 0:
            raise ConfigurationError(f"f must be non-negative, got {self.f}")
        if self.f >= self.n:
            raise ConfigurationError(
                f"f must be smaller than n, got n={self.n}, f={self.f}"
            )

    @property
    def quorum_majority(self) -> int:
        """Smallest set guaranteed to intersect all (n-f)-sets in one correct process: f+1."""
        return self.f + 1

    @property
    def quorum_bft(self) -> int:
        """Classic BFT quorum ``ceil((n+f+1)/2)`` — 2f+1 when n=3f+1."""
        return (self.n + self.f) // 2 + 1

    def satisfies(self, bound: str) -> bool:
        """Whether this (n, f) meets a named bound from the paper.

        Recognized bounds: ``"n>f"``, ``"n>=f+1"``, ``"n>=2f+1"``, ``"n>2f"``,
        ``"n>=3f+1"``, ``"n>3f"``, ``"f=1"``.
        """
        n, f = self.n, self.f
        table = {
            "n>f": n > f,
            "n>=f+1": n >= f + 1,
            "n>=2f+1": n >= 2 * f + 1,
            "n>2f": n > 2 * f,
            "n>=3f+1": n >= 3 * f + 1,
            "n>3f": n > 3 * f,
            "f=1": f == 1,
        }
        from .errors import ConfigurationError

        if bound not in table:
            raise ConfigurationError(f"unknown resilience bound {bound!r}")
        return table[bound]
