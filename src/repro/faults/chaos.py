"""Seeded chaos harness: protocol × fault-schedule × seed sweeps.

The acceptance bar for every robustness claim in this library: run the
real protocol stacks (Algorithm-1 SRB over message-passing rounds, MinBFT
replication) under *composed* faults — message loss, duplication,
reordering, burst outages, transient partitions, and crash-recovery
restarts where volatile state dies but trusted hardware survives — and
assert the existing safety checkers on every run.

Everything is a pure function of the seed: :func:`make_schedule` derives
the fault schedule (adversary knobs + crash/restart times) from it, the
simulation derives the adversary's per-message coin flips from it, so a
failing ``(protocol, seed)`` pair is a complete, replayable bug report.
:func:`replay` re-runs one; :func:`assert_all_ok` raises with the failing
seeds and schedules rendered.

The harness also ships a deliberately broken protocol,
:class:`EagerBrokenSRB`, which delivers sender values on first sight —
skipping the proof pipeline and the sequencing gate. Under reordering it
produces real safety violations, which is how we test that the harness
*detects and reproduces* bugs rather than vacuously passing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from ..consensus.apps import make_app
from ..crypto.serialize import caching_enabled, crypto_stats, reset_crypto_caches, set_caching
from ..consensus.forensics import AccountabilityChecker, install_accountability, verify_proof
from ..consensus.harness import build_minbft_system, build_pbft_system
from ..consensus.minbft import MinBFTReplica
from ..consensus.pbft import PBFTReplica
from ..consensus.safety import (
    ReplicationLivenessChecker,
    ReplicationStreamChecker,
    check_replication,
)
from ..core.rounds import MessagePassingRoundTransport
from ..core.srb import SRBLivenessChecker, SRBStreamChecker, check_srb
from ..core.srb_from_uni import SRBFromUnidirectional, build_mp_srb_system
from ..errors import ConfigurationError, PropertyViolation
from ..sim.trace import TraceObserver
from ..types import ProcessId, Time
from .adversaries import ChaosAdversary, GSTAdversary
from .attacks import ATTACKS, AttackerProcess, TraitorReplica, get_attack
from .channel import ReliableProcess
from .timeouts import make_policy_factory

DEFAULT_CHANNEL = dict(base_timeout=2.0, backoff=2.0, max_timeout=20.0,
                       max_retries=25)
"""Retry budget used by the harness: generous enough that per-message loss
below 1.0 cannot realistically exhaust it within a run."""


# ---------------------------------------------------------------------------
# Fault schedules
# ---------------------------------------------------------------------------


def _schedule_rng(seed: int) -> random.Random:
    digest = hashlib.sha256(f"chaos-schedule|{seed}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """Crash ``pid`` at ``at``; reboot at ``restart_at`` (None = permanent)."""

    pid: ProcessId
    at: Time
    restart_at: Optional[Time]


@dataclass(frozen=True, slots=True)
class FaultSchedule:
    """One seeded fault scenario: adversary knobs + crash/restart script."""

    seed: int
    horizon: Time
    active_until: Time
    drop_probability: float
    dup_probability: float
    straggler_probability: float
    n_bursts: int
    n_partitions: int
    crashes: tuple[CrashEvent, ...]
    gst: Time = 240.0
    delta: float = 1.0

    def describe(self) -> str:
        parts = [
            f"seed={self.seed} horizon={self.horizon:g} "
            f"faults-active-until={self.active_until:g} "
            f"gst={self.gst:g} delta={self.delta:.2f}",
            f"  drop={self.drop_probability:.3f} dup={self.dup_probability:.3f} "
            f"straggler={self.straggler_probability:.3f} "
            f"bursts={self.n_bursts} partitions={self.n_partitions}",
        ]
        for c in self.crashes:
            fate = (
                f"restart at {c.restart_at:.1f}"
                if c.restart_at is not None
                else "never restarted"
            )
            parts.append(f"  crash pid {c.pid} at {c.at:.1f}, {fate}")
        if not self.crashes:
            parts.append("  no crashes")
        return "\n".join(parts)

    def make_adversary(self, n: int) -> ChaosAdversary:
        """The GST adversary realizing this schedule for ``n`` processes.

        Every chaos seed now carries a GST: the full chaos repertoire runs
        before ``gst`` and message delay drops to ``<= delta`` after it —
        the partial-synchrony model the liveness checkers audit against.
        """
        return GSTAdversary(
            n=n,
            gst=self.gst,
            delta=self.delta,
            active_until=self.active_until,
            drop_probability=self.drop_probability,
            dup_probability=self.dup_probability,
            straggler_probability=self.straggler_probability,
            n_bursts=self.n_bursts,
            n_partitions=self.n_partitions,
        )

    def fault_free_pids(self, n: int) -> tuple[ProcessId, ...]:
        """Pids that never crash under this schedule (known before the run).

        Crashes are scripted, so the whole-run "correct" set is available
        up front — which is what lets streaming checkers audit online
        instead of waiting for ``sim.fault_free_pids`` at the end.
        """
        ever_crashed = {c.pid for c in self.crashes}
        return tuple(p for p in range(n) if p not in ever_crashed)


def make_schedule(
    seed: int,
    crashable: Sequence[ProcessId],
    horizon: Time = 600.0,
    crash_recovery: bool = True,
) -> FaultSchedule:
    """Derive a fault schedule deterministically from ``seed``.

    ``crashable`` lists the pids eligible for crash faults (protocol
    runners protect the SRB sender and the clients). At most one process is
    down at any moment — the crash-fault budget the protocols are deployed
    for (t = f = 1 in the default configurations) — but a restarted
    process may crash again, and with probability ~0.2 the (single)
    crashed process never comes back.
    """
    rng = _schedule_rng(seed)
    active_until = horizon * 0.4
    crashes: list[CrashEvent] = []
    if crashable and crash_recovery and rng.random() < 0.85:
        pid = rng.choice(list(crashable))
        at = rng.uniform(10.0, active_until * 0.5)
        if rng.random() < 0.8:
            restart_at = at + rng.uniform(20.0, 80.0)
            crashes.append(CrashEvent(pid=pid, at=at, restart_at=restart_at))
            if rng.random() < 0.3:  # a second outage after recovery
                pid2 = rng.choice(list(crashable))
                at2 = restart_at + rng.uniform(15.0, 40.0)
                restart2 = at2 + rng.uniform(20.0, 60.0)
                crashes.append(
                    CrashEvent(pid=pid2, at=at2, restart_at=restart2)
                )
        else:
            crashes.append(CrashEvent(pid=pid, at=at, restart_at=None))
    return FaultSchedule(
        seed=seed,
        horizon=horizon,
        active_until=active_until,
        drop_probability=rng.uniform(0.0, 0.12),
        dup_probability=rng.uniform(0.0, 0.25),
        straggler_probability=rng.uniform(0.0, 0.05),
        n_bursts=rng.randrange(0, 3),
        n_partitions=rng.randrange(0, 2),
        crashes=tuple(crashes),
        # GST coincides with the end of injected faults; the post-GST delay
        # bound is itself seed-derived (drawn last to keep the knobs above
        # bit-identical with pre-GST schedules for the same seed)
        gst=active_until,
        delta=rng.uniform(0.5, 1.5),
    )


# ---------------------------------------------------------------------------
# Broken-protocol fixture
# ---------------------------------------------------------------------------


class StallingPrimary(MinBFTReplica):
    """DELIBERATELY STALLED MinBFT: never proposes, never changes view.

    Deployed on *every* replica (modeling a same-codebase liveness bug
    shipped fleet-wide, which a single honest quorum cannot route around):
    the primary sits on client requests forever, and the view-change
    trigger is disabled everywhere so no replica ever gives up on it.
    Safety is untouched — nothing executes, so nothing can diverge — which
    is exactly the failure mode only a *liveness* auditor can flag: every
    post-GST request deadline expires while every safety checker stays
    green.
    """

    def _propose_pending(self) -> None:
        pass  # the primary hoards its queue

    def on_timer(self, tag: Any) -> None:
        if tag == self.VC_TIMER:
            return  # never give up on the (stalled) primary
        super().on_timer(tag)


class EagerBrokenSRB(SRBFromUnidirectional):
    """DELIBERATELY BROKEN SRB: deliver on first sight of a signed value.

    Skips the L1/L2 proof pipeline and the in-order delivery gate: the
    first validly sender-signed ``(k, m)`` this process sees — in a VAL,
    or embedded in anyone's COPY/L1 — is delivered immediately, in arrival
    order. Under reordering (stragglers, retransmissions) arrival order
    differs from sequence order, so the SRB sequencing property breaks —
    which is exactly what the chaos harness must detect and pin to a seed.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._eagerly_delivered: set[int] = set()

    def _note_val(self, k, m, sig_s) -> bool:
        ok = super()._note_val(k, m, sig_s)
        if ok and k not in self._eagerly_delivered:
            self._eagerly_delivered.add(k)
            self.ctx.record("bcast_deliver", sender=self.sender, seq=k, value=m)
            self.on_deliver(self.sender, k, m)
        return ok

    def _maybe_deliver(self) -> None:
        # the broken variant's ONLY delivery path is the eager one above
        pass


# ---------------------------------------------------------------------------
# Protocol runners
# ---------------------------------------------------------------------------


def _simcore_stats(sim) -> dict[str, int]:
    """Event-loop counters for ``ChaosResult.stats["simcore"]``.

    Deterministic counters only: sweep results promise serial/parallel
    bit-identity (``tests/test_chaos_parallel.py`` compares full stats
    dicts), so the wall-clock-derived ``events_per_sec`` stays off this
    dict — read it from the :class:`~repro.sim.scheduler.RunStats` a
    ``sim.run`` call returns, or from :class:`BigRunResult`.
    """
    sched = sim.scheduler
    return {
        "timer_wheel_hits": sched.timer_wheel_hits,
        "freelist_reuses": sched.freelist_reuses,
        "compactions": sched.compactions,
        "wheel_compactions": sched.wheel_compactions,
    }


@dataclass(slots=True)
class ChaosResult:
    """Outcome of one protocol run under one seeded fault schedule.

    ``abort_index`` is the trace index of the first violating event when a
    streaming checker stopped the run early (None for clean runs and for
    batch-mode audits, which always run to the horizon).
    """

    protocol: str
    seed: int
    ok: bool
    violations: list[str]
    schedule: str
    stats: dict[str, Any] = field(default_factory=dict)
    abort_index: Optional[int] = None
    liveness_violations: list[str] = field(default_factory=list)
    """Post-GST deadline misses from the streaming liveness auditors
    (separate from ``violations`` — those are safety / whole-run checks)."""

    def replay_hint(self) -> str:
        return (
            f"replay with: repro.faults.chaos.replay({self.protocol!r}, "
            f"{self.seed})"
        )


def run_srb_chaos(
    schedule: FaultSchedule,
    n: int = 4,
    t: int = 1,
    n_messages: int = 4,
    broken: bool = False,
    reliable: bool = True,
    streaming: bool = True,
    attack: Optional[str] = None,
    liveness_bound: float = 200.0,
    value_bytes: int = 0,
) -> ChaosResult:
    """Algorithm-1 SRB (message-passing rounds) under one fault schedule.

    The sender (pid 0) broadcasts ``n_messages`` values early in the run;
    crashes/restarts follow the schedule (the sender is protected — a
    crashed sender makes validity unfalsifiable). Safety and completion are
    checked over the processes that never crashed. ``value_bytes`` pads
    each broadcast value to roughly that size — the realistic-payload
    workload the hot-path bench sweeps, where every redundant signature
    check re-serializes the payload it embeds.

    With ``streaming=True`` (the default) a fail-fast
    :class:`~repro.core.srb.SRBStreamChecker` rides along as a trace
    observer: a permanent safety violation (sequencing gap, agreement
    conflict) aborts the run at the violating event — the result carries
    its trace index in ``abort_index``. ``streaming=False`` keeps the
    pre-refactor batch audit; verdicts are identical, only *when* the run
    stops differs.

    ``attack`` names an SRB entry of :data:`repro.faults.attacks.ATTACKS`:
    the spec's attacker pid is wrapped in an
    :class:`~repro.faults.attacks.AttackerProcess`, declared Byzantine,
    and excluded from the correct set; completion is only asserted when
    the spec expects it (an equivocating *sender* legitimately stalls
    everyone — safely).
    """
    spec = attack_obj = None
    attacker: Optional[ProcessId] = None
    expect_complete = True
    if attack is not None:
        spec = get_attack(attack)
        if spec.protocol != "srb":
            raise ConfigurationError(
                f"attack {attack!r} targets {spec.protocol}, not srb"
            )
        attack_obj = spec.make()
        attacker = spec.attacker
        expect_complete = spec.expect_complete
    reset_crypto_caches()
    adversary = schedule.make_adversary(n)
    channel_kwargs = dict(DEFAULT_CHANNEL)

    def factory(pid, transport, scheme, signer):
        cls = EagerBrokenSRB if broken else SRBFromUnidirectional
        proc = cls(transport, 0, t, scheme, signer)
        if attack_obj is not None and pid == attacker:
            proc = AttackerProcess(proc, attack_obj)
        return proc

    sim, procs, scheme = build_mp_srb_system(
        n=n,
        t=t,
        sender=0,
        seed=schedule.seed,
        adversary=adversary,
        reliable=channel_kwargs if reliable else False,
        process_factory=factory,
    )
    if attacker is not None:
        sim.declare_byzantine(attacker)
    pad = "x" * value_bytes
    for i in range(n_messages):
        sim.at(1.0 + 0.8 * i,
               lambda i=i: procs[0].broadcast(f"chaos-{i}-{pad}"),
               label=f"bcast-{i}")
    _apply_crashes(
        sim, schedule,
        restart_factory=lambda pid: _srb_restart_factory(
            procs, pid, t, broken, channel_kwargs if reliable else None
        ),
    )

    correct = tuple(
        p for p in schedule.fault_free_pids(n) if p != attacker
    )
    checker: Optional[SRBStreamChecker] = None
    if streaming:
        # Crashes are scripted, so the whole-run correct set is known now.
        checker = SRBStreamChecker(
            0, correct, expect_complete=expect_complete, fail_fast=True
        )
        sim.attach_observer(checker)
    # the liveness auditor streams alongside but never aborts the run: a
    # missed deadline is permanent, so collecting every miss costs nothing.
    # An attack cell that legitimately never completes (equivocating
    # sender: everyone conflict-poisons and safely delivers nothing) is
    # exempt — no delivery is owed, so no obligation can be armed.
    live: Optional[SRBLivenessChecker] = None
    if expect_complete:
        live = SRBLivenessChecker(
            gst=schedule.gst,
            bound=liveness_bound,
            fault_free=correct,
        )
        sim.attach_observer(live)

    def stats(deliveries: int) -> dict[str, Any]:
        d = {
            "deliveries": deliveries,
            "messages_sent": sim.network.messages_sent,
            "dropped": adversary.messages_dropped,
            "duplicates": adversary.duplicates_injected,
            "restarts": len(sim.restarted_pids),
            # caches were reset at run start, so this is the run's own
            # crypto work — comparable across serial and parallel sweeps
            "crypto": crypto_stats().as_dict(),
            "simcore": _simcore_stats(sim),
        }
        d["consensus"] = sim.collect_consensus_stats()
        if attack_obj is not None:
            d["byzantine"] = {
                "attack": attack,
                "attacker": attacker,
                **attack_obj.stats(),
            }
        return d

    protocol = "srb-uni-broken" if broken else "srb-uni"
    if attack is not None:
        protocol = f"srb-uni+{attack}"
    described = schedule.describe() + "\n" + adversary.describe()
    try:
        sim.run(until=schedule.horizon)
    except PropertyViolation:
        abort_index, _ = checker.online_violations[0]
        return ChaosResult(
            protocol=protocol,
            seed=schedule.seed,
            ok=False,
            violations=[f"event #{i}: {m}"
                        for i, m in checker.online_violations],
            schedule=described,
            stats=stats(len(checker.deliveries)),
            abort_index=abort_index,
        )
    if streaming:
        report = checker.finish()
    else:
        fault_free = tuple(p for p in sim.fault_free_pids if p != attacker)
        report = check_srb(sim.trace, 0, fault_free,
                           expect_complete=expect_complete)
    violations = report.all_violations()
    live_report = live.finish(end_time=schedule.horizon) if live else None
    return ChaosResult(
        protocol=protocol,
        seed=schedule.seed,
        ok=not violations and (live_report is None or live_report.ok),
        violations=violations,
        schedule=described,
        stats=stats(len(report.deliveries)),
        liveness_violations=live_report.violations if live_report else [],
    )


def _srb_restart_factory(procs, pid, t, broken, channel_kwargs):
    old = procs[pid]
    transport = MessagePassingRoundTransport(f=t)
    cls = EagerBrokenSRB if broken else SRBFromUnidirectional
    fresh = cls(transport, old.sender, t, old.scheme, old.signer)
    procs[pid] = fresh
    if channel_kwargs is None:
        return fresh
    return ReliableProcess(fresh, **channel_kwargs)


def run_minbft_chaos(
    schedule: FaultSchedule,
    f: int = 1,
    n_clients: int = 2,
    ops_per_client: int = 3,
    app: str = "counter",
    streaming: bool = True,
    timeouts: str = "fixed",
    stalling: bool = False,
    pipelined: bool = False,
    attack: Optional[str] = None,
    liveness_bound: float = 300.0,
) -> ChaosResult:
    """MinBFT replication under one fault schedule.

    Replicas (including the primary) are crashable; a restarted replica
    gets a fresh app and protocol state but re-wires its original USIG —
    the trusted counter state is the durable part, so the recovered
    replica's message stream continues gap-free where the network last saw
    it and *cannot* reuse counter values from before the crash (the
    paper's non-equivocation-across-restarts claim, exercised for real).
    Clients are protected. Safety (order, no-duplicates, determinism) is
    checked over replicas that never crashed; liveness over all clients.

    With ``streaming=True`` (the default) a fail-fast
    :class:`~repro.consensus.safety.ReplicationStreamChecker` rides along
    as a trace observer: a duplicate execution or a diverging slot prefix
    aborts the run at the violating event (``abort_index`` carries its
    trace index). ``streaming=False`` keeps the pre-refactor batch audit.

    With ``pipelined=True`` the cluster runs the full pipeline stack —
    bounded in-flight window (16), adaptive batching, checkpoint interval
    8, clients with 4 outstanding requests each — and restarted replicas
    reboot with the *same* pipeline configuration (a recovered replica
    that silently fell back to unbatched slots would desynchronize batch
    digests from its peers). Every run's ``stats["consensus"]`` carries
    the fleet-summed pipeline counters.

    ``attack`` names a MinBFT entry of
    :data:`repro.faults.attacks.ATTACKS`: the spec's attacker pid is
    wrapped in an :class:`~repro.faults.attacks.AttackerProcess` (and
    re-wrapped on restart, attack state intact), declared Byzantine, and
    excluded from the correct/fault-free sets. An
    :class:`~repro.consensus.forensics.AccountabilityChecker` rides along
    in audit-only mode: with *intact* hardware every attack in the library
    must stay conviction-free — the hardware cannot bind one counter to
    two messages, so there is no evidence to find — and the sweep asserts
    exactly that alongside the ordinary safety checkers.
    """
    if timeouts not in ("fixed", "adaptive"):
        raise ConfigurationError(
            f"timeouts must be 'fixed' or 'adaptive', got {timeouts!r}"
        )
    spec = attack_obj = None
    attacker: Optional[ProcessId] = None
    if attack is not None:
        spec = get_attack(attack)
        if spec.protocol != "minbft":
            raise ConfigurationError(
                f"attack {attack!r} targets {spec.protocol}, not minbft"
            )
        attack_obj = spec.make()
        attacker = spec.attacker
    reset_crypto_caches()
    n = 2 * f + 1
    adversary = schedule.make_adversary(n + n_clients)
    channel_kwargs = dict(DEFAULT_CHANNEL)
    # "fixed" = None keeps the builders' legacy constant timers bit-exact;
    # "adaptive" hands every replica and client a fresh Jacobson/Karels
    # policy seeded at the legacy view-change timeout
    policy_factory = (
        make_policy_factory(
            "adaptive", base=25.0, min_timeout=2.0, max_timeout=120.0
        )
        if timeouts == "adaptive"
        else None
    )
    replica_cls = StallingPrimary if stalling else MinBFTReplica
    replica_options = (
        dict(
            checkpoint_interval=8,
            window_size=16,
            batching=True,
            batch_policy="adaptive",
        )
        if pipelined
        else None
    )
    if spec is not None and spec.protocol_kwargs:
        replica_options = {**(replica_options or {}), **spec.protocol_kwargs}
    wrapper = None
    if attack_obj is not None:
        def wrapper(pid, replica):
            if pid == attacker:
                return AttackerProcess(replica, attack_obj)
            return replica
    client_options = dict(max_outstanding=4) if pipelined else None
    sim, replicas, clients = build_minbft_system(
        f=f,
        n_clients=n_clients,
        ops_per_client=ops_per_client,
        app=app,
        seed=schedule.seed,
        adversary=adversary,
        req_timeout=25.0,
        retry_timeout=40.0,
        reliable=channel_kwargs,
        replica_factory=(lambda pid, **kw: StallingPrimary(**kw))
        if stalling
        else None,
        replica_wrapper=wrapper,
        timeout_policy=policy_factory,
        replica_options=replica_options,
        client_options=client_options,
    )
    if attacker is not None:
        sim.declare_byzantine(attacker)
    _apply_crashes(
        sim, schedule,
        restart_factory=lambda pid: _minbft_restart_factory(
            replicas, pid, app, channel_kwargs,
            cls=replica_cls, timeout_policy=policy_factory,
            replica_options=replica_options, wrapper=wrapper,
        ),
    )

    forensics: Optional[AccountabilityChecker] = None
    if attack is not None:
        # audit-only: intact hardware must leave nothing to convict
        forensics = AccountabilityChecker(replicas[0].verifier)
        sim.attach_observer(forensics)
    checker: Optional[ReplicationStreamChecker] = None
    correct_replicas = [p for p in schedule.fault_free_pids(n + n_clients)
                        if p < n and p != attacker]
    if streaming:
        checker = ReplicationStreamChecker(correct_replicas, fail_fast=True)
        sim.attach_observer(checker)
    # clients are never crashable, so every client is fault-free; the
    # auditor streams alongside without aborting (deadline misses are
    # permanent and all of them are worth reporting)
    live = ReplicationLivenessChecker(
        gst=schedule.gst,
        request_bound=liveness_bound,
        fault_free_replicas=correct_replicas,
        fault_free_clients=range(n, n + n_clients),
        f=f,
    )
    sim.attach_observer(live)

    def stats(executions: int) -> dict[str, Any]:
        d = {
            "executions": executions,
            "messages_sent": sim.network.messages_sent,
            "dropped": adversary.messages_dropped,
            "duplicates": adversary.duplicates_injected,
            "restarts": len(sim.restarted_pids),
            "timeouts": timeouts,
            "view_changes": max(
                (r.view_changes_completed for r in replicas), default=0
            ),
            "consensus": sim.collect_consensus_stats(),
            "crypto": crypto_stats().as_dict(),
            "simcore": _simcore_stats(sim),
        }
        if attack_obj is not None:
            d["byzantine"] = {
                "attack": attack,
                "attacker": attacker,
                **attack_obj.stats(),
                "forensics": forensics.stats() if forensics else {},
            }
        return d

    protocol = (
        "minbft-stalling"
        if stalling
        else ("minbft-pipelined" if pipelined else "minbft")
    )
    if attack is not None:
        protocol = f"minbft+{attack}"
    described = schedule.describe() + "\n" + adversary.describe()
    try:
        sim.run(until=schedule.horizon)
    except PropertyViolation:
        abort_index, _ = checker.online_violations[0]
        return ChaosResult(
            protocol=protocol,
            seed=schedule.seed,
            ok=False,
            violations=[f"event #{i}: {m}"
                        for i, m in checker.online_violations],
            schedule=described,
            stats=stats(len(checker.executions)),
            abort_index=abort_index,
        )
    expected_ops = {n + c: len(clients[c].ops) for c in range(n_clients)}
    if streaming:
        report = checker.finish(expected_ops=expected_ops)
    else:
        report = check_replication(
            sim.trace,
            correct_replicas,
            clients=range(n, n + n_clients),
            expected_ops=expected_ops,
        )
    violations = report.violations + report.liveness_violations
    if forensics is not None and forensics.convicted:
        # intact hardware produced no double-bound counter; a conviction
        # here is either a checker bug or a genuinely unsafe attack
        violations = violations + [
            f"accountability convicted replica {r} under intact hardware: "
            f"{forensics.convicted[r]!r}"
            for r in sorted(forensics.convicted)
        ]
    live_report = live.finish(end_time=schedule.horizon)
    return ChaosResult(
        protocol=protocol,
        seed=schedule.seed,
        ok=not violations and live_report.ok,
        violations=violations,
        schedule=described,
        stats=stats(len(report.executions)),
        liveness_violations=live_report.violations,
    )


def _minbft_restart_factory(
    replicas, pid, app_name, channel_kwargs,
    cls=MinBFTReplica, timeout_policy=None, replica_options=None,
    wrapper=None,
):
    old = replicas[pid]
    fresh = cls(
        n=old.n,
        usig=old.usig,  # the trusted hardware survives the reboot
        verifier=old.verifier,
        scheme=old.scheme,
        signer=old.signer,
        app=make_app(app_name),  # the application state was volatile
        req_timeout=old.req_timeout,
        timeout_policy=timeout_policy,
        **(replica_options or {}),
    )
    replicas[pid] = fresh
    # an attacked replica reboots *still attacked*: the wrapper carries the
    # attack object (strike state and all) onto the fresh incarnation
    hosted = fresh if wrapper is None else wrapper(pid, fresh)
    return ReliableProcess(hosted, **channel_kwargs)


def run_pbft_chaos(
    schedule: FaultSchedule,
    f: int = 1,
    n_clients: int = 2,
    ops_per_client: int = 3,
    app: str = "counter",
    streaming: bool = True,
    attack: Optional[str] = None,
    liveness_bound: float = 300.0,
) -> ChaosResult:
    """PBFT replication (n = 3f+1, the hardware-free baseline) under one
    fault schedule — primarily the Byzantine-attack axis of the sweep.

    Same shape as :func:`run_minbft_chaos`: ``attack`` names a PBFT entry
    of :data:`repro.faults.attacks.ATTACKS`, the attacker is wrapped,
    declared Byzantine, and excluded from the correct sets, and the
    standard replication safety/liveness checkers must stay green — at
    n = 3f+1 one Byzantine replica is inside the fault budget, so any
    violation is a protocol bug, not an expected outcome.
    """
    spec = attack_obj = None
    attacker: Optional[ProcessId] = None
    replica_options = None
    if attack is not None:
        spec = get_attack(attack)
        if spec.protocol != "pbft":
            raise ConfigurationError(
                f"attack {attack!r} targets {spec.protocol}, not pbft"
            )
        attack_obj = spec.make()
        attacker = spec.attacker
        if spec.protocol_kwargs:
            replica_options = dict(spec.protocol_kwargs)
    reset_crypto_caches()
    n = 3 * f + 1
    adversary = schedule.make_adversary(n + n_clients)
    channel_kwargs = dict(DEFAULT_CHANNEL)
    wrapper = None
    if attack_obj is not None:
        def wrapper(pid, replica):
            if pid == attacker:
                return AttackerProcess(replica, attack_obj)
            return replica
    sim, replicas, clients = build_pbft_system(
        f=f,
        n_clients=n_clients,
        ops_per_client=ops_per_client,
        app=app,
        seed=schedule.seed,
        adversary=adversary,
        req_timeout=25.0,
        retry_timeout=40.0,
        reliable=channel_kwargs,
        replica_wrapper=wrapper,
        replica_options=replica_options,
    )
    if attacker is not None:
        sim.declare_byzantine(attacker)
    _apply_crashes(
        sim, schedule,
        restart_factory=lambda pid: _pbft_restart_factory(
            replicas, pid, app, channel_kwargs,
            replica_options=replica_options, wrapper=wrapper,
        ),
    )

    checker: Optional[ReplicationStreamChecker] = None
    correct_replicas = [p for p in schedule.fault_free_pids(n + n_clients)
                        if p < n and p != attacker]
    if streaming:
        checker = ReplicationStreamChecker(correct_replicas, fail_fast=True)
        sim.attach_observer(checker)
    live = ReplicationLivenessChecker(
        gst=schedule.gst,
        request_bound=liveness_bound,
        fault_free_replicas=correct_replicas,
        fault_free_clients=range(n, n + n_clients),
        f=f,
    )
    sim.attach_observer(live)

    def stats(executions: int) -> dict[str, Any]:
        d = {
            "executions": executions,
            "messages_sent": sim.network.messages_sent,
            "dropped": adversary.messages_dropped,
            "duplicates": adversary.duplicates_injected,
            "restarts": len(sim.restarted_pids),
            "view_changes": max(
                (r.view_changes_completed for r in replicas), default=0
            ),
            "consensus": sim.collect_consensus_stats(),
            "crypto": crypto_stats().as_dict(),
            "simcore": _simcore_stats(sim),
        }
        if attack_obj is not None:
            d["byzantine"] = {
                "attack": attack,
                "attacker": attacker,
                **attack_obj.stats(),
            }
        return d

    protocol = "pbft" if attack is None else f"pbft+{attack}"
    described = schedule.describe() + "\n" + adversary.describe()
    try:
        sim.run(until=schedule.horizon)
    except PropertyViolation:
        abort_index, _ = checker.online_violations[0]
        return ChaosResult(
            protocol=protocol,
            seed=schedule.seed,
            ok=False,
            violations=[f"event #{i}: {m}"
                        for i, m in checker.online_violations],
            schedule=described,
            stats=stats(len(checker.executions)),
            abort_index=abort_index,
        )
    expected_ops = {n + c: len(clients[c].ops) for c in range(n_clients)}
    if streaming:
        report = checker.finish(expected_ops=expected_ops)
    else:
        report = check_replication(
            sim.trace,
            correct_replicas,
            clients=range(n, n + n_clients),
            expected_ops=expected_ops,
        )
    violations = report.violations + report.liveness_violations
    live_report = live.finish(end_time=schedule.horizon)
    return ChaosResult(
        protocol=protocol,
        seed=schedule.seed,
        ok=not violations and live_report.ok,
        violations=violations,
        schedule=described,
        stats=stats(len(report.executions)),
        liveness_violations=live_report.violations,
    )


def _pbft_restart_factory(
    replicas, pid, app_name, channel_kwargs,
    replica_options=None, wrapper=None,
):
    old = replicas[pid]
    fresh = PBFTReplica(
        n=old.n,
        scheme=old.scheme,
        signer=old.signer,
        app=make_app(app_name),  # everything was volatile: no trusted part
        req_timeout=old.req_timeout,
        **(replica_options or {}),
    )
    replicas[pid] = fresh
    hosted = fresh if wrapper is None else wrapper(pid, fresh)
    return ReliableProcess(hosted, **channel_kwargs)


def _apply_crashes(sim, schedule: FaultSchedule, restart_factory) -> None:
    for c in schedule.crashes:
        sim.crash_at(c.pid, c.at)
        if c.restart_at is not None:
            sim.restart_at(
                c.pid, c.restart_at, factory=lambda pid=c.pid: restart_factory(pid)
            )


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------

def _run_service_task(schedule: FaultSchedule, **kwargs: Any) -> ChaosResult:
    # lazy: repro.service builds on repro.faults, so the import must not
    # run at this module's load time
    from ..service.soak import run_service_chaos

    return run_service_chaos(schedule, **kwargs)


PROTOCOLS: dict[str, Callable[..., ChaosResult]] = {
    "srb-uni": run_srb_chaos,
    "srb-uni-broken": lambda schedule, **kw: run_srb_chaos(
        schedule, broken=True, **kw
    ),
    "minbft": run_minbft_chaos,
    "minbft-stalling": lambda schedule, **kw: run_minbft_chaos(
        schedule, stalling=True, **kw
    ),
    "minbft-pipelined": lambda schedule, **kw: run_minbft_chaos(
        schedule, pipelined=True, **kw
    ),
    "pbft": run_pbft_chaos,
    "service": _run_service_task,
    "service-storm": lambda schedule, **kw: _run_service_task(
        schedule, storm=True, **kw
    ),
}

_CRASHABLE = {
    # SRB: pid 0 is the protected sender; MinBFT: replicas 0..2f are fair
    # game (clients live above and are protected). The serving layer
    # crashes replicas only (ingress and tenants are protected); the storm
    # fixture runs crash-free — its only fault is the planted burst.
    "srb-uni": lambda: range(1, 4),
    "srb-uni-broken": lambda: range(1, 4),
    "minbft": lambda: range(0, 3),
    "minbft-stalling": lambda: range(0, 3),
    "minbft-pipelined": lambda: range(0, 3),
    # PBFT rides the attack axis; its baseline cells run crash-free so a
    # red cell always means the attacker, never a coincident crash.
    "pbft": lambda: [],
    "service": lambda: range(0, 3),
    "service-storm": lambda: [],
}


def run_chaos(protocol: str, seed: int, horizon: Time = 600.0, **kwargs) -> ChaosResult:
    """Run one protocol under the seed's derived fault schedule."""
    if protocol not in PROTOCOLS:
        raise ConfigurationError(
            f"unknown chaos protocol {protocol!r}; have {sorted(PROTOCOLS)}"
        )
    schedule = make_schedule(
        seed, crashable=list(_CRASHABLE[protocol]()), horizon=horizon
    )
    return PROTOCOLS[protocol](schedule, **kwargs)


def replay(protocol: str, seed: int, horizon: Time = 600.0, **kwargs) -> ChaosResult:
    """Re-run a reported failure; bit-identical to the original run."""
    return run_chaos(protocol, seed, horizon=horizon, **kwargs)


_REPLAY_HINT_RE = re.compile(
    r"repro\.faults\.chaos\.replay\((['\"])(?P<protocol>[\w-]+)\1,\s*"
    r"(?P<seed>\d+)\)"
)


def replay_from_hint(hint: str, **kwargs) -> ChaosResult:
    """Re-run the failure a :meth:`ChaosResult.replay_hint` string points at.

    Hints are copy-pasted out of CI logs and bug reports, so this accepts
    the whole hint line (or any string containing one). Replays are always
    serial single runs — a hint captured from a parallel sweep reproduces
    identically because every run is a pure function of (protocol, seed)
    and workers never share state.
    """
    m = _REPLAY_HINT_RE.search(hint)
    if m is None:
        raise ConfigurationError(
            f"no replay hint found in {hint!r}; expected "
            "'repro.faults.chaos.replay(<protocol>, <seed>)'"
        )
    return replay(m.group("protocol"), int(m.group("seed")), **kwargs)


def _run_chaos_task(task: tuple[str, int, Time, bool, dict]) -> ChaosResult:
    """Picklable worker-side entry point for parallel sweeps.

    The parent's crypto-caching flag rides along in the task: pool workers
    are fresh interpreters where caching defaults to on, so a sweep issued
    under ``caching_disabled()`` would otherwise silently run cached in the
    workers and break the serial/parallel bit-identity guarantee (cached
    and uncached runs report different ``CryptoStats``).
    """
    protocol, seed, horizon, caching, kwargs = task
    set_caching(caching)
    return run_chaos(protocol, seed, horizon=horizon, **kwargs)


_SEEDED_DEFAULT_PROTOCOLS = ("srb-uni", "minbft")


def chaos_sweep(
    protocols: Iterable[str] = _SEEDED_DEFAULT_PROTOCOLS,
    seeds: Iterable[int] = range(10),
    horizon: Time = 600.0,
    workers: Optional[int] = None,
    mode: str = "seeded",
    **kwargs,
) -> Any:
    """The protocol × seed grid; every cell is an independent seeded run.

    ``workers > 1`` fans the grid out over a ``ProcessPoolExecutor``.
    Results are collected in submission order and every run resets the
    process-global crypto caches on entry, so the returned list — stats
    and all — is bit-identical to the serial sweep (property-tested in
    ``tests/test_chaos_parallel.py``).

    ``mode="exhaustive"`` swaps sampling for bounded model checking:
    ``protocols`` then names entries of
    :data:`repro.mc.fixtures.SYSTEMS` (all of them when left at the
    seeded default), ``seeds``/``horizon`` are ignored (there is nothing
    to sample — every schedule at the configured bound is explored), and
    the return value is the ``{name: ExplorationResult}`` mapping of
    :func:`exhaustive_sweep`.

    ``mode="big-run"`` swaps many-small-runs for ONE sharded open-loop
    run: the first entry of ``seeds`` seeds the workload, ``protocols``/
    ``horizon`` are ignored (the big-run harness is SRB-only and sizes
    its own horizon from the arrival span), remaining ``kwargs`` forward
    to :func:`one_big_run`, and the return value is its
    :class:`BigRunResult`.
    """
    if mode == "big-run":
        seed = next(iter(seeds), 0)
        return one_big_run(seed=seed, workers=workers, **kwargs)
    if mode == "exhaustive":
        names = (
            None if tuple(protocols) == _SEEDED_DEFAULT_PROTOCOLS
            else protocols
        )
        return exhaustive_sweep(systems=names, workers=workers, **kwargs)
    if mode != "seeded":
        raise ConfigurationError(
            f"mode must be 'seeded', 'exhaustive', or 'big-run', got {mode!r}"
        )
    tasks = [
        (protocol, seed, horizon, caching_enabled(), kwargs)
        for protocol in protocols
        for seed in seeds
    ]
    if workers is None or workers <= 1 or len(tasks) <= 1:
        return [_run_chaos_task(task) for task in tasks]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_run_chaos_task, task) for task in tasks]
        return [f.result() for f in futures]


# ---------------------------------------------------------------------------
# Byzantine attack campaign
# ---------------------------------------------------------------------------

_ATTACK_RUNNERS: dict[str, Callable[..., ChaosResult]] = {
    "minbft": run_minbft_chaos,
    "pbft": run_pbft_chaos,
    "srb": run_srb_chaos,
}


def run_attack(
    name: str, seed: int, horizon: Time = 600.0, **kwargs: Any
) -> ChaosResult:
    """Run one attack cell: the named attack against its target protocol.

    ``name`` indexes :data:`repro.faults.attacks.ATTACKS`; the spec picks
    the protocol runner, the attacker pid, and which pids may *also* crash
    (most cells run crash-free so a red cell indicts the attacker, not a
    coincident crash — ``vc-withhold`` deliberately crashes the primary to
    force the view change it then sabotages). With intact hardware every
    cell must come back ``ok``: safety and liveness hold at n = 2f+1
    (MinBFT) / n = 3f+1 (PBFT) / n >= 2t+1 (SRB), and the MinBFT cells
    additionally assert the audit-only accountability checker convicted
    nobody.
    """
    spec = get_attack(name)
    schedule = make_schedule(
        seed, crashable=list(spec.crashable), horizon=horizon
    )
    if spec.crash_script:
        schedule = dataclasses.replace(
            schedule,
            crashes=tuple(
                CrashEvent(pid=p, at=at, restart_at=r)
                for p, at, r in spec.crash_script
            ),
        )
    return _ATTACK_RUNNERS[spec.protocol](
        schedule, attack=name, **{**spec.runner_kwargs, **kwargs}
    )


def _run_attack_task(task: tuple[str, int, Time, bool, dict]) -> ChaosResult:
    """Picklable worker-side entry point (see :func:`_run_chaos_task`)."""
    name, seed, horizon, caching, kwargs = task
    set_caching(caching)
    return run_attack(name, seed, horizon=horizon, **kwargs)


def attack_sweep(
    attacks: Optional[Iterable[str]] = None,
    seeds: Iterable[int] = range(5),
    horizon: Time = 600.0,
    workers: Optional[int] = None,
    **kwargs: Any,
) -> list[ChaosResult]:
    """The attack × seed grid; the Byzantine axis of the chaos sweep.

    ``attacks=None`` runs the whole registry. Same determinism contract
    as :func:`chaos_sweep`: every cell is a pure function of
    ``(attack, seed)`` and parallel results are bit-identical to serial.
    """
    names = list(attacks) if attacks is not None else sorted(ATTACKS)
    tasks = [
        (name, seed, horizon, caching_enabled(), kwargs)
        for name in names
        for seed in seeds
    ]
    if workers is None or workers <= 1 or len(tasks) <= 1:
        return [_run_attack_task(task) for task in tasks]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_run_attack_task, task) for task in tasks]
        return [f.result() for f in futures]


def run_compromised_minbft_soak(
    seed: int = 0,
    horizon: Time = 600.0,
    conviction_delay: float = 5.0,
) -> dict[str, Any]:
    """The full compromised-hardware arc in ONE run: violate, convict, heal.

    Replica 0 — the view-0 primary — is a
    :class:`~repro.faults.attacks.TraitorReplica`: its USIG signing key is
    extracted, so it equivocates *through* the trusted hardware, binding
    two different PREPAREs to one counter value. At n = 2f+1 that splits
    the group — the honest replicas certify divergent histories with f+1
    votes each (the traitor's UI counts in both), the exact safety
    collapse the paper's classification predicts once the hardware
    assumption fails. The run then must heal itself:

    1. the streaming safety checker records the divergence (red);
    2. the :class:`~repro.consensus.forensics.AccountabilityChecker`
       harvests both UIs off the wire and convicts replica 0 with a
       self-contained, independently verifiable proof-of-misbehavior;
    3. ``conviction_delay`` later the culprit is quarantined and the
       survivors ``convict()``: purge its UIs, roll back to their last
       attested state (genesis here — checkpoints are off, and a stable
       checkpoint co-signed by the culprit could attest divergent
       states), and re-form the view without it;
    4. clients retry and finish against the 2-replica rump group (green).

    Returns the evidence bundle: the proof (replayable via
    :func:`repro.consensus.forensics.verify_proof` against the returned
    verifier), conviction times, the recorded divergence, and the final
    clean audit report.
    """
    reset_crypto_caches()
    f = 1
    n = 2 * f + 1
    n_clients = 2

    def factory(pid: int, **kw: Any):
        # traitor at pid 0: equivocation rides the primary's proposal
        # path, so the compromised replica must lead view 0
        if pid == 0:
            return TraitorReplica(victims=(2,), **kw)
        return MinBFTReplica(**kw)

    sim, replicas, clients = build_minbft_system(
        f=f,
        n_clients=n_clients,
        ops_per_client=3,
        app="counter",
        seed=seed,
        req_timeout=25.0,
        retry_timeout=40.0,
        replica_factory=factory,
    )
    checker = ReplicationStreamChecker([1, 2], fail_fast=False)
    sim.attach_observer(checker)
    forensics = install_accountability(
        sim,
        replicas,
        verifier=replicas[1].verifier,
        recover=True,
        delay=conviction_delay,
    )
    sim.run(until=horizon)
    expected_ops = {n + c: len(clients[c].ops) for c in range(n_clients)}
    report = checker.finish(expected_ops=expected_ops)
    return {
        "convicted": sorted(forensics.convicted),
        "proof": forensics.convicted.get(0),
        "verifier": replicas[1].verifier,
        "detected_at": dict(forensics.detected_at),
        "hw_equivocations": replicas[0].hw_equivocations,
        "online_violations": list(checker.online_violations),
        "report": report,
        "forensics": forensics.stats(),
    }


# ---------------------------------------------------------------------------
# One-big-run sharding
# ---------------------------------------------------------------------------


class _OrderHasher(TraceObserver):
    """Streaming hash of the dispatch-order trace stream.

    Subscribed before anything else, it sees every recorded event in
    dispatch order and folds ``(index, time, kind, pid)`` into a SHA-256 —
    the run's *order witness*. Two runs with equal digests recorded the
    same events in the same order; the big-run harness uses this to prove
    a sharded execution reproduced the serial one bit-exactly.
    """

    def __init__(self) -> None:
        self._h = hashlib.sha256()

    def on_event(self, ev) -> None:
        self._h.update(f"{ev.index}|{ev.time!r}|{ev.kind}|{ev.pid}".encode())

    def hexdigest(self) -> str:
        return self._h.hexdigest()


@dataclass(slots=True)
class BigRunResult:
    """Deterministic merge of one sharded open-loop run.

    ``order_hash`` is SHA-256 over the per-shard order witnesses in shard
    order — the identity of the whole logical run. It depends on
    ``(protocol, seed, n_ops, rate, shards)`` but **not** on ``workers``:
    executing the same shard set serially or across a pool yields the
    same digest (asserted by ``benchmarks/bench_simcore.py`` and
    ``tests/test_big_run.py``).

    ``stats`` sums the deterministic per-shard counters
    (``events_processed``, ``timer_wheel_hits``, ``freelist_reuses``,
    ``deliveries``) and adds the one legitimately nondeterministic
    aggregate, ``events_per_sec`` (total events over total worker wall
    time) — throughput reporting, never an identity field.
    """

    protocol: str
    seed: int
    n_ops: int
    shards: int
    workers: int
    ok: bool
    violations: list[str]
    order_hash: str
    shard_hashes: tuple[str, ...]
    stats: dict[str, Any] = field(default_factory=dict)


def _run_big_shard(
    task: tuple[int, int, tuple, float, bool, str],
) -> dict[str, Any]:
    """Picklable worker: simulate one contiguous shard of the big workload.

    Each shard is an independent SRB system (fresh processes, shard-derived
    sub-seed) whose sender broadcasts the shard's ops at their original
    absolute arrival times — open-loop arrivals carry no cross-op causal
    edges on the client side, so cutting the timeline cuts nothing the
    safety checkers care about. Crashes/loss are deliberately absent:
    the big-run harness measures throughput and order-determinism, the
    seeded chaos grid above owns fault coverage.
    """
    seed, index, arrivals, drain, caching, scheduler = task
    set_caching(caching)
    reset_crypto_caches()
    scheduler_factory = None
    if scheduler == "reference":
        from ..sim._reference import HeapOnlyScheduler

        scheduler_factory = HeapOnlyScheduler
    shard_seed = int.from_bytes(
        hashlib.sha256(f"bigrun|{seed}|{index}".encode()).digest()[:8], "big"
    )
    hasher = _OrderHasher()
    sim, procs, _scheme = build_mp_srb_system(
        n=4,
        t=1,
        sender=0,
        seed=shard_seed,
        reliable=dict(DEFAULT_CHANNEL),
        observers=(hasher,),
        scheduler_factory=scheduler_factory,
    )
    checker = SRBStreamChecker(
        0, tuple(range(4)), expect_complete=True, fail_fast=False
    )
    sim.attach_observer(checker)
    for t_arrive, op in arrivals:
        sim.at(t_arrive, lambda op=op: procs[0].broadcast(op), label="big-op")
    span_end = arrivals[-1][0] if arrivals else 0.0
    run_stats = sim.run(until=span_end + drain)
    report = checker.finish()
    return {
        "index": index,
        "ops": len(arrivals),
        "order_hash": hasher.hexdigest(),
        "violations": [f"shard {index}: {v}" for v in report.all_violations()],
        "events_processed": run_stats.events_processed,
        "timer_wheel_hits": run_stats.timer_wheel_hits,
        "freelist_reuses": run_stats.freelist_reuses,
        "deliveries": len(report.deliveries),
        "wall_seconds": (
            run_stats.events_processed / run_stats.events_per_sec
            if run_stats.events_per_sec
            else 0.0
        ),
    }


def one_big_run(
    seed: int = 0,
    n_ops: int = 200,
    rate: float = 2.0,
    shards: int = 4,
    workers: Optional[int] = None,
    drain: float = 120.0,
    kind: str = "uniform-kv",
    scheduler: str = "production",
) -> BigRunResult:
    """Split one huge open-loop SRB workload across workers; merge deterministically.

    The complement of the seeded :func:`chaos_sweep` grid: instead of many
    small independent runs, ONE logical run — ``n_ops`` broadcast ops
    arriving open-loop at ``rate`` ops per time unit — cut into
    ``shards`` contiguous timeline slices that execute as independent
    simulations (serially, or fanned over a ``ProcessPoolExecutor`` when
    ``workers > 1``). The merge is deterministic: shard results are
    recombined in shard order regardless of completion order, counters are
    summed, and the combined ``order_hash`` chains the per-shard dispatch
    order witnesses — so the digest is a pure function of the workload
    parameters and ``shards``, never of ``workers`` or pool scheduling.

    ``shards`` is part of the run's identity (shard boundaries reset
    protocol state); ``workers`` only sets execution parallelism. To
    compare a serial and a parallel execution of the *same* run, hold
    ``shards`` fixed and vary ``workers``.

    ``scheduler`` selects the event-loop implementation: ``"production"``
    (default) or ``"reference"`` — the retained pre-refactor heap-only
    loop from :mod:`repro.sim._reference`. The dispatch order, and hence
    ``order_hash``, must be identical under either (the benchmark records
    exactly this cross-implementation check); only throughput differs.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if scheduler not in ("production", "reference"):
        raise ConfigurationError(
            f"scheduler must be 'production' or 'reference', got {scheduler!r}"
        )
    from ..workloads.generator import open_loop_arrivals, shard_arrivals

    arrivals = open_loop_arrivals(n_ops, seed=seed, rate=rate, kind=kind)
    shard_list = shard_arrivals(arrivals, shards)
    tasks = [
        (seed, s.index, s.arrivals, drain, caching_enabled(), scheduler)
        for s in shard_list
    ]
    if workers is None or workers <= 1 or len(tasks) <= 1:
        effective_workers = 1
        records = [_run_big_shard(t) for t in tasks]
    else:
        from concurrent.futures import ProcessPoolExecutor

        effective_workers = workers
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_big_shard, t) for t in tasks]
            records = [f.result() for f in futures]  # submission order
    records.sort(key=lambda r: r["index"])  # merge key: shard order
    shard_hashes = tuple(r["order_hash"] for r in records)
    combined = hashlib.sha256("|".join(shard_hashes).encode()).hexdigest()
    violations = [v for r in records for v in r["violations"]]
    total_events = sum(r["events_processed"] for r in records)
    total_wall = sum(r["wall_seconds"] for r in records)
    return BigRunResult(
        protocol="srb-uni",
        seed=seed,
        n_ops=n_ops,
        shards=shards,
        workers=effective_workers,
        ok=not violations,
        violations=violations,
        order_hash=combined,
        shard_hashes=shard_hashes,
        stats={
            "events_processed": total_events,
            "timer_wheel_hits": sum(r["timer_wheel_hits"] for r in records),
            "freelist_reuses": sum(r["freelist_reuses"] for r in records),
            "deliveries": sum(r["deliveries"] for r in records),
            "events_per_sec": (
                total_events / total_wall if total_wall > 0 else 0.0
            ),
        },
    )


def _run_mc_task(task: tuple[str, Optional[int], tuple[int, ...], bool]):
    """Picklable worker entry: explore one root shard of a named system.

    Workers resolve the system by *name* — factories close over live
    simulator objects and cannot pickle — and re-derive everything else
    locally. The crypto-caching flag rides along for the same reason it
    does in :func:`_run_chaos_task`.
    """
    name, root_choice, root_sleep, caching = task
    set_caching(caching)
    from ..mc.explorer import Explorer
    from ..mc.fixtures import get_system

    s = get_system(name)
    explorer = Explorer(s.factory, check=s.check, **s.options)
    return explorer.run(root_choice=root_choice, root_sleep=root_sleep)


def exhaustive_sweep(
    systems: Optional[Iterable[str]] = None,
    workers: Optional[int] = None,
) -> dict[str, Any]:
    """Model-check the named fixture systems; shard roots across workers.

    The DFS frontier is split at the root: each task pins one root
    transition (``root_choice``) and seeds its earlier siblings asleep
    (``root_sleep``), so the shard union covers exactly the sequential
    DPOR exploration — a naive split at the top, full reduction below.
    Returns ``{system name: merged ExplorationResult}``; merged
    ``violations`` carry replayable schedule ids exactly like a serial
    :func:`repro.mc.explorer.explore` run.
    """
    from ..mc.explorer import merge_results, root_choice_count
    from ..mc.fixtures import SYSTEMS, get_system

    names = sorted(SYSTEMS) if systems is None else list(systems)
    tasks: list[tuple[str, Optional[int], tuple[int, ...], bool]] = []
    for name in names:
        s = get_system(name)
        n_roots = root_choice_count(s.factory, **s.options)
        tasks.extend(
            (name, i, tuple(range(i)), caching_enabled())
            for i in range(n_roots)
        )
    if workers is None or workers <= 1 or len(tasks) <= 1:
        results = [_run_mc_task(t) for t in tasks]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_mc_task, t) for t in tasks]
            results = [f.result() for f in futures]
    grouped: dict[str, list] = {name: [] for name in names}
    for (name, _i, _sleep, _c), r in zip(tasks, results):
        grouped[name].append(r)
    return {name: merge_results(grouped[name]) for name in names}


def format_failures(results: Iterable[ChaosResult]) -> str:
    """Render failing runs with their seed, schedule, and replay hint.

    Identical violation strings recurring across seeds (the usual shape of
    a systematic bug swept over many seeds) are printed once and counted
    thereafter, so a 40-seed sweep of one bug reads as one message, not
    forty.
    """
    blocks = []
    seen: set[str] = set()

    def dedup(violations: list[str], prefix: str = "") -> list[str]:
        shown, repeats = [], 0
        for v in violations:
            if v in seen:
                repeats += 1
            else:
                seen.add(v)
                shown.append(v)
        lines = [f"  - {prefix}{v}" for v in shown[:5]]
        extra = len(shown) - 5
        if extra > 0:
            lines.append(f"  ... and {extra} more")
        if repeats:
            lines.append(
                f"  ({repeats} identical to earlier seeds, elided)"
            )
        return lines

    for r in results:
        if r.ok:
            continue
        total = len(r.violations) + len(r.liveness_violations)
        lines = [f"[{r.protocol} seed={r.seed}] {total} violation(s):"]
        lines += dedup(r.violations)
        lines += dedup(r.liveness_violations, prefix="liveness: ")
        lines.append("  schedule:")
        lines += [f"    {l}" for l in r.schedule.splitlines()]
        lines.append(f"  {r.replay_hint()}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) if blocks else "all chaos runs clean"


def assert_all_ok(results: Iterable[ChaosResult]) -> None:
    results = list(results)
    bad = [r for r in results if not r.ok]
    if bad:
        raise PropertyViolation(
            "chaos",
            f"{len(bad)}/{len(results)} chaos runs violated safety:\n"
            + format_failures(bad),
        )
