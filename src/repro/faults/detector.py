"""Heartbeat-based accrual failure detection and supervised recovery.

Crash-recovery runs need two services the protocols themselves do not
provide: *noticing* that a process stopped (a failure detector) and
*bringing it back* (a supervisor). Both live here.

:class:`AccrualFailureDetector` is the phi-accrual detector of
Hayashibara et al.: instead of a boolean timeout it tracks each peer's
heartbeat inter-arrival distribution (EWMA mean + deviation, the same
estimator family as :mod:`repro.faults.timeouts`) and exposes a
continuous suspicion level ``phi(peer, now)`` — roughly, "how many
orders of magnitude of confidence that the silence is a crash rather
than jitter". Thresholding phi trades detection speed against false
positives; under a GST adversary the pre-GST chaos widens the learned
distribution, which is exactly what keeps the detector quiet through
the chaotic era.

:class:`HeartbeatProcess` turns the detector into a runnable process:
it gossips heartbeats on a timer, scores its peers, and records
``suspect`` / ``restore`` custom trace events for the analysis layer.

:class:`RecoverySupervisor` closes the loop: attached to the trace
observer bus it reacts to ``crash`` events by scheduling a
:meth:`~repro.sim.runner.Simulation.restart` after a fixed repair
delay, with two staleness guards at fire time (the pid must still be
crashed, and must not have been restarted — possibly crashed again —
by anyone else in between).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Optional

from ..errors import ConfigurationError
from ..sim.process import Process
from ..sim.runner import Simulation
from ..sim.trace import CUSTOM, TraceEvent, TraceObserver
from ..types import ProcessId, Time

__all__ = ["AccrualFailureDetector", "HeartbeatProcess", "RecoverySupervisor"]


class _ArrivalStats:
    """EWMA mean/deviation of one peer's heartbeat inter-arrival times."""

    __slots__ = ("last", "mean", "dev", "samples")

    def __init__(self) -> None:
        self.last: Optional[Time] = None
        self.mean = 0.0
        self.dev = 0.0
        self.samples = 0


class AccrualFailureDetector:
    """Phi-accrual suspicion levels over heartbeat arrival history.

    ``phi = -log10(P(silence this long | peer alive))`` under a normal
    model of inter-arrival times, so ``phi = 1`` means ~90% confidence
    the peer is down, ``phi = 3`` means ~99.9%. ``threshold`` is the
    suspicion level :meth:`is_suspect` uses.
    """

    def __init__(
        self,
        threshold: float = 3.0,
        alpha: float = 0.2,
        min_dev: float = 0.05,
        min_samples: int = 3,
    ) -> None:
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0, got {threshold}")
        if not 0 < alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if min_dev <= 0:
            raise ConfigurationError(f"min_dev must be > 0, got {min_dev}")
        self.threshold = threshold
        self.alpha = alpha
        self.min_dev = min_dev
        self.min_samples = min_samples
        self._peers: dict[ProcessId, _ArrivalStats] = {}

    def heartbeat(self, peer: ProcessId, now: Time) -> None:
        """Record a heartbeat arrival from ``peer`` at ``now``."""
        st = self._peers.setdefault(peer, _ArrivalStats())
        if st.last is not None:
            interval = now - st.last
            if interval >= 0:
                if st.samples == 0:
                    st.mean = interval
                    st.dev = interval / 2
                else:
                    err = interval - st.mean
                    st.mean += self.alpha * err
                    st.dev += self.alpha * (abs(err) - st.dev)
                st.samples += 1
        st.last = now

    def phi(self, peer: ProcessId, now: Time) -> float:
        """Current suspicion level for ``peer`` (0.0 while still learning)."""
        st = self._peers.get(peer)
        if st is None or st.last is None or st.samples < self.min_samples:
            return 0.0
        elapsed = now - st.last
        dev = max(st.dev, self.min_dev)
        z = (elapsed - st.mean) / (dev * math.sqrt(2.0))
        # P(X > elapsed) for X ~ N(mean, dev); erfc keeps the tail accurate
        p_later = 0.5 * math.erfc(z)
        if p_later <= 0.0:
            return float("inf")
        return -math.log10(p_later)

    def is_suspect(self, peer: ProcessId, now: Time) -> bool:
        return self.phi(peer, now) >= self.threshold

    def forget(self, peer: ProcessId) -> None:
        """Drop ``peer``'s history (e.g. after a known restart)."""
        self._peers.pop(peer, None)


class HeartbeatProcess(Process):
    """Gossips heartbeats and records ``suspect`` / ``restore`` verdicts.

    Each instance broadcasts ``(HB, pid, count)`` every ``interval`` and
    scores every other member of ``group`` with an
    :class:`AccrualFailureDetector` on a ``check_interval`` timer.
    Transitions are recorded as custom trace events::

        event="suspect", peer=<pid>, phi=<level>
        event="restore", peer=<pid>, down_for=<silence duration>

    so batch analysis (and the chaos harness) can measure detection and
    recovery latency straight off the trace.
    """

    HB = "__hb__"
    SEND_TAG = "hb-send"
    CHECK_TAG = "hb-check"

    def __init__(
        self,
        group: Iterable[ProcessId],
        interval: float = 5.0,
        check_interval: Optional[float] = None,
        threshold: float = 3.0,
        alpha: float = 0.2,
        min_dev: float = 0.05,
    ) -> None:
        super().__init__()
        if interval <= 0:
            raise ConfigurationError(f"interval must be > 0, got {interval}")
        self.group = tuple(sorted(set(group)))
        self.interval = interval
        self.check_interval = (
            check_interval if check_interval is not None else interval / 2
        )
        if self.check_interval <= 0:
            raise ConfigurationError(
                f"check_interval must be > 0, got {self.check_interval}"
            )
        self.detector = AccrualFailureDetector(
            threshold=threshold, alpha=alpha, min_dev=min_dev
        )
        self._suspected: dict[ProcessId, Time] = {}  # peer -> time suspected
        self._last_seen: dict[ProcessId, Time] = {}
        self.beats_sent = 0
        self.suspect_events = 0
        self.restore_events = 0

    @property
    def suspected(self) -> frozenset[ProcessId]:
        return frozenset(self._suspected)

    def on_start(self) -> None:
        self.ctx.set_timer(self.interval, self.SEND_TAG)
        self.ctx.set_timer(self.check_interval, self.CHECK_TAG)

    def on_timer(self, tag: Any) -> None:
        if tag == self.SEND_TAG:
            self.beats_sent += 1
            for peer in self.group:
                if peer != self.pid:
                    self.ctx.send(peer, (self.HB, self.pid, self.beats_sent))
            self.ctx.set_timer(self.interval, self.SEND_TAG)
        elif tag == self.CHECK_TAG:
            now = self.ctx.now
            for peer in self.group:
                if peer == self.pid or peer in self._suspected:
                    continue
                if self.detector.is_suspect(peer, now):
                    self._suspected[peer] = now
                    self.suspect_events += 1
                    self.ctx.record(
                        "custom",
                        event="suspect",
                        peer=peer,
                        phi=self.detector.phi(peer, now),
                    )
            self.ctx.set_timer(self.check_interval, self.CHECK_TAG)

    def on_message(self, src: ProcessId, msg: Any) -> None:
        if not (isinstance(msg, tuple) and len(msg) == 3 and msg[0] == self.HB):
            return
        now = self.ctx.now
        self.detector.heartbeat(src, now)
        self._last_seen[src] = now
        since = self._suspected.pop(src, None)
        if since is not None:
            self.restore_events += 1
            self.ctx.record(
                "custom", event="restore", peer=src, down_for=now - since
            )


class RecoverySupervisor(TraceObserver):
    """Restarts crashed processes after a repair delay, with stale guards.

    Attach to a :class:`~repro.sim.runner.Simulation`'s observer bus
    (``sim.attach_observer(sup)``). On every ``crash`` custom event for a
    supervised pid it schedules ``sim.restart(pid, factory)`` at
    ``crash_time + restart_delay``. At fire time the restart is skipped
    unless the pid is *still* crashed **and** its incarnation number is
    unchanged since scheduling — if the chaos schedule (or a previous
    supervisor entry) already revived it, or revived-and-recrashed it,
    this entry is stale and acting on it would double-boot the process.

    ``factory`` maps ``pid`` to a fresh process instance; ``None`` falls
    back to :meth:`~repro.sim.process.Process.remake`. ``max_restarts``
    caps supervised restarts per pid (``None`` = unlimited).
    """

    def __init__(
        self,
        sim: Simulation,
        restart_delay: float = 10.0,
        pids: Optional[Iterable[ProcessId]] = None,
        factory: Optional[Callable[[ProcessId], Process]] = None,
        max_restarts: Optional[int] = None,
    ) -> None:
        if restart_delay < 0:
            raise ConfigurationError(
                f"restart_delay must be >= 0, got {restart_delay}"
            )
        self.sim = sim
        self.restart_delay = restart_delay
        self.pids = set(pids) if pids is not None else None
        self.factory = factory
        self.max_restarts = max_restarts
        self.scheduled = 0
        self.performed = 0
        self.suppressed_stale = 0
        self._per_pid: dict[ProcessId, int] = {}

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind != CUSTOM or ev.field("event") != "crash":
            return
        pid = ev.pid
        if self.pids is not None and pid not in self.pids:
            return
        count = self._per_pid.get(pid, 0)
        if self.max_restarts is not None and count >= self.max_restarts:
            return
        self._per_pid[pid] = count + 1
        expected_inc = self.sim.incarnation_of(pid)
        self.scheduled += 1
        self.sim.at(
            ev.time + self.restart_delay,
            lambda: self._fire(pid, expected_inc),
            label=f"supervised-restart-{pid}",
        )

    def _fire(self, pid: ProcessId, expected_inc: int) -> None:
        if (
            pid not in self.sim.crashed_pids
            or self.sim.incarnation_of(pid) != expected_inc
        ):
            self.suppressed_stale += 1
            return
        fresh = self.factory(pid) if self.factory is not None else None
        self.sim.restart(pid, (lambda: fresh) if fresh is not None else None)
        self.performed += 1
