"""Fault injection: lossy/chaotic adversaries, reliable channels, chaos sweeps.

Five layers, composable with every protocol in the library:

- :mod:`~repro.faults.adversaries` — network faults (loss, bursts,
  partitions, duplication, stragglers) as drop-in adversaries, including
  the partial-synchrony :class:`~repro.faults.adversaries.GSTAdversary`;
- :mod:`~repro.faults.channel` — the retransmission layer that restores
  the eventual-delivery assumption protocols were written against;
- :mod:`~repro.faults.timeouts` — Jacobson/Karels adaptive timeout
  policies shared by the channel and the consensus timers;
- :mod:`~repro.faults.detector` — phi-accrual failure detection and
  supervised crash recovery;
- :mod:`~repro.faults.chaos` — seeded protocol × fault-schedule sweeps
  with deterministic failure reproduction, plus crash-recovery scripts
  that exercise the durable-hardware/volatile-host split.
"""

from .attacks import (
    ATTACKS,
    Attack,
    AttackSpec,
    AttackerProcess,
    TraitorReplica,
    attacks_for,
    get_attack,
)
from .adversaries import (
    BurstWindow,
    ChaosAdversary,
    GSTAdversary,
    LossyAsynchronous,
    PartitionBurst,
)
from .channel import ReliableChannel, ReliableProcess, wrap_reliable
from .chaos import (
    ChaosResult,
    CrashEvent,
    EagerBrokenSRB,
    FaultSchedule,
    StallingPrimary,
    assert_all_ok,
    chaos_sweep,
    format_failures,
    make_schedule,
    replay,
    run_chaos,
    run_attack,
    run_compromised_minbft_soak,
    run_minbft_chaos,
    run_pbft_chaos,
    run_srb_chaos,
    attack_sweep,
)
from .detector import AccrualFailureDetector, HeartbeatProcess, RecoverySupervisor
from .timeouts import (
    AdaptiveTimeout,
    FixedTimeout,
    JitteredPolicy,
    RetryBudget,
    RttEstimator,
    TimeoutPolicy,
    derive_jitter_rng,
    make_policy_factory,
)

__all__ = [
    "ATTACKS",
    "AccrualFailureDetector",
    "AdaptiveTimeout",
    "Attack",
    "AttackSpec",
    "AttackerProcess",
    "BurstWindow",
    "ChaosAdversary",
    "ChaosResult",
    "CrashEvent",
    "EagerBrokenSRB",
    "FaultSchedule",
    "FixedTimeout",
    "GSTAdversary",
    "HeartbeatProcess",
    "JitteredPolicy",
    "LossyAsynchronous",
    "PartitionBurst",
    "RecoverySupervisor",
    "RetryBudget",
    "ReliableChannel",
    "ReliableProcess",
    "RttEstimator",
    "StallingPrimary",
    "TimeoutPolicy",
    "TraitorReplica",
    "assert_all_ok",
    "attack_sweep",
    "attacks_for",
    "chaos_sweep",
    "derive_jitter_rng",
    "format_failures",
    "get_attack",
    "make_policy_factory",
    "make_schedule",
    "replay",
    "run_attack",
    "run_chaos",
    "run_compromised_minbft_soak",
    "run_minbft_chaos",
    "run_pbft_chaos",
    "run_srb_chaos",
    "wrap_reliable",
]
