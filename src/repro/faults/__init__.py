"""Fault injection: lossy/chaotic adversaries, reliable channels, chaos sweeps.

Three layers, composable with every protocol in the library:

- :mod:`~repro.faults.adversaries` — network faults (loss, bursts,
  partitions, duplication, stragglers) as drop-in adversaries;
- :mod:`~repro.faults.channel` — the retransmission layer that restores
  the eventual-delivery assumption protocols were written against;
- :mod:`~repro.faults.chaos` — seeded protocol × fault-schedule sweeps
  with deterministic failure reproduction, plus crash-recovery scripts
  that exercise the durable-hardware/volatile-host split.
"""

from .adversaries import (
    BurstWindow,
    ChaosAdversary,
    LossyAsynchronous,
    PartitionBurst,
)
from .channel import ReliableChannel, ReliableProcess, wrap_reliable
from .chaos import (
    ChaosResult,
    CrashEvent,
    EagerBrokenSRB,
    FaultSchedule,
    assert_all_ok,
    chaos_sweep,
    format_failures,
    make_schedule,
    replay,
    run_chaos,
    run_minbft_chaos,
    run_srb_chaos,
)

__all__ = [
    "BurstWindow",
    "ChaosAdversary",
    "ChaosResult",
    "CrashEvent",
    "EagerBrokenSRB",
    "FaultSchedule",
    "LossyAsynchronous",
    "PartitionBurst",
    "ReliableChannel",
    "ReliableProcess",
    "assert_all_ok",
    "chaos_sweep",
    "format_failures",
    "make_schedule",
    "replay",
    "run_chaos",
    "run_minbft_chaos",
    "run_srb_chaos",
    "wrap_reliable",
]
