"""Adaptive timeout policies: Jacobson/Karels RTT estimation + backoff.

Fixed timeouts are the classic liveness foot-gun of partially synchronous
protocols: set them below the real (unknown) post-GST delay bound and view
changes fire forever; set them far above it and every fault costs seconds
of idle waiting. The standard cure — used by TCP since Jacobson's "Congestion
Avoidance and Control" (SIGCOMM '88), with the variance term from
Jacobson/Karels — is to *measure* round-trip samples and derive the
retransmission timeout as

    srtt    <- (1 - alpha) * srtt + alpha * sample        (alpha = 1/8)
    rttvar  <- (1 - beta) * rttvar + beta * |srtt - sample|  (beta = 1/4)
    rto      = srtt + 4 * rttvar

clamped to ``[min_timeout, max_timeout]`` and doubled on every unproductive
expiry (exponential backoff, per Karn & Partridge). Both the retransmission
layer (:mod:`repro.faults.channel`) and the consensus view-change/batch
timers (:mod:`repro.consensus.minbft`, :mod:`repro.consensus.pbft`) share
these policies, so a single estimator type covers "when do I resend a
frame" and "when do I give up on the primary".

Two implementations of the same :class:`TimeoutPolicy` protocol:

- :class:`FixedTimeout` — the pre-existing behavior (a constant duration,
  optionally with exponential backoff), kept as the experimental control
  arm.
- :class:`AdaptiveTimeout` — Jacobson/Karels estimation with Karn-style
  sample admission left to the caller (only observe samples for
  un-retransmitted exchanges).
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Callable, Optional, Protocol, runtime_checkable

from ..errors import ConfigurationError

__all__ = [
    "AdaptiveTimeout",
    "FixedTimeout",
    "JitteredPolicy",
    "RetryBudget",
    "RttEstimator",
    "TimeoutPolicy",
    "derive_jitter_rng",
    "make_policy_factory",
]


def derive_jitter_rng(seed: int, *labels: Any) -> random.Random:
    """A dedicated RNG stream for retry/retransmit jitter.

    Derived from the run seed (plus caller labels — typically pid and
    incarnation) with a cryptographic hash, the same construction the
    simulator uses for per-process streams. Two properties matter:

    - *seed-determinism*: jitter draws are a pure function of
      ``(seed, labels)``, so sweeps replay bit-identically and
      ``one_big_run`` serial ≡ pooled still holds;
    - *independence*: the stream is consumed only by the jitter site, so
      protocol-level RNG use (``ctx.rng``) can change without shifting
      retry timing — and vice versa.
    """
    material = "|".join(str(x) for x in ("jitter", seed, *labels)).encode()
    digest = hashlib.sha256(material).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class RetryBudget:
    """Token-bucket retry budget: retries can never amplify offered load.

    The client-side complement of server-side admission control (the
    Finagle/"retry budget" construction): every *original* send deposits
    ``ratio`` tokens, every retry withdraws one. Whatever the failure
    pattern, retries are bounded by ``ratio`` × originals plus the
    ``min_reserve`` float, so a fleet of budgeted clients can multiply
    offered load by at most ``1 + ratio`` — the knob that turns a
    metastable retry storm into a damped transient.

    Deterministic and cheap: one float. ``try_spend()`` is the gate a
    retry must pass; a refusal is the moment to surface a typed
    :class:`~repro.errors.RetriesExhausted` instead of retransmitting.
    """

    __slots__ = ("ratio", "min_reserve", "max_tokens", "_tokens",
                 "sends_noted", "retries_granted", "retries_denied")

    def __init__(
        self,
        ratio: float = 0.1,
        min_reserve: float = 3.0,
        max_tokens: float = 100.0,
    ) -> None:
        if ratio < 0:
            raise ConfigurationError(f"ratio must be >= 0, got {ratio}")
        if min_reserve < 0:
            raise ConfigurationError(
                f"min_reserve must be >= 0, got {min_reserve}"
            )
        if max_tokens < min_reserve:
            raise ConfigurationError(
                f"max_tokens must be >= min_reserve, got {max_tokens}"
            )
        self.ratio = ratio
        self.min_reserve = min_reserve
        self.max_tokens = max_tokens
        self._tokens = float(min_reserve)
        self.sends_noted = 0
        self.retries_granted = 0
        self.retries_denied = 0

    @property
    def tokens(self) -> float:
        return self._tokens

    def note_send(self) -> None:
        """Credit the budget for one original (non-retry) send."""
        self.sends_noted += 1
        self._tokens = min(self._tokens + self.ratio, self.max_tokens)

    def try_spend(self) -> bool:
        """Withdraw one retry token; False when the budget is exhausted."""
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.retries_granted += 1
            return True
        self.retries_denied += 1
        return False


class JitteredPolicy:
    """Multiplicative seed-deterministic jitter over any :class:`TimeoutPolicy`.

    ``current()`` scales the inner policy's duration by a fresh uniform
    draw in ``[1, 1 + jitter]`` from a dedicated RNG (see
    :func:`derive_jitter_rng`). Exponential backoff without jitter keeps a
    synchronized client fleet synchronized — every process re-fires on the
    same schedule, re-colliding forever; the jitter draw is what spreads
    the retry wave. Everything else passes through to the inner policy.
    """

    __slots__ = ("inner", "jitter", "rng")

    def __init__(
        self,
        inner: "TimeoutPolicy",
        rng: random.Random,
        jitter: float = 0.5,
    ) -> None:
        if jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
        self.inner = inner
        self.jitter = jitter
        self.rng = rng

    def current(self) -> float:
        return self.inner.current() * (1.0 + self.jitter * self.rng.random())

    def escalate(self) -> float:
        return self.inner.escalate()

    def note_progress(self) -> None:
        self.inner.note_progress()

    def observe(self, sample: float) -> None:
        self.inner.observe(sample)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JitteredPolicy(jitter={self.jitter}, inner={self.inner!r})"


class RttEstimator:
    """Jacobson/Karels smoothed RTT + variance estimator.

    Stateful and cheap: two floats per estimator. ``rto()`` returns the
    classic ``srtt + 4 * rttvar``, or ``None`` before the first sample
    (callers fall back to their configured initial timeout).
    """

    __slots__ = ("alpha", "beta", "k", "srtt", "rttvar", "samples")

    def __init__(self, alpha: float = 0.125, beta: float = 0.25, k: float = 4.0):
        if not (0.0 < alpha <= 1.0) or not (0.0 < beta <= 1.0):
            raise ConfigurationError(
                f"alpha/beta must be in (0, 1], got {alpha}/{beta}"
            )
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.samples = 0

    def observe(self, sample: float) -> None:
        """Fold one round-trip sample (seconds of sim time) into the estimate."""
        if sample < 0:
            raise ConfigurationError(f"rtt sample must be >= 0, got {sample}")
        if self.srtt is None:
            # RFC 6298 initialization: first sample seeds both terms.
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            err = sample - self.srtt
            self.srtt += self.alpha * err
            self.rttvar += self.beta * (abs(err) - self.rttvar)
        self.samples += 1

    def rto(self) -> Optional[float]:
        if self.srtt is None:
            return None
        return self.srtt + self.k * self.rttvar


@runtime_checkable
class TimeoutPolicy(Protocol):
    """What a retransmission or view-change timer asks of its timeout source.

    ``current()`` is the duration to arm *now*; ``escalate()`` doubles it
    after an unproductive expiry; ``note_progress()`` resets the backoff
    once the thing being waited for showed signs of life; ``observe()``
    feeds a measured delay sample (a no-op for fixed policies).
    """

    def current(self) -> float: ...

    def escalate(self) -> float: ...

    def note_progress(self) -> None: ...

    def observe(self, sample: float) -> None: ...


class FixedTimeout:
    """Constant base timeout — the control arm.

    With the default ``backoff=1.0`` this reproduces the legacy behavior
    exactly (the pre-adaptive view-change and client-retry timers re-armed
    at a constant duration, no growth); pass ``backoff > 1`` for an
    exponential-backoff variant.
    """

    __slots__ = ("base", "backoff", "max_timeout", "_shift")

    def __init__(
        self,
        base: float,
        backoff: float = 1.0,
        max_timeout: float = 600.0,
    ):
        if base <= 0:
            raise ConfigurationError(f"base timeout must be > 0, got {base}")
        if backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1, got {backoff}")
        self.base = base
        self.backoff = backoff
        self.max_timeout = max_timeout
        self._shift = 0

    def current(self) -> float:
        return min(self.base * self.backoff**self._shift, self.max_timeout)

    def escalate(self) -> float:
        self._shift += 1
        return self.current()

    def note_progress(self) -> None:
        self._shift = 0

    def observe(self, sample: float) -> None:  # fixed: samples ignored
        pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FixedTimeout(base={self.base}, shift={self._shift})"


class AdaptiveTimeout:
    """Jacobson/Karels-derived timeout with backoff and clamping.

    ``current()`` is ``margin * rto`` clamped to ``[min_timeout,
    max_timeout]`` then scaled by the backoff shift; before any sample it
    falls back to ``initial``. ``margin`` exists because consensus timers
    wait for multi-message exchanges (request -> propose -> commit ->
    execute), not a single network round trip, so the raw RTO is scaled by
    a small safety factor rather than used bare.
    """

    __slots__ = (
        "estimator",
        "initial",
        "min_timeout",
        "max_timeout",
        "margin",
        "backoff",
        "_shift",
    )

    def __init__(
        self,
        initial: float,
        min_timeout: float = 0.5,
        max_timeout: float = 600.0,
        margin: float = 2.0,
        backoff: float = 2.0,
        alpha: float = 0.125,
        beta: float = 0.25,
        k: float = 4.0,
    ):
        if initial <= 0:
            raise ConfigurationError(f"initial timeout must be > 0, got {initial}")
        if min_timeout <= 0 or max_timeout < min_timeout:
            raise ConfigurationError(
                f"need 0 < min_timeout <= max_timeout, got "
                f"{min_timeout}/{max_timeout}"
            )
        if margin < 1.0:
            raise ConfigurationError(f"margin must be >= 1, got {margin}")
        if backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1, got {backoff}")
        self.estimator = RttEstimator(alpha=alpha, beta=beta, k=k)
        self.initial = initial
        self.min_timeout = min_timeout
        self.max_timeout = max_timeout
        self.margin = margin
        self.backoff = backoff
        self._shift = 0

    def _base(self) -> float:
        rto = self.estimator.rto()
        if rto is None:
            base = self.initial
        else:
            base = self.margin * rto
        return min(max(base, self.min_timeout), self.max_timeout)

    def current(self) -> float:
        return min(self._base() * self.backoff**self._shift, self.max_timeout)

    def escalate(self) -> float:
        self._shift += 1
        return self.current()

    def note_progress(self) -> None:
        self._shift = 0

    def observe(self, sample: float) -> None:
        self.estimator.observe(sample)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AdaptiveTimeout(srtt={self.estimator.srtt}, "
            f"rttvar={self.estimator.rttvar:.3f}, shift={self._shift})"
        )


def make_policy_factory(
    kind: str,
    base: float,
    **overrides,
) -> Callable[[], TimeoutPolicy]:
    """A factory of fresh per-process policies (state must not be shared).

    ``kind`` is ``"fixed"`` or ``"adaptive"``; ``base`` seeds either the
    fixed duration or the adaptive initial fallback. Keyword overrides are
    forwarded to the policy constructor.
    """
    if kind == "fixed":
        return lambda: FixedTimeout(base, **overrides)
    if kind == "adaptive":
        return lambda: AdaptiveTimeout(base, **overrides)
    raise ConfigurationError(f"unknown timeout policy kind {kind!r}")
