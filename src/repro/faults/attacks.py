"""Protocol-aware Byzantine attacks, runnable through the chaos harness.

The omission-fault layers (:mod:`~repro.faults.adversaries`,
:mod:`~repro.faults.chaos`) drop, delay, and reorder *the network*; this
module makes the *processes* adversarial. Each :class:`Attack` is a small
stateful strategy mounted on an unmodified correct replica via
:class:`AttackerProcess` (a :class:`~repro.sim.byzantine.ByzantineWrapper`
that keeps its attack across crash/restart): the attacker follows the
protocol except where the attack intervenes, so everything it sends passes
syntactic validation — the strongest realistic process-level adversary.

Two tiers, mirroring the paper's classification:

- **Hardware-respecting attacks** (everything in :data:`ATTACKS`): the
  attacker's trinket/USIG/signer are intact, so every lie it can tell is
  one the trusted hardware permits. The paper's claim under test is that
  these are *harmless at n = 2f+1* (MinBFT/SRB; 3f+1 for PBFT): the sweep
  oracle is the streaming safety + liveness auditors, and the equivocation
  cell is additionally verified over every schedule by the ``mc/``
  explorer.
- **Hardware-compromised attacks** (:class:`TraitorReplica`, built on
  :mod:`repro.hardware.compromise`): the trinket is cloned or its key
  extracted, non-equivocation fails, and MinBFT safety at n = 2f+1
  genuinely breaks — the planted negative the classification predicts,
  detected and convicted by :mod:`repro.consensus.forensics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from ..consensus.minbft import (
    CHECKPOINT as MB_CHECKPOINT,
    MinBFTReplica,
    PREPARE as MB_PREPARE,
    REQ_VIEW_CHANGE as MB_REQ_VIEW_CHANGE,
    USIG_WRAP,
    VIEW_CHANGE as MB_VIEW_CHANGE,
    proposal_requests,
    request_key,
)
from ..consensus.pbft import PRE_PREPARE as PBFT_PRE_PREPARE, pp_domain
from ..core.rounds import ROUND_MSG
from ..core.srb_from_uni import val_domain
from ..crypto.serialize import content_hash
from ..errors import ConfigurationError
from ..sim.byzantine import ByzantineWrapper
from ..sim.process import Process
from ..types import ProcessId, SeqNum

__all__ = [
    "ATTACKS",
    "Attack",
    "AttackSpec",
    "AttackerProcess",
    "PBFTEquivocation",
    "PrepareEquivocation",
    "SRBForgedL1",
    "SRBSenderEquivocation",
    "SRBTruncatedL2",
    "SelectiveDelivery",
    "StaleCheckpointLie",
    "TraitorReplica",
    "UIReorder",
    "UIReplay",
    "ViewChangeWithholding",
    "attacks_for",
    "get_attack",
]


# ---------------------------------------------------------------------------
# Mounting machinery
# ---------------------------------------------------------------------------


class Attack:
    """One adversarial strategy: a stateful outgoing-message filter.

    ``outgoing(src, dst, msg)`` follows the
    :data:`~repro.sim.byzantine.MessageFilter` contract — return ``None``
    to drop, a message to substitute, or a list of ``(dst, msg)`` pairs to
    multi-send. :meth:`bind` hands the attack its live inner replica (and
    is called again with the fresh instance after every restart), so
    attacks can mint genuinely-signed lies with the replica's own intact
    hardware. Counters survive restarts: the attack object itself is the
    unit of adversarial identity, not any one incarnation.
    """

    name = "attack"

    def __init__(self) -> None:
        self._inner: Optional[Process] = None
        self.strikes = 0  # times the attack actually deviated
        self.suppressed = 0  # messages it withheld
        self.injected = 0  # extra messages it minted/sent
        self.missed = 0  # strike opportunities it had to pass up

    def bind(self, inner: Process) -> None:
        self._inner = inner

    def outgoing(self, src: ProcessId, dst: ProcessId, msg: Any) -> Any:
        return msg

    def stats(self) -> dict:
        return {
            "strikes": self.strikes,
            "suppressed": self.suppressed,
            "injected": self.injected,
            "missed": self.missed,
        }


class AttackerProcess(ByzantineWrapper):
    """A correct replica driven by an :class:`Attack`.

    Non-underscore attribute access falls through to the inner replica, so
    stats collection (``consensus_stats``) and harness plumbing that
    duck-types replica attributes keep working; restart rebinds the same
    attack object around the inner replica's own ``remake``.
    """

    def __init__(self, inner: Process, attack: Attack) -> None:
        super().__init__(inner, attack.outgoing)
        self.attack = attack
        attack.bind(inner)

    def __getattr__(self, name: str) -> Any:
        inner = self.__dict__.get("inner")
        if inner is None or name.startswith("_"):
            raise AttributeError(name)
        return getattr(inner, name)

    def remake(self) -> "AttackerProcess":
        return type(self)(self.inner.remake(), self.attack)


# ---------------------------------------------------------------------------
# Wire-shape helpers
# ---------------------------------------------------------------------------


def _unwrap_usig(msg: Any) -> Optional[tuple]:
    """``(message, ui)`` when ``msg`` is a MinBFT USIG-wrapped send."""
    if isinstance(msg, tuple) and len(msg) == 3 and msg[0] == USIG_WRAP:
        return msg[1], msg[2]
    return None


def _round_payload(msg: Any) -> Optional[tuple]:
    """``(label, payload)`` when ``msg`` is a round-transport frame."""
    if isinstance(msg, tuple) and len(msg) == 3 and msg[0] == ROUND_MSG:
        return msg[1], msg[2]
    return None


def _alt_request(inner: Any, proposal: Any) -> Optional[Any]:
    """A pending client request *not* carried by ``proposal`` — the raw
    material for an equivocation (proposing two different values for one
    slot requires two distinct values to exist).

    Prefers a request not yet proposed in any other slot: equivocating
    with a *fresh* value is the strongest attack — a re-proposed request
    would be deduplicated into a noop at the victim, blunting the fork
    into a liveness hiccup instead of a divergence attempt."""
    taken = set()
    for req in proposal_requests(proposal):
        if isinstance(req, tuple) and len(req) == 5:
            taken.add(request_key(req))
    candidates = [
        (key, request)
        for key, request in sorted(inner._pending.items())
        if key not in taken
    ]
    for key, request in candidates:
        if key not in inner._proposed_keys and not inner._is_executed(key):
            return request
    return candidates[0][1] if candidates else None


# ---------------------------------------------------------------------------
# MinBFT attacks (hardware-respecting)
# ---------------------------------------------------------------------------


class PrepareEquivocation(Attack):
    """Primary proposes two different requests for one slot — the canonical
    equivocation attempt, mounted with *intact* hardware.

    The USIG forces the alternative PREPARE onto the next counter value,
    so this is really a fork of the attacker's message stream: the victim
    receives only the alt (a gap at the original's counter wedges the
    attacker's stream at the victim from then on), everyone else receives
    both (first-prepare-wins discards the alt). Safety holds because
    COMMITs embed the primary's prepare UI: the victim certifies the
    original slot from correct replicas' COMMITs alone. The MC cell
    ``minbft-equivocation`` checks this over every schedule.
    """

    name = "equivocate-prepare"

    def __init__(self, victim: Optional[ProcessId] = None) -> None:
        super().__init__()
        self._victim = victim
        self._struck_counter: Optional[SeqNum] = None
        self._alt_wrapped: Optional[tuple] = None

    def outgoing(self, src: ProcessId, dst: ProcessId, msg: Any) -> Any:
        unwrapped = _unwrap_usig(msg)
        if unwrapped is None:
            return msg
        message, ui = unwrapped
        if self._struck_counter is None:
            if not (
                isinstance(message, tuple)
                and len(message) == 4
                and message[0] == MB_PREPARE
            ):
                return msg
            alt = _alt_request(self._inner, message[3])
            if alt is None:
                self.missed += 1
                return msg
            inner = self._inner
            alt_msg = (MB_PREPARE, message[1], message[2], alt)
            alt_ui = inner.usig.create_ui(alt_msg)
            inner.sent_log.append((alt_msg, alt_ui))
            self._alt_wrapped = (USIG_WRAP, alt_msg, alt_ui)
            self._struck_counter = ui.counter
            self.strikes += 1
        if ui.counter != self._struck_counter:
            return msg
        victim = self._victim
        if victim is None:
            victim = self._inner.n - 1 if src != self._inner.n - 1 else self._inner.n - 2
        if dst == victim:
            self.suppressed += 1
            self.injected += 1
            return [(dst, self._alt_wrapped)]
        self.injected += 1
        return [(dst, msg), (dst, self._alt_wrapped)]


class UIReplay(Attack):
    """Re-send the previous USIG message after every new one (stale
    out-of-order duplicates); the receive-side order enforcer must shed
    them without double-processing."""

    name = "ui-replay"

    def __init__(self) -> None:
        super().__init__()
        self._last: dict[ProcessId, Any] = {}

    def outgoing(self, src: ProcessId, dst: ProcessId, msg: Any) -> Any:
        if _unwrap_usig(msg) is None:
            return msg
        prev = self._last.get(dst)
        self._last[dst] = msg
        if prev is None:
            return msg
        self.strikes += 1
        self.injected += 1
        return [(dst, msg), (dst, prev)]


class UIReorder(Attack):
    """Swap the first two USIG messages to each destination; the order
    enforcer's holdback queue must re-sequence the stream."""

    name = "ui-reorder"

    def __init__(self) -> None:
        super().__init__()
        self._held: dict[ProcessId, Any] = {}
        self._done: set[ProcessId] = set()

    def outgoing(self, src: ProcessId, dst: ProcessId, msg: Any) -> Any:
        if dst in self._done or _unwrap_usig(msg) is None:
            return msg
        held = self._held.pop(dst, None)
        if held is None:
            self._held[dst] = msg
            self.suppressed += 1
            return None
        self._done.add(dst)
        self.strikes += 1
        return [(dst, msg), (dst, held)]


class StaleCheckpointLie(Attack):
    """Re-attest an *old* checkpoint body at a fresh counter alongside every
    new checkpoint — a hardware-truthful lie about current state. Receivers
    must pin checkpoint votes to ``(seq, digest)`` and refuse to stabilize
    backwards. Requires ``checkpoint_interval > 0`` on the cell."""

    name = "stale-checkpoint"

    def __init__(self) -> None:
        super().__init__()
        self._first_body: Optional[tuple] = None
        self._minted_for: Optional[SeqNum] = None
        self._lie: Optional[tuple] = None

    def outgoing(self, src: ProcessId, dst: ProcessId, msg: Any) -> Any:
        unwrapped = _unwrap_usig(msg)
        if unwrapped is None:
            return msg
        message, ui = unwrapped
        if not (
            isinstance(message, tuple)
            and len(message) == 3
            and message[0] == MB_CHECKPOINT
        ):
            return msg
        if self._first_body is None:
            self._first_body = message
            return msg
        if message == self._first_body:
            return msg
        if ui.counter != self._minted_for:
            # one stale re-attestation per checkpoint broadcast, not per dst
            inner = self._inner
            lie_ui = inner.usig.create_ui(self._first_body)
            inner.sent_log.append((self._first_body, lie_ui))
            self._lie = (USIG_WRAP, self._first_body, lie_ui)
            self._minted_for = ui.counter
            self.strikes += 1
        self.injected += 1
        return [(dst, msg), (dst, self._lie)]


class ViewChangeWithholding(Attack):
    """Withhold every REQ-VIEW-CHANGE vote.

    Paired with a crash schedule that kills the primary: the attacker
    never admits the primary is gone, so the f+1 request quorum must form
    from the correct replicas alone (here: the survivor plus the restarted
    primary itself) and the view change must still complete — the
    attacker's VIEW-CHANGE message, which it *does* send once dragged into
    the view change, is what lets the new primary certify the switch.

    Withholding the VIEW-CHANGE message itself is deliberately out of
    scope: it is USIG-wrapped, so dropping it burns a counter value and
    permanently gaps the attacker's own stream at every receiver — the
    order enforcer then holds back everything it ever sends again. That is
    self-silencing, behaviourally identical to crashing, and at n = 2f+1
    it stacks a second (crash) fault on top of the scheduled primary
    outage — outside the f = 1 budget this cell deploys.
    """

    name = "vc-withhold"

    def outgoing(self, src: ProcessId, dst: ProcessId, msg: Any) -> Any:
        if isinstance(msg, tuple) and msg and msg[0] == MB_REQ_VIEW_CHANGE:
            self.suppressed += 1
            self.strikes += 1
            return None
        return msg


class SelectiveDelivery(Attack):
    """Send nothing to the victims (selective silence); works against every
    protocol since it never inspects payloads."""

    name = "selective-delivery"

    def __init__(self, *victims: ProcessId) -> None:
        super().__init__()
        self._victims = frozenset(victims)

    def outgoing(self, src: ProcessId, dst: ProcessId, msg: Any) -> Any:
        if dst in self._victims:
            self.suppressed += 1
            self.strikes += 1
            return None
        return msg


# ---------------------------------------------------------------------------
# PBFT attacks
# ---------------------------------------------------------------------------


class PBFTEquivocation(Attack):
    """PBFT primary sends the victim a conflicting pre-prepare for one slot.

    Nothing stops the signature (no trusted counter — that is the paper's
    point), but at n = 3f+1 the 2f+1 commit quorum does: the victim
    accepts the alt digest, watches the rest of the group commit the
    original, and recovers the slot via checkpoint state transfer.
    Requires ``checkpoint_interval > 0`` on the cell.
    """

    name = "pbft-equivocate"

    def __init__(self, victim: Optional[ProcessId] = None) -> None:
        super().__init__()
        self._victim = victim
        self._struck_slot: Optional[tuple] = None
        self._alt: Optional[tuple] = None

    def outgoing(self, src: ProcessId, dst: ProcessId, msg: Any) -> Any:
        if not (
            isinstance(msg, tuple) and len(msg) == 5 and msg[0] == PBFT_PRE_PREPARE
        ):
            return msg
        _, view, seq, proposal, _sig = msg
        if self._struck_slot is None:
            alt = _alt_request(self._inner, proposal)
            if alt is None:
                self.missed += 1
                return msg
            inner = self._inner
            alt_sig = inner.signer.sign(pp_domain(view, seq, content_hash(alt)))
            self._alt = (PBFT_PRE_PREPARE, view, seq, alt, alt_sig)
            self._struck_slot = (view, seq)
            self.strikes += 1
        if (view, seq) != self._struck_slot:
            return msg
        victim = self._victim if self._victim is not None else self._inner.n - 1
        if dst == victim:
            self.injected += 1
            return self._alt
        return msg


# ---------------------------------------------------------------------------
# SRB attacks (against core/srb_from_uni.py, Algorithm 1)
# ---------------------------------------------------------------------------


class SRBSenderEquivocation(Attack):
    """Byzantine sender signs two different values for one sequence number
    and sends each to half the group. The copy round cross-pollinates the
    conflicting signatures, every correct process poisons ``k``, and
    nobody delivers — agreement holds vacuously (the cell runs with
    ``expect_complete=False``)."""

    name = "srb-equivocate"

    def __init__(self) -> None:
        super().__init__()
        self._struck_k: Optional[SeqNum] = None
        self._alt_frame: Optional[tuple] = None

    def outgoing(self, src: ProcessId, dst: ProcessId, msg: Any) -> Any:
        framed = _round_payload(msg)
        if framed is None:
            return msg
        label, payload = framed
        if not (
            isinstance(payload, tuple) and len(payload) == 4 and payload[0] == "VAL"
        ):
            return msg
        _, k, value, _sig = payload
        if self._struck_k is None:
            inner = self._inner
            alt_value = ("EQUIVOCATED", value)
            alt_sig = inner.signer.sign(val_domain(inner.sender, k, alt_value))
            self._alt_frame = (ROUND_MSG, label, ("VAL", k, alt_value, alt_sig))
            self._struck_k = k
            self.strikes += 1
        if k != self._struck_k:
            return msg
        if dst % 2 == 1:
            self.injected += 1
            return self._alt_frame
        return msg


class SRBForgedL1(Attack):
    """A copier truncates the copy-quorum inside every L1 proof it builds
    (below t+1 signatures). Correct validators must reject the forgery and
    assemble L2 proofs from the honest builders' L1s."""

    name = "srb-forge-l1"

    def outgoing(self, src: ProcessId, dst: ProcessId, msg: Any) -> Any:
        framed = _round_payload(msg)
        if framed is None:
            return msg
        label, payload = framed
        if not (
            isinstance(payload, tuple) and len(payload) == 6 and payload[0] == "L1"
        ):
            return msg
        _, k, m, sig_s, copies, sig_builder = payload
        truncated = tuple(copies)[: self._inner.t] if isinstance(copies, tuple) else ()
        self.strikes += 1
        return (ROUND_MSG, label, ("L1", k, m, sig_s, truncated, sig_builder))


class SRBTruncatedL2(Attack):
    """Truncate every outgoing L2 proof below its t+1 L1 items; receivers
    must reject it and deliver from their own (or honest peers') proofs."""

    name = "srb-truncate-l2"

    def outgoing(self, src: ProcessId, dst: ProcessId, msg: Any) -> Any:
        framed = _round_payload(msg)
        if framed is None:
            return msg
        label, payload = framed
        if not (
            isinstance(payload, tuple) and len(payload) == 5 and payload[0] == "L2"
        ):
            return msg
        _, k, m, sig_s, l1items = payload
        truncated = (
            tuple(l1items)[: self._inner.t] if isinstance(l1items, tuple) else ()
        )
        self.strikes += 1
        return (ROUND_MSG, label, ("L2", k, m, sig_s, truncated))


# ---------------------------------------------------------------------------
# Hardware-compromised attacker
# ---------------------------------------------------------------------------


class TraitorReplica(MinBFTReplica):
    """A MinBFT primary whose trusted hardware is compromised.

    Its USIG key is extracted (:class:`~repro.hardware.compromise.
    KeyExtractedUSIG`), so it can bind *two different PREPAREs to the same
    counter value* — real equivocation, invisible to ``verify_ui`` and the
    order enforcer. At n = 2f+1 this splits the group: each half certifies
    its own value with f+1 votes (the traitor's UI counts in both), and
    replicated state diverges — the planted safety violation the paper's
    classification predicts when the hardware assumption fails. The
    :class:`~repro.consensus.forensics.AccountabilityChecker` convicts it
    from any two cross-observed conflicting UIs.
    """

    def __init__(self, *args: Any, victims: Sequence[ProcessId] = (2,), **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        from ..hardware.compromise import KeyExtractedUSIG

        self.usig = KeyExtractedUSIG.from_usig(self.usig)
        self._victims = tuple(victims)
        self._betrayed_seq: Optional[SeqNum] = None
        self.hw_equivocations = 0

    def _emit_slot(self, seq: SeqNum, proposal: Any) -> None:
        if self._betrayed_seq is not None:
            super()._emit_slot(seq, proposal)
            return
        alt = _alt_request(self, proposal)
        if alt is None:
            super()._emit_slot(seq, proposal)
            return
        msg_a = (MB_PREPARE, self.view, seq, proposal)
        ui_a = self.usig.create_ui(msg_a)
        msg_b = (MB_PREPARE, self.view, seq, alt)
        ui_b = self.usig.create_ui_at(msg_b, ui_a.counter)
        self.sent_log.append((msg_a, ui_a))
        # the forked value is "spent": re-proposing it in a later slot
        # would both dilute the fork (the victim dedups the second copy)
        # and advertise the betrayal in the traitor's own sent_log
        for req in proposal_requests(alt):
            self._proposed_keys.add(request_key(req))
        self._betrayed_seq = seq
        self.hw_equivocations += 1
        self.ctx.record("hw_equivocation", seq=seq, counter=ui_a.counter)
        wrapped_a = (USIG_WRAP, msg_a, ui_a)
        wrapped_b = (USIG_WRAP, msg_b, ui_b)
        for dst in range(self.n):
            self.ctx.send(dst, wrapped_b if dst in self._victims else wrapped_a)

    def consensus_stats(self) -> dict:
        stats = super().consensus_stats()
        stats["hw_equivocations"] = self.hw_equivocations
        return stats


# ---------------------------------------------------------------------------
# Registry: the protocol × attack sweep axis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AttackSpec:
    """One cell family of the attack matrix.

    ``make`` builds a fresh :class:`Attack` per run; ``attacker`` is the
    pid it mounts on. ``protocol_kwargs`` extend the chaos runner's
    protocol configuration (e.g. forcing checkpoints on for
    checkpoint-dependent attacks); ``runner_kwargs`` extend the runner
    call itself (e.g. a longer workload so the attack's trigger window is
    actually populated); ``crashable`` overrides the crash schedule's
    candidate set (empty = attack-only, no crashes) and ``crash_script``
    — ``(pid, at, restart_at)`` triples — replaces the sampled crashes
    outright, for attacks that only bite during a *scripted* outage.
    ``expect_complete`` is consumed by the SRB runner: sender-equivocation
    legitimately prevents delivery (conflict poisoning), so completion is
    not required — only agreement/integrity.
    """

    name: str
    protocol: str  # "minbft" | "pbft" | "srb"
    make: Callable[[], Attack]
    attacker: ProcessId
    description: str
    protocol_kwargs: Mapping[str, Any] = field(default_factory=dict)
    runner_kwargs: Mapping[str, Any] = field(default_factory=dict)
    crashable: tuple = ()
    crash_script: tuple = ()
    expect_complete: bool = True


ATTACKS: dict[str, AttackSpec] = {}


def _register(spec: AttackSpec) -> AttackSpec:
    ATTACKS[spec.name] = spec
    return spec


_register(AttackSpec(
    name="equivocate-prepare",
    protocol="minbft",
    make=PrepareEquivocation,
    attacker=0,
    description="primary proposes two requests for one slot (intact USIG)",
))
_register(AttackSpec(
    name="ui-replay",
    protocol="minbft",
    make=UIReplay,
    attacker=2,
    description="backup replays every previous USIG message out of order",
))
_register(AttackSpec(
    name="ui-reorder",
    protocol="minbft",
    make=UIReorder,
    attacker=2,
    description="backup swaps the first two USIG messages per destination",
))
_register(AttackSpec(
    name="stale-checkpoint",
    protocol="minbft",
    make=StaleCheckpointLie,
    attacker=2,
    description="backup re-attests an old checkpoint at fresh counters",
    # interval 2 over the 6-slot default workload yields checkpoints at
    # 2/4/6 — the second one is what the lie re-attests
    protocol_kwargs={"checkpoint_interval": 2},
))
_register(AttackSpec(
    name="vc-withhold",
    protocol="minbft",
    make=ViewChangeWithholding,
    attacker=2,
    description="backup withholds view-change votes while the primary crashes",
    # scripted early outage: the sampled schedule may crash after the
    # closed-loop workload drains, leaving no view change to sabotage. A
    # longer workload keeps requests pending across the crash at t=12.
    runner_kwargs={"ops_per_client": 8},
    crashable=(0,),
    crash_script=((0, 12.0, 90.0),),
))
_register(AttackSpec(
    name="selective-delivery",
    protocol="minbft",
    make=lambda: SelectiveDelivery(2),
    attacker=1,
    description="backup sends nothing to one victim replica",
))
_register(AttackSpec(
    name="pbft-equivocate",
    protocol="pbft",
    make=PBFTEquivocation,
    attacker=0,
    description="PBFT primary pre-prepares conflicting digests (no trusted counter)",
    protocol_kwargs={"checkpoint_interval": 4},
))
_register(AttackSpec(
    name="pbft-selective",
    protocol="pbft",
    make=lambda: SelectiveDelivery(3),
    attacker=1,
    description="PBFT backup sends nothing to one victim replica",
))
_register(AttackSpec(
    name="srb-equivocate",
    protocol="srb",
    make=SRBSenderEquivocation,
    attacker=0,
    description="SRB sender signs two values for one k; conflict poisoning",
    expect_complete=False,
))
_register(AttackSpec(
    name="srb-forge-l1",
    protocol="srb",
    make=SRBForgedL1,
    attacker=1,
    description="copier forges L1 proofs with truncated copy quorums",
))
_register(AttackSpec(
    name="srb-truncate-l2",
    protocol="srb",
    make=SRBTruncatedL2,
    attacker=1,
    description="relay truncates L2 proofs below t+1 L1 items",
))


def get_attack(name: str) -> AttackSpec:
    try:
        return ATTACKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown attack {name!r}; known: {', '.join(sorted(ATTACKS))}"
        ) from None


def attacks_for(protocol: str) -> list[AttackSpec]:
    return [spec for spec in ATTACKS.values() if spec.protocol == protocol]
