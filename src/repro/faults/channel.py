"""Reliable delivery over lossy links: ack / retransmit / dedup.

Every protocol in this library was written against an asynchronous network
that *eventually delivers* — the model's fairness assumption. A lossy link
breaks that assumption, so running those protocols unchanged under
:class:`~repro.faults.adversaries.LossyAsynchronous` loses liveness (and,
for broken protocols, safety — see the chaos harness). The fix mirrors
real deployments: a retransmission layer that turns a fair-lossy link back
into an eventually-delivering one.

:class:`ReliableChannel` frames each payload as ``(DATA, inc, id,
payload)``, expects ``(ACK, inc, id)`` back, retransmits with exponential
backoff plus jitter (or a measured-RTT timeout, see below), deduplicates
received frames per ``(src, inc)`` stream, re-acks duplicates (the ack may
have been the lost copy), and gives up after ``max_retries`` attempts via
the ``give_up`` hook. Because every retransmission gets fresh adversary
coin-flips, a message survives any per-message drop probability below 1
with overwhelmingly high probability within the retry budget.

``inc`` is the sender's incarnation number. It exists because message ids
restart at 0 after a reboot: without the stream tag, a peer's dedup state
from the previous incarnation would silently swallow the fresh
incarnation's first frames (acked but never delivered), and a stale ack
``(ACK, k)`` from before the crash could cancel retransmission of the new
incarnation's frame ``k``. Tagging both directions with the incarnation
makes every (re)incarnation its own stream.

Dedup state is *bounded* (a long-running channel must not grow without
limit): each stream keeps a high-watermark ``low`` — every id ``<= low``
has been seen — plus a window of out-of-order ids above it, compacted as
the gap fills. If the window ever exceeds ``max_window`` (only possible
when a ``give_up`` left a permanent hole), the watermark jumps to the
lowest windowed id, writing the hole off as seen — the TCP-receive-window
tradeoff: bounded state in exchange for suppressing a straggler that
outlives the window. ``dedup_state_size`` exposes the retained entry
count.

Retransmission timing: by default the legacy fixed schedule
``base_timeout * backoff^attempt`` (capped). Pass ``timeout_policy`` (an
instance or zero-arg factory of :class:`~repro.faults.timeouts.TimeoutPolicy`)
to derive the per-attempt base from measured round-trip times instead —
ack RTTs are fed to the policy for never-retransmitted sends only (Karn's
algorithm: a retransmitted frame's ack is ambiguous).

:class:`ReliableProcess` wraps an *unmodified* protocol process behind the
channel, the same interposition pattern as
:class:`~repro.sim.byzantine.ByzantineWrapper`: the inner process keeps
calling ``ctx.send`` / ``ctx.broadcast`` and never learns the network is
lossy. Unframed messages from unwrapped peers pass straight through, so
mixed deployments work.

Crash-recovery note: the channel's buffers are volatile. A crash kills all
pending retransmissions; after a restart the fresh channel's dedup table
is empty, so late retransmissions from peers may be delivered to the new
incarnation again — at-least-once across reboots, exactly like real
systems without durable dedup logs. Protocols must already be idempotent
under duplication (the library-wide rule), so this is safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..errors import ConfigurationError
from ..sim.process import Context, Process
from ..types import ProcessId, Time
from .timeouts import TimeoutPolicy, derive_jitter_rng

RC_DATA = "__rc_data__"
RC_ACK = "__rc_ack__"
RETX_TAG = "__rc_retx__"

GiveUpHook = Callable[[ProcessId, Any, int], None]
"""``(dst, payload, attempts)`` — called when a send exhausts its retries."""


@dataclass(slots=True)
class _Pending:
    dst: ProcessId
    payload: Any
    attempt: int
    timer_id: Optional[int]
    sent_at: Time = 0.0


class _DedupWindow:
    """Bounded seen-id tracking for one ``(src, incarnation)`` stream."""

    __slots__ = ("low", "window", "max_window")

    def __init__(self, max_window: int) -> None:
        self.low = -1  # every id <= low has been seen
        self.window: set[int] = set()
        self.max_window = max_window

    def seen(self, msg_id: int) -> bool:
        """Record ``msg_id``; True when it was already seen (a duplicate)."""
        if msg_id <= self.low:
            return True
        if msg_id in self.window:
            return True
        self.window.add(msg_id)
        # compact: slide the watermark over the contiguous run above it
        while self.low + 1 in self.window:
            self.low += 1
            self.window.discard(self.low)
        if len(self.window) > self.max_window:
            # a permanent hole (a peer's give-up) pinned the watermark;
            # write the hole off as seen to keep state bounded
            self.low = min(self.window)
            self.window = {i for i in self.window if i > self.low}
        return False

    def __len__(self) -> int:
        return len(self.window)


class ReliableChannel:
    """Per-process retransmission endpoint (see module docstring).

    One channel serves one process; it uses the process's context for
    sending and timers, and a dedicated seed-derived RNG stream for
    retransmission jitter (independent of ``ctx.rng``). Stats:
    ``sent`` (distinct payloads), ``retransmissions``, ``acked``,
    ``delivered`` (fresh frames handed to the host), ``duplicates_suppressed``,
    ``gave_up``.
    """

    def __init__(
        self,
        ctx: Context,
        base_timeout: float = 2.0,
        backoff: float = 2.0,
        max_timeout: float = 30.0,
        jitter: float = 0.25,
        max_retries: int = 20,
        give_up: GiveUpHook | None = None,
        timeout_policy: TimeoutPolicy | Callable[[], TimeoutPolicy] | None = None,
        max_window: int = 1024,
    ) -> None:
        if base_timeout <= 0 or max_timeout < base_timeout:
            raise ConfigurationError(
                f"invalid timeout range [{base_timeout}, {max_timeout}]"
            )
        if backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1, got {backoff}")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1], got {jitter}")
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
        if max_window < 1:
            raise ConfigurationError(f"max_window must be >= 1, got {max_window}")
        self.ctx = ctx
        self.incarnation = ctx.incarnation
        self.base_timeout = base_timeout
        self.backoff = backoff
        self.max_timeout = max_timeout
        self.jitter = jitter
        self.max_retries = max_retries
        self.give_up = give_up
        if callable(timeout_policy):
            timeout_policy = timeout_policy()
        self.timeout_policy: Optional[TimeoutPolicy] = timeout_policy
        self.max_window = max_window
        # Dedicated seed-derived jitter stream, independent of ctx.rng:
        # many channels backing off in lockstep re-collide forever without
        # jitter, and drawing it from the protocol stream would let retry
        # timing perturb protocol randomness (and vice versa). Keying by
        # (seed, pid, incarnation) keeps sweeps bit-identical and
        # ``one_big_run`` serial ≡ pooled.
        self._jitter_rng = derive_jitter_rng(
            ctx.seed, "rc", ctx.pid, ctx.incarnation
        )
        self._next_id = 0
        self._pending: dict[int, _Pending] = {}
        self._streams: dict[tuple[ProcessId, int], _DedupWindow] = {}
        self.sent = 0
        self.retransmissions = 0
        self.acked = 0
        self.delivered = 0
        self.duplicates_suppressed = 0
        self.gave_up = 0

    @property
    def dedup_state_size(self) -> int:
        """Retained dedup entries: one watermark per peer stream plus every
        out-of-order id still windowed (bounded by ``max_window`` each)."""
        return len(self._streams) + sum(len(w) for w in self._streams.values())

    # -- sending ----------------------------------------------------------------

    def send(self, dst: ProcessId, payload: Any) -> None:
        """Send ``payload`` to ``dst`` with at-least-once delivery effort."""
        msg_id = self._next_id
        self._next_id += 1
        self.sent += 1
        entry = _Pending(dst=dst, payload=payload, attempt=0, timer_id=None)
        self._pending[msg_id] = entry
        self._transmit(msg_id, entry)

    def _base_for_attempt(self) -> float:
        if self.timeout_policy is not None:
            return min(max(self.timeout_policy.current(), 1e-9), self.max_timeout)
        return self.base_timeout

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        """Reliable send to every process (each destination tracked alone)."""
        for dst in range(self.ctx.n):
            if dst == self.ctx.pid and not include_self:
                continue
            self.send(dst, payload)

    def _transmit(self, msg_id: int, entry: _Pending) -> None:
        entry.sent_at = self.ctx.now
        self.ctx.send(entry.dst, (RC_DATA, self.incarnation, msg_id, entry.payload))
        timeout = min(
            self._base_for_attempt() * (self.backoff ** entry.attempt),
            self.max_timeout,
        )
        timeout *= 1.0 + self.jitter * self._jitter_rng.random()
        entry.timer_id = self.ctx.set_timer(timeout, (RETX_TAG, msg_id))

    # -- receiving ----------------------------------------------------------------

    def handle_message(
        self,
        src: ProcessId,
        msg: Any,
        deliver: Callable[[ProcessId, Any], None],
    ) -> bool:
        """Consume channel frames; returns True when ``msg`` was one.

        Fresh DATA frames are acked and handed to ``deliver(src, payload)``;
        duplicate DATA is re-acked and suppressed. Non-frame messages return
        False so the host can process them directly.
        """
        if not (isinstance(msg, tuple) and len(msg) == 4 and msg[0] == RC_DATA):
            if isinstance(msg, tuple) and len(msg) == 3 and msg[0] == RC_ACK:
                self._handle_ack(msg[1], msg[2])
                return True
            return False
        _, inc, msg_id, payload = msg
        if not isinstance(msg_id, int) or not isinstance(inc, int):
            return True  # malformed frame: drop
        # the ack echoes the sender's incarnation so the sender can reject
        # acks addressed to a previous incarnation's id space
        self.ctx.send(src, (RC_ACK, inc, msg_id))  # always re-ack: acks get lost too
        stream = self._streams.get((src, inc))
        if stream is None:
            stream = self._streams[(src, inc)] = _DedupWindow(self.max_window)
        if stream.seen(msg_id):
            self.duplicates_suppressed += 1
            return True
        self.delivered += 1
        deliver(src, payload)
        return True

    def _handle_ack(self, inc: Any, msg_id: Any) -> None:
        if inc != self.incarnation:
            return  # stale ack: it acknowledges a prior incarnation's frame
        entry = self._pending.pop(msg_id, None)
        if entry is None:
            return  # duplicate ack, or ack for a given-up send
        self.acked += 1
        if entry.timer_id is not None:
            self.ctx.cancel_timer(entry.timer_id)
        if self.timeout_policy is not None and entry.attempt == 0:
            # Karn's algorithm: only never-retransmitted sends give an
            # unambiguous round-trip sample
            self.timeout_policy.observe(self.ctx.now - entry.sent_at)

    # -- timers -------------------------------------------------------------------

    def handle_timer(self, tag: Any) -> bool:
        """Consume retransmission timers; returns True when ``tag`` was one."""
        if not (isinstance(tag, tuple) and len(tag) == 2 and tag[0] == RETX_TAG):
            return False
        msg_id = tag[1]
        entry = self._pending.get(msg_id)
        if entry is None:
            return True  # acked meanwhile
        entry.attempt += 1
        if entry.attempt > self.max_retries:
            del self._pending[msg_id]
            self.gave_up += 1
            self.ctx.record(
                "custom", event="rc_give_up", dst=entry.dst,
                attempts=entry.attempt,
            )
            if self.give_up is not None:
                self.give_up(entry.dst, entry.payload, entry.attempt)
            return True
        self.retransmissions += 1
        self._transmit(msg_id, entry)
        return True

    @property
    def in_flight(self) -> int:
        return len(self._pending)


class _ReliableContext:
    """Duck-typed Context routing sends through a :class:`ReliableChannel`.

    Everything except ``send``/``broadcast`` passes through to the real
    context, so timers, shared memory, and trace records are unchanged.
    """

    def __init__(self, real: Context, channel: ReliableChannel) -> None:
        self._real = real
        self._channel = channel

    # pass-throughs -----------------------------------------------------------
    @property
    def pid(self) -> ProcessId:
        return self._real.pid

    @property
    def n(self) -> int:
        return self._real.n

    @property
    def now(self):
        return self._real.now

    @property
    def alive(self) -> bool:
        return self._real.alive

    @property
    def incarnation(self) -> int:
        return self._real.incarnation

    @property
    def rng(self):
        return self._real.rng

    @property
    def seed(self) -> int:
        return self._real.seed

    def set_timer(self, delay: float, tag: Any):
        return self._real.set_timer(delay, tag)

    def cancel_timer(self, timer_id: int) -> None:
        self._real.cancel_timer(timer_id)

    def invoke(self, object_name: str, op: str, *args: Any):
        return self._real.invoke(object_name, op, *args)

    def decide(self, value: Any) -> None:
        self._real.decide(value)

    def record(self, kind: str, **fields: Any) -> None:
        self._real.record(kind, **fields)

    # routed through the channel ------------------------------------------------

    def send(self, dst: ProcessId, msg: Any) -> None:
        if not self._real.alive:
            return
        self._channel.send(dst, msg)

    def broadcast(self, msg: Any, include_self: bool = True) -> None:
        if not self._real.alive:
            return
        self._channel.broadcast(msg, include_self=include_self)


class ReliableProcess(Process):
    """Host an unmodified protocol process behind a :class:`ReliableChannel`.

    The inner process's sends are framed and retransmitted; its receives
    are deduplicated. Channel keyword arguments are forwarded to
    :class:`ReliableChannel`. The channel is created at attach time (it
    needs the context) and is reachable as ``self.channel`` for stats.
    """

    def __init__(self, inner: Process, **channel_kwargs: Any) -> None:
        super().__init__()
        self.inner = inner
        self._channel_kwargs = channel_kwargs
        self.channel: Optional[ReliableChannel] = None

    def _attach(self, ctx: Context) -> None:
        super()._attach(ctx)
        self.channel = ReliableChannel(ctx, **self._channel_kwargs)
        self.inner._ctx = _ReliableContext(ctx, self.channel)  # type: ignore[assignment]

    def on_start(self) -> None:
        self.inner.on_start()

    def on_message(self, src: ProcessId, msg: Any) -> None:
        assert self.channel is not None
        if not self.channel.handle_message(src, msg, self.inner.on_message):
            self.inner.on_message(src, msg)  # unframed: unwrapped peer

    def on_timer(self, tag: Any) -> None:
        assert self.channel is not None
        if not self.channel.handle_timer(tag):
            self.inner.on_timer(tag)

    def on_op_result(self, object_name: str, op: str, handle: int, result: Any) -> None:
        self.inner.on_op_result(object_name, op, handle, result)


def wrap_reliable(
    processes: "list[Process]", **channel_kwargs: Any
) -> list[ReliableProcess]:
    """Wrap every process in a deployment with its own reliable channel."""
    return [ReliableProcess(p, **channel_kwargs) for p in processes]
