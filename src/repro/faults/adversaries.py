"""Lossy and chaotic network adversaries.

The base adversary zoo (:mod:`repro.sim.adversary`) models *polite*
misbehavior: delays, scripted withholding, duplication. Real deployments
lose messages — independently per link, and in correlated bursts — and
suffer several fault kinds at once. This module adds:

- :class:`LossyAsynchronous` — per-link drop probability plus burst-loss
  windows during which matching links drop (almost) everything;
- :class:`ChaosAdversary` — a single-seed composition of drop, duplicate,
  reorder (straggler delays), and partition-burst faults, with a
  deterministic, printable schedule for failure reproduction.

A dropped message is recorded in the network's withheld ledger (a drop *is*
"never delivered this run"); protocols that must stay live on lossy links
run over :class:`~repro.faults.channel.ReliableChannel`, whose
retransmissions give every message fresh drop coin-flips. Fairness audits
(``assert_fair_for``) are meaningless under a lossy adversary and must not
be called — loss is the fault being injected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..errors import ConfigurationError
from ..sim.adversary import Adversary, ReliableAsynchronous, WITHHELD, Delay
from ..types import ProcessId, Time


def _check_probability(name: str, p: float) -> float:
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
    return p


class LossyAsynchronous(ReliableAsynchronous):
    """Asynchrony with message loss: per-link drop rates and burst windows.

    ``drop_probability`` is the baseline per-message loss; ``link_drop``
    overrides it for chosen directed links (``{(src, dst): p}``). During a
    burst window every message (on every link, or on the window's chosen
    links) is dropped with ``burst_drop`` probability instead — modeling
    correlated outages (a flapping switch, a congested uplink) rather than
    independent bit errors.
    """

    def __init__(
        self,
        drop_probability: float = 0.1,
        link_drop: Mapping[tuple[ProcessId, ProcessId], float] | None = None,
        bursts: Iterable["BurstWindow"] = (),
        min_delay: float = 0.1,
        max_delay: float = 1.0,
    ) -> None:
        super().__init__(min_delay, max_delay)
        self.drop_probability = _check_probability(
            "drop_probability", drop_probability
        )
        self.link_drop = {
            link: _check_probability(f"link_drop[{link}]", p)
            for link, p in dict(link_drop or {}).items()
        }
        self.bursts = tuple(bursts)
        self.messages_dropped = 0

    def _drop_probability(
        self, src: ProcessId, dst: ProcessId, now: Time
    ) -> float:
        p = self.link_drop.get((src, dst), self.drop_probability)
        for burst in self.bursts:
            if burst.covers(src, dst, now):
                p = max(p, burst.drop)
        return p

    def message_delay(self, src, dst, msg, now) -> Delay:
        if self._rng.random() < self._drop_probability(src, dst, now):
            self.messages_dropped += 1
            return WITHHELD
        return super().message_delay(src, dst, msg, now)


@dataclass(frozen=True, slots=True)
class BurstWindow:
    """A correlated-loss interval ``[start, end)``.

    ``links`` restricts the burst to specific directed links; ``None``
    means the whole network. ``drop`` is the in-window loss probability.
    """

    start: Time
    end: Time
    drop: float = 1.0
    links: frozenset[tuple[ProcessId, ProcessId]] | None = None

    def covers(self, src: ProcessId, dst: ProcessId, now: Time) -> bool:
        if not self.start <= now < self.end:
            return False
        return self.links is None or (src, dst) in self.links


@dataclass(frozen=True, slots=True)
class PartitionBurst:
    """A transient two-way split: cross-group messages drop in the window."""

    start: Time
    end: Time
    group: frozenset[ProcessId]
    """One side of the split; everyone else is the other side."""

    def severs(self, src: ProcessId, dst: ProcessId, now: Time) -> bool:
        if not self.start <= now < self.end:
            return False
        return (src in self.group) != (dst in self.group)


class ChaosAdversary(Adversary):
    """Drop + duplicate + reorder + partition-burst faults from one seed.

    All randomness comes from the RNG the simulation binds (derived from
    the simulation seed), so the full fault schedule — including the burst
    and partition windows, which are generated at :meth:`bind` time — is a
    pure function of ``(constructor arguments, seed)``. :meth:`describe`
    renders the generated schedule so a failing run can be reported and
    replayed exactly.

    Fault axes (each individually disabled by passing 0 / 0.0):

    - ``drop_probability`` — independent per-message loss;
    - ``dup_probability`` / ``max_copies`` — at-least-once extra copies;
    - ``straggler_probability`` / ``straggler_delay`` — occasional
      messages delayed far beyond the normal band (aggressive reordering);
    - ``n_bursts`` × ``burst_len`` — whole-network loss windows at
      ``burst_drop``;
    - ``n_partitions`` × ``partition_len`` — transient splits isolating a
      random nonempty proper subset of the ``n`` processes.

    Windows are placed uniformly in ``[0, active_until)``; keep
    ``active_until`` comfortably below the run horizon so retransmission
    layers have calm time to drain after the last scheduled fault.
    """

    def __init__(
        self,
        n: int,
        active_until: Time = 200.0,
        drop_probability: float = 0.05,
        dup_probability: float = 0.1,
        max_copies: int = 2,
        straggler_probability: float = 0.03,
        straggler_delay: float = 20.0,
        n_bursts: int = 2,
        burst_len: float = 8.0,
        burst_drop: float = 0.9,
        n_partitions: int = 1,
        partition_len: float = 15.0,
        min_delay: float = 0.05,
        max_delay: float = 1.0,
    ) -> None:
        super().__init__(min_delay, max_delay)
        if n < 2:
            raise ConfigurationError(f"chaos needs at least 2 processes, got {n}")
        if active_until <= 0:
            raise ConfigurationError(
                f"active_until must be positive, got {active_until}"
            )
        self.n = n
        self.active_until = active_until
        self.drop_probability = _check_probability(
            "drop_probability", drop_probability
        )
        self.dup_probability = _check_probability("dup_probability", dup_probability)
        if max_copies < 1:
            raise ConfigurationError(f"max_copies must be >= 1, got {max_copies}")
        self.max_copies = max_copies
        self.straggler_probability = _check_probability(
            "straggler_probability", straggler_probability
        )
        self.straggler_delay = straggler_delay
        self.n_bursts = n_bursts
        self.burst_len = burst_len
        self.burst_drop = _check_probability("burst_drop", burst_drop)
        self.n_partitions = n_partitions
        self.partition_len = partition_len
        self.bursts: tuple[BurstWindow, ...] = ()
        self.partitions: tuple[PartitionBurst, ...] = ()
        self._generate_windows()
        # stats
        self.messages_dropped = 0
        self.duplicates_injected = 0
        self.stragglers_injected = 0

    # -- schedule generation ---------------------------------------------------

    def bind(self, rng: random.Random) -> None:
        super().bind(rng)
        self._generate_windows()

    def _generate_windows(self) -> None:
        """(Re)derive burst/partition windows from the current RNG.

        Runs once at construction (seed 0 placeholder) and again at
        :meth:`bind`; only the post-bind schedule is ever used by a
        simulation, and it is deterministic in the simulation seed.
        """
        rng = self._rng
        bursts = []
        for _ in range(self.n_bursts):
            start = rng.uniform(0.0, max(self.active_until - self.burst_len, 0.0))
            bursts.append(
                BurstWindow(start=start, end=start + self.burst_len,
                            drop=self.burst_drop)
            )
        partitions = []
        for _ in range(self.n_partitions):
            start = rng.uniform(
                0.0, max(self.active_until - self.partition_len, 0.0)
            )
            size = rng.randrange(1, self.n)  # nonempty proper subset
            group = frozenset(rng.sample(range(self.n), size))
            partitions.append(
                PartitionBurst(start=start, end=start + self.partition_len,
                               group=group)
            )
        self.bursts = tuple(sorted(bursts, key=lambda b: b.start))
        self.partitions = tuple(sorted(partitions, key=lambda p: p.start))

    def describe(self) -> str:
        """Human-readable schedule for failure reports / replay notes."""
        lines = [
            f"ChaosAdversary(n={self.n}, drop={self.drop_probability}, "
            f"dup={self.dup_probability}, straggler={self.straggler_probability}"
            f"@{self.straggler_delay})"
        ]
        for b in self.bursts:
            lines.append(
                f"  burst  [{b.start:8.2f}, {b.end:8.2f})  drop={b.drop}"
            )
        for p in self.partitions:
            lines.append(
                f"  split  [{p.start:8.2f}, {p.end:8.2f})  "
                f"group={sorted(p.group)} | rest"
            )
        return "\n".join(lines)

    # -- per-message decisions ---------------------------------------------------

    def message_delay(self, src, dst, msg, now) -> Delay:
        for p in self.partitions:
            if p.severs(src, dst, now):
                self.messages_dropped += 1
                return WITHHELD
        drop = self.drop_probability
        for b in self.bursts:
            if b.covers(src, dst, now):
                drop = max(drop, b.drop)
        if self._rng.random() < drop:
            self.messages_dropped += 1
            return WITHHELD
        if (
            self.straggler_probability
            and self._rng.random() < self.straggler_probability
        ):
            self.stragglers_injected += 1
            return self._rng.uniform(self.max_delay, self.straggler_delay)
        return self._rng.uniform(self.min_delay, self.max_delay)

    def extra_deliveries(
        self, src: ProcessId, dst: ProcessId, msg: Any, now: Time
    ) -> list[float]:
        extras: list[float] = []
        while (
            len(extras) < self.max_copies - 1
            and self._rng.random() < self.dup_probability
        ):
            extras.append(self._rng.uniform(self.min_delay, self.max_delay * 3))
            self.duplicates_injected += 1
        return extras


class GSTAdversary(ChaosAdversary):
    """Partial synchrony over a chaotic prefix: chaos before GST, bounded after.

    The partially synchronous model (Dwork–Lynch–Stockmeyer) that the
    paper's liveness arguments assume: there is an unknown Global
    Stabilization Time after which every message between live processes is
    delivered within a bound ``delta``. Before ``gst`` this adversary is a
    full :class:`ChaosAdversary` — drops, duplicates, stragglers, bursts,
    partitions; at and after ``gst`` it delivers every message exactly once
    with delay in ``[min_delay, delta]``.

    Messages *sent* just before GST may still arrive late (their delay was
    drawn under chaos rules), which matches the model: the bound applies to
    messages sent at or after GST. Burst/partition windows are clipped to
    ``[0, gst)`` by forcing ``active_until <= gst``.

    Protocol timers calibrated against ``delta`` (see
    :mod:`repro.faults.timeouts`) stop misfiring shortly after GST, which
    is exactly the property the liveness auditors key their post-GST
    deadlines on.
    """

    def __init__(
        self,
        n: int,
        gst: Time,
        delta: float = 1.0,
        **chaos_kwargs: Any,
    ) -> None:
        if gst < 0:
            raise ConfigurationError(f"gst must be >= 0, got {gst}")
        if delta <= 0:
            raise ConfigurationError(f"delta must be > 0, got {delta}")
        chaos_kwargs.setdefault("active_until", max(gst, 1e-9))
        if chaos_kwargs["active_until"] > gst:
            raise ConfigurationError(
                f"chaos windows (active_until="
                f"{chaos_kwargs['active_until']}) must not extend past "
                f"gst={gst}"
            )
        super().__init__(n, **chaos_kwargs)
        self.gst = gst
        self.delta = delta
        if self.max_delay > delta:
            # keep the post-GST band inside the promised bound
            self.post_gst_min = min(self.min_delay, delta)
        else:
            self.post_gst_min = self.min_delay

    def message_delay(self, src, dst, msg, now) -> Delay:
        if now >= self.gst:
            return self._rng.uniform(self.post_gst_min, self.delta)
        return super().message_delay(src, dst, msg, now)

    def extra_deliveries(
        self, src: ProcessId, dst: ProcessId, msg: Any, now: Time
    ) -> list[float]:
        if now >= self.gst:
            return []
        return super().extra_deliveries(src, dst, msg, now)

    def describe(self) -> str:
        return (
            super().describe().replace("ChaosAdversary(", "GSTAdversary(", 1)
            + f"\n  gst    {self.gst:8.2f}  delta={self.delta}"
        )
