"""Access control lists and policies for shared objects.

Section 2.1 of the paper: *"shared memory primitives have been associated
with access control lists (ACLs). These lists specify, for each object O and
operation op, which processes can execute op on O."* PEATS generalizes this
to *policies* that may consult the object's current state.

:class:`AccessControlList` implements the static form;
:class:`Policy` the dynamic (state-aware) form. Both plug into
:class:`~repro.sim.shared_memory.SharedObject.check_access`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional

from ..errors import AccessDeniedError, ConfigurationError
from ..types import ProcessId

EVERYONE = "everyone"
"""ACL wildcard: any process may perform the operation."""


class AccessControlList:
    """Static per-operation permission table.

    ``rules`` maps operation name to either :data:`EVERYONE` or an iterable
    of process ids. Operations missing from the table are denied to all —
    deny-by-default is the safe direction for trusted hardware.
    """

    def __init__(self, rules: Mapping[str, object]) -> None:
        self._rules: dict[str, frozenset[ProcessId] | str] = {}
        for op, who in rules.items():
            if who == EVERYONE:
                self._rules[op] = EVERYONE
            else:
                try:
                    self._rules[op] = frozenset(who)  # type: ignore[arg-type]
                except TypeError:
                    raise ConfigurationError(
                        f"ACL rule for {op!r} must be EVERYONE or an iterable "
                        f"of pids, got {who!r}"
                    ) from None

    @classmethod
    def single_writer(cls, owner: ProcessId, write_ops: Iterable[str] = ("write",),
                      read_ops: Iterable[str] = ("read",)) -> "AccessControlList":
        """The SWMR pattern: one owner may modify, everyone may read."""
        rules: dict[str, object] = {op: (owner,) for op in write_ops}
        rules.update({op: EVERYONE for op in read_ops})
        return cls(rules)

    def allows(self, pid: ProcessId, op: str) -> bool:
        who = self._rules.get(op)
        if who is None:
            return False
        if who == EVERYONE:
            return True
        return pid in who  # type: ignore[operator]

    def enforce(self, pid: ProcessId, object_name: str, op: str) -> None:
        if not self.allows(pid, op):
            raise AccessDeniedError(pid, object_name, op)

    def writers(self, op: str) -> Optional[frozenset[ProcessId]]:
        """The pid set allowed to perform ``op``; ``None`` when EVERYONE."""
        who = self._rules.get(op)
        if who == EVERYONE:
            return None
        return who if who is not None else frozenset()


PolicyFn = Callable[[object, ProcessId, str, tuple], bool]
"""``(object_state, pid, op, args) -> allowed`` — a PEATS-style policy."""


class Policy:
    """State-aware access policy (PEATS, Section 2.1).

    Combines an optional static ACL (checked first) with a dynamic predicate
    that may inspect the object's state — e.g. "a tuple may be replaced only
    by its inserter" or "insertion allowed only while the space has fewer
    than k entries of this type".
    """

    def __init__(self, fn: PolicyFn, acl: AccessControlList | None = None,
                 description: str = "") -> None:
        self._fn = fn
        self._acl = acl
        self.description = description

    def enforce(self, state: object, pid: ProcessId, object_name: str,
                op: str, args: tuple) -> None:
        if self._acl is not None:
            self._acl.enforce(pid, object_name, op)
        if not self._fn(state, pid, op, args):
            raise AccessDeniedError(pid, object_name, op)

    @staticmethod
    def allow_all() -> "Policy":
        return Policy(lambda state, pid, op, args: True, description="allow-all")
