"""PEATS — Policy-Enforced Augmented Tuple Spaces (Bessani et al.).

A tuple space stores immutable tuples; processes insert (``out``), read
(``rdp``) and remove (``inp``) entries by *pattern matching*. PEATS guards
every operation with a **policy** that may consult the current state of the
space, not just a static ACL — the distinguishing feature the paper notes in
Section 2.1.

This implementation provides the non-blocking probe variants (``rdp`` /
``inp``), which is what asynchronous protocols can use; blocking ``rd``/``in``
would embed waiting inside the shared object, which the simulation model
(atomic linearization points) correctly forbids.

Pattern language: a pattern is a tuple the same length as candidate
entries; each position is either a concrete value (must equal) or
:data:`WILDCARD`. ``rdp``/``inp`` return the *oldest* matching entry so the
space behaves deterministically under deterministic schedules.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..errors import ConfigurationError
from ..sim.shared_memory import SharedObject
from ..types import ProcessId
from .acl import Policy


class _Wildcard:
    _instance: "_Wildcard | None" = None

    def __new__(cls) -> "_Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"


WILDCARD = _Wildcard()


def matches(pattern: tuple, entry: tuple) -> bool:
    """Whether ``entry`` matches ``pattern`` (same arity, WILDCARD anywhere)."""
    if len(pattern) != len(entry):
        return False
    return all(p is WILDCARD or p == e for p, e in zip(pattern, entry))


class TupleSpaceState:
    """The state a PEATS policy may inspect: entries plus their inserters."""

    def __init__(self) -> None:
        self.entries: list[tuple] = []
        self.inserters: list[ProcessId] = []

    def count(self, pattern: tuple) -> int:
        return sum(1 for e in self.entries if matches(pattern, e))

    def inserter_of_oldest(self, pattern: tuple) -> Optional[ProcessId]:
        for e, who in zip(self.entries, self.inserters):
            if matches(pattern, e):
                return who
        return None


class PEATS(SharedObject):
    """A policy-enforced augmented tuple space.

    Operations (process id is implicit):

    - ``out(entry)`` — insert a tuple.
    - ``rdp(pattern) -> entry | None`` — read oldest match without removing.
    - ``inp(pattern) -> entry | None`` — remove and return oldest match.
    - ``count(pattern) -> int`` — number of matching entries ("augmented"
      feature: conditional/counting reads).
    - ``rdall(pattern) -> tuple[entry, ...]`` — all matches, oldest first.

    ``policy`` receives ``(TupleSpaceState, pid, op, args)``.
    """

    def __init__(self, name: str, policy: Policy | None = None,
                 arity: int | None = None) -> None:
        super().__init__(name)
        self.policy = policy if policy is not None else Policy.allow_all()
        self.arity = arity
        self.state = TupleSpaceState()

    def check_access(self, pid: ProcessId, op: str, args: tuple) -> None:
        self.policy.enforce(self.state, pid, self.name, op, args)

    def _check_shape(self, value: Any, what: str) -> tuple:
        if not isinstance(value, tuple):
            raise ConfigurationError(
                f"{what} in space {self.name!r} must be a tuple, got {value!r}"
            )
        if self.arity is not None and len(value) != self.arity:
            raise ConfigurationError(
                f"{what} in space {self.name!r} must have arity {self.arity}, "
                f"got {len(value)}"
            )
        return value

    # -- operations ----------------------------------------------------------

    def op_out(self, pid: ProcessId, entry: tuple) -> None:
        entry = self._check_shape(entry, "entry")
        self.state.entries.append(entry)
        self.state.inserters.append(pid)

    def op_rdp(self, pid: ProcessId, pattern: tuple) -> Optional[tuple]:
        pattern = self._check_shape(pattern, "pattern")
        for e in self.state.entries:
            if matches(pattern, e):
                return e
        return None

    def op_inp(self, pid: ProcessId, pattern: tuple) -> Optional[tuple]:
        pattern = self._check_shape(pattern, "pattern")
        for i, e in enumerate(self.state.entries):
            if matches(pattern, e):
                del self.state.entries[i]
                del self.state.inserters[i]
                return e
        return None

    def op_count(self, pid: ProcessId, pattern: tuple) -> int:
        pattern = self._check_shape(pattern, "pattern")
        return self.state.count(pattern)

    def op_rdall(self, pid: ProcessId, pattern: tuple) -> tuple:
        pattern = self._check_shape(pattern, "pattern")
        return tuple(e for e in self.state.entries if matches(pattern, e))


# -- stock policies ------------------------------------------------------------


def single_inserter_per_slot(slot_index: int) -> Policy:
    """Only the process named in position ``slot_index`` of an entry may insert it.

    With entries shaped ``(owner_pid, round, payload)`` this makes a PEATS
    behave like per-process append-only logs: process i can only insert
    entries tagged with its own id, and nobody can remove (``inp`` denied) —
    the configuration used to build unidirectional rounds from PEATS.
    """

    def fn(state: object, pid: ProcessId, op: str, args: tuple) -> bool:
        if op == "out":
            entry = args[0]
            return (
                isinstance(entry, tuple)
                and len(entry) > slot_index
                and entry[slot_index] == pid
            )
        if op == "inp":
            return False
        return True  # rdp / count / rdall open to everyone

    return Policy(fn, description=f"single-inserter-per-slot[{slot_index}]; no removal")


def remove_only_own() -> Policy:
    """Entries may be removed only by the process that inserted them."""

    def fn(state: object, pid: ProcessId, op: str, args: tuple) -> bool:
        if op != "inp":
            return True
        assert isinstance(state, TupleSpaceState)
        who = state.inserter_of_oldest(args[0])
        return who is None or who == pid

    return Policy(fn, description="remove-only-own")
