"""TrInc — the trusted incrementer (Levin et al.), per the paper's Figure 2.

Each process owns a *Trinket* ``T_p``. ``Attest(c, m)`` returns an
attestation binding ``(prev, c, m)`` — where ``prev`` is the previously
attested sequence number — iff ``c`` is strictly greater than every
sequence number this trinket attested before; otherwise it returns ``None``.
``CheckAttestation(a, q)`` verifies that ``a`` was output by ``T_q``.

Non-equivocation follows because a counter value can be bound to at most
one message: a Byzantine host holding its trinket can skip counter values
or stop attesting, but can never obtain two attestations with the same
``c``.

Following real TrInc, a trinket hosts **multiple independent counters**
(``counter_id``); the paper's simplified interface is counter 0, which the
:meth:`Trinket.attest` default provides.

Trust model: the :class:`TrincAuthority` holds all device keys; processes
get a :class:`Trinket` capability (their device). Byzantine processes hold
their trinket and may drive it arbitrarily, but cannot extract keys or
mint attestations for other trinkets — :meth:`TrincAuthority.check` is the
public verifier anyone can call on a relayed attestation (transferability).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Optional

from ..crypto.serialize import STATS as _CRYPTO_STATS
from ..crypto.serialize import canonical_bytes, content_hash
from ..errors import AttestationError, ConfigurationError
from ..types import ProcessId, SeqNum


@dataclass(frozen=True, slots=True)
class StatusAttestation:
    """A non-advancing attestation of a counter's *current* value.

    Real TrInc permits ``Attest`` with ``c' = c`` (no increment), which
    attests the current counter state without consuming a sequence number.
    The paper's simplified Figure 2 omits this, so it is a separate method
    here; the A2M-from-TrInc reduction uses it for fresh ``End`` statements.
    ``nonce`` is the verifier's freshness challenge.
    """

    trinket_id: ProcessId
    counter_id: int
    value: SeqNum
    nonce: Any
    tag: bytes


@dataclass(frozen=True, slots=True)
class Attestation:
    """An unforgeable statement: trinket ``trinket_id``, counter ``counter_id``,
    advanced from ``prev`` to ``seq`` while binding ``message``."""

    trinket_id: ProcessId
    counter_id: int
    prev: SeqNum
    seq: SeqNum
    message: Any
    tag: bytes

    def __repr__(self) -> str:
        return (
            f"Attestation(T{self.trinket_id}.c{self.counter_id}: "
            f"{self.prev}->{self.seq}, m={self.message!r})"
        )


class TrincAuthority:
    """Manufacturer of trinkets for one simulation; the root of trust.

    Deterministic per ``(n, seed)`` like the signature scheme.
    """

    def __init__(self, n: int, seed: int = 0) -> None:
        if n <= 0:
            raise ConfigurationError(f"need at least one trinket, got n={n}")
        self._n = n
        root = hashlib.sha256(f"repro-trinc|{seed}".encode()).digest()
        self._keys: dict[ProcessId, bytes] = {
            pid: hashlib.sha256(root + pid.to_bytes(8, "big")).digest()
            for pid in range(n)
        }
        self._issued: set[ProcessId] = set()

    @property
    def n(self) -> int:
        return self._n

    def trinket(self, pid: ProcessId) -> "Trinket":
        """Issue the (single) trinket for process ``pid``.

        A trinket is issued once and is expected to *outlive its host*:
        crash-recovery restarts must re-wire the same instance, which is
        what carries the counter state across reboots (the property the
        paper's classification rests on). A second issue is refused.
        """
        if pid not in self._keys:
            raise ConfigurationError(f"no trinket for pid {pid} (n={self._n})")
        if pid in self._issued:
            raise ConfigurationError(f"trinket for pid {pid} already issued")
        self._issued.add(pid)
        return Trinket(self, pid)

    def reissue_volatile(self, pid: ProcessId) -> "Trinket":
        """DELIBERATELY BROKEN: reissue ``pid``'s trinket with counters reset.

        Models a deployment whose "trusted" counter is *not* durable — the
        device state was lost with the host. The fresh trinket will happily
        re-attest counter values the old one already bound, so two valid
        attestations for the same ``(trinket, counter)`` with different
        messages can exist: exactly the post-restart equivocation the
        hardware is supposed to make impossible. For fault-injection
        experiments and negative tests only; correct recovery paths re-wire
        the original :meth:`trinket` instance instead.
        """
        if pid not in self._keys:
            raise ConfigurationError(f"no trinket for pid {pid} (n={self._n})")
        if pid not in self._issued:
            raise ConfigurationError(
                f"trinket for pid {pid} was never issued; nothing to lose"
            )
        return Trinket(self, pid)

    def _tag(self, pid: ProcessId, counter_id: int, prev: SeqNum, seq: SeqNum,
             message: Any) -> bytes:
        body = canonical_bytes(
            ("attest", pid, counter_id, prev, seq, content_hash(message))
        )
        _CRYPTO_STATS.hmac_ops += 1
        return hmac.new(self._keys[pid], body, hashlib.sha256).digest()

    def _status_tag(self, pid: ProcessId, counter_id: int, value: SeqNum,
                    nonce: Any) -> bytes:
        body = canonical_bytes(("status", pid, counter_id, value, content_hash(nonce)))
        _CRYPTO_STATS.hmac_ops += 1
        return hmac.new(self._keys[pid], body, hashlib.sha256).digest()

    def check_status(self, statement: Any, q: ProcessId) -> bool:
        """Verify a :class:`StatusAttestation` claimed to come from ``T_q``."""
        s = statement
        if not isinstance(s, StatusAttestation):
            return False
        if s.trinket_id != q or q not in self._keys:
            return False
        if not isinstance(s.value, int) or s.value < 0:
            return False
        try:
            expected = self._status_tag(q, s.counter_id, s.value, s.nonce)
        except Exception:
            return False
        return hmac.compare_digest(expected, s.tag)

    def check(self, attestation: Any, q: ProcessId) -> bool:
        """The paper's ``CheckAttestation(a, q)``.

        True iff ``attestation`` is a valid attestation previously output by
        trinket ``T_q``. Never raises on malformed input — Byzantine
        processes send garbage.
        """
        a = attestation
        if not isinstance(a, Attestation):
            return False
        if a.trinket_id != q:
            return False
        if q not in self._keys:
            return False
        # counters start at 0 and strictly increase, so 0 <= prev < seq
        if not isinstance(a.prev, int) or not isinstance(a.seq, int):
            return False
        if a.prev < 0 or a.seq <= a.prev:
            return False
        try:
            expected = self._tag(q, a.counter_id, a.prev, a.seq, a.message)
        except Exception:
            return False
        return hmac.compare_digest(expected, a.tag)


class Trinket:
    """One process's trusted incrementer. Obtainable only from the authority."""

    __slots__ = ("_authority", "_pid", "_last", "attest_calls", "attest_refusals")

    def __init__(self, authority: TrincAuthority, pid: ProcessId) -> None:
        self._authority = authority
        self._pid = pid
        self._last: dict[int, SeqNum] = {}
        self.attest_calls = 0
        self.attest_refusals = 0

    @property
    def pid(self) -> ProcessId:
        return self._pid

    def last_seq(self, counter_id: int = 0) -> SeqNum:
        """Highest sequence number attested on ``counter_id`` so far (0 = none)."""
        return self._last.get(counter_id, 0)

    def attest(self, c: SeqNum, m: Any, counter_id: int = 0) -> Optional[Attestation]:
        """The paper's ``Attest(seq-num c, message m)``.

        Returns an attestation to ``(prev, c, m)`` if ``c`` is higher than
        any sequence number used on this counter so far; ``None`` otherwise.
        """
        self.attest_calls += 1
        if not isinstance(c, int):
            raise AttestationError(f"sequence number must be an int, got {c!r}")
        if c <= 0:
            raise AttestationError(f"sequence numbers start at 1, got {c}")
        if counter_id < 0:
            raise AttestationError(f"counter_id must be non-negative, got {counter_id}")
        prev = self._last.get(counter_id, 0)
        if c <= prev:
            self.attest_refusals += 1
            return None
        tag = self._authority._tag(self._pid, counter_id, prev, c, m)
        self._last[counter_id] = c
        return Attestation(
            trinket_id=self._pid, counter_id=counter_id, prev=prev, seq=c,
            message=m, tag=tag,
        )

    def status(self, counter_id: int = 0, nonce: Any = None) -> StatusAttestation:
        """Attest the current value of ``counter_id`` without advancing it.

        Models real TrInc's non-advancing attest (``c' = c``); see
        :class:`StatusAttestation`.
        """
        if counter_id < 0:
            raise AttestationError(f"counter_id must be non-negative, got {counter_id}")
        value = self._last.get(counter_id, 0)
        tag = self._authority._status_tag(self._pid, counter_id, value, nonce)
        return StatusAttestation(
            trinket_id=self._pid, counter_id=counter_id, value=value,
            nonce=nonce, tag=tag,
        )
