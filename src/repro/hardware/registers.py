"""SWMR registers and append-only registers.

These are the shared-memory primitives of Aguilera et al. that the paper's
Claim in Section 3.2 builds unidirectional rounds from: *"for each process
p_i there is some object o_i such that p_i is the only process that can
modify o_i, and all processes can read o_i."*

- :class:`SWMRRegister` — classic single-writer multi-reader atomic
  register (read/write).
- :class:`AppendOnlyRegister` — single-appender multi-reader growing log;
  the round protocol *appends* ``(r, m)`` and readers receive the whole
  history, which is what lets late rounds coexist in one object.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim.shared_memory import SharedObject
from ..types import ProcessId
from .acl import AccessControlList


class SWMRRegister(SharedObject):
    """Single-writer multi-reader atomic register.

    Operations: ``write(value)`` (owner only), ``read() -> value``.
    The initial value is ``None`` unless overridden.
    """

    def __init__(self, name: str, owner: ProcessId, initial: Any = None) -> None:
        super().__init__(name)
        self.owner = owner
        self._acl = AccessControlList.single_writer(owner)
        self._value = initial
        self.write_count = 0
        self.read_count = 0

    def check_access(self, pid: ProcessId, op: str, args: tuple) -> None:
        self._acl.enforce(pid, self.name, op)

    def op_write(self, pid: ProcessId, value: Any) -> None:
        self._value = value
        self.write_count += 1

    def op_read(self, pid: ProcessId) -> Any:
        self.read_count += 1
        return self._value


class AppendOnlyRegister(SharedObject):
    """Single-appender multi-reader log.

    Operations: ``append(value)`` (owner only), ``read() -> tuple`` (whole
    history), ``read_from(index) -> tuple`` (suffix — used by scanners that
    already saw a prefix), ``length() -> int``.

    Readers get immutable tuples, so no reader can perturb the log or
    another reader.
    """

    def __init__(self, name: str, owner: ProcessId) -> None:
        super().__init__(name)
        self.owner = owner
        self._acl = AccessControlList.single_writer(
            owner, write_ops=("append",), read_ops=("read", "read_from", "length")
        )
        self._log: list[Any] = []
        self.append_count = 0
        self.read_count = 0

    def check_access(self, pid: ProcessId, op: str, args: tuple) -> None:
        self._acl.enforce(pid, self.name, op)

    def op_append(self, pid: ProcessId, value: Any) -> int:
        """Append ``value``; returns its (0-based) index in the log."""
        self._log.append(value)
        self.append_count += 1
        return len(self._log) - 1

    def op_read(self, pid: ProcessId) -> tuple:
        self.read_count += 1
        return tuple(self._log)

    def op_read_from(self, pid: ProcessId, index: int) -> tuple:
        self.read_count += 1
        if index < 0:
            index = 0
        return tuple(self._log[index:])

    def op_length(self, pid: ProcessId) -> int:
        return len(self._log)


def swmr_array(n: int, prefix: str = "reg") -> list[SWMRRegister]:
    """One SWMR register per process: ``reg[i]`` owned by process ``i``."""
    return [SWMRRegister(f"{prefix}{i}", owner=i) for i in range(n)]


def append_log_array(n: int, prefix: str = "log") -> list[AppendOnlyRegister]:
    """One append-only log per process, the layout the round engine uses."""
    return [AppendOnlyRegister(f"{prefix}{i}", owner=i) for i in range(n)]
