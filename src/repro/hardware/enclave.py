"""SGX/TrustZone-style enclaves: attested deterministic state machines.

Section 2.1: *"Intel SGX and ARM TrustZone are similar to A2M and TrInc
[for non-equivocation], though in addition they allow for more expressive
computations."* This module models exactly that increment of power: an
enclave runs an arbitrary deterministic program in isolation and attests
its outputs; the (possibly Byzantine) host controls only *which* inputs are
fed and *whether* outputs are delivered.

An :class:`EnclaveProgram` supplies a ``measurement`` (code identity, what
remote attestation pins), an initial state, and a pure
``step(state, inp) -> (state', output)``. Each invocation is attested with
a monotonically increasing invocation number, so a host can replay old
*attestations* but can never reorder or fork the enclave's execution
history without detection.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..crypto.serialize import canonical_bytes, content_hash
from ..errors import AttestationError, ConfigurationError
from ..types import ProcessId, SeqNum


class EnclaveProgram:
    """A deterministic program to run inside an enclave.

    Subclass or construct directly with callables. ``step`` must be pure:
    same (state, input) → same (state, output); the simulation cannot check
    purity but the determinism tests will catch violations.
    """

    def __init__(
        self,
        measurement: str,
        initial_state: Any = None,
        step: Callable[[Any, Any], tuple[Any, Any]] | None = None,
    ) -> None:
        if not measurement:
            raise ConfigurationError("enclave program needs a non-empty measurement")
        self.measurement = measurement
        self._initial_state = initial_state
        self._step = step

    def initial_state(self) -> Any:
        return self._initial_state

    def step(self, state: Any, inp: Any) -> tuple[Any, Any]:
        if self._step is None:
            raise NotImplementedError(
                f"program {self.measurement!r} defines no step function"
            )
        return self._step(state, inp)


@dataclass(frozen=True, slots=True)
class EnclaveOutput:
    """An attested enclave output.

    Binds: which device, which program (measurement), the invocation number
    ``seq``, a hash of the input, and the output value itself.
    """

    device_id: ProcessId
    measurement: str
    seq: SeqNum
    input_hash: bytes
    output: Any
    tag: bytes


class EnclaveAuthority:
    """Manufacturer of enclave-capable devices; public verifier of outputs."""

    def __init__(self, n: int, seed: int = 0) -> None:
        if n <= 0:
            raise ConfigurationError(f"need at least one device, got n={n}")
        self._n = n
        root = hashlib.sha256(f"repro-enclave|{seed}".encode()).digest()
        self._keys: dict[ProcessId, bytes] = {
            pid: hashlib.sha256(root + pid.to_bytes(8, "big")).digest()
            for pid in range(n)
        }

    @property
    def n(self) -> int:
        return self._n

    def launch(self, pid: ProcessId, program: EnclaveProgram) -> "Enclave":
        """Start ``program`` on ``pid``'s device.

        Unlike trinkets, a device may launch many enclaves (real SGX does);
        each launch is an independent attested history.
        """
        if pid not in self._keys:
            raise ConfigurationError(f"no enclave device for pid {pid} (n={self._n})")
        return Enclave(self, pid, program)

    def _tag(self, pid: ProcessId, measurement: str, seq: SeqNum,
             input_hash: bytes, output: Any) -> bytes:
        body = canonical_bytes(
            ("enclave", pid, measurement, seq, input_hash, content_hash(output))
        )
        return hmac.new(self._keys[pid], body, hashlib.sha256).digest()

    def check(self, out: Any, q: ProcessId,
              measurement: str | None = None) -> bool:
        """Verify an :class:`EnclaveOutput` from device ``q``.

        Pass ``measurement`` to additionally pin the program identity (what
        real remote attestation does).
        """
        o = out
        if not isinstance(o, EnclaveOutput):
            return False
        if o.device_id != q or q not in self._keys:
            return False
        if measurement is not None and o.measurement != measurement:
            return False
        if not isinstance(o.seq, int) or o.seq < 1:
            return False
        try:
            expected = self._tag(q, o.measurement, o.seq, o.input_hash, o.output)
        except Exception:
            return False
        return hmac.compare_digest(expected, o.tag)


class Enclave:
    """A running attested state machine on one device."""

    __slots__ = ("_authority", "_pid", "_program", "_state", "_seq", "invocations")

    def __init__(self, authority: EnclaveAuthority, pid: ProcessId,
                 program: EnclaveProgram) -> None:
        self._authority = authority
        self._pid = pid
        self._program = program
        self._state = program.initial_state()
        self._seq: SeqNum = 0
        self.invocations = 0

    @property
    def pid(self) -> ProcessId:
        return self._pid

    @property
    def measurement(self) -> str:
        return self._program.measurement

    @property
    def seq(self) -> SeqNum:
        """Number of invocations so far."""
        return self._seq

    def invoke(self, inp: Any) -> EnclaveOutput:
        """Run one step on ``inp``; returns the attested output.

        The host cannot roll the enclave back: state advances before the
        attestation is released, and ``seq`` is part of what is signed.
        """
        try:
            ih = content_hash(inp)
        except Exception as exc:
            raise AttestationError(f"enclave input not serializable: {inp!r}") from exc
        new_state, output = self._program.step(self._state, inp)
        self._state = new_state
        self._seq += 1
        self.invocations += 1
        tag = self._authority._tag(
            self._pid, self._program.measurement, self._seq, ih, output
        )
        return EnclaveOutput(
            device_id=self._pid,
            measurement=self._program.measurement,
            seq=self._seq,
            input_hash=ih,
            output=output,
            tag=tag,
        )
