"""A2M implemented from TrInc (the Levin et al. reduction).

The paper (Section 3.1) leans on this known result: *"Levin et al. show
that TrInc can implement the interface of attested append-only memory"* —
so proving SRB ≥ TrInc also covers A2M. This module makes the reduction
executable.

Construction, per log:

- each A2M log gets its own trinket counter (``counter_id = log_id``);
- ``append(log, x)`` attests ``x`` at the next consecutive sequence number.
  Because the counter can never be reused, the attestation with
  ``prev = s-1, seq = s`` *is* an unforgeable statement "x is the s-th
  entry of this log" — there can never be a conflicting one;
- ``lookup(log, s)`` returns that stored attestation (the untrusted host
  stores them; losing one only loses the ability to prove, never the
  ability to lie);
- ``end(log, z)`` returns a :class:`~repro.hardware.trinc.StatusAttestation`
  of the log counter (TrInc's non-advancing attest), which freshly and
  verifiably states the current length, together with the last entry's
  attestation.

Verification is pure (:class:`TrincA2MChecker`), so statements are
transferable exactly like native A2M statements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..errors import AttestationError
from ..types import ProcessId, SeqNum
from .trinc import Attestation, StatusAttestation, Trinket, TrincAuthority


@dataclass(frozen=True, slots=True)
class LookupProof:
    """Proof that ``entry.message`` is entry number ``entry.seq`` of log
    ``entry.counter_id`` on the device ``entry.trinket_id``."""

    entry: Attestation

    @property
    def log_id(self) -> int:
        return self.entry.counter_id

    @property
    def index(self) -> SeqNum:
        return self.entry.seq

    @property
    def value(self) -> Any:
        return self.entry.message


@dataclass(frozen=True, slots=True)
class EndProof:
    """Proof of a log's current length (and last value when non-empty).

    ``status`` binds the verifier's nonce, so it postdates the challenge;
    ``last`` is the entry attestation for index ``status.value`` (``None``
    iff the log is empty).
    """

    status: StatusAttestation
    last: Optional[Attestation]

    @property
    def log_id(self) -> int:
        return self.status.counter_id

    @property
    def length(self) -> SeqNum:
        return self.status.value

    @property
    def value(self) -> Any:
        return self.last.message if self.last is not None else None


class TrincBackedA2M:
    """The untrusted host side of the reduction; mirrors :class:`A2MDevice`.

    Holds the process's trinket plus plain host memory for issued
    attestations. Log ids are the trinket counter ids, starting at 1
    (counter 0 stays free for other uses by the same process).
    """

    def __init__(self, trinket: Trinket) -> None:
        self._trinket = trinket
        self._entries: dict[int, list[Attestation]] = {}
        self._next_log = 1

    @property
    def pid(self) -> ProcessId:
        return self._trinket.pid

    def create_log(self) -> int:
        log_id = self._next_log
        self._next_log += 1
        self._entries[log_id] = []
        return log_id

    def log_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._entries))

    def append(self, log_id: int, value: Any) -> SeqNum:
        entries = self._entries.get(log_id)
        if entries is None:
            raise AttestationError(f"host {self.pid}: no log {log_id}")
        seq = len(entries) + 1
        att = self._trinket.attest(seq, value, counter_id=log_id)
        if att is None:  # counter ahead of host memory: host state corrupted
            raise AttestationError(
                f"host {self.pid}: trinket counter for log {log_id} is ahead "
                f"of host storage (expected next seq {seq})"
            )
        entries.append(att)
        return seq

    def lookup(self, log_id: int, s: SeqNum, nonce: Any = None) -> Optional[LookupProof]:
        entries = self._entries.get(log_id)
        if entries is None or not (1 <= s <= len(entries)):
            return None
        return LookupProof(entry=entries[s - 1])

    def end(self, log_id: int, nonce: Any = None) -> Optional[EndProof]:
        entries = self._entries.get(log_id)
        if entries is None:
            return None
        status = self._trinket.status(counter_id=log_id, nonce=nonce)
        last = entries[-1] if entries else None
        return EndProof(status=status, last=last)


class TrincA2MChecker:
    """Public verifier for :class:`LookupProof` / :class:`EndProof`.

    The key soundness facts checked here:

    - a lookup proof must have consecutive ``prev = seq - 1`` — otherwise
      the host skipped counter values and the "s-th entry" claim is bogus;
    - an end proof's status value must match the last entry's seq (or be 0
      with no last entry), and the nonce must be the verifier's challenge.
    """

    def __init__(self, authority: TrincAuthority) -> None:
        self._authority = authority

    def check_lookup(self, proof: Any, q: ProcessId, log_id: int,
                     s: SeqNum) -> bool:
        if not isinstance(proof, LookupProof):
            return False
        a = proof.entry
        if not isinstance(a, Attestation):
            return False
        if a.counter_id != log_id or a.seq != s or a.prev != s - 1:
            return False
        return self._authority.check(a, q)

    def check_end(self, proof: Any, q: ProcessId, log_id: int,
                  nonce: Any = None) -> bool:
        if not isinstance(proof, EndProof):
            return False
        st = proof.status
        if not isinstance(st, StatusAttestation):
            return False
        if st.counter_id != log_id or st.nonce != nonce:
            return False
        if not self._authority.check_status(st, q):
            return False
        if st.value == 0:
            return proof.last is None
        last = proof.last
        if not isinstance(last, Attestation):
            return False
        if last.counter_id != log_id or last.seq != st.value or last.prev != st.value - 1:
            return False
        return self._authority.check(last, q)
