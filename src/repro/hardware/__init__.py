"""The trusted-hardware zoo the paper classifies.

Two families, mirroring the paper's Section 2.1:

**Trusted logs (message-passing class, ≤ SRB):**

- :class:`~repro.hardware.trinc.Trinket` / :class:`~repro.hardware.trinc.TrincAuthority` —
  TrInc, the trusted incrementer (paper Figure 2).
- :class:`~repro.hardware.a2m.A2MDevice` / :class:`~repro.hardware.a2m.A2MAuthority` —
  attested append-only memory.
- :class:`~repro.hardware.a2m_from_trinc.TrincBackedA2M` — the Levin et al.
  reduction, executable.
- :class:`~repro.hardware.enclave.Enclave` — SGX-like attested state
  machines ("more expressive computations").

**Shared memory with ACLs (unidirectional class):**

- :class:`~repro.hardware.registers.SWMRRegister` and
  :class:`~repro.hardware.registers.AppendOnlyRegister`.
- :class:`~repro.hardware.sticky.StickyBit` / ``StickyRegister``.
- :class:`~repro.hardware.peats.PEATS` — policy-enforced augmented tuple
  spaces.

All devices follow the same trust model: a per-process capability object
whose secret state cannot be extracted, plus a public authority/verifier.
"""

from .a2m import A2MAuthority, A2MDevice, A2MStatement, END, LOOKUP
from .a2m_from_trinc import EndProof, LookupProof, TrincA2MChecker, TrincBackedA2M
from .acl import AccessControlList, EVERYONE, Policy
from .compromise import (
    ClonedTrinket,
    KeyExtractedUSIG,
    compromise_trinket,
    extract_usig_key,
)
from .enclave import Enclave, EnclaveAuthority, EnclaveOutput, EnclaveProgram
from .peats import PEATS, WILDCARD, matches, remove_only_own, single_inserter_per_slot
from .registers import (
    AppendOnlyRegister,
    SWMRRegister,
    append_log_array,
    swmr_array,
)
from .sticky import StickyBit, StickyRegister, UNSET, sticky_array
from .trinc import Attestation, StatusAttestation, Trinket, TrincAuthority

__all__ = [
    "A2MAuthority",
    "A2MDevice",
    "A2MStatement",
    "AccessControlList",
    "AppendOnlyRegister",
    "ClonedTrinket",
    "Attestation",
    "END",
    "EVERYONE",
    "Enclave",
    "EnclaveAuthority",
    "EnclaveOutput",
    "EnclaveProgram",
    "EndProof",
    "KeyExtractedUSIG",
    "LOOKUP",
    "LookupProof",
    "PEATS",
    "Policy",
    "SWMRRegister",
    "StatusAttestation",
    "StickyBit",
    "StickyRegister",
    "Trinket",
    "TrincA2MChecker",
    "TrincAuthority",
    "TrincBackedA2M",
    "UNSET",
    "WILDCARD",
    "append_log_array",
    "compromise_trinket",
    "extract_usig_key",
    "matches",
    "remove_only_own",
    "single_inserter_per_slot",
    "sticky_array",
    "swmr_array",
]
