"""A2M — Attested Append-Only Memory (Chun et al.).

A trusted device holding a set of *logs*. Any holder of the device may
``create_log`` (getting a fresh log id), ``append`` values to a log, and
request attested statements about log contents:

- ``lookup(log_id, s, z)`` — attested ⟨LOOKUP, log_id, s, value_at_s, z⟩;
- ``end(log_id, z)`` — attested ⟨END, log_id, len, last_value, z⟩.

``z`` is a caller-chosen nonce bound into the attestation, giving
freshness: a verifier that picked ``z`` knows the statement postdates its
challenge. Past entries can never be modified, so two attestations for the
same ``(log_id, s)`` always carry the same value — the non-equivocation
guarantee.

The device keys live in :class:`A2MAuthority`; processes hold an
:class:`A2MDevice` capability. As with TrInc, Byzantine holders can drive
their device arbitrarily but never forge statements, and anyone can verify
a relayed statement via the authority.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Optional

from ..crypto.serialize import canonical_bytes, content_hash
from ..errors import AttestationError, ConfigurationError
from ..types import ProcessId, SeqNum

LOOKUP = "lookup"
END = "end"


@dataclass(frozen=True, slots=True)
class A2MStatement:
    """An attested statement about one log of one device.

    ``kind`` is :data:`LOOKUP` or :data:`END`; for END, ``index`` is the log
    length at attestation time. ``value`` is the log entry at ``index``
    (``None`` for an END over an empty log).
    """

    device_id: ProcessId
    kind: str
    log_id: int
    index: SeqNum
    value: Any
    nonce: Any
    tag: bytes

    def __repr__(self) -> str:
        return (
            f"A2MStatement(D{self.device_id}.{self.kind} log={self.log_id} "
            f"[{self.index}]={self.value!r})"
        )


class A2MAuthority:
    """Manufacturer and public verifier of A2M devices."""

    def __init__(self, n: int, seed: int = 0) -> None:
        if n <= 0:
            raise ConfigurationError(f"need at least one device, got n={n}")
        self._n = n
        root = hashlib.sha256(f"repro-a2m|{seed}".encode()).digest()
        self._keys: dict[ProcessId, bytes] = {
            pid: hashlib.sha256(root + pid.to_bytes(8, "big")).digest()
            for pid in range(n)
        }
        self._issued: set[ProcessId] = set()

    @property
    def n(self) -> int:
        return self._n

    def device(self, pid: ProcessId) -> "A2MDevice":
        if pid not in self._keys:
            raise ConfigurationError(f"no device for pid {pid} (n={self._n})")
        if pid in self._issued:
            raise ConfigurationError(f"device for pid {pid} already issued")
        self._issued.add(pid)
        return A2MDevice(self, pid)

    def _tag(self, pid: ProcessId, kind: str, log_id: int, index: SeqNum,
             value: Any, nonce: Any) -> bytes:
        body = canonical_bytes(
            ("a2m", pid, kind, log_id, index, content_hash(value), content_hash(nonce))
        )
        return hmac.new(self._keys[pid], body, hashlib.sha256).digest()

    def check(self, statement: Any, q: ProcessId) -> bool:
        """True iff ``statement`` was genuinely produced by device ``q``."""
        s = statement
        if not isinstance(s, A2MStatement):
            return False
        if s.device_id != q or q not in self._keys:
            return False
        if s.kind not in (LOOKUP, END):
            return False
        try:
            expected = self._tag(q, s.kind, s.log_id, s.index, s.value, s.nonce)
        except Exception:
            return False
        return hmac.compare_digest(expected, s.tag)


class A2MDevice:
    """One process's attested append-only memory (trusted part).

    The interface mirrors the commented-out Algorithm in the paper's source
    (CreateLog / Append / Lookup / End), with attestations as dataclasses
    instead of signed byte strings.
    """

    __slots__ = ("_authority", "_pid", "_logs", "_log_counter", "append_count")

    def __init__(self, authority: A2MAuthority, pid: ProcessId) -> None:
        self._authority = authority
        self._pid = pid
        self._logs: dict[int, list[Any]] = {}
        self._log_counter = 0
        self.append_count = 0

    @property
    def pid(self) -> ProcessId:
        return self._pid

    def create_log(self) -> int:
        """Allocate a fresh empty log; returns its id (1-based)."""
        self._log_counter += 1
        self._logs[self._log_counter] = []
        return self._log_counter

    def log_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._logs))

    def append(self, log_id: int, value: Any) -> SeqNum:
        """Append ``value`` to ``log_id``; returns its 1-based index.

        Appending to an unknown log raises — the paper's pseudocode guards
        with ``if id <= C``, i.e. silently ignores bad ids, but an exception
        surfaces host bugs without changing the trust argument (a Byzantine
        host learns nothing it does not already know).
        """
        if log_id not in self._logs:
            raise AttestationError(f"device {self._pid}: no log {log_id}")
        self._logs[log_id].append(value)
        self.append_count += 1
        return len(self._logs[log_id])

    def lookup(self, log_id: int, s: SeqNum, nonce: Any = None) -> Optional[A2MStatement]:
        """Attested content of entry ``s`` (1-based), or None when out of range."""
        log = self._logs.get(log_id)
        if log is None or not (1 <= s <= len(log)):
            return None
        value = log[s - 1]
        tag = self._authority._tag(self._pid, LOOKUP, log_id, s, value, nonce)
        return A2MStatement(self._pid, LOOKUP, log_id, s, value, nonce, tag)

    def end(self, log_id: int, nonce: Any = None) -> Optional[A2MStatement]:
        """Attested (length, last value) of ``log_id``; length 0 for empty logs."""
        log = self._logs.get(log_id)
        if log is None:
            return None
        index = len(log)
        value = log[-1] if log else None
        tag = self._authority._tag(self._pid, END, log_id, index, value, nonce)
        return A2MStatement(self._pid, END, log_id, index, value, nonce, tag)
