"""Compromised trusted hardware: the negative half of the classification.

The paper's taxonomy rests on one capability — non-equivocation: a trusted
counter binds each sequence number to at most one message, which is what
lets MinBFT/SRB run at n = 2f+1 instead of 3f+1. This module models the
failure of that assumption, in the two ways real deployments fail:

- :class:`ClonedTrinket` — a *forkable, rollbackable* TrInc. Models a
  virtualized/snapshotted device (VM fork, SGX rollback, un-fused
  monotonic counter): the host can duplicate the device state or rewind
  its counter, after which two valid attestations for the same
  ``(trinket, counter)`` can bind different messages.
- :class:`KeyExtractedUSIG` — the stronger break: the device *key* leaks
  (side channel, firmware bug), so the host mints attestations for any
  counter value directly, with no device at all.

Both produce artifacts that pass every public verifier
(:meth:`~repro.hardware.trinc.TrincAuthority.check`,
:meth:`~repro.consensus.usig.USIGVerifier.verify_ui`) — that is the point:
the *protocol* cannot tell, and safety at n = 2f+1 genuinely falls. What
remains is accountability: two conflicting attestations at one counter
value are a self-contained, independently verifiable proof of misbehavior
(see :mod:`repro.consensus.forensics`), because an uncompromised device
can never emit them.

Everything here is for fault injection and negative tests; nothing in the
correct-path stack imports it.
"""

from __future__ import annotations

from typing import Any, Optional

from ..crypto.serialize import content_hash
from ..errors import ConfigurationError
from ..types import ProcessId, SeqNum
from .trinc import Attestation, Trinket, TrincAuthority


class ClonedTrinket(Trinket):
    """A trinket whose host can fork and rewind it — TrInc without the T.

    Behaves exactly like :class:`~repro.hardware.trinc.Trinket` (same keys,
    same attestations, passes ``TrincAuthority.check``) but adds the two
    operations a real device's fuse-backed counter exists to prevent:

    - :meth:`fork` — duplicate the device state; each clone advances its
      counter independently, so clone A and clone B can both attest
      counter ``c`` with different messages.
    - :meth:`rollback` — rewind the counter to a past value, re-opening
      sequence numbers the device already bound.
    """

    __slots__ = ("forks", "rollbacks")

    def __init__(self, authority: TrincAuthority, pid: ProcessId) -> None:
        super().__init__(authority, pid)
        self.forks = 0
        self.rollbacks = 0

    @classmethod
    def from_trinket(cls, victim: Trinket) -> "ClonedTrinket":
        """Compromise an issued trinket: snapshot its state into a clone.

        The genuine device is untouched (and still held by the authority's
        once-only issue bookkeeping); the clone is a perfect impostor that
        starts from the same counter state.
        """
        clone = cls(victim._authority, victim._pid)
        clone._last = dict(victim._last)
        return clone

    def fork(self) -> "ClonedTrinket":
        """Duplicate the device; the copy diverges independently."""
        self.forks += 1
        twin = ClonedTrinket(self._authority, self._pid)
        twin._last = dict(self._last)
        return twin

    def rollback(self, to_seq: SeqNum, counter_id: int = 0) -> None:
        """Rewind ``counter_id`` to ``to_seq``; lower values become attestable
        again (``to_seq = 0`` resets the counter entirely)."""
        if not isinstance(to_seq, int) or to_seq < 0:
            raise ConfigurationError(f"rollback target must be >= 0, got {to_seq!r}")
        self.rollbacks += 1
        if to_seq == 0:
            self._last.pop(counter_id, None)
        else:
            self._last[counter_id] = to_seq


def compromise_trinket(victim: Trinket) -> ClonedTrinket:
    """Convenience spelling of :meth:`ClonedTrinket.from_trinket`."""
    return ClonedTrinket.from_trinket(victim)


class KeyExtractedUSIG:
    """A USIG whose device key leaked: mints valid UIs at *any* counter.

    Duck-types :class:`~repro.consensus.usig.USIG` (``create_ui``,
    ``counter``, ``replica``) so a replica can be constructed with it
    unmodified, and adds :meth:`create_ui_at` — the equivocation
    primitive: two UIs at the same counter value binding different
    messages, both of which pass ``verify_ui`` because they carry genuine
    HMACs under the extracted key.
    """

    def __init__(
        self,
        authority: TrincAuthority,
        replica: ProcessId,
        start: SeqNum = 0,
    ) -> None:
        self._authority = authority
        self._replica = replica
        self._next: SeqNum = start + 1
        self.created = 0
        self.forged = 0

    @classmethod
    def from_usig(cls, usig: Any) -> "KeyExtractedUSIG":
        """Extract the key from a live USIG (side-channel the simulation
        grants the adversary); continues from its current counter."""
        trinket = usig._trinket
        return cls(trinket._authority, trinket.pid, start=trinket.last_seq())

    @property
    def replica(self) -> ProcessId:
        return self._replica

    @property
    def counter(self) -> SeqNum:
        return self._next - 1

    def _mint(self, message: Any, c: SeqNum):
        from ..consensus.usig import UI  # lazy: consensus sits above hardware

        h = content_hash(message)
        tag = self._authority._tag(self._replica, 0, c - 1, c, h)
        att = Attestation(
            trinket_id=self._replica, counter_id=0, prev=c - 1, seq=c,
            message=h, tag=tag,
        )
        return UI(replica=self._replica, counter=c, attestation=att)

    def create_ui(self, message: Any):
        """Honest-looking path: consecutive counters, like the real USIG."""
        c = self._next
        self._next += 1
        self.created += 1
        return self._mint(message, c)

    def create_ui_at(self, message: Any, counter: SeqNum):
        """The break: bind ``message`` to an arbitrary counter value without
        advancing anything — a second call with the same ``counter`` and a
        different message is exactly the equivocation trusted hardware
        exists to prevent."""
        if not isinstance(counter, int) or counter < 1:
            raise ConfigurationError(f"counter must be >= 1, got {counter!r}")
        self.forged += 1
        return self._mint(message, counter)


def extract_usig_key(usig: Any) -> KeyExtractedUSIG:
    """Convenience spelling of :meth:`KeyExtractedUSIG.from_usig`."""
    return KeyExtractedUSIG.from_usig(usig)
