"""Sticky bits and sticky registers.

Malkhi et al. (the paper's citation for sticky bits) define registers whose
value, once set, can never change. They are the minimal shared-memory
object considered in the paper's classification: a sticky register with
per-process ownership still provides the "modify own / read all" shape that
yields unidirectional rounds, and a *sticky* write additionally gives
first-write-wins consensus-like behavior used in classic constructions.

Operations:

- ``write(value)``: succeeds (returns True) only if the register is still
  unset; later writes return False and leave the value untouched.
- ``read()``: current value or the ``UNSET`` sentinel.

A :class:`StickyBit` restricts the domain to {0, 1}.
"""

from __future__ import annotations

from typing import Any

from ..errors import ConfigurationError
from ..sim.shared_memory import SharedObject
from ..types import ProcessId
from .acl import AccessControlList, EVERYONE


class _Unset:
    """Sentinel for 'never written'. Single instance, falsy, prints as UNSET."""

    _instance: "_Unset | None" = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "UNSET"


UNSET = _Unset()


class StickyRegister(SharedObject):
    """Write-once register.

    ``owner`` restricts who may attempt the write; pass ``None`` for a
    multi-writer sticky register (anyone may attempt; first write wins —
    the classic sticky-bit semantics from the universality constructions).
    """

    def __init__(self, name: str, owner: ProcessId | None = None) -> None:
        super().__init__(name)
        self.owner = owner
        if owner is None:
            self._acl = AccessControlList({"write": EVERYONE, "read": EVERYONE,
                                           "is_set": EVERYONE})
        else:
            self._acl = AccessControlList.single_writer(
                owner, write_ops=("write",), read_ops=("read", "is_set")
            )
        self._value: Any = UNSET
        self.first_writer: ProcessId | None = None

    def check_access(self, pid: ProcessId, op: str, args: tuple) -> None:
        self._acl.enforce(pid, self.name, op)

    def op_write(self, pid: ProcessId, value: Any) -> bool:
        """Set the value if still unset. Returns whether this write took effect."""
        if self._value is UNSET:
            self._value = value
            self.first_writer = pid
            return True
        return False

    def op_read(self, pid: ProcessId) -> Any:
        return self._value

    def op_is_set(self, pid: ProcessId) -> bool:
        return self._value is not UNSET


class StickyBit(StickyRegister):
    """Sticky register over the domain {0, 1}."""

    def op_write(self, pid: ProcessId, value: Any) -> bool:
        if value not in (0, 1):
            raise ConfigurationError(
                f"sticky bit {self.name!r} accepts only 0 or 1, got {value!r}"
            )
        return super().op_write(pid, value)


def sticky_array(n: int, prefix: str = "sticky") -> list[StickyRegister]:
    """One per-process sticky register (owner i writes ``sticky{i}``)."""
    return [StickyRegister(f"{prefix}{i}", owner=i) for i in range(n)]
