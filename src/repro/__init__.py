"""repro — reproduction of *Classifying Trusted Hardware via Unidirectional
Communication* (Ben-David & Nayak, PODC 2021).

The library simulates the trusted-hardware landscape the paper classifies:

- ``repro.sim`` — deterministic discrete-event simulator (asynchronous
  message passing, asynchronous shared memory, adversaries, faults).
- ``repro.crypto`` — simulated unforgeable transferable signatures.
- ``repro.hardware`` — the hardware zoo: TrInc, A2M, SGX-like enclaves,
  SWMR registers, sticky bits, PEATS, all ACL-guarded.
- ``repro.core`` — the paper's contribution: unidirectional rounds,
  sequenced reliable broadcast, the constructions between them, the
  separation scenarios, and the executable Figure-1 classification.
- ``repro.broadcast`` / ``repro.agreement`` — the problem zoo the
  classification is measured against.
- ``repro.consensus`` — MinBFT (trusted-hardware BFT, n ≥ 2f+1) and a
  PBFT baseline (n ≥ 3f+1), with clients and safety checkers.
- ``repro.faults`` — fault injection: lossy/chaotic adversaries, the
  reliable-channel retransmission layer, crash-recovery scripts, and the
  seeded chaos harness.

Quickstart: see ``examples/quickstart.py``.
"""

from __future__ import annotations

__version__ = "1.0.0"

# Headline entry points, re-exported for discoverability. Subpackages stay
# the canonical import path; these cover the quickstart surface.
from .core import (  # noqa: E402
    build_sm_srb_system,
    check_directionality,
    check_srb,
    render_figure,
    run_classification,
    run_srb_separation,
)
from .consensus import build_minbft_system, build_pbft_system, check_replication  # noqa: E402
from .faults import ChaosAdversary, chaos_sweep, run_chaos, wrap_reliable  # noqa: E402
from .sim import Simulation  # noqa: E402

__all__ = [
    "ChaosAdversary",
    "Simulation",
    "__version__",
    "build_minbft_system",
    "build_pbft_system",
    "build_sm_srb_system",
    "chaos_sweep",
    "check_directionality",
    "check_replication",
    "check_srb",
    "render_figure",
    "run_chaos",
    "run_classification",
    "run_srb_separation",
]
