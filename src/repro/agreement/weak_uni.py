"""Weak validity agreement with n ≥ 2f+1 from non-equivocation hardware.

The draft claims weak validity agreement is solvable with unidirectional
communication at ``n >= 2f+1`` (via Aguilera et al.'s register protocols /
Clement et al.'s non-equivocation transformation). We realize it through
the library's own chain of results: unidirectionality ⇒ SRB (Algorithm 1)
⇒ TrInc interface (Theorem 1) ⇒ MinBFT at n = 2f+1 — and bind a one-shot
agreement interface on top of the MinBFT engine:

- every process doubles as a client of the replica group it belongs to,
  submitting its *input* as a signed request;
- the value carried by the **first committed slot** is the decision;
- agreement follows from replication order safety; termination from MinBFT
  liveness under partial synchrony; weak validity because with *all*
  processes correct and a common input ``v``, every submitted request
  carries ``v``, so slot 1 does.

(As everywhere in the classification, liveness needs partial synchrony —
FLP forbids deterministic asynchronous agreement; the paper's solvability
claims inherit the same caveat.)
"""

from __future__ import annotations

from typing import Any, Optional

from ..consensus.minbft import MinBFTReplica, REQUEST, request_domain
from ..types import SeqNum


class WeakAgreementProcess(MinBFTReplica):
    """A MinBFT replica that proposes its own input and decides on slot 1."""

    def __init__(self, *args: Any, my_input: Any = None, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.my_input = my_input
        self.decision: Optional[Any] = None

    def on_start(self) -> None:
        self.ctx.record("custom", event="input", value=self.my_input)
        op = ("propose", self.my_input)
        sig = self.signer.sign(request_domain(self.pid, 1, op))
        self.ctx.broadcast((REQUEST, self.pid, 1, op, sig), include_self=True)

    def on_execute(self, seq: SeqNum, request: Any, result: Any) -> None:
        if seq == 1 and self.decision is None:
            op = request[3]
            value = op[1] if isinstance(op, tuple) and len(op) == 2 else op
            self.decision = value
            self.ctx.decide(value)


def build_weak_agreement_system(
    f: int,
    inputs: list[Any],
    seed: int = 0,
    adversary: Any = None,
    req_timeout: float = 30.0,
):
    """n = 2f+1 WeakAgreementProcess system, one input per process.

    Returns ``(sim, processes)``.
    """
    from ..consensus.harness import build_minbft_system
    from ..errors import ConfigurationError

    n = 2 * f + 1
    if len(inputs) != n:
        raise ConfigurationError(
            f"need exactly n = {n} inputs, got {len(inputs)}"
        )

    def factory(pid: int, **kwargs: Any) -> WeakAgreementProcess:
        return WeakAgreementProcess(my_input=inputs[pid], **kwargs)

    sim, replicas, _clients = build_minbft_system(
        f=f,
        n_clients=0,
        app="noop",
        seed=seed,
        adversary=adversary,
        req_timeout=req_timeout,
        replica_factory=factory,
    )
    return sim, replicas
