"""The upper separation: unidirectionality cannot solve strong validity
agreement at n ≤ 3f (draft Claim `clm:unidirSBA`, after Malkhi et al.).

Together with :mod:`repro.agreement.strong_sync` (synchrony solves it at
n ≥ 2f+1 via Dolev–Strong) this separates **bidirectional** from
**unidirectional** communication — the top edge of Figure 1.

Executable form, at n = 3, f = 1 against the canonical candidate
(exchange inputs in one unidirectional round, commit the majority of
values seen):

- **World 1** — p2 Byzantine claims input 0; correct p0, p1 both hold 0.
  Strong validity forces both to commit **0**.
- **World 2** — p0 Byzantine claims input 1; correct p1, p2 both hold 1.
  Strong validity forces commitment of **1**.
- **World 3** — p1 and p0 correct with inputs 0 and 1; p2 Byzantine
  *equivocates*: shows input 0 to p0 and input 1 to p1. The schedule
  delivers p1's message to p0 (so the round is unidirectional for the
  pair) but withholds p0 → p1 within the round. Then p0's view matches a
  World-1-like run (majority 0) and p1's matches World 2 (unanimous 1):
  p0 commits 0, p1 commits 1 — **agreement violated**, while every round
  obligation of unidirectionality is honored.

The equivocation is possible because *inputs are the Byzantine process's
own claims* — no non-equivocation mechanism constrains what a process
asserts about itself, and unidirectionality only guarantees message flow,
not consistency. Under bidirectional rounds the same schedule is illegal
(p1 would have received p0's 0 and detected the conflict), which is
exactly why Dolev–Strong survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..core.directionality import DirectionalityReport, check_directionality
from ..core.rounds import Label, RoundProcess, TimedRoundTransport, ROUND_MSG
from ..errors import PropertyViolation
from ..sim.adversary import LinkRule, ScriptedAdversary
from ..sim.runner import Simulation
from ..types import ProcessId
from .definitions import AgreementReport, STRONG, check_agreement

ROUND_LABEL = "sva"


class MajorityCandidate(RoundProcess):
    """The canonical strong-agreement candidate over one unidirectional round.

    Sends its input; at round end commits the majority of values seen
    (own value breaks ties). Any deterministic one-round rule meets the
    same fate; this one makes the forced decisions explicit.
    """

    def __init__(self, transport: TimedRoundTransport, my_input: Any) -> None:
        super().__init__(transport)
        self.my_input = my_input
        self._seen: list[Any] = []
        self._committed = False

    def on_round_start(self) -> None:
        self.ctx.record("custom", event="input", value=self.my_input)
        self._seen.append(self.my_input)
        self.rounds.begin_round(self.my_input, ROUND_LABEL)

    def on_round_message(self, label: Label, src: ProcessId, payload: Any) -> None:
        if label == ROUND_LABEL and src != self.pid:
            self._seen.append(payload)

    def on_round_complete(self, label: Label) -> None:
        if label != ROUND_LABEL or self._committed:
            return
        self._committed = True
        counts: list[tuple[Any, int]] = []
        for v in self._seen:
            for i, (w, c) in enumerate(counts):
                if w == v:
                    counts[i] = (w, c + 1)
                    break
            else:
                counts.append((v, 1))
        best = max(c for _v, c in counts)
        winners = [v for v, c in counts if c == best]
        value = self.my_input if self.my_input in winners else winners[0]
        self.ctx.decide(value)


class EquivocatingInput(RoundProcess):
    """Byzantine p2: claims input 0 to p0 and input 1 to p1, echoes nothing."""

    def on_round_start(self) -> None:
        self.ctx.send(0, (ROUND_MSG, ROUND_LABEL, 0))
        self.ctx.send(1, (ROUND_MSG, ROUND_LABEL, 1))


@dataclass(slots=True)
class StrongWorldsOutcome:
    world1: AgreementReport
    world2: AgreementReport
    world3: AgreementReport
    directionality3: DirectionalityReport
    p0_view_matches_w1: bool
    p1_view_matches_w2: bool

    @property
    def impossibility_demonstrated(self) -> bool:
        return (
            self.world1.ok
            and self.world2.ok
            and bool(self.world3.agreement_violations)
            and self.directionality3.is_unidirectional
            and self.p0_view_matches_w1
            and self.p1_view_matches_w2
        )

    def assert_holds(self) -> None:
        if not self.impossibility_demonstrated:
            raise PropertyViolation(
                "strong-validity-uni-impossibility",
                f"w1_ok={self.world1.ok} w2_ok={self.world2.ok} "
                f"w3_violated={bool(self.world3.agreement_violations)} "
                f"uni_in_w3={self.directionality3.is_unidirectional} "
                f"views={self.p0_view_matches_w1}/{self.p1_view_matches_w2}",
            )


def _run_world(world: int, seed: int, wait: float = 2.0,
               horizon: float = 60.0):
    """Build one of the three worlds; returns (sim, correct, inputs)."""
    # Messages between p0 and p1: the round obligation needs only ONE
    # direction; withhold p0 -> p1 in every world so the views line up.
    adversary = ScriptedAdversary(base_delay=0.05).add_rule(
        LinkRule([0], [1], None)
    )
    t = lambda: TimedRoundTransport(wait=wait)
    if world == 1:
        # p2 Byzantine but *claims 0 consistently*; correct p0, p1 hold 0…
        # except p1's view must match world 3, where p1 believes it holds 1.
        # The forced-decision world for p0 is: inputs p0=0, p1(Byz)=1, p2=0.
        procs = [MajorityCandidate(t(), 0), MajorityCandidate(t(), 1),
                 MajorityCandidate(t(), 0)]
        byz = [1]
        inputs = {0: 0, 1: 1, 2: 0}
    elif world == 2:
        # forced-decision world for p1: inputs p0(Byz)=0, p1=1, p2=1.
        procs = [MajorityCandidate(t(), 0), MajorityCandidate(t(), 1),
                 MajorityCandidate(t(), 1)]
        byz = [0]
        inputs = {0: 0, 1: 1, 2: 1}
    else:
        procs = [MajorityCandidate(t(), 0), MajorityCandidate(t(), 1),
                 EquivocatingInput(t())]
        byz = [2]
        inputs = {0: 0, 1: 1, 2: None}
    sim = Simulation(procs, adversary, seed=seed)
    for pid in byz:
        sim.declare_byzantine(pid)
    sim.run(until=horizon)
    correct = [p for p in range(3) if p not in byz]
    return sim, correct, inputs


def run_strong_validity_impossibility(seed: int = 0) -> StrongWorldsOutcome:
    """Execute the three worlds at n = 3, f = 1 and verify the contradiction.

    World 1 forces p0's commit to 0 (strong validity binds the correct set
    {p0, p2}, both holding 0); World 2 forces p1's to 1; World 3 is
    indistinguishable to p0 from World 1 and to p1 from World 2, satisfies
    unidirectionality, and splits them.
    """
    sim1, correct1, inputs1 = _run_world(1, seed)
    rep1 = check_agreement(sim1.trace, STRONG, inputs1, correct1,
                           all_correct=False)
    sim2, correct2, inputs2 = _run_world(2, seed)
    rep2 = check_agreement(sim2.trace, STRONG, inputs2, correct2,
                           all_correct=False)
    sim3, correct3, inputs3 = _run_world(3, seed)
    rep3 = check_agreement(sim3.trace, STRONG, inputs3, correct3,
                           all_correct=False, expect_termination=True)
    dir3 = check_directionality(sim3.trace, correct3)
    return StrongWorldsOutcome(
        world1=rep1,
        world2=rep2,
        world3=rep3,
        directionality3=dir3,
        p0_view_matches_w1=sim3.trace.local_view(0) == sim1.trace.local_view(0),
        p1_view_matches_w2=sim3.trace.local_view(1) == sim2.trace.local_view(1),
    )
