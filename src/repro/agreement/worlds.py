"""World-based impossibility demonstrations for the agreement zoo.

The draft proves *"reliable broadcast cannot solve very weak Byzantine
agreement with n ≤ 2f"* by a five-world partitioning argument. As with the
§4.1 separation, we execute the worlds against a concrete candidate and
audit both the forced commits and the indistinguishabilities.

The candidate (:class:`QuorumVWA`) is the canonical fault-tolerant design:
exchange inputs over reliable broadcast, wait for values from ``n - f``
distinct processes (more could block forever on the faulty set), commit
the value if all match, else ⊥. Over *unidirectional* rounds the same
decision rule is exactly the draft's correct protocol — here, over RB at
``n = 2f``, the worlds force it into an agreement violation:

- **World 1**: Q crashed, P has input 0 ⇒ P must terminate on P alone.
- **World 2**: all correct, all input 0, P⇄Q delayed ⇒ indistinguishable
  to P from World 1, and weak validity forces P to commit **0**.
- **Worlds 3, 4**: mirror images with input 1 for Q.
- **World 5**: P has 0, Q has 1, cross-messages delayed ⇒ P sees World 2,
  Q sees World 4 ⇒ P commits 0, Q commits 1 — **agreement violated**.

(The candidate cannot dodge by committing ⊥ "when it hears nobody else":
in Worlds 2 and 4 everyone is correct and shares an input, so weak
validity forbids ⊥ — the runner asserts that too.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..broadcast.definitions import BOT
from ..errors import ConfigurationError, PropertyViolation
from ..sim.partition import split
from ..sim.process import Process
from ..sim.runner import Simulation
from ..types import ProcessId, ProcessSet
from .definitions import AgreementReport, VERY_WEAK, check_agreement
from ..core.srb_oracle import SRBOracle, SRBSenderHandle

IMMEDIATE = 0.05


class QuorumVWA(Process):
    """Very-weak-agreement candidate over reliable broadcast (n-f quorum).

    Broadcast own input; upon values from ``n - f`` distinct streams,
    commit the common value if unanimous, else ⊥.
    """

    def __init__(self, oracle: SRBOracle, f: int, my_input: Any) -> None:
        super().__init__()
        self.oracle = oracle
        self.f = f
        self.my_input = my_input
        self._values: dict[ProcessId, Any] = {}
        self._handle: Optional[SRBSenderHandle] = None
        self._committed = False

    def on_start(self) -> None:
        self.ctx.record("custom", event="input", value=self.my_input)
        self.oracle.subscribe(self.pid, self._on_deliver)
        self._handle = self.oracle.sender_handle(self.pid)
        self._handle.broadcast(("VWA", self.my_input))

    def _on_deliver(self, src: ProcessId, seq: int, value: Any) -> None:
        if self._committed:
            return
        if not (isinstance(value, tuple) and len(value) == 2 and value[0] == "VWA"):
            return
        if src not in self._values:
            self._values[src] = value[1]
        if len(self._values) >= self.ctx.n - self.f:
            self._committed = True
            vals = list(self._values.values())
            unanimous = all(v == vals[0] for v in vals)
            self.ctx.decide(vals[0] if unanimous else BOT)


@dataclass(slots=True)
class WorldResult:
    name: str
    sim: Simulation
    report: AgreementReport

    def view(self, pid: ProcessId) -> tuple:
        return self.sim.trace.local_view(pid)


@dataclass(slots=True)
class VWAImpossibilityOutcome:
    """All five worlds plus the verdicts the proof requires."""

    f: int
    sets: dict[str, ProcessSet]
    worlds: dict[int, WorldResult]
    p_commits_0_in_w2: bool
    q_commits_1_in_w4: bool
    world5_agreement_violated: bool
    ind_p_w2_w5: bool
    ind_q_w4_w5: bool
    ind_p_w1_w2: bool
    ind_q_w3_w4: bool

    @property
    def impossibility_demonstrated(self) -> bool:
        return (
            self.p_commits_0_in_w2
            and self.q_commits_1_in_w4
            and self.world5_agreement_violated
            and self.ind_p_w2_w5
            and self.ind_q_w4_w5
            and self.ind_p_w1_w2
            and self.ind_q_w3_w4
        )

    def assert_holds(self) -> None:
        if not self.impossibility_demonstrated:
            raise PropertyViolation(
                "vwa-rb-impossibility",
                f"p0_w2={self.p_commits_0_in_w2} q1_w4={self.q_commits_1_in_w4} "
                f"w5_violation={self.world5_agreement_violated} "
                f"ind={self.ind_p_w2_w5}/{self.ind_q_w4_w5}/"
                f"{self.ind_p_w1_w2}/{self.ind_q_w3_w4}",
            )


def _world_config(world: int, f: int, sets: dict[str, ProcessSet]):
    """Inputs, crash set, and delay policy of one world — shared by the
    seeded runner and the exhaustive one."""
    n = 2 * f
    p_set, q_set = sets["P"], sets["Q"]

    def cross_delayed(s: ProcessId, r: ProcessId) -> bool:
        return (s in p_set) != (r in p_set)

    def policy(s, r, seq, now):
        if world in (2, 4, 5) and cross_delayed(s, r):
            return None  # "arbitrarily delayed" for the whole run
        return IMMEDIATE

    if world in (1, 2):
        inputs = {pid: 0 for pid in range(n)}
    elif world in (3, 4):
        inputs = {pid: 1 for pid in range(n)}
    elif world == 5:
        inputs = {pid: (0 if pid in p_set else 1) for pid in range(n)}
    else:  # pragma: no cover
        raise ConfigurationError(f"no world {world}")

    crashed: set[ProcessId] = set()
    if world == 1:
        crashed = set(q_set)
    elif world == 3:
        crashed = set(p_set)
    return inputs, crashed, policy


def _build_world(
    world: int, f: int, sets: dict[str, ProcessSet], seed: int
) -> tuple[Simulation, dict[ProcessId, Any], set[ProcessId]]:
    n = 2 * f
    inputs, crashed, policy = _world_config(world, f, sets)
    oracle = SRBOracle(policy=policy, seed=seed)
    procs = [QuorumVWA(oracle, f, inputs[pid]) for pid in range(n)]
    sim = Simulation(procs, seed=seed)
    oracle.bind(sim)
    for pid in crashed:
        sim.declare_byzantine(pid)
        sim.crash(pid)
    return sim, inputs, crashed


def _run_world(
    world: int,
    f: int,
    sets: dict[str, ProcessSet],
    seed: int,
    horizon: float,
) -> WorldResult:
    n = 2 * f
    sim, inputs, crashed = _build_world(world, f, sets, seed)
    sim.run(until=horizon)
    correct = [pid for pid in range(n) if pid not in crashed]
    report = check_agreement(
        sim.trace,
        VERY_WEAK,
        inputs,
        correct,
        all_correct=not crashed,
        expect_termination=False,  # audited explicitly below
    )
    return WorldResult(name=f"world{world}", sim=sim, report=report)


def run_vwa_rb_impossibility(
    f: int = 2, seed: int = 0, horizon: float = 200.0
) -> VWAImpossibilityOutcome:
    """Execute the five worlds at ``n = 2f`` and verify the contradiction."""
    if f < 1:
        raise ConfigurationError(f"f must be >= 1, got {f}")
    n = 2 * f
    sets = split(n, [f, f], ["P", "Q"])
    worlds = {w: _run_world(w, f, sets, seed, horizon) for w in (1, 2, 3, 4, 5)}
    p_set, q_set = sets["P"], sets["Q"]

    w1, w2, w3, w4, w5 = (worlds[i] for i in (1, 2, 3, 4, 5))
    p_commits_0 = all(w2.report.commits.get(pid) == 0 for pid in p_set)
    q_commits_1 = all(w4.report.commits.get(pid) == 1 for pid in q_set)
    w5_p = [w5.report.commits.get(pid) for pid in p_set]
    w5_q = [w5.report.commits.get(pid) for pid in q_set]
    violated = any(v == 0 for v in w5_p) and any(v == 1 for v in w5_q)

    return VWAImpossibilityOutcome(
        f=f,
        sets=sets,
        worlds=worlds,
        p_commits_0_in_w2=p_commits_0,
        q_commits_1_in_w4=q_commits_1,
        world5_agreement_violated=violated,
        ind_p_w2_w5=all(w5.view(pid) == w2.view(pid) for pid in p_set),
        ind_q_w4_w5=all(w5.view(pid) == w4.view(pid) for pid in q_set),
        ind_p_w1_w2=all(w1.view(pid) == w2.view(pid) for pid in p_set),
        ind_q_w3_w4=all(w3.view(pid) == w4.view(pid) for pid in q_set),
    )


# ---------------------------------------------------------------------------
# Exhaustive (model-checked) five-world argument
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class ExhaustiveVWAOutcome:
    """The five-world contradiction checked over every delivery order.

    ``explorations`` maps world number to its
    :class:`~repro.mc.explorer.ExplorationResult`; ``problems`` lists every
    failed obligation with the replayable schedule id of the leaf.
    """

    f: int
    sets: dict[str, ProcessSet]
    explorations: dict[int, Any]
    problems: list[str]

    @property
    def schedules(self) -> int:
        return sum(r.schedules for r in self.explorations.values())

    @property
    def complete(self) -> bool:
        return all(r.complete for r in self.explorations.values())

    @property
    def impossibility_demonstrated(self) -> bool:
        return not self.problems

    def assert_holds(self) -> None:
        if self.problems:
            raise PropertyViolation(
                "vwa-rb-impossibility-exhaustive", "; ".join(self.problems)
            )


def run_vwa_rb_impossibility_exhaustive(
    f: int = 2,
    seed: int = 0,
    *,
    dpor: bool = True,
    max_schedules: Optional[int] = None,
    max_reported: int = 4,
) -> ExhaustiveVWAOutcome:
    """The five worlds at ``n = 2f``, quantified over all delivery orders.

    Each world is model-checked to quiescence (the candidate's deliveries
    are the only choices; with ``dpor`` the per-receiver orders factor out,
    e.g. 16 schedules for world 5 at ``f = 2`` instead of 2520 naive). At
    every leaf the forced commits hold — P commits 0 wherever the proof
    forces it, Q commits 1, world 5 violates agreement — and across worlds
    the per-process view *sets* coincide per the indistinguishability
    pairs (P: world 1≡2≡5, Q: world 3≡4≡5).
    """
    from ..mc.explorer import explore
    from ..mc.schedule import schedule_id as _sid

    if f < 1:
        raise ConfigurationError(f"f must be >= 1, got {f}")
    n = 2 * f
    sets = split(n, [f, f], ["P", "Q"])
    p_set, q_set = sets["P"], sets["Q"]

    expected: dict[int, dict[ProcessId, Any]] = {
        1: {pid: 0 for pid in p_set},
        2: {pid: 0 for pid in range(n)},
        3: {pid: 1 for pid in q_set},
        4: {pid: 1 for pid in range(n)},
        5: {pid: (0 if pid in p_set else 1) for pid in range(n)},
    }
    views: dict[int, dict[ProcessId, set]] = {
        w: {p: set() for p in range(n)} for w in (1, 2, 3, 4, 5)
    }
    explorations: dict[int, Any] = {}
    problems: list[str] = []

    for world in (1, 2, 3, 4, 5):
        inputs, crashed, _policy = _world_config(world, f, sets)
        correct = [pid for pid in range(n) if pid not in crashed]
        reported = [0]

        def on_leaf(state, schedule, _w=world, _inputs=inputs,
                    _crashed=crashed, _correct=correct, _rep=reported):
            sim = state
            report = check_agreement(
                sim.trace, VERY_WEAK, _inputs, _correct,
                all_correct=not _crashed, expect_termination=False,
            )
            bad = {
                pid: report.commits.get(pid)
                for pid, want in expected[_w].items()
                if report.commits.get(pid) != want
            }
            if bad and _rep[0] < max_reported:
                _rep[0] += 1
                problems.append(
                    f"world{_w}: forced commits violated ({bad}) in "
                    f"schedule {_sid(schedule)}"
                )
            for pid in range(n):
                views[_w][pid].add(sim.trace.local_view(pid))

        explorations[world] = explore(
            lambda _w=world: _build_world(_w, f, sets, seed)[0],
            on_leaf=on_leaf,
            dpor=dpor,
            max_schedules=max_schedules,
        )

    if all(r.complete for r in explorations.values()):
        # view-set comparisons need the whole space; capped runs cover
        # different prefixes per world
        pairs = [
            ("P views distinguish world 2 from world 5", p_set, 2, 5),
            ("Q views distinguish world 4 from world 5", q_set, 4, 5),
            ("P views distinguish world 1 from world 2", p_set, 1, 2),
            ("Q views distinguish world 3 from world 4", q_set, 3, 4),
        ]
        for message, members, wa, wb in pairs:
            if not all(views[wa][pid] == views[wb][pid] for pid in members):
                problems.append(message)

    return ExhaustiveVWAOutcome(
        f=f, sets=sets, explorations=explorations, problems=problems
    )
