"""The agreement problem zoo and its possibility/impossibility witnesses.

=====================  ==========================  ===========================
problem                solvable with               not solvable with
=====================  ==========================  ===========================
very weak agreement    unidirectionality, n > f    reliable broadcast, n ≤ 2f
                       (:mod:`very_weak_uni`)      (:mod:`worlds`, 5 worlds)
weak validity          non-equivocation hardware,  classic asynchrony, n ≤ 3f
agreement              n ≥ 2f+1 (:mod:`weak_uni`)
strong validity        synchrony, n ≥ 2f+1         unidirectionality, n ≤ 3f
agreement              (:mod:`strong_sync`)
=====================  ==========================  ===========================
"""

from .definitions import (
    AgreementReport,
    AgreementStreamChecker,
    STRONG,
    VERY_WEAK,
    WEAK,
    check_agreement,
)
from .strong_sync import StrongAgreementProcess, build_strong_agreement_system
from .strong_worlds import (
    MajorityCandidate,
    StrongWorldsOutcome,
    run_strong_validity_impossibility,
)
from .very_weak_uni import VeryWeakAgreement
from .weak_uni import WeakAgreementProcess, build_weak_agreement_system
from .worlds import (
    QuorumVWA,
    VWAImpossibilityOutcome,
    run_vwa_rb_impossibility,
)

__all__ = [
    "AgreementReport",
    "AgreementStreamChecker",
    "MajorityCandidate",
    "QuorumVWA",
    "StrongWorldsOutcome",
    "run_strong_validity_impossibility",
    "STRONG",
    "StrongAgreementProcess",
    "VERY_WEAK",
    "VWAImpossibilityOutcome",
    "VeryWeakAgreement",
    "WEAK",
    "WeakAgreementProcess",
    "build_strong_agreement_system",
    "build_weak_agreement_system",
    "check_agreement",
    "run_vwa_rb_impossibility",
]
