"""Strong validity agreement under synchrony (bidirectional rounds), n ≥ 2f+1.

The top of the lattice: the draft notes that bidirectional communication
(lock-step synchrony) solves *strong* validity agreement with n ≥ 2f+1 —
which unidirectionality provably cannot at n ≤ 3f — via the classic
construction: every process Byzantine-broadcasts its input with
Dolev–Strong, then everyone decides the majority of the n (consistent)
outcomes.

- **agreement**: each DS instance delivers the same value at every correct
  process, so the n-vector of outcomes is identical everywhere;
- **strong validity**: with a common correct input ``v``, the ≥ n-f ≥ f+1
  correct instances all deliver ``v``; since n ≥ 2f+1, that is a strict
  majority — ⊥s and Byzantine values cannot outvote it;
- **termination**: f+2 lock-step rounds, unconditionally.

All n instances are multiplexed over one lock-step transport: a round
message is a tuple of per-instance signature-chain batches.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Optional

from ..broadcast.definitions import BOT
from ..broadcast.dolev_strong import ds_domain, validate_chain
from ..core.rounds import Label, LockStepRoundTransport, RoundProcess
from ..crypto.signatures import SignatureScheme, Signer
from ..errors import ConfigurationError
from ..types import ProcessId


class StrongAgreementProcess(RoundProcess):
    """n parallel Dolev–Strong instances + majority vote."""

    def __init__(
        self,
        transport: LockStepRoundTransport,
        n: int,
        f: int,
        scheme: SignatureScheme,
        signer: Signer,
        my_input: Any,
    ) -> None:
        super().__init__(transport)
        if n < 2 * f + 1:
            raise ConfigurationError(
                f"strong validity agreement needs n >= 2f+1 (got n={n}, f={f})"
            )
        self.n = n
        self.f = f
        self.scheme = scheme
        self.signer = signer
        self.my_input = my_input
        # per-instance (keyed by instance sender) extracted values
        self._extracted: dict[ProcessId, list[Any]] = {s: [] for s in range(n)}
        self._outbox: dict[ProcessId, list[tuple]] = {s: [] for s in range(n)}
        self._committed = False

    # -- round driving -----------------------------------------------------------

    def on_round_start(self) -> None:
        self.ctx.record("custom", event="input", value=self.my_input)
        sig = self.signer.sign(ds_domain(self.pid, self.my_input, ()))
        chain = (self.my_input, ((self.pid, sig),))
        self._note(self.pid, self.my_input)
        self._outbox[self.pid].append(chain)
        self._flush_round()

    def _flush_round(self) -> None:
        payload = tuple(
            (s, tuple(chains)) for s, chains in sorted(self._outbox.items()) if chains
        )
        for s in self._outbox:
            self._outbox[s] = []
        self.rounds.begin_round(payload)

    def on_round_complete(self, label: Label) -> None:
        if not isinstance(label, int):
            return
        if label <= self.f:
            self._flush_round()
        elif label == self.f + 1 and not self._committed:
            self._committed = True
            outcomes = []
            for s in range(self.n):
                vals = self._extracted[s]
                outcomes.append(vals[0] if len(vals) == 1 else BOT)
            counts = Counter(repr(v) for v in outcomes)
            best_repr, _ = max(counts.items(), key=lambda kv: (kv[1], kv[0]))
            value = next(v for v in outcomes if repr(v) == best_repr)
            self.ctx.decide(value)
            self.on_commit(value)

    def on_commit(self, value: Any) -> None:
        """Application hook."""

    # -- chain processing -----------------------------------------------------------

    def on_round_message(self, label: Label, src: ProcessId, payload: Any) -> None:
        if not isinstance(label, int) or not isinstance(payload, tuple):
            return
        for item in payload:
            if not (isinstance(item, tuple) and len(item) == 2):
                continue
            instance, chains = item
            if not isinstance(instance, int) or not (0 <= instance < self.n):
                continue
            if not isinstance(chains, tuple):
                continue
            for chain in chains:
                checked = validate_chain(self.scheme, instance, chain)
                if checked is None:
                    continue
                value, signers = checked
                if len(signers) < label:
                    continue
                if self._is_noted(instance, value) or self.pid in signers:
                    continue
                self._note(instance, value)
                if len(self._extracted[instance]) <= 2:
                    my_sig = self.signer.sign(
                        ds_domain(instance, value, signers)
                    )
                    self._outbox[instance].append(
                        (value, (*chain[1], (self.pid, my_sig)))
                    )

    def _is_noted(self, instance: ProcessId, value: Any) -> bool:
        return any(v == value for v in self._extracted[instance])

    def _note(self, instance: ProcessId, value: Any) -> None:
        if not self._is_noted(instance, value):
            self._extracted[instance].append(value)


def build_strong_agreement_system(
    n: int,
    f: int,
    inputs: list[Any],
    seed: int = 0,
    period: float = 2.0,
    delta: float = 1.0,
):
    """Lock-step StrongAgreementProcess system. Returns ``(sim, processes)``."""
    from ..sim.adversary import LockStepSynchronous
    from ..sim.runner import Simulation

    if len(inputs) != n:
        raise ConfigurationError(f"need exactly {n} inputs, got {len(inputs)}")
    scheme = SignatureScheme(n, seed=seed)
    procs = [
        StrongAgreementProcess(
            LockStepRoundTransport(period=period), n, f, scheme,
            scheme.signer(p), inputs[p],
        )
        for p in range(n)
    ]
    sim = Simulation(procs, LockStepSynchronous(delta=delta), seed=seed)
    return sim, procs
