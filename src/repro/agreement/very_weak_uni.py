"""Very weak agreement from one unidirectional round, n > f.

The draft's protocol and proof, executable::

    process p with input v:
        send v in the unidirectional round
        wait until the round ends
        if any received value v' != v:  commit ⊥
        else:                           commit v

Agreement up to ⊥ follows from unidirectionality: if correct p commits
``v ≠ ⊥``, every value p saw equals v; for any correct q, one of p/q
received the other's round message before its own round ended, so q saw
``v`` too and cannot commit any third value. Weak validity is immediate.

Note the resilience: **n > f** — there is no quorum anywhere, the round
itself carries all the strength. This is the cleanest demonstration that
unidirectionality is a real communication guarantee rather than a
counting argument.
"""

from __future__ import annotations

from typing import Any

from ..broadcast.definitions import BOT
from ..core.rounds import Label, RoundProcess, RoundTransport
from ..types import ProcessId


class VeryWeakAgreement(RoundProcess):
    """One process of the one-round very-weak-agreement protocol."""

    ROUND_LABEL = "vwa"

    def __init__(self, transport: RoundTransport, my_input: Any) -> None:
        super().__init__(transport)
        self.my_input = my_input
        self._saw_other = False
        self._committed = False

    def on_round_start(self) -> None:
        self.ctx.record("custom", event="input", value=self.my_input)
        self.rounds.begin_round(self.my_input, self.ROUND_LABEL)

    def on_round_message(self, label: Label, src: ProcessId, payload: Any) -> None:
        if label == self.ROUND_LABEL and payload != self.my_input:
            self._saw_other = True

    def on_round_complete(self, label: Label) -> None:
        if label != self.ROUND_LABEL or self._committed:
            return
        self._committed = True
        value = BOT if self._saw_other else self.my_input
        self.ctx.decide(value)
        self.on_commit(value)

    def on_commit(self, value: Any) -> None:
        """Application hook."""
