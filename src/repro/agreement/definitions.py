"""The agreement problem zoo (paper draft, "Problems Considered").

Three single-shot agreement variants, ordered by validity strength:

- **very weak agreement** — agreement *up to ⊥* (two correct commits are
  equal unless one is ⊥), termination, and weak validity;
- **weak validity agreement** — exact agreement, termination, weak
  validity (*if all processes are correct and share input v, commit v*);
- **strong validity agreement** — exact agreement, termination, strong
  validity (*if all correct processes share input v, commit v* — Byzantine
  inputs don't matter).

The classification uses these as separators: very weak is solvable with
unidirectionality at n > f but not with reliable broadcast at n ≤ 2f;
weak needs n ≥ 2f+1 with unidirectionality (and n ≥ 3f+1 without); strong
is impossible at n ≤ 3f even with unidirectionality, yet synchrony solves
it at n ≥ 2f+1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..errors import PropertyViolation
from ..sim.trace import DECIDE, Trace, TraceEvent, TraceObserver
from ..types import ProcessId
from ..broadcast.definitions import BOT

VERY_WEAK = "very-weak-agreement"
WEAK = "weak-validity-agreement"
STRONG = "strong-validity-agreement"


@dataclass(slots=True)
class AgreementReport:
    """Audit of one single-shot agreement execution."""

    variant: str
    commits: dict[ProcessId, Any] = field(default_factory=dict)
    agreement_violations: list[str] = field(default_factory=list)
    validity_violations: list[str] = field(default_factory=list)
    termination_violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.agreement_violations
            or self.validity_violations
            or self.termination_violations
        )

    def all_violations(self) -> list[str]:
        return (
            [f"agreement: {v}" for v in self.agreement_violations]
            + [f"validity: {v}" for v in self.validity_violations]
            + [f"termination: {v}" for v in self.termination_violations]
        )

    def assert_ok(self) -> None:
        if not self.ok:
            raise PropertyViolation(self.variant, "; ".join(self.all_violations()[:3]))


class AgreementStreamChecker(TraceObserver):
    """Incremental single-shot-agreement state shared by batch and streaming.

    Collects the first commit of every correct process from ``decide``
    events. Pairwise disagreement is *permanent* the moment a second,
    conflicting commit arrives, so with ``fail_fast=True`` the checker
    raises at that exact event; validity and termination resolve at end of
    run in :meth:`finish`, which reproduces the pre-refactor batch report
    exactly.
    """

    def __init__(
        self,
        variant: str,
        inputs: Mapping[ProcessId, Any],
        correct: Iterable[ProcessId],
        all_correct: bool,
        expect_termination: bool = True,
        fail_fast: bool = False,
    ) -> None:
        if variant not in (VERY_WEAK, WEAK, STRONG):
            raise PropertyViolation(
                "agreement-checker", f"unknown variant {variant!r}"
            )
        self.variant = variant
        self.inputs = dict(inputs)
        self.correct = sorted(set(correct))
        self._correct_set = set(self.correct)
        self.all_correct = all_correct
        self.expect_termination = expect_termination
        self.fail_fast = fail_fast
        self.commits: dict[ProcessId, Any] = {}
        self.online_violations: list[tuple[int, str]] = []

    # -- streaming ---------------------------------------------------------

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind != DECIDE or ev.pid not in self._correct_set:
            return
        if ev.pid in self.commits:
            return  # only the first commit counts
        v = ev.field("value")
        self.commits[ev.pid] = v
        if not self.fail_fast:
            return
        up_to_bot = self.variant == VERY_WEAK
        for q, w in self.commits.items():
            if q == ev.pid:
                continue
            if up_to_bot and (v is BOT or w is BOT):
                continue
            if v != w:
                msg = (
                    f"process {q} committed {w!r} but process {ev.pid} "
                    f"committed {v!r}"
                )
                self.online_violations.append((ev.index, msg))
                raise PropertyViolation(
                    f"{self.variant}-stream",
                    f"event #{ev.index} (t={ev.time:g}): {msg}",
                )

    # -- batch feeding -----------------------------------------------------

    def consume(self, trace: Trace) -> "AgreementStreamChecker":
        """Feed a finished trace's ``decide`` events (index-backed)."""
        for ev in trace.events(DECIDE):
            self.on_event(ev)
        return self

    # -- final audit -------------------------------------------------------

    def finish(self) -> AgreementReport:
        """Audit the collected commits; identical to the pre-refactor scan."""
        report = AgreementReport(variant=self.variant)
        report.commits = dict(self.commits)
        committed = sorted(report.commits.items())
        inputs = self.inputs
        correct = self.correct

        # --- agreement ---------------------------------------------------------
        up_to_bot = self.variant == VERY_WEAK
        for i in range(len(committed)):
            for j in range(i + 1, len(committed)):
                p, v = committed[i]
                q, w = committed[j]
                if up_to_bot and (v is BOT or w is BOT):
                    continue
                if v != w:
                    report.agreement_violations.append(
                        f"process {p} committed {v!r} but process {q} committed {w!r}"
                    )

        # --- termination --------------------------------------------------------
        if self.expect_termination:
            for p in correct:
                if p not in report.commits:
                    report.termination_violations.append(
                        f"process {p} never committed"
                    )

        # --- validity ------------------------------------------------------------
        if self.variant in (VERY_WEAK, WEAK):
            same = len({repr(v) for v in inputs.values()}) == 1
            if self.all_correct and same and inputs:
                v = next(iter(inputs.values()))
                for p in correct:
                    if p in report.commits and report.commits[p] != v:
                        report.validity_violations.append(
                            f"all processes correct with input {v!r} but process {p} "
                            f"committed {report.commits[p]!r}"
                        )
        elif self.variant == STRONG:
            correct_inputs = [inputs[p] for p in correct if p in inputs]
            same = len({repr(v) for v in correct_inputs}) == 1
            if same and correct_inputs:
                v = correct_inputs[0]
                for p in correct:
                    if p in report.commits and report.commits[p] != v:
                        report.validity_violations.append(
                            f"all correct processes have input {v!r} but process {p} "
                            f"committed {report.commits[p]!r}"
                        )
        return report


def check_agreement(
    trace: Trace,
    variant: str,
    inputs: Mapping[ProcessId, Any],
    correct: Iterable[ProcessId],
    all_correct: bool,
    expect_termination: bool = True,
) -> AgreementReport:
    """Audit one agreement execution against the named variant's spec.

    ``inputs`` maps every process (correct and Byzantine) to its input;
    ``all_correct`` states whether *every* process followed the protocol
    (needed for weak validity, whose premise mentions all processes).
    """
    return (
        AgreementStreamChecker(
            variant,
            inputs,
            correct,
            all_correct,
            expect_termination=expect_termination,
        )
        .consume(trace)
        .finish()
    )
