"""Accountability forensics: convict equivocating hardware from the wire.

The classification's positive claim — non-equivocation hardware buys
safety at n = 2f+1 — has a converse the paper warns about: when the
hardware itself is compromised (forked counter, extracted key), safety
*falls*, silently, because every artifact the traitor emits still passes
the public verifiers. What survives is *accountability*: an uncompromised
trusted counter can never bind one counter value to two messages, so any
two verifying UIs at the same ``(replica, counter)`` with different
message digests are a self-contained, transferable **proof of
misbehavior** — no protocol state, no honest-majority assumption, just
the public verifier.

:class:`AccountabilityChecker` is a streaming observer on the simulation's
trace bus: it harvests every signed UI a delivered message carries
(top-level USIG wraps, the prepare UI embedded in every COMMIT,
view-change logs and checkpoint certificates, resync payloads),
cross-checks them by counter value, and on the first conflict emits a
:class:`ProofOfMisbehavior` and fires its conviction hook.
:func:`install_accountability` wires the hook to a recovery script:
quarantine the culprit and drive the surviving replicas through
:meth:`~repro.consensus.minbft.MinBFTReplica.convict` (evidence purge,
rollback to attested state, view change away from the culprit), restoring
a live, safe group in the same run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional

from ..crypto.serialize import content_hash
from ..types import ProcessId, SeqNum, Time
from ..sim.trace import DELIVER, TraceEvent, TraceObserver
from .minbft import (
    COMMIT,
    NEW_VIEW,
    PREPARE,
    RESYNC_INFO,
    USIG_WRAP,
    VIEW_CHANGE,
)
from .usig import ui_like

# Reliable-channel data frame tag (``repro.faults.channel.RC_DATA``),
# spelled literally here: consensus must not import the faults layer at
# module scope, but the checker observes the wire *below* the channel and
# has to look through retransmission framing.
_RC_DATA = "__rc_data__"

__all__ = [
    "AccountabilityChecker",
    "ProofOfMisbehavior",
    "install_accountability",
    "verify_proof",
]


@dataclass(frozen=True)
class ProofOfMisbehavior:
    """Two verifying UIs from one replica binding one counter to two
    different messages. Transferable: :func:`verify_proof` needs only the
    public :class:`~repro.consensus.usig.USIGVerifier`."""

    culprit: ProcessId
    counter: SeqNum
    first: tuple  # (message, ui)
    second: tuple  # (message, ui)

    def __repr__(self) -> str:
        return f"ProofOfMisbehavior(r{self.culprit}#{self.counter})"


def verify_proof(proof: Any, verifier: Any) -> bool:
    """Independently check a proof of misbehavior.

    True iff both UIs genuinely bind their messages to ``proof.culprit``'s
    counter ``proof.counter`` and the messages differ — which an
    uncompromised trusted counter can never produce. Never raises on
    malformed input.
    """
    if not isinstance(proof, ProofOfMisbehavior):
        return False
    try:
        halves = (proof.first, proof.second)
        digests = []
        for half in halves:
            if not (isinstance(half, tuple) and len(half) == 2):
                return False
            message, ui = half
            if not ui_like(ui) or ui.replica != proof.culprit:
                return False
            if ui.counter != proof.counter:
                return False
            if not verifier.verify_ui(ui, message, proof.culprit):
                return False
            digests.append(content_hash(message))
        return digests[0] != digests[1]
    except Exception:
        return False


class AccountabilityChecker(TraceObserver):
    """Streaming cross-check of every signed UI observed on the wire.

    Attach with ``sim.attach_observer`` (or replay a stored trace through
    it). For each delivered message it harvests all ``(message, ui)``
    bindings the message carries — including UIs embedded in COMMITs,
    view-change certificates/logs, NEW-VIEW bundles, and resync payloads —
    verifies them (memoized by the shared verifier, so the marginal cost
    per duplicate is a dict hit), and indexes them by
    ``(replica, counter)``. The first conflicting binding convicts:
    ``on_conviction(proof)`` fires once per culprit.

    UIs that fail verification are skipped, not convicted: a forged UI
    proves nothing about the replica it names (anyone can fabricate it);
    only *two verifying* bindings constitute evidence.
    """

    def __init__(
        self,
        verifier: Any,
        on_conviction: Optional[Callable[[ProofOfMisbehavior], None]] = None,
    ) -> None:
        self.verifier = verifier
        self.on_conviction = on_conviction
        self._seen: dict[tuple, tuple] = {}  # (replica, counter) -> (digest, message, ui)
        self.convicted: dict[ProcessId, ProofOfMisbehavior] = {}
        self.detected_at: dict[ProcessId, Time] = {}
        self.events_consumed = 0
        self.uis_checked = 0

    # -- observer interface -------------------------------------------------

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind != DELIVER:
            return
        self.events_consumed += 1
        msg = ev.field("msg")
        if isinstance(msg, tuple) and len(msg) == 4 and msg[0] == _RC_DATA:
            msg = msg[3]  # look through the retransmission frame
        for message, ui in self._harvest(msg):
            self._note(message, ui, ev.time)

    # -- harvesting ---------------------------------------------------------

    def _harvest(self, msg: Any) -> Iterator[tuple]:
        """Yield every ``(message, ui)`` binding ``msg`` carries."""
        if not (isinstance(msg, tuple) and msg and isinstance(msg[0], str)):
            return
        kind = msg[0]
        if kind == USIG_WRAP and len(msg) == 3:
            _, message, ui = msg
            yield message, ui
            yield from self._harvest_body(message)
        elif kind == RESYNC_INFO and len(msg) == 7:
            _, _peer, _nonce, _counter, nv, stable, _sig = msg
            if isinstance(nv, tuple) and len(nv) == 2:
                yield nv[0], nv[1]
                yield from self._harvest_body(nv[0])
            if isinstance(stable, tuple) and len(stable) == 3:
                yield from self._harvest_cert(stable[1])

    def _harvest_body(self, message: Any) -> Iterator[tuple]:
        """Bindings nested inside a USIG-signed protocol message."""
        if not (isinstance(message, tuple) and message
                and isinstance(message[0], str)):
            return
        kind = message[0]
        if kind == COMMIT and len(message) == 5:
            _, view, seq, request, prepare_ui = message
            # the embedded prepare UI re-binds the primary's PREPARE
            yield (PREPARE, view, seq, request), prepare_ui
        elif kind == VIEW_CHANGE and len(message) == 6:
            _, _nv, _base, cert, _blob, log = message
            yield from self._harvest_cert(cert)
            yield from self._harvest_log(log)
        elif kind == NEW_VIEW and len(message) == 3:
            bundle = message[2]
            if isinstance(bundle, tuple):
                for item in bundle:
                    if isinstance(item, tuple) and len(item) == 5:
                        _r, _base, cert, _blob, log = item
                        yield from self._harvest_cert(cert)
                        yield from self._harvest_log(log)

    def _harvest_cert(self, cert: Any) -> Iterator[tuple]:
        """Checkpoint certificates: (replica, message, ui) triples."""
        if not isinstance(cert, tuple):
            return
        for item in cert:
            if isinstance(item, tuple) and len(item) == 3:
                yield item[1], item[2]

    def _harvest_log(self, log: Any) -> Iterator[tuple]:
        """Sent-log excerpts: (message, ui) pairs, possibly nesting COMMITs."""
        if not isinstance(log, tuple):
            return
        for entry in log:
            if isinstance(entry, tuple) and len(entry) == 2:
                message, ui = entry
                yield message, ui
                yield from self._harvest_body(message)

    # -- evidence index -----------------------------------------------------

    def _note(self, message: Any, ui: Any, now: Time) -> None:
        if not ui_like(ui):
            return
        self.uis_checked += 1
        if not self.verifier.verify_ui(ui, message, ui.replica):
            return
        try:
            digest = content_hash(message)
        except Exception:
            return
        key = (ui.replica, ui.counter)
        prior = self._seen.get(key)
        if prior is None:
            self._seen[key] = (digest, message, ui)
            return
        if prior[0] == digest or ui.replica in self.convicted:
            return
        proof = ProofOfMisbehavior(
            culprit=ui.replica,
            counter=ui.counter,
            first=(prior[1], prior[2]),
            second=(message, ui),
        )
        self.convicted[ui.replica] = proof
        self.detected_at[ui.replica] = now
        if self.on_conviction is not None:
            self.on_conviction(proof)

    def stats(self) -> dict:
        return {
            "events_consumed": self.events_consumed,
            "uis_checked": self.uis_checked,
            "distinct_bindings": len(self._seen),
            "convicted": sorted(self.convicted),
        }


def _bare_replica(proc: Any) -> Any:
    """Strip wrapper layers (reliable channel, Byzantine wrappers)."""
    seen = 0
    while hasattr(proc, "inner") and seen < 4:
        proc = proc.inner
        seen += 1
    return proc


def install_accountability(
    sim: Any,
    replicas: Iterable[Any],
    verifier: Any,
    recover: bool = True,
    delay: float = 5.0,
    on_conviction: Optional[Callable[[ProofOfMisbehavior], None]] = None,
) -> AccountabilityChecker:
    """Attach an :class:`AccountabilityChecker` wired to a recovery script.

    On conviction the culprit is immediately marked Byzantine for the
    checkers; ``delay`` time units later (letting in-flight damage land —
    the soak asserts red-then-recovered in one run) it is quarantined
    (crashed, so the transport drops it) and every surviving replica that
    implements ``convict`` purges the culprit's influence, rolls back to
    its last attested state, and helps re-form the group without it.
    """
    replica_pids = [
        pid for pid, r in enumerate(replicas)
        if hasattr(_bare_replica(r), "convict")
    ]

    def _handle(proof: ProofOfMisbehavior) -> None:
        culprit = proof.culprit
        sim.declare_byzantine(culprit)
        if recover:
            def _quarantine() -> None:
                sim.crash(culprit)
                # resolve survivors from the simulation *now*: a restart may
                # have replaced the instances installed at wiring time
                for pid in replica_pids:
                    if pid == culprit:
                        continue
                    rep = _bare_replica(sim.process(pid))
                    if hasattr(rep, "convict"):
                        rep.convict(culprit)

            sim.at(sim.now + delay, _quarantine, label="forensic-quarantine")
        if on_conviction is not None:
            on_conviction(proof)

    checker = AccountabilityChecker(verifier, on_conviction=_handle)
    sim.attach_observer(checker)
    return checker
