"""Trusted-hardware BFT replication (MinBFT) and its classic baseline (PBFT).

The quantitative side of the paper's motivation: non-equivocation hardware
raises fault tolerance from n ≥ 3f+1 to n ≥ 2f+1 and removes a message
round. Components:

- :class:`~repro.consensus.usig.USIG` — MinBFT's trusted monotonic counter
  service, a shim over :class:`~repro.hardware.trinc.Trinket`.
- :class:`~repro.consensus.minbft.MinBFTReplica` — 2f+1 replication with
  the tamper-evident-log view change.
- :class:`~repro.consensus.pbft.PBFTReplica` — the 3f+1 baseline.
- :class:`~repro.consensus.client.BFTClient`, app state machines, safety
  checkers, and :mod:`~repro.consensus.harness` system builders.
"""

from .apps import APP_FACTORIES, BankApp, CounterApp, KVStoreApp, StateMachine, make_app
from .batching import AdaptiveBatchPolicy, FixedBatchPolicy, make_batch_policy
from .client import BFTClient
from .dedup import ClientDedup
from .enclave_usig import EnclaveUI, EnclaveUSIG, EnclaveUSIGVerifier, usig_program
from .forensics import (
    AccountabilityChecker,
    ProofOfMisbehavior,
    install_accountability,
    verify_proof,
)
from .harness import build_minbft_system, build_pbft_system, default_workload
from .minbft import MinBFTReplica
from .pbft import PBFTReplica
from .safety import (
    Execution,
    LivenessReport,
    ReplicationLivenessChecker,
    ReplicationReport,
    ReplicationStreamChecker,
    check_replication,
    check_replication_liveness,
)
from .usig import UI, UIOrderEnforcer, USIG, USIGVerifier
from .viewchange import LogEntry, SlotCandidate, compute_reproposals, verify_log

__all__ = [
    "APP_FACTORIES",
    "AccountabilityChecker",
    "AdaptiveBatchPolicy",
    "BFTClient",
    "BankApp",
    "ClientDedup",
    "CounterApp",
    "FixedBatchPolicy",
    "EnclaveUI",
    "EnclaveUSIG",
    "EnclaveUSIGVerifier",
    "Execution",
    "KVStoreApp",
    "LivenessReport",
    "LogEntry",
    "MinBFTReplica",
    "PBFTReplica",
    "ProofOfMisbehavior",
    "ReplicationLivenessChecker",
    "ReplicationReport",
    "ReplicationStreamChecker",
    "SlotCandidate",
    "StateMachine",
    "UI",
    "UIOrderEnforcer",
    "USIG",
    "USIGVerifier",
    "build_minbft_system",
    "build_pbft_system",
    "check_replication",
    "check_replication_liveness",
    "compute_reproposals",
    "default_workload",
    "install_accountability",
    "make_app",
    "make_batch_policy",
    "usig_program",
    "verify_proof",
    "verify_log",
]
