"""MinBFT view-change evidence: tamper-evident USIG message logs.

MinBFT's view change survives ``n = 2f+1`` because of a property unique to
the trusted-hardware setting: a replica's VIEW-CHANGE message carries its
**entire sent-message log**, and the log is *tamper-evident by gap
checking* — every message a replica ever sent consumed one consecutive
USIG counter value, and the VIEW-CHANGE itself carries the next counter,
so a log that omits or alters any past message cannot verify. A Byzantine
replica can stop talking, but it cannot rewrite its history.

That is what fixes the classic quorum-intersection gap: a committed
request has f+1 COMMITs and the new-view quorum has f+1 VIEW-CHANGEs, so
they may intersect in a *single, possibly Byzantine* replica — which is
harmless here, because even that replica's log must faithfully contain its
COMMIT.

This module holds the pure functions: log verification, and the
deterministic computation of the re-proposal set S that both the new
primary and every backup derive independently from the same f+1 logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..types import ProcessId, SeqNum
from .usig import UI, USIGVerifier, ui_like


@dataclass(frozen=True, slots=True)
class LogEntry:
    """One sent message with the UI that certified it."""

    message: tuple
    ui: UI


def verify_log_from(
    verifier: USIGVerifier,
    replica: ProcessId,
    log: Any,
    start_counter: SeqNum,
    end_counter: SeqNum,
) -> Optional[list[LogEntry]]:
    """Validate a sent-log suffix claimed by ``replica``.

    Checks every entry's UI and that counters run
    ``start_counter..end_counter-1`` with no gaps (``end_counter`` is the
    VIEW-CHANGE message's own UI counter; ``start_counter`` is 1 for a full
    log, or one past the replica's checkpointed counter after garbage
    collection). Returns the entries, or None if anything is off.
    """
    if not isinstance(log, tuple):
        return None
    if len(log) != end_counter - start_counter:
        return None
    entries: list[LogEntry] = []
    for i, raw in enumerate(log, start=start_counter):
        if not (isinstance(raw, tuple) and len(raw) == 2):
            return None
        message, ui = raw
        if not ui_like(ui) or ui.counter != i:
            return None
        if not verifier.verify_ui(ui, message, replica):
            return None
        entries.append(LogEntry(message=message, ui=ui))
    return entries


def verify_log(
    verifier: USIGVerifier,
    replica: ProcessId,
    log: Any,
    end_counter: SeqNum,
) -> Optional[list[LogEntry]]:
    """Validate a full sent-log (counters 1..end_counter-1, no gaps)."""
    return verify_log_from(verifier, replica, log, 1, end_counter)


def validate_checkpoint_cert(
    verifier: USIGVerifier,
    cert: Any,
    f: int,
) -> Optional[tuple[SeqNum, bytes, dict[ProcessId, SeqNum]]]:
    """Validate a stable-checkpoint certificate.

    ``cert`` is a tuple of ``(replica, ("CHECKPOINT", seq, digest), ui)``
    triples. Valid when at least ``f+1`` *distinct* replicas attested the
    same ``(seq, digest)``. Returns ``(seq, digest, {replica: ui_counter})``
    — the counters are what lets a verifier pin each replica's log base.
    """
    if not isinstance(cert, tuple) or len(cert) < f + 1:
        return None
    seq: Optional[SeqNum] = None
    digest: Optional[bytes] = None
    counters: dict[ProcessId, SeqNum] = {}
    for item in cert:
        if not (isinstance(item, tuple) and len(item) == 3):
            return None
        replica, message, ui = item
        if not (isinstance(message, tuple) and len(message) == 3
                and message[0] == "CHECKPOINT"):
            return None
        _, m_seq, m_digest = message
        if not isinstance(m_seq, int) or not isinstance(m_digest, bytes):
            return None
        if seq is None:
            seq, digest = m_seq, m_digest
        elif m_seq != seq or m_digest != digest:
            return None
        if replica in counters:
            return None
        if not ui_like(ui) or ui.replica != replica:
            return None
        if not verifier.verify_ui(ui, message, replica):
            return None
        counters[replica] = ui.counter
    if seq is None or len(counters) < f + 1:
        return None
    return seq, digest, counters


@dataclass(frozen=True, slots=True)
class SlotCandidate:
    """A (view, request) claim for one sequence slot, with its PREPARE UI."""

    view: int
    prepare_counter: SeqNum
    request: Any

    def beats(self, other: "SlotCandidate") -> bool:
        """Priority rule: higher view wins; within a view the *earlier*
        PREPARE (lower primary counter) wins — correct replicas accepted the
        UI-order-first PREPARE, so the later one can only have Byzantine
        support."""
        if self.view != other.view:
            return self.view > other.view
        return self.prepare_counter < other.prepare_counter


def extract_candidates(entries: list[LogEntry]) -> dict[SeqNum, SlotCandidate]:
    """Slot claims visible in one replica's log (its PREPAREs and COMMITs)."""
    out: dict[SeqNum, SlotCandidate] = {}

    def offer(seq: SeqNum, cand: SlotCandidate) -> None:
        cur = out.get(seq)
        if cur is None or cand.beats(cur):
            out[seq] = cand

    for entry in entries:
        m = entry.message
        if not (isinstance(m, tuple) and m and isinstance(m[0], str)):
            continue
        if m[0] == "PREPARE" and len(m) == 4:
            _, view, seq, request = m
            if isinstance(view, int) and isinstance(seq, int):
                offer(seq, SlotCandidate(view, entry.ui.counter, request))
        elif m[0] == "COMMIT" and len(m) == 5:
            _, view, seq, request, prepare_ui = m
            if (
                isinstance(view, int)
                and isinstance(seq, int)
                and ui_like(prepare_ui)
            ):
                offer(seq, SlotCandidate(view, prepare_ui.counter, request))
    return out


def compute_reproposals(
    logs: dict[ProcessId, list[LogEntry]],
) -> dict[SeqNum, SlotCandidate]:
    """The deterministic re-proposal set S from f+1 verified logs.

    For each slot, the best candidate under :meth:`SlotCandidate.beats`
    across all logs. Both the new primary and every backup compute this
    from the same VIEW-CHANGE set and must agree; a NEW-VIEW whose proposals
    deviate is rejected.
    """
    merged: dict[SeqNum, SlotCandidate] = {}
    for entries in logs.values():
        for seq, cand in extract_candidates(entries).items():
            cur = merged.get(seq)
            if cur is None or cand.beats(cur):
                merged[seq] = cand
    return merged
