"""USIG — Unique Sequential Identifier Generator, on top of TrInc.

MinBFT's trusted service: ``createUI(m)`` assigns message ``m`` a *unique
identifier* ``UI = (counter, certificate)`` where the counter is unique,
monotonic, and **sequential** (no gaps) for each replica; ``verifyUI``
checks a UI against the issuing replica. The reproduction band's novelty
note ("trusted-hardware BFT rarely implemented") is this stack: USIG is a
thin shim over :class:`~repro.hardware.trinc.Trinket` — the trinket's
attest-with-consecutive-counters *is* the USIG contract, which is why the
paper groups TrInc/A2M/SGX in one class.

Receivers must additionally process each replica's messages in counter
order with no gaps; :class:`UIOrderEnforcer` provides the holdback queue
every MinBFT replica uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..crypto.serialize import (
    BoundedCache,
    caching_enabled,
    canonical_bytes,
    content_hash,
    type_fingerprint,
)
from ..errors import ConfigurationError
from ..hardware.trinc import Attestation, Trinket, TrincAuthority
from ..types import ProcessId, SeqNum


@dataclass(frozen=True, slots=True)
class UI:
    """A unique sequential identifier: replica's counter value + certificate."""

    replica: ProcessId
    counter: SeqNum
    attestation: Attestation

    def __repr__(self) -> str:
        return f"UI(r{self.replica}#{self.counter})"


def ui_like(x: Any) -> bool:
    """Structural check for 'some kind of UI' (TrInc- or enclave-backed).

    Protocols dispatch on this and leave authenticity to the verifier, so
    replicas with different hardware back-ends interoperate.
    """
    return (
        isinstance(getattr(x, "replica", None), int)
        and isinstance(getattr(x, "counter", None), int)
        and x.counter >= 1
    )


class USIG:
    """The replica-local trusted part (create side)."""

    def __init__(self, trinket: Trinket) -> None:
        self._trinket = trinket
        self.created = 0

    @property
    def replica(self) -> ProcessId:
        return self._trinket.pid

    @property
    def counter(self) -> SeqNum:
        return self._trinket.last_seq()

    def create_ui(self, message: Any) -> UI:
        """Bind ``message`` to this replica's next counter value."""
        c = self._trinket.last_seq() + 1
        att = self._trinket.attest(c, content_hash(message))
        if att is None:  # cannot happen: c = last+1 by construction
            raise ConfigurationError("trinket refused a consecutive counter")
        self.created += 1
        return UI(replica=self.replica, counter=c, attestation=att)


class USIGVerifier:
    """Stateless UI verification (check side); any process can hold one.

    One verifier is shared by every replica of a simulation, so its
    verified-UI memo deduplicates across the whole system: a UI broadcast
    to n replicas (and re-checked as the embedded prepare UI of every
    COMMIT) costs one attestation HMAC in total. The memo key commits to
    the serialized ``(ui, message, replica)`` content *and* its exact-type
    fingerprint — an impostor dataclass with the same qualname and fields
    serializes identically to a genuine UI but must not share (or poison)
    its cache entry — so verification is a deterministic pure function of
    the key. Unserializable garbage falls through to the uncached check;
    cached and uncached verdicts are identical.
    """

    def __init__(self, authority: TrincAuthority) -> None:
        self._authority = authority
        self._verified = BoundedCache(1 << 13)

    def verify_ui(self, ui: Any, message: Any, replica: ProcessId) -> bool:
        """Whether ``ui`` genuinely binds ``message`` to ``replica``'s counter.

        Sequentiality (``prev = counter - 1``) is part of validity: a UI
        whose attestation skipped counter values is rejected, which is what
        forces a Byzantine replica's message stream to be gap-free if it
        wants any of it accepted.
        """
        key = None
        if caching_enabled():
            try:
                parts = (ui, message, replica)
                key = (canonical_bytes(parts), type_fingerprint(parts))
            except Exception:
                key = None
            if key is not None:
                verdict = self._verified.get(key)
                if verdict is not None:
                    return verdict
        verdict = self._verify_ui_uncached(ui, message, replica)
        if key is not None:
            self._verified.put(key, verdict)
        return verdict

    def _verify_ui_uncached(self, ui: Any, message: Any, replica: ProcessId) -> bool:
        if not isinstance(ui, UI):
            return False
        if ui.replica != replica:
            return False
        a = ui.attestation
        if not isinstance(a, Attestation):
            return False
        if a.seq != ui.counter or a.prev != ui.counter - 1:
            return False
        try:
            expected = content_hash(message)
        except Exception:
            return False
        if a.message != expected:
            return False
        return self._authority.check(a, replica)


class UIOrderEnforcer:
    """Holdback queue: release each replica's messages in counter order.

    MinBFT requires replicas to *accept* messages from replica ``i`` only
    in UI order with no gaps; out-of-order arrivals wait until the gap
    fills. Feed every (replica, counter, item) in; ``on_release`` fires in
    order.
    """

    def __init__(self, on_release: Callable[[ProcessId, SeqNum, Any], None]) -> None:
        self._on_release = on_release
        self._next: dict[ProcessId, SeqNum] = {}
        self._held: dict[ProcessId, dict[SeqNum, Any]] = {}
        self.released = 0
        self.held_max = 0

    def expected(self, replica: ProcessId) -> SeqNum:
        return self._next.get(replica, 1)

    def submit(self, replica: ProcessId, counter: SeqNum, item: Any) -> None:
        nxt = self._next.get(replica, 1)
        if counter < nxt:
            return  # duplicate / replay
        held = self._held.setdefault(replica, {})
        if counter in held:
            return
        held[counter] = item
        self.held_max = max(self.held_max, len(held))
        self._release_from(replica, nxt)

    def _release_from(self, replica: ProcessId, nxt: SeqNum) -> None:
        held = self._held.get(replica, {})
        while nxt in held:
            item = held.pop(nxt)
            self._next[replica] = nxt + 1
            self.released += 1
            self._on_release(replica, nxt, item)
            nxt += 1

    def resync(self, replica: ProcessId, counter: SeqNum) -> None:
        """Skip ``replica``'s stream forward: accept from ``counter + 1`` on.

        Crash recovery support: a rebooted process's enforcer expects every
        peer's stream from counter 1, but frames acked by the dead
        incarnation are gone for good — the gap at the front would hold
        back the peer's entire future stream forever. Once the recovering
        process learns (authenticated, out of band) that the peer's counter
        has reached ``counter``, it abandons the unrecoverable prefix. Only
        ever moves forward; state missed in the skipped prefix is recovered
        through checkpoint transfer / view-change logs, not through the
        message stream.
        """
        nxt = self._next.get(replica, 1)
        if counter + 1 <= nxt:
            return
        self._next[replica] = counter + 1
        held = self._held.get(replica)
        if held:
            for c in [c for c in held if c <= counter]:
                del held[c]
        self._release_from(replica, counter + 1)

    def purge(self, replica: ProcessId) -> int:
        """Drop everything held from ``replica`` and stop expecting more.

        Forensic quarantine support: once a replica is *convicted* of
        equivocation (see :mod:`repro.consensus.forensics`), messages it
        already queued must not be released later — a held per-destination
        fork is exactly the payload a compromised counter smuggles in.
        Returns the number of discarded messages. The stream can still
        resume (a future ``submit`` re-opens it at the current cursor), so
        callers pair this with their own convicted-sender refusal.
        """
        held = self._held.pop(replica, None)
        return len(held) if held else 0
