"""Bounded per-client request deduplication for replicated state machines.

The classic BFT client cache — "remember the latest ``(req_id, reply)``
per client" — silently assumes one outstanding request per client: it
treats any ``req_id`` at or below the latest executed one as already
answered. A *multi-outstanding* client (the pipelined load harness keeps
N requests in flight) breaks that assumption: request 6 can be ordered
and executed before request 5 is even proposed, and a latest-only cache
would then swallow request 5 as a "retransmission of an answered
request" — a liveness bug, not a safety one, but a fatal one for an
open-loop workload.

The naive fix — an ever-growing ``set`` of executed ``(client, req_id)``
keys — is what the replicas shipped until now, and it makes replica
memory O(total requests), which 10^5–10^6-request sweeps cannot afford.

:class:`ClientDedup` is the bounded middle ground, per client:

- a **watermark** ``w``: every ``req_id <= w`` is known-executed;
- an **out-of-order window**: the set of executed ``req_id > w``. When
  execution fills the gap the watermark advances and the set drains, so
  under in-order execution (any closed-loop client) the set is empty and
  memory is O(1) per client. A client with N outstanding requests can
  keep at most ~N entries here.
- a **bounded reply cache** of the most recent ``reply_window`` results,
  for answering retransmissions of already-executed requests. Older
  replies are evicted; a retransmission of an evicted request is dropped
  (its client got a quorum of replies ``reply_window`` executions ago).

A permanently abandoned request (client gave its retries up) would pin
the watermark forever, so the out-of-order window is itself capped at
``gap_limit``: beyond it the watermark force-advances over the oldest
gap. The force-advance marks the gap's ``req_id`` executed without an
execution — safe (at worst a very late straggler request is dropped,
never double-applied) and deterministic (a pure function of the executed
history, so all correct replicas force-advance identically).

Everything here is part of the checkpoint state: :meth:`snapshot` /
:meth:`restore` round-trip the full structure deterministically so
state-transfer blobs hash identically across replicas at the same
execution point.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..errors import ConfigurationError
from ..types import ProcessId

MISSING = object()
"""Sentinel for "executed, but the reply was evicted"."""


class ClientDedup:
    """Bounded executed-request memory + reply cache, keyed by client."""

    __slots__ = ("reply_window", "gap_limit", "_watermark", "_above", "_replies")

    def __init__(self, reply_window: int = 8, gap_limit: int = 64) -> None:
        if reply_window < 1:
            raise ConfigurationError(
                f"reply_window must be >= 1, got {reply_window}"
            )
        if gap_limit < 1:
            raise ConfigurationError(f"gap_limit must be >= 1, got {gap_limit}")
        self.reply_window = reply_window
        self.gap_limit = gap_limit
        self._watermark: dict[ProcessId, int] = {}
        self._above: dict[ProcessId, set[int]] = {}
        # insertion-ordered (execution-ordered) req_id -> result, bounded
        self._replies: dict[ProcessId, dict[int, Any]] = {}

    # -- queries -----------------------------------------------------------

    def executed(self, client: ProcessId, req_id: int) -> bool:
        """Whether ``(client, req_id)`` was executed (or force-advanced over)."""
        if req_id <= self._watermark.get(client, 0):
            return True
        return req_id in self._above.get(client, ())

    def reply(self, client: ProcessId, req_id: int) -> Any:
        """The cached result for an executed request, or :data:`MISSING`."""
        return self._replies.get(client, {}).get(req_id, MISSING)

    def latest(self, client: ProcessId) -> Optional[tuple[int, Any]]:
        """Most recently executed ``(req_id, result)`` for ``client``."""
        replies = self._replies.get(client)
        if not replies:
            return None
        req_id = next(reversed(replies))
        return req_id, replies[req_id]

    def size(self) -> int:
        """Total entries held — the quantity the soak tests bound."""
        return (
            len(self._watermark)
            + sum(len(s) for s in self._above.values())
            + sum(len(r) for r in self._replies.values())
        )

    def clients(self) -> Iterator[ProcessId]:
        return iter(self._watermark)

    # -- updates -----------------------------------------------------------

    def record(self, client: ProcessId, req_id: int, result: Any) -> None:
        """Mark ``(client, req_id)`` executed with ``result``."""
        above = self._above.setdefault(client, set())
        above.add(req_id)
        w = self._watermark.setdefault(client, 0)
        while w + 1 in above:
            w += 1
            above.discard(w)
        # an abandoned request must not pin the window open forever:
        # force-advance over the oldest gap once the window overflows
        while len(above) > self.gap_limit:
            w = min(above)
            above.discard(w)
        self._watermark[client] = w
        replies = self._replies.setdefault(client, {})
        replies[req_id] = result
        while len(replies) > self.reply_window:
            replies.pop(next(iter(replies)))

    # -- checkpoint transfer ----------------------------------------------

    def snapshot(self) -> tuple:
        """Canonical, hashable image of the full structure.

        Reply insertion order (= execution order) is part of the image:
        it drives eviction, so restoring replicas must inherit it for
        later snapshots to stay bit-identical across the group.
        """
        return tuple(
            (
                client,
                self._watermark[client],
                tuple(sorted(self._above.get(client, ()))),
                tuple(self._replies.get(client, {}).items()),
            )
            for client in sorted(self._watermark)
        )

    def restore(self, snapshot: tuple) -> None:
        """Install a :meth:`snapshot` image, replacing all current state."""
        self._watermark = {}
        self._above = {}
        self._replies = {}
        for client, watermark, above, replies in snapshot:
            self._watermark[client] = watermark
            if above:
                self._above[client] = set(above)
            if replies:
                self._replies[client] = dict(replies)
