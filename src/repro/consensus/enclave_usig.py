"""USIG implemented on an SGX-style enclave instead of TrInc.

Section 2.1 of the paper groups Intel SGX / ARM TrustZone with A2M and
TrInc: same non-equivocation class, "more expressive computations". This
module makes that concrete: the USIG service MinBFT needs is a ~five-line
enclave program, and the resulting UIs are interchangeable with the
TrInc-backed ones — :class:`EnclaveUSIG` / :class:`EnclaveUSIGVerifier`
duck-type :class:`repro.consensus.usig.USIG` / ``USIGVerifier``, so a
MinBFT deployment can mix replicas using either hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..crypto.serialize import content_hash
from ..hardware.enclave import Enclave, EnclaveAuthority, EnclaveOutput, EnclaveProgram
from ..types import ProcessId, SeqNum

USIG_MEASUREMENT = "minbft-usig-v1"


def _usig_step(counter: int, message_hash: bytes) -> tuple[int, tuple]:
    """The entire trusted program: bind the hash to the next counter value."""
    counter += 1
    return counter, ("UI", counter, message_hash)


def usig_program() -> EnclaveProgram:
    return EnclaveProgram(USIG_MEASUREMENT, 0, _usig_step)


@dataclass(frozen=True, slots=True)
class EnclaveUI:
    """A UI certified by an enclave output instead of a TrInc attestation."""

    replica: ProcessId
    counter: SeqNum
    attestation: EnclaveOutput

    def __repr__(self) -> str:
        return f"EnclaveUI(r{self.replica}#{self.counter})"


class EnclaveUSIG:
    """Create side: drop-in for :class:`repro.consensus.usig.USIG`."""

    def __init__(self, enclave: Enclave) -> None:
        if enclave.measurement != USIG_MEASUREMENT:
            from ..errors import ConfigurationError

            raise ConfigurationError(
                f"enclave runs {enclave.measurement!r}, expected "
                f"{USIG_MEASUREMENT!r}"
            )
        self._enclave = enclave
        self.created = 0

    @property
    def replica(self) -> ProcessId:
        return self._enclave.pid

    @property
    def counter(self) -> SeqNum:
        return self._enclave.seq

    def create_ui(self, message: Any) -> EnclaveUI:
        out = self._enclave.invoke(content_hash(message))
        self.created += 1
        _tag, counter, _h = out.output
        return EnclaveUI(replica=self.replica, counter=counter, attestation=out)


class EnclaveUSIGVerifier:
    """Check side: drop-in for :class:`repro.consensus.usig.USIGVerifier`."""

    def __init__(self, authority: EnclaveAuthority) -> None:
        self._authority = authority

    def verify_ui(self, ui: Any, message: Any, replica: ProcessId) -> bool:
        if not isinstance(ui, EnclaveUI):
            return False
        if ui.replica != replica:
            return False
        out = ui.attestation
        if not isinstance(out, EnclaveOutput):
            return False
        # the enclave's invocation number IS the counter: sequential, no gaps
        if out.seq != ui.counter:
            return False
        try:
            mh = content_hash(message)
        except Exception:
            return False
        if out.output != ("UI", ui.counter, mh):
            return False
        if out.input_hash != content_hash(mh):
            return False
        return self._authority.check(out, replica, USIG_MEASUREMENT)
