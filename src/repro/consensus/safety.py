"""Safety and liveness checkers for replicated state machines.

Protocol-agnostic: both MinBFT and PBFT replicas record
``custom/execute`` trace events with ``(seq, client, req_id, op, result)``;
the checkers audit those plus client completions.

Checked properties:

- **order safety** — correct replicas' executed logs are prefix-compatible
  (no two correct replicas execute different requests at a slot, no holes);
- **no duplicates** — no request executed twice by one replica;
- **result determinism** — replicas that executed a slot produced the same
  result (exercises the app's determinism end to end);
- **client liveness** — every client finished its workload (optional, for
  runs expected to complete).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..errors import PropertyViolation
from ..sim.trace import Trace
from ..types import ProcessId


@dataclass(frozen=True, slots=True)
class Execution:
    """One replica's execution of one slot."""

    replica: ProcessId
    seq: int
    client: ProcessId
    req_id: int
    op: Any
    result: Any


@dataclass(slots=True)
class ReplicationReport:
    executions: list[Execution] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    clients_done: dict[ProcessId, int] = field(default_factory=dict)
    liveness_violations: list[str] = field(default_factory=list)
    transfers: dict[ProcessId, set[int]] = field(default_factory=dict)
    """Per replica: stable seqs it fast-forwarded to via checkpoint transfer
    (gaps up to those seqs are legitimate, not order violations)."""

    @property
    def ok(self) -> bool:
        return not self.violations and not self.liveness_violations

    def assert_ok(self) -> None:
        if not self.ok:
            problems = self.violations + self.liveness_violations
            raise PropertyViolation("replication", "; ".join(problems[:3]))

    def log_of(self, replica: ProcessId) -> list[Execution]:
        return sorted(
            (e for e in self.executions if e.replica == replica),
            key=lambda e: e.seq,
        )


def check_replication(
    trace: Trace,
    correct_replicas: Iterable[ProcessId],
    clients: Iterable[ProcessId] = (),
    expected_ops: dict[ProcessId, int] | None = None,
) -> ReplicationReport:
    """Audit executed logs across the correct replicas (and client liveness)."""
    correct = sorted(set(correct_replicas))
    report = ReplicationReport()
    for ev in trace.events("custom"):
        if ev.field("event") == "execute" and ev.pid in correct:
            report.executions.append(
                Execution(
                    replica=ev.pid,
                    seq=ev.field("seq"),
                    client=ev.field("client"),
                    req_id=ev.field("req_id"),
                    op=ev.field("op"),
                    result=ev.field("result"),
                )
            )
        elif ev.field("event") == "client_done":
            report.clients_done[ev.pid] = ev.field("ops")
        elif ev.field("event") == "state_transfer" and ev.pid in correct:
            report.transfers.setdefault(ev.pid, set()).add(
                ev.field("stable_seq")
            )

    # order safety + result determinism, slot by slot. A slot may carry a
    # *batch* of requests; every replica must execute the same ordered batch
    # with the same results.
    by_slot: dict[int, dict[ProcessId, list[Execution]]] = {}
    for e in report.executions:
        by_slot.setdefault(e.seq, {}).setdefault(e.replica, []).append(e)
    for seq, execs in sorted(by_slot.items()):
        signatures = {
            r: tuple((e.client, e.req_id, repr(e.result)) for e in es)
            for r, es in execs.items()
        }
        distinct = set(signatures.values())
        if len(distinct) > 1:
            report.violations.append(
                f"slot {seq} diverges across replicas: "
                f"{sorted(str(s)[:80] for s in distinct)}"
            )

    # per-replica: contiguous slots (gaps only across checkpoint transfers),
    # no duplicate requests
    for r in correct:
        log = report.log_of(r)
        seqs = sorted({e.seq for e in log})  # batches repeat a seq; dedupe
        covered = report.transfers.get(r, set())
        prev = 0
        for s in seqs:
            contiguous = s == prev + 1
            # a transfer to stable seq t installs state covering slots 1..t,
            # so skipping prev+1..s-1 is fine when some t >= s-1 exists
            transferred = any(t >= s - 1 for t in covered)
            if not contiguous and not transferred:
                report.violations.append(
                    f"replica {r} executed non-contiguous slots {seqs[:20]} "
                    f"(gap before {s} not covered by a checkpoint transfer)"
                )
                break
            prev = s
        keys = [(e.client, e.req_id) for e in log]
        if len(keys) != len(set(keys)):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            report.violations.append(
                f"replica {r} executed requests twice: {dupes[:5]}"
            )

    # client liveness
    if expected_ops:
        for client, expected in sorted(expected_ops.items()):
            done = report.clients_done.get(client)
            if done is None:
                report.liveness_violations.append(
                    f"client {client} never finished its {expected} ops"
                )
            elif done != expected:
                report.liveness_violations.append(
                    f"client {client} finished {done}/{expected} ops"
                )
    return report
