"""Safety and liveness checkers for replicated state machines.

Protocol-agnostic: both MinBFT and PBFT replicas record
``custom/execute`` trace events with ``(seq, client, req_id, op, result)``;
the checkers audit those plus client completions.

Checked properties:

- **order safety** — correct replicas' executed logs are prefix-compatible
  (no two correct replicas execute different requests at a slot, no holes);
- **no duplicates** — no request executed twice by one replica;
- **result determinism** — replicas that executed a slot produced the same
  result (exercises the app's determinism end to end);
- **client liveness** — every client finished its workload (optional, for
  runs expected to complete).

Both checking modes share one incremental core
(:class:`ReplicationStreamChecker`): batch :func:`check_replication` feeds
the finished trace's ``custom`` events through the kind index; attached as
a live :class:`~repro.sim.trace.TraceObserver` with ``fail_fast=True`` the
same core flags *permanent* violations online — a duplicate execution or
a slot whose batch prefix diverges between two replicas can never be
undone by later events, so the run aborts at that exact event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..errors import ConfigurationError, PropertyViolation
from ..sim.liveness import DeadlineMonitor, LivenessReport
from ..sim.trace import CUSTOM, Trace, TraceEvent, TraceObserver
from ..types import ProcessId, Time


@dataclass(frozen=True, slots=True)
class Execution:
    """One replica's execution of one slot."""

    replica: ProcessId
    seq: int
    client: ProcessId
    req_id: int
    op: Any
    result: Any


@dataclass(slots=True)
class ReplicationReport:
    executions: list[Execution] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    clients_done: dict[ProcessId, int] = field(default_factory=dict)
    liveness_violations: list[str] = field(default_factory=list)
    transfers: dict[ProcessId, set[int]] = field(default_factory=dict)
    """Per replica: stable seqs it fast-forwarded to via checkpoint transfer
    (gaps up to those seqs are legitimate, not order violations)."""
    noops: dict[ProcessId, set[int]] = field(default_factory=dict)
    """Per replica: slots ordered but applied as no-ops (every request in
    the slot was a duplicate of an earlier execution). Benign holes in the
    execution stream — but replicas must *agree* a slot is a no-op."""

    @property
    def ok(self) -> bool:
        return not self.violations and not self.liveness_violations

    def assert_ok(self) -> None:
        if not self.ok:
            problems = self.violations + self.liveness_violations
            raise PropertyViolation("replication", "; ".join(problems[:3]))

    def log_of(self, replica: ProcessId) -> list[Execution]:
        return sorted(
            (e for e in self.executions if e.replica == replica),
            key=lambda e: e.seq,
        )


class ReplicationStreamChecker(TraceObserver):
    """Incremental replication-audit state shared by batch and streaming modes.

    Collects executions, checkpoint transfers, and client completions from
    ``custom`` trace events as they arrive. :meth:`finish` runs the full
    audit over the accumulated state and produces the exact report the
    pre-refactor whole-trace scan did.

    Online detection (``fail_fast=True``): two violation classes are
    permanent the moment they occur and raise at the violating event —

    - a replica executing the same ``(client, req_id)`` twice;
    - slot divergence visible in batch *prefixes*: if replica A's k-th
      execution of slot s disagrees with replica B's k-th execution of
      slot s, their final slot signatures cannot match either.

    Order-safety gaps are *not* flagged online (a gap may still be covered
    by a later checkpoint-transfer record); :meth:`finish` audits those.
    """

    def __init__(
        self,
        correct_replicas: Iterable[ProcessId],
        fail_fast: bool = False,
    ) -> None:
        self.correct = sorted(set(correct_replicas))
        self._correct_set = set(self.correct)
        self.fail_fast = fail_fast
        self.executions: list[Execution] = []
        self.clients_done: dict[ProcessId, int] = {}
        self.transfers: dict[ProcessId, set[int]] = {}
        self.noops: dict[ProcessId, set[int]] = {}
        self.by_slot: dict[int, dict[ProcessId, list[Execution]]] = {}
        self._seen_requests: dict[ProcessId, set[tuple]] = {}
        self.online_violations: list[tuple[int, str]] = []
        self.events_consumed = 0

    # -- streaming ---------------------------------------------------------

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind != CUSTOM:
            return
        tag = ev.field("event")
        if tag == "execute" and ev.pid in self._correct_set:
            self.events_consumed += 1
            e = Execution(
                replica=ev.pid,
                seq=ev.field("seq"),
                client=ev.field("client"),
                req_id=ev.field("req_id"),
                op=ev.field("op"),
                result=ev.field("result"),
            )
            self.executions.append(e)
            slot = self.by_slot.setdefault(e.seq, {})
            mine = slot.setdefault(e.replica, [])
            mine.append(e)
            # always record online findings; fail_fast only controls whether
            # the first one aborts the run (the compromised-hardware soak
            # needs the divergence *recorded* while the run continues into
            # conviction and recovery)
            self._check_online(ev, e, slot, mine)
        elif tag == "client_done":
            self.events_consumed += 1
            self.clients_done[ev.pid] = ev.field("ops")
        elif tag == "state_transfer" and ev.pid in self._correct_set:
            self.events_consumed += 1
            self.transfers.setdefault(ev.pid, set()).add(ev.field("stable_seq"))
        elif tag == "execute_noop" and ev.pid in self._correct_set:
            self.events_consumed += 1
            self.noops.setdefault(ev.pid, set()).add(ev.field("seq"))
        elif tag == "rollback" and ev.pid in self._correct_set:
            self.events_consumed += 1
            self._rollback(ev.pid, ev.field("to_seq"))

    def _rollback(self, replica: ProcessId, to_seq: int) -> None:
        """Forget ``replica``'s executions above ``to_seq``.

        A forensic conviction rolls survivors back to their last attested
        state (:mod:`repro.consensus.forensics`): slots above the rollback
        point are re-executed once the group re-forms, and auditing the
        discarded attempts against the recovered history would misread the
        re-executions as duplicates/divergence. Violations already flagged
        online stay flagged — pre-conviction divergence is the planted
        evidence, not noise.
        """
        kept: list[Execution] = []
        seen = self._seen_requests.get(replica, set())
        for e in self.executions:
            if e.replica == replica and e.seq > to_seq:
                slot = self.by_slot.get(e.seq)
                if slot is not None:
                    slot.pop(replica, None)
                    if not slot:
                        del self.by_slot[e.seq]
                seen.discard((e.client, e.req_id))
            else:
                kept.append(e)
        self.executions = kept
        noops = self.noops.get(replica)
        if noops:
            self.noops[replica] = {s for s in noops if s <= to_seq}

    def _check_online(
        self,
        ev: TraceEvent,
        e: Execution,
        slot: dict[ProcessId, list[Execution]],
        mine: list[Execution],
    ) -> None:
        seen = self._seen_requests.setdefault(e.replica, set())
        key = (e.client, e.req_id)
        if key in seen:
            self._flag(
                ev,
                f"replica {e.replica} executed request {key} twice",
            )
        seen.add(key)
        # prefix divergence: compare this batch position against every other
        # replica that has already executed this position of the slot
        pos = len(mine) - 1
        sig = (e.client, e.req_id, repr(e.result))
        for other, theirs in slot.items():
            if other == e.replica or len(theirs) <= pos:
                continue
            o = theirs[pos]
            if (o.client, o.req_id, repr(o.result)) != sig:
                self._flag(
                    ev,
                    f"slot {e.seq} position {pos} diverges: replica "
                    f"{e.replica} executed {sig} but replica {other} "
                    f"executed {(o.client, o.req_id, repr(o.result))}",
                )

    def _flag(self, ev: TraceEvent, message: str) -> None:
        self.online_violations.append((ev.index, message))
        if self.fail_fast:
            raise PropertyViolation(
                "replication-stream",
                f"event #{ev.index} (t={ev.time:g}): {message}",
            )

    # -- batch feeding -----------------------------------------------------

    def consume(self, trace: Trace) -> "ReplicationStreamChecker":
        """Feed a finished trace's ``custom`` events (index-backed)."""
        for ev in trace.events(CUSTOM):
            self.on_event(ev)
        return self

    # -- final audit -------------------------------------------------------

    def finish(
        self, expected_ops: dict[ProcessId, int] | None = None
    ) -> ReplicationReport:
        """Audit the accumulated state; identical to the pre-refactor scan."""
        return _audit(
            self.correct,
            self.executions,
            self.clients_done,
            self.transfers,
            self.noops,
            self.by_slot,
            expected_ops,
        )


class ReplicationLivenessChecker(TraceObserver):
    """Streaming post-GST liveness auditor for the replication layer.

    Under partial synchrony nothing is owed before GST; after it, within a
    delay-derived bound:

    - every request a fault-free client *sends* must complete
      (``request_sent`` → ``request_done``), with deadline
      ``max(t_sent, gst) + request_bound``;
    - every view change must *terminate* once it has enough backing to be
      guaranteed to run: an obligation for target view ``v`` is armed only
      when **f+1 distinct fault-free replicas** have started view changes
      targeting ``>= v`` (a lone stuck replica whose quorum partners
      crashed is protocol-legal and must not be flagged), and is satisfied
      when any fault-free replica adopts a view ``>= v``.

    Batch and streaming verdicts are identical: both feed the same events
    in trace order through one :class:`~repro.sim.liveness.DeadlineMonitor`
    (batch via :meth:`consume`, streaming via the observer bus). With
    ``fail_fast=True`` an expired deadline raises at the first event whose
    timestamp proves the violation — deadline expiry is permanent, the
    missing completion cannot arrive retroactively.
    """

    def __init__(
        self,
        gst: Time,
        request_bound: float,
        fault_free_replicas: Iterable[ProcessId],
        fault_free_clients: Iterable[ProcessId],
        f: int,
        vc_bound: Optional[float] = None,
        fail_fast: bool = False,
    ) -> None:
        if request_bound <= 0:
            raise ConfigurationError(
                f"request_bound must be > 0, got {request_bound}"
            )
        self.gst = gst
        self.request_bound = request_bound
        self.vc_bound = vc_bound if vc_bound is not None else request_bound
        self.replicas = set(fault_free_replicas)
        self.clients = set(fault_free_clients)
        self.f = f
        self.fail_fast = fail_fast
        self.monitor = DeadlineMonitor()
        self.online_violations: list[tuple[int, str]] = []
        self.satisfied = 0
        self.armed = 0
        # per fault-free replica: highest view-change target started and not
        # yet resolved by an adoption >= target (quorum-gating state)
        self._vc_pending: dict[ProcessId, int] = {}
        self._vc_armed: set[int] = set()

    # -- streaming ---------------------------------------------------------

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind != CUSTOM:
            return
        self._expire(ev)
        tag = ev.field("event")
        if tag == "request_sent" and ev.pid in self.clients:
            self._arm(
                ("req", ev.pid, ev.field("req_id")),
                ev.time,
                self.request_bound,
                f"request {ev.field('req_id')} from client {ev.pid} "
                f"(sent t={ev.time:g}) never completed",
            )
        elif tag == "request_done" and ev.pid in self.clients:
            if self.monitor.satisfy(("req", ev.pid, ev.field("req_id"))):
                self.satisfied += 1
        elif tag == "request_failed" and ev.pid in self.clients:
            # a typed abandonment (retry budget exhausted) discharges the
            # obligation: the client made a deliberate, recorded decision
            # to stop waiting, same stance as the service-layer auditor —
            # a *silent* non-completion is still convicted
            if self.monitor.satisfy(("req", ev.pid, ev.field("req_id"))):
                self.satisfied += 1
        elif tag == "view_change_start" and ev.pid in self.replicas:
            target = ev.field("new_view")
            if target > self._vc_pending.get(ev.pid, 0):
                self._vc_pending[ev.pid] = target
            backing = sum(1 for t in self._vc_pending.values() if t >= target)
            if backing >= self.f + 1 and target not in self._vc_armed:
                self._vc_armed.add(target)
                self._arm(
                    ("vc", target),
                    ev.time,
                    self.vc_bound,
                    f"view change to view {target} (f+1 fault-free starters "
                    f"by t={ev.time:g}) never terminated",
                )
        elif tag == "view_adopted" and ev.pid in self.replicas:
            view = ev.field("view")
            for target in sorted(t for t in self._vc_armed if t <= view):
                self._vc_armed.discard(target)
                if self.monitor.satisfy(("vc", target)):
                    self.satisfied += 1
            if self._vc_pending.get(ev.pid, 0) <= view:
                self._vc_pending.pop(ev.pid, None)

    def _arm(self, key: Any, now: Time, bound: float, message: str) -> None:
        self.monitor.expect(key, max(now, self.gst) + bound, message)
        self.armed += 1

    def _expire(self, ev: TraceEvent) -> None:
        for ob in self.monitor.advance(ev.time):
            self.online_violations.append((ev.index, ob.message))
            if self.fail_fast:
                raise PropertyViolation(
                    "liveness-stream",
                    f"event #{ev.index} (t={ev.time:g}): {ob.message}",
                )

    # -- batch feeding -----------------------------------------------------

    def consume(self, trace: Trace) -> "ReplicationLivenessChecker":
        """Feed a finished trace's ``custom`` events (index-backed)."""
        for ev in trace.events(CUSTOM):
            self.on_event(ev)
        return self

    # -- final audit -------------------------------------------------------

    def finish(self, end_time: Optional[Time] = None) -> LivenessReport:
        report = LivenessReport(
            obligations_armed=self.armed, obligations_satisfied=self.satisfied
        )
        report.violations = [m for _, m in self.online_violations]
        violated, unresolved = self.monitor.flush(end_time)
        report.violations += [ob.message for ob in violated]
        report.unresolved = [ob.message for ob in unresolved]
        return report


def check_replication_liveness(
    trace: Trace,
    gst: Time,
    request_bound: float,
    fault_free_replicas: Iterable[ProcessId],
    fault_free_clients: Iterable[ProcessId],
    f: int,
    end_time: Optional[Time] = None,
    vc_bound: Optional[float] = None,
) -> LivenessReport:
    """Batch liveness audit of a finished trace (same core as streaming)."""
    return (
        ReplicationLivenessChecker(
            gst=gst,
            request_bound=request_bound,
            fault_free_replicas=fault_free_replicas,
            fault_free_clients=fault_free_clients,
            f=f,
            vc_bound=vc_bound,
        )
        .consume(trace)
        .finish(end_time=end_time)
    )


def check_replication(
    trace: Trace,
    correct_replicas: Iterable[ProcessId],
    clients: Iterable[ProcessId] = (),
    expected_ops: dict[ProcessId, int] | None = None,
) -> ReplicationReport:
    """Audit executed logs across the correct replicas (and client liveness)."""
    return (
        ReplicationStreamChecker(correct_replicas)
        .consume(trace)
        .finish(expected_ops=expected_ops)
    )


def _audit(
    correct: list[ProcessId],
    executions: list[Execution],
    clients_done: dict[ProcessId, int],
    transfers: dict[ProcessId, set[int]],
    noops: dict[ProcessId, set[int]],
    by_slot: dict[int, dict[ProcessId, list[Execution]]],
    expected_ops: dict[ProcessId, int] | None,
) -> ReplicationReport:
    report = ReplicationReport()
    report.executions = list(executions)
    report.clients_done = dict(clients_done)
    report.transfers = {p: set(s) for p, s in transfers.items()}
    report.noops = {p: set(s) for p, s in noops.items()}

    # order safety + result determinism, slot by slot. A slot may carry a
    # *batch* of requests; every replica must execute the same ordered batch
    # with the same results.
    for seq, execs in sorted(by_slot.items()):
        signatures = {
            r: tuple((e.client, e.req_id, repr(e.result)) for e in es)
            for r, es in execs.items()
        }
        distinct = set(signatures.values())
        if len(distinct) > 1:
            report.violations.append(
                f"slot {seq} diverges across replicas: "
                f"{sorted(str(s)[:80] for s in distinct)}"
            )
        # dedup determinism: the decision that a slot is a pure duplicate
        # depends only on the (identical) execution prefix, so a slot
        # applied on one correct replica but no-opped on another means
        # their prefixes disagreed
        nooped = [r for r in correct if seq in report.noops.get(r, set())]
        if nooped and execs:
            report.violations.append(
                f"slot {seq} applied on replicas {sorted(execs)} but "
                f"no-opped on {nooped}"
            )

    # per-replica: contiguous slots (gaps only across checkpoint transfers),
    # no duplicate requests
    for r in correct:
        log = report.log_of(r)
        # batches repeat a seq (dedupe); no-op slots fill their hole
        seqs = sorted({e.seq for e in log} | report.noops.get(r, set()))
        covered = report.transfers.get(r, set())
        prev = 0
        for s in seqs:
            contiguous = s == prev + 1
            # a transfer to stable seq t installs state covering slots 1..t,
            # so skipping prev+1..s-1 is fine when some t >= s-1 exists
            transferred = any(t >= s - 1 for t in covered)
            if not contiguous and not transferred:
                report.violations.append(
                    f"replica {r} executed non-contiguous slots {seqs[:20]} "
                    f"(gap before {s} not covered by a checkpoint transfer)"
                )
                break
            prev = s
        keys = [(e.client, e.req_id) for e in log]
        if len(keys) != len(set(keys)):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            report.violations.append(
                f"replica {r} executed requests twice: {dupes[:5]}"
            )

    # client liveness
    if expected_ops:
        for client, expected in sorted(expected_ops.items()):
            done = report.clients_done.get(client)
            if done is None:
                report.liveness_violations.append(
                    f"client {client} never finished its {expected} ops"
                )
            elif done != expected:
                report.liveness_violations.append(
                    f"client {client} finished {done}/{expected} ops"
                )
    return report
