"""System builders wiring replicas, clients, hardware, and the simulator."""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from ..crypto.signatures import SignatureScheme
from ..errors import ConfigurationError
from ..hardware.trinc import TrincAuthority
from ..sim.adversary import Adversary, ReliableAsynchronous
from ..sim.process import Process
from ..sim.runner import Simulation
from .apps import make_app
from .client import BFTClient
from .minbft import MinBFTReplica
from .pbft import PBFTReplica
from .usig import USIG, USIGVerifier


def default_workload(client_index: int, n_ops: int, app: str) -> list[tuple]:
    """A deterministic per-client op list for the named app."""
    if app == "counter":
        return [("add", 1 + (client_index + i) % 3) for i in range(n_ops)]
    if app == "kv":
        return [
            ("put", f"k{(client_index * 7 + i) % 5}", f"v{client_index}-{i}")
            for i in range(n_ops)
        ]
    if app == "bank":
        ops: list[tuple] = [("open", f"acct{client_index}")]
        ops += [("deposit", f"acct{client_index}", 10) for _ in range(n_ops - 1)]
        return ops[:n_ops]
    raise ConfigurationError(f"no default workload for app {app!r}")


def build_minbft_system(
    f: int = 1,
    n_clients: int = 1,
    ops_per_client: int = 5,
    app: str = "counter",
    seed: int = 0,
    adversary: Adversary | None = None,
    req_timeout: float = 60.0,
    retry_timeout: float = 150.0,
    replica_factory: Optional[Callable[..., Process]] = None,
    replica_wrapper: Optional[Callable[[int, Process], Process]] = None,
    workloads: Optional[Sequence[Sequence[tuple]]] = None,
    reliable: bool | dict = False,
    trace_retention: Optional[int] = None,
    observers: Sequence[Any] = (),
    timeout_policy: Optional[Callable[[], Any]] = None,
    replica_options: Optional[dict] = None,
    client_options: Optional[dict] = None,
    client_arrivals: Optional[Sequence[Sequence[tuple]]] = None,
) -> tuple[Simulation, list[MinBFTReplica], list[BFTClient]]:
    """A ready-to-run MinBFT deployment: n = 2f+1 replicas + clients.

    ``replica_factory(pid, **kwargs)`` substitutes custom (e.g. Byzantine)
    replicas for chosen pids; it receives the same keyword arguments as
    :class:`~repro.consensus.minbft.MinBFTReplica`.

    ``replica_wrapper(pid, replica)`` wraps chosen replicas *after*
    construction — the attack library's
    :class:`~repro.faults.attacks.AttackerProcess` goes here (return the
    replica unchanged for the rest). Applied inside any ``reliable``
    hosting layer, so filters see protocol messages, not retransmission
    frames. The returned list always holds the inner replicas.

    ``replica_options`` forwards extra keyword arguments to every replica
    (``checkpoint_interval``, ``window_size``, ``batching``,
    ``batch_policy``, ...); ``client_options`` does the same for every
    client (``max_outstanding``, ``retry_budget``, ...).
    ``client_arrivals`` gives each client an open-loop arrival stream
    (one ``[(t, op), ...]`` list per client, overriding ``workloads``) —
    see :class:`~repro.consensus.client.BFTClient`.

    ``timeout_policy`` is a zero-argument factory (see
    :func:`~repro.faults.timeouts.make_policy_factory`); each replica and
    client gets a **fresh** policy instance so per-process RTT state never
    aliases. ``None`` keeps the legacy fixed ``req_timeout`` /
    ``retry_timeout`` behaviour.

    ``trace_retention`` / ``observers`` pass through to
    :class:`~repro.sim.runner.Simulation`: a bounded trace ring buffer and
    streaming :class:`~repro.sim.trace.TraceObserver` checkers for long
    runs.

    ``reliable`` hosts every replica and client behind a
    :class:`~repro.faults.channel.ReliableProcess` retransmission layer
    (pass a dict to forward ReliableChannel options) — required for
    liveness under the lossy/chaos adversaries in :mod:`repro.faults`. The
    returned lists always hold the inner replica/client objects.
    """
    if f < 1:
        raise ConfigurationError(f"f must be >= 1, got {f}")
    n = 2 * f + 1
    total = n + n_clients
    scheme = SignatureScheme(total, seed=seed)
    authority = TrincAuthority(n, seed=seed)
    verifier = USIGVerifier(authority)

    replicas: list[MinBFTReplica] = []
    for pid in range(n):
        kwargs = dict(
            n=n,
            usig=USIG(authority.trinket(pid)),
            verifier=verifier,
            scheme=scheme,
            signer=scheme.signer(pid),
            app=make_app(app),
            req_timeout=req_timeout,
            timeout_policy=timeout_policy,
            **(replica_options or {}),
        )
        if replica_factory is not None:
            replicas.append(replica_factory(pid, **kwargs))
        else:
            replicas.append(MinBFTReplica(**kwargs))

    clients: list[BFTClient] = []
    for c in range(n_clients):
        if client_arrivals is not None:
            ops: Sequence[tuple] = ()
        elif workloads is not None:
            ops = list(workloads[c])
        else:
            ops = default_workload(c, ops_per_client, app)
        client = BFTClient(
            replicas=range(n),
            reply_quorum=f + 1,
            ops=ops,
            retry_timeout=retry_timeout,
            timeout_policy=timeout_policy,
            arrivals=(
                client_arrivals[c] if client_arrivals is not None else None
            ),
            **(client_options or {}),
        )
        client.scheme = scheme
        client.signer = scheme.signer(n + c)
        clients.append(client)

    hosted_replicas: list[Process] = list(replicas)
    if replica_wrapper is not None:
        hosted_replicas = [
            replica_wrapper(pid, r) for pid, r in enumerate(replicas)
        ]
    hosted: list[Process] = [*hosted_replicas, *clients]
    if reliable:
        from ..faults.channel import wrap_reliable  # lazy: faults builds on sim

        kwargs = reliable if isinstance(reliable, dict) else {}
        hosted = wrap_reliable(hosted, **kwargs)
    adversary = adversary if adversary is not None else ReliableAsynchronous(0.01, 0.5)
    sim = Simulation(hosted, adversary, seed=seed,
                     trace_retention=trace_retention, observers=observers)
    return sim, replicas, clients


def build_pbft_system(
    f: int = 1,
    n_clients: int = 1,
    ops_per_client: int = 5,
    app: str = "counter",
    seed: int = 0,
    adversary: Adversary | None = None,
    req_timeout: float = 60.0,
    retry_timeout: float = 150.0,
    replica_factory: Optional[Callable[..., Process]] = None,
    replica_wrapper: Optional[Callable[[int, Process], Process]] = None,
    workloads: Optional[Sequence[Sequence[tuple]]] = None,
    reliable: bool | dict = False,
    trace_retention: Optional[int] = None,
    observers: Sequence[Any] = (),
    timeout_policy: Optional[Callable[[], Any]] = None,
    replica_options: Optional[dict] = None,
    client_options: Optional[dict] = None,
    client_arrivals: Optional[Sequence[Sequence[tuple]]] = None,
) -> tuple[Simulation, list[PBFTReplica], list[BFTClient]]:
    """A ready-to-run PBFT deployment: n = 3f+1 replicas + clients.

    ``timeout_policy`` is a zero-argument factory and ``replica_options``
    / ``client_options`` / ``client_arrivals`` / ``replica_wrapper`` /
    ``reliable`` forward pipeline, open-loop, attack-wrapping, and
    retransmission settings; see :func:`build_minbft_system`.
    """
    if f < 1:
        raise ConfigurationError(f"f must be >= 1, got {f}")
    n = 3 * f + 1
    total = n + n_clients
    scheme = SignatureScheme(total, seed=seed)

    replicas: list[PBFTReplica] = []
    for pid in range(n):
        kwargs = dict(
            n=n,
            scheme=scheme,
            signer=scheme.signer(pid),
            app=make_app(app),
            req_timeout=req_timeout,
            timeout_policy=timeout_policy,
            **(replica_options or {}),
        )
        if replica_factory is not None:
            replicas.append(replica_factory(pid, **kwargs))
        else:
            replicas.append(PBFTReplica(**kwargs))

    clients: list[BFTClient] = []
    for c in range(n_clients):
        if client_arrivals is not None:
            ops: Sequence[tuple] = ()
        elif workloads is not None:
            ops = list(workloads[c])
        else:
            ops = default_workload(c, ops_per_client, app)
        client = BFTClient(
            replicas=range(n),
            reply_quorum=f + 1,
            ops=ops,
            retry_timeout=retry_timeout,
            timeout_policy=timeout_policy,
            arrivals=(
                client_arrivals[c] if client_arrivals is not None else None
            ),
            **(client_options or {}),
        )
        client.scheme = scheme
        client.signer = scheme.signer(n + c)
        clients.append(client)

    hosted_replicas: list[Process] = list(replicas)
    if replica_wrapper is not None:
        hosted_replicas = [
            replica_wrapper(pid, r) for pid, r in enumerate(replicas)
        ]
    hosted: list[Process] = [*hosted_replicas, *clients]
    if reliable:
        from ..faults.channel import wrap_reliable  # lazy: faults builds on sim

        kwargs = reliable if isinstance(reliable, dict) else {}
        hosted = wrap_reliable(hosted, **kwargs)
    adversary = adversary if adversary is not None else ReliableAsynchronous(0.01, 0.5)
    sim = Simulation(hosted, adversary, seed=seed,
                     trace_retention=trace_retention, observers=observers)
    return sim, replicas, clients
