"""PBFT (Castro & Liskov) — the hardware-free baseline at n = 3f+1.

The comparison the paper's motivation implies: without trusted hardware,
asynchronous BFT replication needs **3f+1** replicas and **three** message
rounds (PRE-PREPARE → PREPARE → COMMIT) with 2f+1-sized quorums; MinBFT's
trusted counters cut both (2f+1 replicas, two rounds, f+1 quorums). The
benches run both stacks over identical networks and workloads.

Implementation notes: signed messages, in-order execution, a view change
whose VIEW-CHANGE carries prepared certificates (the new primary's
NEW-VIEW re-issues pre-prepares for every certified slot above the stable
checkpoint, chosen by highest view), and classic checkpointing: 2f+1
matching CHECKPOINT messages form a stable certificate that garbage-
collects per-slot state and, piggybacked on VIEW-CHANGE, fast-forwards
replicas that fell behind the low watermark.

State transfer is proactive, not view-change-only: a replica that holds
a 2f+1 checkpoint certificate for a sequence number at or above its own
execution frontier is provably behind and fetches the certified blob
directly from the voters (GET-STATE/STATE). The blob needs no signature
of its own — it must hash to the digest the certificate already pins.
Without this path a replica wedged behind an execution hole (e.g. one
that missed a slot across a view change) can only catch up via the next
NEW-VIEW, and if its peers are idle that view change never completes:
its view-change timer re-arms forever against a non-empty pending set.
"""

from __future__ import annotations

from typing import Any, Optional

from ..crypto.serialize import content_hash
from ..crypto.signatures import Signature, SignatureScheme, Signer
from ..errors import ConfigurationError
from ..sim.process import Process
from ..types import ProcessId, SeqNum
from .apps import StateMachine
from .batching import PipelinedProposer
from .dedup import MISSING, ClientDedup
from .minbft import (
    REPLY,
    REQUEST,
    proposal_requests,
    request_domain,
    request_key,
)

PRE_PREPARE = "PBFT-PRE-PREPARE"
PREPARE = "PBFT-PREPARE"
COMMIT = "PBFT-COMMIT"
VIEW_CHANGE = "PBFT-VIEW-CHANGE"
NEW_VIEW = "PBFT-NEW-VIEW"
CHECKPOINT = "PBFT-CHECKPOINT"
GET_STATE = "PBFT-GET-STATE"
STATE = "PBFT-STATE"

#: NEW-VIEW gap filler (Castro & Liskov §4.4): a sequence number between
#: the stable checkpoint and the highest prepared slot that no VIEW-CHANGE
#: in the bundle carries a prepared certificate for cannot have committed
#: anywhere (committed => prepared at 2f+1 => at least one of any 2f+1
#: VIEW-CHANGEs shows it), so the new primary re-proposes a null request
#: there and in-order execution steps over the hole as a no-op.
NULL_REQUEST = ("PBFT-NULL",)


def _proposal_reqs(proposal: Any) -> list:
    """Client requests inside a slot proposal; the null filler has none."""
    return [] if proposal == NULL_REQUEST else proposal_requests(proposal)


def pp_domain(view: int, seq: SeqNum, digest: bytes) -> tuple:
    return ("PBFT-PP", view, seq, digest)


def prep_domain(view: int, seq: SeqNum, digest: bytes, replica: ProcessId) -> tuple:
    return ("PBFT-P", view, seq, digest, replica)


def commit_domain(view: int, seq: SeqNum, digest: bytes, replica: ProcessId) -> tuple:
    return ("PBFT-C", view, seq, digest, replica)


def vc_domain(new_view: int, body: Any, replica: ProcessId) -> tuple:
    return ("PBFT-VC", new_view, content_hash(body), replica)


def ckpt_domain(seq: SeqNum, digest: bytes, replica: ProcessId) -> tuple:
    return ("PBFT-CKPT", seq, digest, replica)


def gs_domain(seq: SeqNum, digest: bytes, replica: ProcessId) -> tuple:
    return ("PBFT-GS", seq, digest, replica)


class PBFTReplica(PipelinedProposer, Process):
    """One PBFT replica (n = 3f+1, f = (n-1)//3).

    ``window_size``/``batching``/``batch_policy`` drive the shared
    pipelined proposal engine (:mod:`repro.consensus.batching`): slots may
    carry ``("BATCH", *requests)`` proposals exactly as in MinBFT, with
    the PRE-PREPARE signed over the whole batch digest.
    """

    VC_TIMER = "pbft-vc"
    BATCH_TAG = "pbft-batch"

    def __init__(
        self,
        n: int,
        scheme: SignatureScheme,
        signer: Signer,
        app: StateMachine,
        req_timeout: float = 60.0,
        checkpoint_interval: int = 0,
        batching: bool = False,
        batch_delay: float = 0.2,
        batch_policy: Any = None,
        window_size: int = 0,
        timeout_policy: Any = None,
        reply_window: int = 8,
        gap_limit: int = 64,
    ) -> None:
        super().__init__()
        if n < 4 or (n - 1) % 3 != 0:
            raise ConfigurationError(
                f"PBFT runs with n = 3f+1 >= 4 replicas, got n={n}"
            )
        self.n = n
        self.f = (n - 1) // 3
        self.scheme = scheme
        self.signer = signer
        self.app = app
        self.req_timeout = req_timeout
        if timeout_policy is None:
            from ..faults.timeouts import FixedTimeout  # lazy: faults builds on consensus

            timeout_policy = FixedTimeout(self.req_timeout)
        elif callable(timeout_policy) and not hasattr(timeout_policy, "current"):
            timeout_policy = timeout_policy()
        self.timeout_policy = timeout_policy

        self.view = 0
        self.in_view_change: Optional[int] = None
        self.next_seq: SeqNum = 1
        self.exec_next: SeqNum = 1
        # seq -> (view, digest, request)
        self._accepted_pp: dict[SeqNum, tuple[int, bytes, Any]] = {}
        self._prepares: dict[tuple, set[ProcessId]] = {}
        self._commits: dict[tuple, set[ProcessId]] = {}
        self._prepared_certs: dict[SeqNum, tuple] = {}  # best cert per slot
        self._commit_sent: set[tuple] = set()
        self._certified: dict[SeqNum, Any] = {}
        self._requests: dict[bytes, Any] = {}  # digest -> slot proposal
        self._proposed_keys: set[tuple] = set()
        # bounded executed-request memory + reply cache (replaces the old
        # unbounded _executed_keys set and latest-only _client_cache)
        self._dedup = ClientDedup(reply_window=reply_window, gap_limit=gap_limit)
        self._pending: dict[tuple, Any] = {}
        self._init_pipeline(batching, batch_policy, batch_delay, window_size)
        # request arrival times feed the adaptive timeout's RTT estimator
        self._pending_since: dict[tuple, float] = {}
        self._vcs: dict[int, dict[ProcessId, Any]] = {}
        self._vc_sent: set[int] = set()
        self._new_view_sent: set[int] = set()
        self._vc_timer: Optional[int] = None
        # checkpointing / garbage collection (classic PBFT: 2f+1 certs)
        self.checkpoint_interval = checkpoint_interval
        self._ckpt_votes: dict[tuple, dict[ProcessId, Signature]] = {}
        self._ckpt_blobs: dict[SeqNum, Any] = {}
        self.stable_seq: SeqNum = 0
        self._stable_cert: tuple = ()
        self._stable_blob: Any = None
        # proactive state transfer: highest seq we already asked for, so a
        # growing vote set doesn't re-send per vote (retries go through the
        # view-change timer, which forces past this guard)
        self._state_requested: SeqNum = 0
        self.log_entries_gced = 0
        self.commits_executed = 0
        self.view_changes_completed = 0
        self.state_transfers = 0
        # babble hardening / forensic quarantine (reported via
        # consensus_stats); convictions come from the accountability layer
        self.malformed_rejects = 0
        self.convicted_rejects = 0
        self._convicted: set[ProcessId] = set()

    # -- helpers -----------------------------------------------------------------

    def primary_of(self, view: int) -> ProcessId:
        return view % self.n

    @property
    def is_primary(self) -> bool:
        return self.in_view_change is None and self.primary_of(self.view) == self.pid

    def _valid_request(self, request: Any) -> bool:
        if not (isinstance(request, tuple) and len(request) == 5
                and request[0] == REQUEST):
            return False
        _, client, req_id, op, sig = request
        return (
            isinstance(client, int)
            and isinstance(req_id, int)
            and isinstance(sig, Signature)
            and sig.signer == client
            and self.scheme.verify(request_domain(client, req_id, op), sig)
        )

    def _valid_proposal(self, proposal: Any) -> bool:
        """One valid request, a non-empty BATCH of them with no duplicate
        request keys (same slot-proposal shape as MinBFT), or the
        NEW-VIEW null filler."""
        if proposal == NULL_REQUEST:
            return True
        requests = proposal_requests(proposal)
        if not requests:
            return False
        if not all(self._valid_request(r) for r in requests):
            return False
        keys = [request_key(r) for r in requests]
        return len(keys) == len(set(keys))

    def _is_executed(self, key: tuple) -> bool:
        return self._dedup.executed(key[0], key[1])

    # -- dispatch -------------------------------------------------------------------

    def on_message(self, src: ProcessId, msg: Any) -> None:
        if not (isinstance(msg, tuple) and msg and isinstance(msg[0], str)):
            self.malformed_rejects += 1
            return
        if src in self._convicted:
            self.convicted_rejects += 1
            return
        kind = msg[0]
        if kind == REQUEST and len(msg) == 5:
            self._on_request(msg)
        elif kind == PRE_PREPARE and len(msg) == 5:
            self._on_pre_prepare(src, msg)
        elif kind == PREPARE and len(msg) == 6:
            self._on_prepare(src, msg)
        elif kind == COMMIT and len(msg) == 6:
            self._on_commit(src, msg)
        elif kind == CHECKPOINT and len(msg) == 5:
            self._on_checkpoint(src, msg)
        elif kind == GET_STATE and len(msg) == 5:
            self._on_get_state(src, msg)
        elif kind == STATE and len(msg) == 3:
            self._on_state(src, msg)
        elif kind == VIEW_CHANGE and len(msg) == 8:
            self._on_view_change(src, msg)
        elif kind == NEW_VIEW and len(msg) == 5:
            self._on_new_view(src, msg)
        else:
            # unknown kind or wrong arity: signed-or-not babble
            self.malformed_rejects += 1

    # -- client requests -----------------------------------------------------------

    def _on_request(self, request: tuple) -> None:
        if not self._valid_request(request):
            return
        _, client, req_id, op, _sig = request
        if self._dedup.executed(client, req_id):
            result = self._dedup.reply(client, req_id)
            if result is not MISSING:
                self.ctx.send(client, (REPLY, self.pid, req_id, result, self.view))
            return
        key = (client, req_id)
        if key not in self._pending:
            self._pending[key] = request
            self._pending_since[key] = self.ctx.now
            self.batch_policy.note_arrival(self.ctx.now)
        if self.is_primary:
            self._propose_pending()
        if self._vc_timer is None and self._pending:
            self._vc_timer = self.ctx.set_timer(
                self.timeout_policy.current(), self.VC_TIMER
            )

    def _emit_slot(self, seq: SeqNum, proposal: Any) -> None:
        """PipelinedProposer hook: one assigned slot onto the wire."""
        digest = content_hash(proposal)
        sig = self.signer.sign(pp_domain(self.view, seq, digest))
        self.ctx.broadcast(
            (PRE_PREPARE, self.view, seq, proposal, sig), include_self=True
        )

    # -- three phases -------------------------------------------------------------------

    def _on_pre_prepare(self, src: ProcessId, msg: tuple) -> None:
        _, view, seq, request, sig = msg
        if not isinstance(view, int) or not isinstance(seq, int) or seq < 1:
            return
        if seq <= self.stable_seq:
            return  # below the low watermark: already covered by a checkpoint
        if view != self.view or self.in_view_change is not None:
            return
        if src != self.primary_of(view):
            return
        if not self._valid_proposal(request):
            return
        digest = content_hash(request)
        if not (
            isinstance(sig, Signature)
            and sig.signer == src
            and self.scheme.verify(pp_domain(view, seq, digest), sig)
        ):
            return
        existing = self._accepted_pp.get(seq)
        if existing is not None and existing[0] == view and existing[1] != digest:
            return  # equivocating primary: first pre-prepare wins locally
        self._accepted_pp[seq] = (view, digest, request)
        self._requests[digest] = request
        for req in _proposal_reqs(request):
            self._proposed_keys.add(request_key(req))
        my_sig = self.signer.sign(prep_domain(view, seq, digest, self.pid))
        self.ctx.broadcast(
            (PREPARE, view, seq, digest, self.pid, my_sig), include_self=True
        )

    def _on_prepare(self, src: ProcessId, msg: tuple) -> None:
        _, view, seq, digest, replica, sig = msg
        if not isinstance(digest, bytes):
            # an unhashable "digest" (a Byzantine peer can sign anything)
            # must not reach the vote-set keys
            self.malformed_rejects += 1
            return
        if replica != src or view != self.view or self.in_view_change is not None:
            return
        if src == self.primary_of(view):
            return  # the primary's pre-prepare is its prepare
        if not (
            isinstance(sig, Signature)
            and sig.signer == src
            and self.scheme.verify(prep_domain(view, seq, digest, src), sig)
        ):
            return
        key = (view, seq, digest)
        self._prepares.setdefault(key, set()).add(src)
        self._maybe_prepared(key)

    def _maybe_prepared(self, key: tuple) -> None:
        view, seq, digest = key
        accepted = self._accepted_pp.get(seq)
        if accepted is None or accepted[0] != view or accepted[1] != digest:
            return
        if len(self._prepares.get(key, ())) < 2 * self.f:
            return
        if key in self._commit_sent:
            return
        self._commit_sent.add(key)
        self._prepared_certs[seq] = (view, digest)
        sig = self.signer.sign(commit_domain(view, seq, digest, self.pid))
        self.ctx.broadcast(
            (COMMIT, view, seq, digest, self.pid, sig), include_self=True
        )

    def _on_commit(self, src: ProcessId, msg: tuple) -> None:
        _, view, seq, digest, replica, sig = msg
        if not isinstance(digest, bytes):
            self.malformed_rejects += 1
            return
        if replica != src or view != self.view or self.in_view_change is not None:
            return
        if not (
            isinstance(sig, Signature)
            and sig.signer == src
            and self.scheme.verify(commit_domain(view, seq, digest, src), sig)
        ):
            return
        key = (view, seq, digest)
        commits = self._commits.setdefault(key, set())
        commits.add(src)
        if (
            len(commits) >= 2 * self.f + 1
            and seq >= self.exec_next  # executed slots leave _certified
            and seq not in self._certified
        ):
            request = self._requests.get(digest)
            accepted = self._accepted_pp.get(seq)
            if request is None or accepted is None or accepted[1] != digest:
                return
            self._certified[seq] = request
            self._execute_ready()

    def _execute_ready(self) -> None:
        exec_start = self.exec_next
        while self.exec_next in self._certified:
            seq = self.exec_next
            proposal = self._certified[seq]
            requests = _proposal_reqs(proposal)
            slot_applied = False
            for request in requests:
                _, client, req_id, op, _sig = request
                key = (client, req_id)
                if self._is_executed(key):
                    continue
                result = self.app.apply(op)
                self._dedup.record(client, req_id, result)
                self._pending.pop(key, None)
                since = self._pending_since.pop(key, None)
                if since is not None:
                    latency = self.ctx.now - since
                    self.timeout_policy.observe(latency)
                    self.batch_policy.note_commit(latency, len(requests))
                self.timeout_policy.note_progress()
                self.commits_executed += 1
                self.ctx.record(
                    "custom", event="execute", seq=seq, client=client,
                    req_id=req_id, op=op, result=result,
                )
                self.ctx.send(client, (REPLY, self.pid, req_id, result, self.view))
                slot_applied = True
            if not slot_applied:
                # duplicates of already-applied requests ordered into their
                # own slot: a no-op, recorded so stream auditors can tell a
                # benign hole from a lost slot
                self.noop_slots += 1
                self.ctx.record("custom", event="execute_noop", seq=seq)
            self.exec_next = seq + 1
            del self._certified[seq]
            if self.checkpoint_interval and seq % self.checkpoint_interval == 0:
                self._emit_checkpoint(seq)
        if not self._pending and self._vc_timer is not None:
            self.ctx.cancel_timer(self._vc_timer)
            self._vc_timer = None
        if self.exec_next != exec_start:
            # execution progress moved the window base: stalled proposals
            # (and stalled batch flushes) may proceed now
            self._pipeline_resume()

    # -- checkpointing / garbage collection ------------------------------------------------

    def _state_blob(self) -> tuple:
        return (
            "PBFT-CKPT-STATE",
            self.app.snapshot(),
            self._dedup.snapshot(),
            self.exec_next,
        )

    def _emit_checkpoint(self, seq: SeqNum) -> None:
        blob = self._state_blob()
        self._ckpt_blobs[seq] = blob
        digest = content_hash(blob)
        sig = self.signer.sign(ckpt_domain(seq, digest, self.pid))
        self.ctx.broadcast(
            (CHECKPOINT, seq, digest, self.pid, sig), include_self=True
        )

    def _on_checkpoint(self, src: ProcessId, msg: tuple) -> None:
        _, seq, digest, replica, sig = msg
        if replica != src or not isinstance(seq, int):
            return
        if not isinstance(digest, bytes):
            return
        if not (
            isinstance(sig, Signature)
            and sig.signer == src
            and self.scheme.verify(ckpt_domain(seq, digest, src), sig)
        ):
            return
        votes = self._ckpt_votes.setdefault((seq, digest), {})
        votes.setdefault(src, sig)
        if len(votes) < 2 * self.f + 1 or seq <= self.stable_seq:
            return
        if self.pid in votes:  # our own vote pins the blob we ship
            self._stabilize(seq, digest, votes)
        elif seq >= self.exec_next:
            # a quorum certified a checkpoint we have not even executed:
            # we are provably behind, fetch the certified state directly
            self._request_state(seq, digest, votes)

    def _stabilize(self, seq: SeqNum, digest: bytes,
                   votes: dict[ProcessId, Signature]) -> None:
        self.stable_seq = seq
        chosen = sorted(votes)[: 2 * self.f + 1]
        if self.pid not in chosen:
            chosen = [self.pid, *chosen[: 2 * self.f]]
        self._stable_cert = tuple(
            (r, seq, digest, votes[r]) for r in sorted(chosen)
        )
        self._stable_blob = self._ckpt_blobs.get(seq)
        # garbage-collect per-slot protocol state at or below the watermark
        before = len(self._prepared_certs) + len(self._accepted_pp)
        self._prepared_certs = {
            s: c for s, c in self._prepared_certs.items() if s > seq
        }
        self._accepted_pp = {
            s: a for s, a in self._accepted_pp.items() if s > seq
        }
        self._prepares = {
            k: v for k, v in self._prepares.items() if k[1] > seq
        }
        self._commits = {
            k: v for k, v in self._commits.items() if k[1] > seq
        }
        self._certified = {
            s: r for s, r in self._certified.items() if s >= self.exec_next
        }
        self.log_entries_gced += before - (
            len(self._prepared_certs) + len(self._accepted_pp)
        )
        self._ckpt_blobs = {s: b for s, b in self._ckpt_blobs.items() if s >= seq}
        # drop everything below the low watermark that the prunes above
        # didn't already reach: commit-sent markers, checkpoint votes, the
        # digest->proposal store (keep only digests still referenced by a
        # live accepted pre-prepare or prepared certificate), and request
        # keys settled by the checkpoint. This is what bounds replica
        # memory by checkpoint_interval + window, not O(total requests).
        self._commit_sent = {k for k in self._commit_sent if k[1] > seq}
        self._ckpt_votes = {
            k: v for k, v in self._ckpt_votes.items() if k[0] > seq
        }
        live = {a[1] for a in self._accepted_pp.values()} | {
            c[1] for c in self._prepared_certs.values()
        }
        self._requests = {
            d: r for d, r in self._requests.items() if d in live
        }
        self._proposed_keys = {
            k for k in self._proposed_keys if not self._is_executed(k)
        }
        self.ctx.record("custom", event="checkpoint_stable", seq=seq)
        # a stabilized checkpoint moves the window's low watermark
        self._pipeline_resume()

    # -- proactive state transfer ----------------------------------------------------------

    def _request_state(self, seq: SeqNum, digest: bytes,
                       votes: dict[ProcessId, Signature],
                       force: bool = False) -> None:
        """Ask the checkpoint's voters for the blob behind a 2f+1-certified
        digest at or above our execution frontier. Asked of every voter,
        not f+1: a correct voter that stabilized a *later* checkpoint has
        pruned this blob and stays silent, and at most f are faulty."""
        if seq <= self._state_requested and not force:
            return
        self._state_requested = seq
        sig = self.signer.sign(gs_domain(seq, digest, self.pid))
        for r in sorted(votes):
            if r != self.pid:
                self.ctx.send(r, (GET_STATE, seq, digest, self.pid, sig))

    def _on_get_state(self, src: ProcessId, msg: tuple) -> None:
        _, seq, digest, replica, sig = msg
        if replica != src or not isinstance(seq, int) or not isinstance(digest, bytes):
            return
        if not (
            isinstance(sig, Signature)
            and sig.signer == src
            and self.scheme.verify(gs_domain(seq, digest, src), sig)
        ):
            return
        blob = self._ckpt_blobs.get(seq)
        if blob is not None and content_hash(blob) == digest:
            self.ctx.send(src, (STATE, seq, blob))

    def _on_state(self, src: ProcessId, msg: tuple) -> None:
        """Install a fetched checkpoint blob. The sender is untrusted: the
        blob is accepted only if it hashes to a digest we hold a local
        2f+1 certificate for, exactly the check NEW-VIEW fast-forward
        applies to blobs piggybacked on VIEW-CHANGE messages."""
        _, seq, blob = msg
        if not isinstance(seq, int) or seq < self.exec_next:
            return  # already caught up past this checkpoint
        try:
            digest = content_hash(blob)
        except Exception:
            return
        votes = self._ckpt_votes.get((seq, digest))
        if votes is None or len(votes) < 2 * self.f + 1:
            return  # no local certificate pins this blob
        if not (
            isinstance(blob, tuple) and len(blob) == 4
            and blob[0] == "PBFT-CKPT-STATE" and isinstance(blob[3], int)
        ):
            return
        _tag, snapshot, dedup_image, exec_next = blob
        if exec_next <= self.exec_next:
            return
        self.app.restore(snapshot)
        self._dedup.restore(dedup_image)
        self.exec_next = exec_next
        self.next_seq = max(self.next_seq, exec_next)
        self._certified = {
            s: r for s, r in self._certified.items() if s >= exec_next
        }
        self._pending = {
            k: r for k, r in self._pending.items()
            if not self._is_executed(k)
        }
        self._pending_since = {
            k: t for k, t in self._pending_since.items()
            if k in self._pending
        }
        self.state_transfers += 1
        self.ctx.record(
            "custom", event="state_transfer", stable_seq=seq,
            exec_next=exec_next,
        )
        # adopt the checkpoint as our own: after the restore our state blob
        # reproduces the certified digest bit-for-bit, so re-announcing it
        # adds our vote to the certificate and stabilization (log GC, the
        # window's low watermark) follows the normal _on_checkpoint path
        self._emit_checkpoint(seq)
        self._execute_ready()
        self._pipeline_resume()

    def _retry_state_fetch(self) -> bool:
        """Re-send the best outstanding state request (view-change timer
        path: covers a GET-STATE/STATE exchange lost to network faults
        after the certificate already formed, when no further checkpoint
        traffic will re-trigger the fetch)."""
        best = None
        for (seq, digest), votes in self._ckpt_votes.items():
            if (
                len(votes) >= 2 * self.f + 1
                and seq >= self.exec_next
                and self.pid not in votes
                and (best is None or seq > best[0])
            ):
                best = (seq, digest, votes)
        if best is None:
            return False
        self._request_state(*best, force=True)
        return True

    @staticmethod
    def _validate_ckpt_cert(scheme, cert: Any, f: int):
        """Returns (seq, digest) when cert holds 2f+1 matching signatures."""
        if not isinstance(cert, tuple) or len(cert) < 2 * f + 1:
            return None
        seq = digest = None
        seen = set()
        for item in cert:
            if not (isinstance(item, tuple) and len(item) == 4):
                return None
            r, c_seq, c_digest, sig = item
            if seq is None:
                seq, digest = c_seq, c_digest
            elif (c_seq, c_digest) != (seq, digest):
                return None
            if r in seen or not isinstance(c_seq, int):
                return None
            if not (
                isinstance(sig, Signature)
                and sig.signer == r
                and scheme.verify(ckpt_domain(c_seq, c_digest, r), sig)
            ):
                return None
            seen.add(r)
        if seq is None or len(seen) < 2 * f + 1:
            return None
        return seq, digest

    # -- view change ----------------------------------------------------------------------

    def on_timer(self, tag: Any) -> None:
        if tag == self.BATCH_TAG:
            self._on_batch_timer()
            return
        if tag != self.VC_TIMER:
            return
        self._vc_timer = None
        if not self._pending and self.in_view_change is None:
            return
        # a pending set stuck behind a certified-but-unfetched checkpoint
        # is a catch-up problem, not a primary problem: re-send the fetch
        # alongside the view change in case the first exchange was lost
        self._retry_state_fetch()
        # unproductive expiry: back the timeout off before re-arming
        self.timeout_policy.escalate()
        target = (self.in_view_change or self.view) + 1
        self._send_view_change(target)
        self._vc_timer = self.ctx.set_timer(
            self.timeout_policy.current(), self.VC_TIMER
        )

    def _prepared_evidence(self) -> tuple:
        """(seq, view, digest, request) for every slot this replica prepared."""
        out = []
        for seq, (view, digest) in sorted(self._prepared_certs.items()):
            request = self._requests.get(digest)
            if request is not None:
                out.append((seq, view, digest, request))
        return tuple(out)

    def _send_view_change(self, new_view: int) -> None:
        if new_view in self._vc_sent:
            return
        self._vc_sent.add(new_view)
        self.in_view_change = max(self.in_view_change or 0, new_view)
        self.ctx.record("custom", event="view_change_start", new_view=new_view)
        body = (self.stable_seq, self._stable_cert, self._stable_blob,
                self._prepared_evidence())
        sig = self.signer.sign(vc_domain(new_view, body, self.pid))
        self.ctx.broadcast(
            (VIEW_CHANGE, new_view, *body, self.pid, sig), include_self=True
        )

    def _validate_vc_body(self, stable_seq: Any, cert: Any, blob: Any,
                          prepared: Any) -> bool:
        """Checkpoint consistency of a VIEW-CHANGE body.

        ``stable_seq = 0`` means no checkpoint yet (empty cert, no blob);
        otherwise the certificate must be a valid 2f+1 stable-checkpoint
        proof for exactly ``stable_seq``, and the piggybacked state blob
        must hash to the certified digest (that is what makes the blob safe
        to install during fast-forward).
        """
        if not isinstance(stable_seq, int) or stable_seq < 0:
            return False
        if not isinstance(prepared, tuple):
            return False
        if stable_seq == 0:
            return cert == () and blob is None
        checked = self._validate_ckpt_cert(self.scheme, cert, self.f)
        if checked is None or checked[0] != stable_seq:
            return False
        try:
            return content_hash(blob) == checked[1]
        except Exception:
            return False

    def _on_view_change(self, src: ProcessId, msg: tuple) -> None:
        _, new_view, stable_seq, cert, blob, prepared, replica, sig = msg
        if replica != src or not isinstance(new_view, int) or new_view <= self.view:
            return
        body = (stable_seq, cert, blob, prepared)
        try:
            domain = vc_domain(new_view, body, src)
        except Exception:
            # unserializable body: nothing could have been signed over it
            self.malformed_rejects += 1
            return
        if not (
            isinstance(sig, Signature)
            and sig.signer == src
            and self.scheme.verify(domain, sig)
        ):
            return
        if not self._validate_vc_body(stable_seq, cert, blob, prepared):
            return
        self._vcs.setdefault(new_view, {})[src] = (body, sig)
        # join a view change that has quorum momentum
        if len(self._vcs[new_view]) >= self.f + 1:
            self._send_view_change(new_view)
        if (
            self.primary_of(new_view) == self.pid
            and len(self._vcs[new_view]) >= 2 * self.f + 1
            and new_view not in self._new_view_sent
        ):
            self._new_view_sent.add(new_view)
            vcs = tuple(
                (r, *body, vsig)
                for r, (body, vsig) in sorted(self._vcs[new_view].items())
            )[: 2 * self.f + 1]
            reproposals = self._compute_reproposals(vcs)
            sig_nv = self.signer.sign(
                ("PBFT-NV", new_view, content_hash(vcs), self.pid)
            )
            self.ctx.broadcast(
                (NEW_VIEW, new_view, vcs, reproposals, sig_nv), include_self=True
            )

    @staticmethod
    def _compute_reproposals(vcs: tuple) -> tuple:
        """Deterministic re-proposal set from the VC bundle.

        Slots at or below the highest stable checkpoint among the VCs are
        covered by state transfer, not re-proposal.
        """
        best_stable = 0
        for item in vcs:
            if isinstance(item, tuple) and len(item) == 6 and isinstance(item[1], int):
                best_stable = max(best_stable, item[1])
        best: dict[SeqNum, tuple] = {}
        for item in vcs:
            if not (isinstance(item, tuple) and len(item) == 6):
                continue
            prepared = item[4]
            if not isinstance(prepared, tuple):
                continue
            for entry in prepared:
                if not (isinstance(entry, tuple) and len(entry) == 4):
                    continue
                seq, view, digest, request = entry
                if not isinstance(seq, int) or seq <= best_stable:
                    continue
                cur = best.get(seq)
                if cur is None or view > cur[1]:
                    best[seq] = (seq, view, digest, request)
        # fill sequence gaps with null requests so execution can step over
        # slots no VIEW-CHANGE proved prepared (see NULL_REQUEST above);
        # without the fill a hole below committed slots wedges the exec
        # frontier and every subsequent view change churns in place
        max_slot = max(best, default=best_stable)
        return tuple(
            best.get(s, (s, 0, content_hash(NULL_REQUEST), NULL_REQUEST))
            for s in range(best_stable + 1, max_slot + 1)
        )

    def _on_new_view(self, src: ProcessId, msg: tuple) -> None:
        _, new_view, vcs, reproposals, sig = msg
        if not isinstance(new_view, int) or new_view <= self.view:
            return
        if src != self.primary_of(new_view):
            return
        try:
            vcs_digest = content_hash(vcs)
        except Exception:
            self.malformed_rejects += 1
            return
        if not (
            isinstance(sig, Signature)
            and sig.signer == src
            and self.scheme.verify(
                ("PBFT-NV", new_view, vcs_digest, src), sig
            )
        ):
            return
        if not isinstance(vcs, tuple) or len(vcs) < 2 * self.f + 1:
            return
        seen: set[ProcessId] = set()
        best_stable = 0
        best_blob = None
        for item in vcs:
            if not (isinstance(item, tuple) and len(item) == 6):
                return
            r, stable_seq, cert, blob, prepared, vsig = item
            if r in seen or not isinstance(r, int) or not (0 <= r < self.n):
                return
            body = (stable_seq, cert, blob, prepared)
            if not (
                isinstance(vsig, Signature)
                and vsig.signer == r
                and self.scheme.verify(vc_domain(new_view, body, r), vsig)
            ):
                return
            if not self._validate_vc_body(stable_seq, cert, blob, prepared):
                return
            if stable_seq > best_stable:
                best_stable, best_blob = stable_seq, blob
            seen.add(r)
        expected = self._compute_reproposals(vcs)
        if expected != reproposals:
            return
        # adopt the view, fast-forwarding over checkpointed slots if behind
        self.view = new_view
        self.in_view_change = None
        self.view_changes_completed += 1
        if best_stable >= self.exec_next and best_blob is not None:
            _tag, snapshot, dedup_image, exec_next = best_blob
            self.app.restore(snapshot)
            self._dedup.restore(dedup_image)
            self.exec_next = exec_next
            self._certified = {
                s: r for s, r in self._certified.items() if s >= exec_next
            }
            self._pending = {
                k: r for k, r in self._pending.items()
                if not self._is_executed(k)
            }
            self._pending_since = {
                k: t for k, t in self._pending_since.items()
                if k in self._pending
            }
            self.ctx.record(
                "custom", event="state_transfer", stable_seq=best_stable,
                exec_next=exec_next,
            )
            self._execute_ready()
        self._accepted_pp = {
            s: a for s, a in self._accepted_pp.items() if s > best_stable
        }
        self._proposed_keys = set()
        self._commit_sent = set()
        if self._batch_timer is not None:
            # a batch window opened under the old view must not flush into
            # the new one with a stale timer
            self.ctx.cancel_timer(self._batch_timer)
            self._batch_timer = None
        self._batch_stalled = False
        self.ctx.record("custom", event="view_adopted", view=new_view)
        max_slot = max((item[0] for item in reproposals), default=best_stable)
        self.next_seq = max(max_slot + 1, self.exec_next)
        self.timeout_policy.note_progress()  # the view change delivered
        if self._vc_timer is not None:
            self.ctx.cancel_timer(self._vc_timer)
            self._vc_timer = None
        if self._pending:
            self._vc_timer = self.ctx.set_timer(
                self.timeout_policy.current(), self.VC_TIMER
            )
        if self.primary_of(new_view) == self.pid:
            for seq, _view, digest, request in reproposals:
                if self._valid_proposal(request):
                    d = content_hash(request)
                    s = self.signer.sign(pp_domain(new_view, seq, d))
                    for req in _proposal_reqs(request):
                        self._proposed_keys.add(request_key(req))
                    self.ctx.broadcast(
                        (PRE_PREPARE, new_view, seq, request, s), include_self=True
                    )
            self._propose_pending()

    # -- forensic quarantine ----------------------------------------------------------------

    def convict(self, culprit: ProcessId) -> None:
        """Stop accepting input from a convicted replica.

        With n = 3f+1 the quorum intersection already tolerates the
        culprit's worst behaviour, so unlike MinBFT — whose f+1 quorums
        lean on the very hardware a conviction discredits and which must
        therefore roll back — a PBFT conviction only silences the source,
        and moves the view along if the culprit happens to be primary.
        """
        if culprit == self.pid or culprit in self._convicted:
            return
        self._convicted.add(culprit)
        self.ctx.record("custom", event="convict", culprit=culprit)
        if self.primary_of(self.view) == culprit and self.in_view_change is None:
            target = self.view + 1
            while self.primary_of(target) in self._convicted:
                target += 1
            self._send_view_change(target)

    def slot_state_size(self) -> int:
        """Total per-slot/per-request entries this replica holds (the soak
        tests assert this stays bounded by checkpoint interval + window)."""
        return (
            len(self._accepted_pp)
            + sum(len(v) for v in self._prepares.values())
            + sum(len(v) for v in self._commits.values())
            + len(self._prepared_certs)
            + len(self._commit_sent)
            + len(self._certified)
            + len(self._requests)
            + len(self._proposed_keys)
            + len(self._ckpt_blobs)
            + len(self._ckpt_votes)
            + len(self._pending)
            + self._dedup.size()
        )
