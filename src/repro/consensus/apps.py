"""Deterministic state machines replicated by the consensus protocols.

A :class:`StateMachine` consumes operations (immutable tuples) and returns
results; determinism is the only requirement (same op sequence ⇒ same
results and state digest). The digest is what the safety checker compares
across replicas.
"""

from __future__ import annotations

from typing import Any

from ..crypto.serialize import content_hash
from ..errors import ConfigurationError


class StateMachine:
    """Base class; subclasses implement :meth:`apply` over tuple ops."""

    def apply(self, op: tuple) -> Any:
        raise NotImplementedError

    def snapshot(self) -> Any:
        """Canonical-serializable rendering of the full state."""
        raise NotImplementedError

    def restore(self, snapshot: Any) -> None:
        """Install a state previously produced by :meth:`snapshot`.

        Used by checkpoint-based state transfer: a replica that fell behind
        a stable checkpoint fast-forwards by installing the certified
        snapshot instead of replaying garbage-collected slots.
        """
        raise NotImplementedError

    def digest(self) -> bytes:
        return content_hash(self.snapshot())


class CounterApp(StateMachine):
    """A single integer register: ``("add", k)`` and ``("get",)``."""

    def __init__(self) -> None:
        self.value = 0

    def apply(self, op: tuple) -> Any:
        match op:
            case ("add", int(k)):
                self.value += k
                return self.value
            case ("get",):
                return self.value
        raise ConfigurationError(f"counter app: unknown op {op!r}")

    def snapshot(self) -> Any:
        return ("counter", self.value)

    def restore(self, snapshot: Any) -> None:
        tag, value = snapshot
        if tag != "counter":
            raise ConfigurationError(f"not a counter snapshot: {snapshot!r}")
        self.value = value


class KVStoreApp(StateMachine):
    """String-keyed store: ``put``/``get``/``delete``/``cas``."""

    def __init__(self) -> None:
        self.data: dict[str, Any] = {}

    def apply(self, op: tuple) -> Any:
        match op:
            case ("put", str(k), v):
                self.data[k] = v
                return "OK"
            case ("get", str(k)):
                return self.data.get(k)
            case ("delete", str(k)):
                return self.data.pop(k, None) is not None
            case ("cas", str(k), expected, v):
                if self.data.get(k) == expected:
                    self.data[k] = v
                    return True
                return False
        raise ConfigurationError(f"kv app: unknown op {op!r}")

    def snapshot(self) -> Any:
        return ("kv", tuple(sorted(self.data.items())))

    def restore(self, snapshot: Any) -> None:
        tag, items = snapshot
        if tag != "kv":
            raise ConfigurationError(f"not a kv snapshot: {snapshot!r}")
        self.data = dict(items)


class BankApp(StateMachine):
    """Toy ledger with overdraft protection — order-sensitive on purpose.

    Transfers fail on insufficient funds, so replicas that executed ops in
    different orders diverge in observable results, making this the most
    sensitive app for safety checking.
    """

    def __init__(self) -> None:
        self.accounts: dict[str, int] = {}

    def apply(self, op: tuple) -> Any:
        match op:
            case ("open", str(acct)):
                self.accounts.setdefault(acct, 0)
                return "OK"
            case ("deposit", str(acct), int(amount)) if amount >= 0:
                if acct not in self.accounts:
                    return "NO-ACCOUNT"
                self.accounts[acct] += amount
                return self.accounts[acct]
            case ("transfer", str(src), str(dst), int(amount)) if amount >= 0:
                if src not in self.accounts or dst not in self.accounts:
                    return "NO-ACCOUNT"
                if self.accounts[src] < amount:
                    return "INSUFFICIENT"
                self.accounts[src] -= amount
                self.accounts[dst] += amount
                return "OK"
            case ("balance", str(acct)):
                return self.accounts.get(acct)
        raise ConfigurationError(f"bank app: unknown op {op!r}")

    def snapshot(self) -> Any:
        return ("bank", tuple(sorted(self.accounts.items())))

    def restore(self, snapshot: Any) -> None:
        tag, items = snapshot
        if tag != "bank":
            raise ConfigurationError(f"not a bank snapshot: {snapshot!r}")
        self.accounts = dict(items)


class NoopApp(StateMachine):
    """Accepts any op and returns it; state is the op log digest chain.

    Used by adapters (e.g. one-shot agreement) where ordering is the whole
    point and the ops carry their own meaning.
    """

    def __init__(self) -> None:
        self.count = 0

    def apply(self, op: tuple) -> Any:
        self.count += 1
        return op

    def snapshot(self) -> Any:
        return ("noop", self.count)

    def restore(self, snapshot: Any) -> None:
        tag, count = snapshot
        if tag != "noop":
            raise ConfigurationError(f"not a noop snapshot: {snapshot!r}")
        self.count = count


APP_FACTORIES = {
    "counter": CounterApp,
    "kv": KVStoreApp,
    "bank": BankApp,
    "noop": NoopApp,
}


def make_app(name: str) -> StateMachine:
    try:
        return APP_FACTORIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown app {name!r}; available: {sorted(APP_FACTORIES)}"
        ) from None
