"""Pipelined proposal engine: in-flight windows + adaptive batch sizing.

Shared by :class:`~repro.consensus.minbft.MinBFTReplica` and
:class:`~repro.consensus.pbft.PBFTReplica` — both drive their primary-side
proposal path through :class:`PipelinedProposer`, which layers two
orthogonal throughput mechanisms over the per-request legacy behaviour:

**Bounded in-flight window.** ``window_size > 0`` caps how many slots may
be outstanding between the window base — ``max(stable_seq, exec_next-1)``,
i.e. the newer of the stable checkpoint and the execution frontier — and
``next_seq``. A primary at the window edge *stalls* its proposals (the
requests simply stay pending) and resumes when execution progress or
checkpoint stabilization moves the base. Anchoring the base on the
execution frontier as well as the stable checkpoint means a window
smaller than the checkpoint interval cannot deadlock (classic
PBFT watermarks, which anchor on the checkpoint alone, require
``window > interval``); the checkpoint anchor still matters after a
state-transfer fast-forward, where ``stable_seq`` leads ``exec_next``.

**Policy-driven batching.** A batch flushes on *size* (pending reaches the
policy's cap) or on *deadline* (a timer armed when the first request of a
batch arrives), whichever comes first. :class:`FixedBatchPolicy`
reproduces the legacy fixed-delay timer bit-exactly (no cap, flush only
on the timer, the whole queue into one slot). :class:`AdaptiveBatchPolicy`
sizes the cap from EWMA estimates of the observed arrival rate and commit
latency — ``cap ≈ arrival_rate × max(commit_latency, target_delay)``, the
classic "one commit round-trip's worth of arrivals" pipeline-matching
rule — so light load flushes immediately (cap collapses to 1, the size
trigger fires on arrival, no timer latency is ever paid) and heavy load
amortizes the per-slot USIG/signature cost over large batches.

A batch flush that meets a full window **re-queues**: the unproposed
requests stay pending, a stall is counted, and the flush re-runs as soon
as the window reopens. Nothing is ever dropped at the window edge.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ConfigurationError
from ..types import SeqNum


class FixedBatchPolicy:
    """Legacy batching: flush everything pending, ``delay`` after the first
    arrival. No size cap — the size trigger never fires."""

    __slots__ = ("delay",)

    def __init__(self, delay: float = 0.2) -> None:
        if delay <= 0:
            raise ConfigurationError(f"batch delay must be > 0, got {delay}")
        self.delay = delay

    def cap(self) -> Optional[int]:
        return None

    def deadline(self) -> float:
        return self.delay

    def note_arrival(self, now: float) -> None:
        pass

    def note_commit(self, latency: float, batch_size: int) -> None:
        pass


class AdaptiveBatchPolicy:
    """EWMA-adapted batch cap: match the batch to the pipeline.

    ``cap = clamp(arrival_rate × max(commit_latency, target_delay))`` —
    the number of requests expected to arrive while one slot commits.
    Under light load the rate estimate collapses the cap to
    ``min_cap`` (=1 by default), so a lone request is proposed the moment
    it arrives; under heavy load the cap grows toward ``max_cap`` and the
    per-slot crypto cost is amortized over the whole batch. The deadline
    bounds the latency a request can spend waiting for companions when
    arrivals pause mid-batch.

    All state is per-replica and updated only from locally observed,
    deterministic quantities (arrival times, arrival-to-execution
    latencies), so a seeded run adapts identically on every replay.
    """

    __slots__ = (
        "target_delay", "min_cap", "max_cap", "alpha",
        "_last_arrival", "_interarrival", "_latency",
    )

    def __init__(
        self,
        target_delay: float = 0.1,
        min_cap: int = 1,
        max_cap: int = 256,
        alpha: float = 0.2,
    ) -> None:
        if target_delay <= 0:
            raise ConfigurationError(
                f"target_delay must be > 0, got {target_delay}"
            )
        if not 1 <= min_cap <= max_cap:
            raise ConfigurationError(
                f"need 1 <= min_cap <= max_cap, got {min_cap}, {max_cap}"
            )
        if not 0 < alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.target_delay = target_delay
        self.min_cap = min_cap
        self.max_cap = max_cap
        self.alpha = alpha
        self._last_arrival: Optional[float] = None
        self._interarrival: Optional[float] = None
        self._latency: Optional[float] = None

    def cap(self) -> Optional[int]:
        if self._interarrival is None or self._interarrival <= 0:
            return self.min_cap
        rate = 1.0 / self._interarrival
        horizon = max(self._latency or 0.0, self.target_delay)
        return max(self.min_cap, min(self.max_cap, int(rate * horizon)))

    def deadline(self) -> float:
        return self.target_delay

    def note_arrival(self, now: float) -> None:
        if self._last_arrival is not None:
            dt = now - self._last_arrival
            if dt >= 0:
                if self._interarrival is None:
                    self._interarrival = dt
                else:
                    self._interarrival += self.alpha * (dt - self._interarrival)
        self._last_arrival = now

    def note_commit(self, latency: float, batch_size: int) -> None:
        if latency < 0:
            return
        if self._latency is None:
            self._latency = latency
        else:
            self._latency += self.alpha * (latency - self._latency)


def make_batch_policy(spec: Any, batch_delay: float = 0.2) -> Any:
    """Resolve a batch-policy spec: None/"fixed" → legacy fixed delay,
    "adaptive" → :class:`AdaptiveBatchPolicy`, a zero-arg factory → its
    product, a policy instance → itself."""
    if spec is None or spec == "fixed":
        return FixedBatchPolicy(batch_delay)
    if spec == "adaptive":
        return AdaptiveBatchPolicy()
    if callable(spec) and not hasattr(spec, "cap"):
        spec = spec()
    if not hasattr(spec, "cap") or not hasattr(spec, "deadline"):
        raise ConfigurationError(
            f"batch policy must define cap()/deadline(), got {spec!r}"
        )
    return spec


class PipelinedProposer:
    """Mixin: the primary-side windowed/batched proposal engine.

    The host class provides the protocol state the engine reads
    (``is_primary``, ``next_seq``, ``exec_next``, ``stable_seq``,
    ``_pending``, ``_proposed_keys``, ``_is_executed``, ``ctx``) and
    implements :meth:`_emit_slot`, which assigns one slot's proposal to
    the wire (USIG-signed PREPARE for MinBFT, signed PRE-PREPARE for
    PBFT). Hosts call:

    - :meth:`_init_pipeline` from ``__init__``;
    - :meth:`_propose_pending` whenever fresh requests may be proposable
      (request arrival, view adoption);
    - :meth:`_on_batch_timer` from ``on_timer`` for :attr:`BATCH_TAG`;
    - :meth:`_pipeline_resume` whenever the window base may have moved
      (execution progress, checkpoint stabilization, state transfer).
    """

    BATCH_TAG = "batch"

    def _init_pipeline(
        self,
        batching: Any,
        batch_policy: Any,
        batch_delay: float,
        window_size: int,
    ) -> None:
        if window_size < 0:
            raise ConfigurationError(
                f"window_size must be >= 0, got {window_size}"
            )
        self.batching = bool(batching)
        self.batch_delay = batch_delay
        self.batch_policy = make_batch_policy(
            batch_policy if batching else None, batch_delay
        )
        self.window_size = window_size
        self._batch_timer: Optional[int] = None
        self._batch_stalled = False
        # pipeline counters (all deterministic for a fixed seed)
        self.proposal_stalls = 0
        self.batches_flushed = 0
        self.noop_slots = 0
        self.batch_size_hist: dict[int, int] = {}
        self._window_peak = 0
        self._window_sum = 0
        self._window_samples = 0

    # -- window ------------------------------------------------------------

    def _window_base(self) -> SeqNum:
        return max(self.stable_seq, self.exec_next - 1)

    def _window_full(self) -> bool:
        return bool(self.window_size) and (
            self.next_seq - self._window_base() > self.window_size
        )

    def _note_window_slot(self) -> None:
        occupancy = self.next_seq - 1 - self._window_base()
        if occupancy > self._window_peak:
            self._window_peak = occupancy
        self._window_sum += occupancy
        self._window_samples += 1

    # -- proposal path -----------------------------------------------------

    def _fresh_pending(self) -> list[tuple[tuple, Any]]:
        return [
            (key, request)
            for key, request in sorted(self._pending.items())
            if key not in self._proposed_keys and not self._is_executed(key)
        ]

    def _propose_pending(self) -> None:
        if not self.is_primary:
            return
        fresh = self._fresh_pending()
        if not fresh:
            return
        if self.batching:
            cap = self.batch_policy.cap()
            size_ready = cap is not None and len(fresh) >= cap
            if (size_ready or self._batch_stalled) and not self._window_full():
                self._flush_batch_now(fresh)
            elif self._batch_timer is None:
                # open the batch window; the deadline timer flushes it
                self._batch_timer = self.ctx.set_timer(
                    self.batch_policy.deadline(), self.BATCH_TAG
                )
            return
        stalled = False
        for key, request in fresh:
            if self._window_full():
                stalled = True
                break
            seq = self.next_seq
            self.next_seq += 1
            self._proposed_keys.add(key)
            self._emit_slot(seq, request)
            self._note_window_slot()
        if stalled:
            self.proposal_stalls += 1

    def _on_batch_timer(self) -> None:
        self._batch_timer = None
        if not self.is_primary:
            return
        self._flush_batch_now(self._fresh_pending())

    def _flush_batch_now(self, fresh: list[tuple[tuple, Any]]) -> None:
        """Flush pending requests into slots, capped per slot by the policy.

        A full window mid-flush re-queues the remainder (the requests stay
        pending, :attr:`_batch_stalled` re-triggers the flush the moment
        the window reopens) — a deadline firing at the window edge must
        never drop requests.
        """
        self._batch_stalled = False
        while fresh:
            if self._window_full():
                self.proposal_stalls += 1
                self._batch_stalled = True
                return
            cap = self.batch_policy.cap()
            if cap is None:
                take, fresh = fresh, []
            else:
                take, fresh = fresh[:cap], fresh[cap:]
            seq = self.next_seq
            self.next_seq += 1
            for key, _request in take:
                self._proposed_keys.add(key)
            batch = ("BATCH", *(request for _key, request in take))
            self.batches_flushed += 1
            self.batch_size_hist[len(take)] = (
                self.batch_size_hist.get(len(take), 0) + 1
            )
            self._emit_slot(seq, batch)
            self._note_window_slot()

    def _pipeline_resume(self) -> None:
        """Re-run stalled proposals after the window base moved."""
        if not self.window_size or not self.is_primary:
            return
        if self._batch_stalled:
            self._flush_batch_now(self._fresh_pending())
        else:
            self._propose_pending()

    def _emit_slot(self, seq: SeqNum, proposal: Any) -> None:
        raise NotImplementedError

    # -- counters ----------------------------------------------------------

    def consensus_stats(self) -> dict[str, Any]:
        """Pipeline counters for :class:`~repro.sim.scheduler.RunStats` /
        ``ChaosResult.stats["consensus"]`` aggregation (numeric values are
        summed key-wise across replicas; the histogram merges key-wise)."""
        return {
            "commits_executed": self.commits_executed,
            "batches_flushed": self.batches_flushed,
            "proposal_stalls": self.proposal_stalls,
            "noop_slots": self.noop_slots,
            "window_peak": self._window_peak,
            "window_occupancy_sum": self._window_sum,
            "window_samples": self._window_samples,
            # PBFT's proactive checkpoint fetch; MinBFT catches up via
            # VIEW-CHANGE blobs instead and reports 0
            "state_transfers": getattr(self, "state_transfers", 0),
            # typed rejects of malformed/Byzantine input (babble hardening)
            # and of convicted-replica input (forensic quarantine)
            "malformed_rejects": getattr(self, "malformed_rejects", 0),
            "convicted_rejects": getattr(self, "convicted_rejects", 0),
            "batch_size_hist": dict(self.batch_size_hist),
        }
