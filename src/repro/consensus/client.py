"""BFT clients, shared by MinBFT and PBFT: closed-loop and open-loop.

The classic closed-loop client submits its operations one at a time:
sign, broadcast to all replicas, wait for ``reply_quorum`` matching
replies (f+1 — at least one from a correct replica), record the latency,
move on. Retransmission on a timer covers lost-to-a-faulty-primary
requests (the retransmission is what eventually triggers a view change
at the backups).

That shape can never saturate a pipelined replication core: one
outstanding request per client means throughput is bounded by
``n_clients / commit_latency`` regardless of how many slots the primary
can keep in flight. Two extensions lift the bound:

- ``max_outstanding = N`` keeps up to N requests in flight
  simultaneously, each with its own reply set, retry timer, and retry
  accounting. Completions may arrive out of submission order (slot 6 can
  commit while request 5 is still retrying through a view change) — the
  replica-side :class:`~repro.consensus.dedup.ClientDedup` exists
  precisely to make that safe.
- ``arrivals = [(t, op), ...]`` switches the client to *open-loop*: each
  operation is released at its virtual arrival time (e.g. a Poisson
  stream from :func:`repro.workloads.generator.open_loop_arrivals`)
  regardless of completions. Released operations beyond
  ``max_outstanding`` queue in a backlog — offered load above the
  cluster's capacity shows up as backlog growth and rising latency, which
  is exactly the saturation signal the pipeline benchmarks measure.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional, Sequence

from ..crypto.signatures import SignatureScheme, Signer
from ..errors import ConfigurationError, RetriesExhausted
from ..sim.process import Process
from ..types import ProcessId, Time
from .minbft import REPLY, REQUEST, request_domain


class BFTClient(Process):
    """Drives a list of operations against a replica group.

    ``ops`` is the workload (tuples the app understands). Completion data
    accumulates in ``latencies`` / ``results`` and in ``custom`` trace
    events (``request_sent`` / ``request_done``) for the analysis layer.

    ``retry_budget`` (a :class:`~repro.faults.timeouts.RetryBudget`
    instance or zero-arg factory) bounds retransmissions: when the budget
    refuses a retry, the client abandons that request with a typed
    :class:`~repro.errors.RetriesExhausted` (collected in ``failures``,
    surfaced as a ``request_failed`` trace event) and moves on, instead of
    feeding a retry storm. ``None`` keeps the legacy unbounded behavior.
    ``backoff_jitter > 0`` wraps the timeout policy in seed-deterministic
    multiplicative jitter so a fleet of clients doesn't retransmit in
    lockstep.

    ``max_outstanding`` bounds concurrent in-flight requests (1 = the
    legacy closed loop). ``arrivals`` switches to open-loop release (see
    the module docstring); when given, it supplies the operations and
    ``ops`` is ignored.
    """

    RETRY_TAG = "client-retry"
    THINK_TAG = "think"
    ARRIVAL_TAG = "client-arrival"

    def __init__(
        self,
        replicas: Sequence[ProcessId],
        reply_quorum: int,
        ops: Sequence[tuple],
        retry_timeout: float = 150.0,
        think_time: float = 0.0,
        timeout_policy: Any = None,
        retry_budget: Any = None,
        backoff_jitter: float = 0.0,
        max_outstanding: int = 1,
        arrivals: Optional[Sequence[tuple]] = None,
    ) -> None:
        super().__init__()
        if reply_quorum < 1:
            raise ConfigurationError(f"reply quorum must be >= 1, got {reply_quorum}")
        if backoff_jitter < 0:
            raise ConfigurationError(
                f"backoff_jitter must be >= 0, got {backoff_jitter}"
            )
        if max_outstanding < 1:
            raise ConfigurationError(
                f"max_outstanding must be >= 1, got {max_outstanding}"
            )
        self.replicas = tuple(replicas)
        self.reply_quorum = reply_quorum
        if arrivals is not None:
            arrivals = [(float(t), op) for t, op in arrivals]
            if any(
                arrivals[i][0] > arrivals[i + 1][0]
                for i in range(len(arrivals) - 1)
            ):
                raise ConfigurationError("arrivals must be time-sorted")
            ops = [op for _t, op in arrivals]
        self.arrivals = arrivals
        self.ops = list(ops)
        self.max_outstanding = max_outstanding
        self.retry_timeout = retry_timeout
        if timeout_policy is None:
            from ..faults.timeouts import FixedTimeout  # lazy: faults builds on consensus

            timeout_policy = FixedTimeout(retry_timeout)
        elif callable(timeout_policy) and not hasattr(timeout_policy, "current"):
            timeout_policy = timeout_policy()
        self.timeout_policy = timeout_policy
        if callable(retry_budget) and not hasattr(retry_budget, "try_spend"):
            retry_budget = retry_budget()
        self.retry_budget = retry_budget
        self.backoff_jitter = backoff_jitter
        self.think_time = think_time
        self.signer: Optional[Signer] = None  # injected by the harness
        self.scheme: Optional[SignatureScheme] = None
        self._next_op = 0  # closed-loop release cursor
        self._arrival_idx = 0  # open-loop release cursor
        self._backlog: deque[int] = deque()  # released, waiting for a slot
        # req_id -> {"sent_at", "attempts", "replies", "timer"}
        self._inflight: dict[int, dict[str, Any]] = {}
        self._done_recorded = False
        self.latencies: list[float] = []
        self.results: list[Any] = []
        self.failures: list[RetriesExhausted] = []
        self.retransmissions = 0
        self.peak_backlog = 0

    @property
    def done(self) -> bool:
        if self._inflight or self._backlog:
            return False
        if self.arrivals is not None:
            return self._arrival_idx >= len(self.arrivals)
        return self._next_op >= len(self.ops)

    @property
    def outstanding(self) -> int:
        return len(self._inflight)

    def on_start(self) -> None:
        if self.backoff_jitter > 0:
            from ..faults.timeouts import JitteredPolicy, derive_jitter_rng

            self.timeout_policy = JitteredPolicy(
                self.timeout_policy,
                derive_jitter_rng(self.ctx.seed, "client", self.pid),
                jitter=self.backoff_jitter,
            )
        if self.arrivals is not None:
            self._schedule_next_arrival()
            self._maybe_done()
        else:
            self._fill()

    # -- release ----------------------------------------------------------

    def _schedule_next_arrival(self) -> None:
        if self._arrival_idx >= len(self.arrivals):
            return
        t, _op = self.arrivals[self._arrival_idx]
        self.ctx.set_timer(max(0.0, t - self.ctx.now), self.ARRIVAL_TAG)

    def _fill(self) -> None:
        """Move released operations into free in-flight slots."""
        if self.arrivals is not None:
            while self._backlog and len(self._inflight) < self.max_outstanding:
                self._launch(self._backlog.popleft())
        else:
            while (
                self._next_op < len(self.ops)
                and len(self._inflight) < self.max_outstanding
            ):
                self._next_op += 1
                self._launch(self._next_op)
        self._maybe_done()

    def _launch(self, req_id: int) -> None:
        rec: dict[str, Any] = {
            "sent_at": self.ctx.now, "attempts": 1, "replies": {},
        }
        self._inflight[req_id] = rec
        if self.retry_budget is not None:
            self.retry_budget.note_send()
        self._send_request(req_id)
        self.ctx.record("custom", event="request_sent", req_id=req_id)
        rec["timer"] = self.ctx.set_timer(
            self.timeout_policy.current(), (self.RETRY_TAG, req_id)
        )

    def _send_request(self, req_id: int) -> None:
        assert self.signer is not None
        op = self.ops[req_id - 1]
        sig = self.signer.sign(request_domain(self.pid, req_id, op))
        for r in self.replicas:
            self.ctx.send(r, (REQUEST, self.pid, req_id, op, sig))

    def _maybe_done(self) -> None:
        if self.done and not self._done_recorded:
            self._done_recorded = True
            self.ctx.record("custom", event="client_done", ops=len(self.results))

    # -- timers -----------------------------------------------------------

    def on_timer(self, tag: Any) -> None:
        if tag == self.THINK_TAG:
            self._fill()
            return
        if tag == self.ARRIVAL_TAG:
            self._arrival_idx += 1
            self._backlog.append(self._arrival_idx)
            if len(self._backlog) > self.peak_backlog:
                self.peak_backlog = len(self._backlog)
            self._schedule_next_arrival()
            self._fill()
            return
        if not (
            isinstance(tag, tuple) and len(tag) == 2 and tag[0] == self.RETRY_TAG
        ):
            return
        req_id = tag[1]
        rec = self._inflight.get(req_id)
        if rec is None:
            return
        if self.retry_budget is not None and not self.retry_budget.try_spend():
            self._abandon(req_id)
            return
        self.retransmissions += 1
        rec["attempts"] += 1
        # unproductive expiry: back off before retransmitting
        self.timeout_policy.escalate()
        self._send_request(req_id)
        rec["timer"] = self.ctx.set_timer(self.timeout_policy.current(), tag)

    def _abandon(self, req_id: int) -> None:
        """Give up on one in-flight request: typed failure, move on."""
        rec = self._inflight.pop(req_id)
        failure = RetriesExhausted(req_id, rec["attempts"])
        self.failures.append(failure)
        self.ctx.record(
            "custom", event="request_failed", req_id=req_id,
            reason="retries_exhausted", attempts=rec["attempts"],
        )
        if self.think_time > 0:
            self.ctx.set_timer(self.think_time, self.THINK_TAG)
        else:
            self._fill()

    # -- replies ----------------------------------------------------------

    def on_message(self, src: ProcessId, msg: Any) -> None:
        if not (isinstance(msg, tuple) and len(msg) == 5 and msg[0] == REPLY):
            return
        _, replica, req_id, result, _view = msg
        rec = self._inflight.get(req_id)
        if rec is None or src not in self.replicas:
            return
        replies = rec["replies"]
        replies[src] = result
        matching = sum(1 for v in replies.values() if v == result)
        if matching >= self.reply_quorum:
            latency = self.ctx.now - rec["sent_at"]
            self.latencies.append(latency)
            self.results.append(result)
            self.timeout_policy.observe(latency)
            self.timeout_policy.note_progress()
            self.ctx.record(
                "custom", event="request_done", req_id=req_id,
                result=result, latency=latency,
            )
            del self._inflight[req_id]
            if rec["timer"] is not None:
                self.ctx.cancel_timer(rec["timer"])
            if self.think_time > 0:
                self.ctx.set_timer(self.think_time, self.THINK_TAG)
            else:
                self._fill()
