"""Closed-loop BFT clients, shared by MinBFT and PBFT.

A client submits its operations one at a time: sign, broadcast to all
replicas, wait for ``reply_quorum`` matching replies (f+1 — at least one
from a correct replica), record the latency, move on. Retransmission on a
timer covers lost-to-a-faulty-primary requests (the retransmission is what
eventually triggers a view change at the backups).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..crypto.signatures import SignatureScheme, Signer
from ..errors import ConfigurationError, RetriesExhausted
from ..sim.process import Process
from ..types import ProcessId, Time
from .minbft import REPLY, REQUEST, request_domain


class BFTClient(Process):
    """Drives a list of operations against a replica group.

    ``ops`` is the workload (tuples the app understands). Completion data
    accumulates in ``latencies`` / ``results`` and in ``custom`` trace
    events (``request_sent`` / ``request_done``) for the analysis layer.

    ``retry_budget`` (a :class:`~repro.faults.timeouts.RetryBudget`
    instance or zero-arg factory) bounds retransmissions: when the budget
    refuses a retry, the client abandons the request with a typed
    :class:`~repro.errors.RetriesExhausted` (collected in ``failures``,
    surfaced as a ``request_failed`` trace event) and moves on, instead of
    feeding a retry storm. ``None`` keeps the legacy unbounded behavior.
    ``backoff_jitter > 0`` wraps the timeout policy in seed-deterministic
    multiplicative jitter so a fleet of clients doesn't retransmit in
    lockstep.
    """

    RETRY_TAG = "client-retry"

    def __init__(
        self,
        replicas: Sequence[ProcessId],
        reply_quorum: int,
        ops: Sequence[tuple],
        retry_timeout: float = 150.0,
        think_time: float = 0.0,
        timeout_policy: Any = None,
        retry_budget: Any = None,
        backoff_jitter: float = 0.0,
    ) -> None:
        super().__init__()
        if reply_quorum < 1:
            raise ConfigurationError(f"reply quorum must be >= 1, got {reply_quorum}")
        if backoff_jitter < 0:
            raise ConfigurationError(
                f"backoff_jitter must be >= 0, got {backoff_jitter}"
            )
        self.replicas = tuple(replicas)
        self.reply_quorum = reply_quorum
        self.ops = list(ops)
        self.retry_timeout = retry_timeout
        if timeout_policy is None:
            from ..faults.timeouts import FixedTimeout  # lazy: faults builds on consensus

            timeout_policy = FixedTimeout(retry_timeout)
        elif callable(timeout_policy) and not hasattr(timeout_policy, "current"):
            timeout_policy = timeout_policy()
        self.timeout_policy = timeout_policy
        if callable(retry_budget) and not hasattr(retry_budget, "try_spend"):
            retry_budget = retry_budget()
        self.retry_budget = retry_budget
        self.backoff_jitter = backoff_jitter
        self.think_time = think_time
        self.signer: Optional[Signer] = None  # injected by the harness
        self.scheme: Optional[SignatureScheme] = None
        self._next_op = 0
        self._current_req_id: Optional[int] = None
        self._sent_at: Time = 0.0
        self._attempts = 0
        self._replies: dict[ProcessId, Any] = {}
        self._retry_timer: Optional[int] = None
        self.latencies: list[float] = []
        self.results: list[Any] = []
        self.failures: list[RetriesExhausted] = []
        self.retransmissions = 0

    @property
    def done(self) -> bool:
        return self._next_op >= len(self.ops) and self._current_req_id is None

    def on_start(self) -> None:
        if self.backoff_jitter > 0:
            from ..faults.timeouts import JitteredPolicy, derive_jitter_rng

            self.timeout_policy = JitteredPolicy(
                self.timeout_policy,
                derive_jitter_rng(self.ctx.seed, "client", self.pid),
                jitter=self.backoff_jitter,
            )
        self._submit_next()

    def _submit_next(self) -> None:
        if self._next_op >= len(self.ops):
            self.ctx.record("custom", event="client_done", ops=len(self.results))
            return
        req_id = self._next_op + 1
        self._current_req_id = req_id
        self._replies = {}
        self._sent_at = self.ctx.now
        self._attempts = 1
        if self.retry_budget is not None:
            self.retry_budget.note_send()
        self._send_request()
        self.ctx.record("custom", event="request_sent", req_id=req_id)
        self._retry_timer = self.ctx.set_timer(
            self.timeout_policy.current(), self.RETRY_TAG
        )

    def _send_request(self) -> None:
        assert self.signer is not None
        req_id = self._current_req_id
        op = self.ops[self._next_op]
        sig = self.signer.sign(request_domain(self.pid, req_id, op))
        for r in self.replicas:
            self.ctx.send(r, (REQUEST, self.pid, req_id, op, sig))

    def on_timer(self, tag: Any) -> None:
        if tag == "think":
            self._submit_next()
            return
        if tag != self.RETRY_TAG or self._current_req_id is None:
            return
        if self.retry_budget is not None and not self.retry_budget.try_spend():
            self._abandon_current()
            return
        self.retransmissions += 1
        self._attempts += 1
        # unproductive expiry: back off before retransmitting
        self.timeout_policy.escalate()
        self._send_request()
        self._retry_timer = self.ctx.set_timer(
            self.timeout_policy.current(), self.RETRY_TAG
        )

    def _abandon_current(self) -> None:
        """Give up on the in-flight request: typed failure, move on."""
        req_id = self._current_req_id
        assert req_id is not None
        failure = RetriesExhausted(req_id, self._attempts)
        self.failures.append(failure)
        self.ctx.record(
            "custom", event="request_failed", req_id=req_id,
            reason="retries_exhausted", attempts=self._attempts,
        )
        self._current_req_id = None
        self._retry_timer = None
        self._next_op += 1
        if self.think_time > 0:
            self.ctx.set_timer(self.think_time, "think")
        else:
            self._submit_next()

    def on_message(self, src: ProcessId, msg: Any) -> None:
        if not (isinstance(msg, tuple) and len(msg) == 5 and msg[0] == REPLY):
            return
        _, replica, req_id, result, _view = msg
        if req_id != self._current_req_id or src not in self.replicas:
            return
        self._replies[src] = result
        matching = sum(1 for v in self._replies.values() if v == result)
        if matching >= self.reply_quorum:
            latency = self.ctx.now - self._sent_at
            self.latencies.append(latency)
            self.results.append(result)
            self.timeout_policy.observe(latency)
            self.timeout_policy.note_progress()
            self.ctx.record(
                "custom", event="request_done", req_id=req_id,
                result=result, latency=latency,
            )
            self._current_req_id = None
            if self._retry_timer is not None:
                self.ctx.cancel_timer(self._retry_timer)
                self._retry_timer = None
            self._next_op += 1
            if self.think_time > 0:
                self.ctx.set_timer(self.think_time, "think")
            else:
                self._submit_next()
