"""MinBFT (Veronese et al.): trusted-hardware BFT replication at n = 2f+1.

The paper's motivating application class: with a trusted monotonic counter
(USIG over TrInc) at every replica, Byzantine state-machine replication
needs only **2f+1** replicas and **two** message rounds — versus PBFT's
3f+1 replicas and three rounds. This module implements the protocol over
the simulator's asynchronous network, with the USIG-specific view change
(tamper-evident sent logs; see :mod:`repro.consensus.viewchange`).

Normal case (view v, primary = v mod n):

1. client → all replicas: signed ``REQUEST``;
2. primary assigns the next slot: ``PREPARE(v, seq, req)`` with a fresh UI;
3. every replica, processing the primary's stream in UI order, accepts the
   *first* PREPARE per slot (the USIG makes a later conflicting PREPARE
   harmless: correct replicas all see the same first one) and broadcasts
   ``COMMIT(v, seq, req, prepare_ui)`` with its own UI;
4. a slot is committed once f+1 distinct replicas vouch for the same
   ``(v, seq, req, prepare_ui)`` (the primary's PREPARE counts); slots are
   executed in order and replies sent to the client, who waits for f+1
   matching replies.

View change: f+1 signed ``REQ-VIEW-CHANGE`` messages move replicas to send
``VIEW-CHANGE(v', full_sent_log)``; the new primary bundles f+1 verified
logs into ``NEW-VIEW``; everyone recomputes the re-proposal set
deterministically and the new primary re-PREPAREs it. Safety across views
follows from log tamper-evidence (gap-free USIG counters).

Timing assumption: liveness needs partial synchrony (timeouts eventually
find a correct primary); safety never depends on time.
"""

from __future__ import annotations

from typing import Any, Optional

from ..crypto.serialize import (
    caching_enabled,
    canonical_bytes,
    content_hash,
    type_fingerprint,
)
from ..crypto.signatures import Signature, SignatureScheme, Signer
from ..errors import ConfigurationError, SignatureError
from ..sim.process import Process
from ..types import ProcessId, SeqNum
from .apps import StateMachine
from .batching import PipelinedProposer
from .dedup import MISSING, ClientDedup
from .usig import UI, UIOrderEnforcer, USIG, USIGVerifier, ui_like
from .viewchange import (
    LogEntry,
    compute_reproposals,
    validate_checkpoint_cert,
    verify_log_from,
)

USIG_WRAP = "USIG"
REQUEST = "REQUEST"
PREPARE = "PREPARE"
COMMIT = "COMMIT"
REPLY = "REPLY"
CHECKPOINT = "CHECKPOINT"
REQ_VIEW_CHANGE = "REQ-VIEW-CHANGE"
VIEW_CHANGE = "VIEW-CHANGE"
NEW_VIEW = "NEW-VIEW"
RESYNC = "RESYNC"
RESYNC_INFO = "RESYNC-INFO"


def request_key(request: Any) -> tuple:
    """Stable identity of a client request: (client, req_id)."""
    return (request[1], request[2])


def proposal_requests(proposal: Any) -> list:
    """The client requests a slot proposal carries (a batch or a single one)."""
    if isinstance(proposal, tuple) and proposal and proposal[0] == "BATCH":
        return list(proposal[1:])
    return [proposal]


def rvc_domain(replica: ProcessId, new_view: int) -> tuple:
    return ("MINBFT-RVC", replica, new_view)


def resync_domain(replica: ProcessId, nonce: int) -> tuple:
    return ("MINBFT-RESYNC", replica, nonce)


def resync_info_domain(replica: ProcessId, nonce: int, digest: bytes) -> tuple:
    return ("MINBFT-RESYNC-INFO", replica, nonce, digest)


def request_domain(client: ProcessId, req_id: int, op: Any) -> tuple:
    return ("MINBFT-REQ", client, req_id, op)


class MinBFTReplica(PipelinedProposer, Process):
    """One MinBFT replica.

    Parameters: ``n`` replicas tolerate ``f = (n-1)//2`` Byzantine; the
    replica ids are ``0..n-1`` and clients live at higher pids. ``usig``
    is this replica's trusted component, ``verifier``/``scheme`` are the
    public verification roots shared by everyone.

    ``window_size`` bounds the primary's in-flight slots (0 = unbounded,
    the legacy behaviour); ``batch_policy`` selects the batch-sizing
    policy (``None``/"fixed" = the legacy fixed ``batch_delay`` timer,
    "adaptive" = EWMA pipeline-matching). See
    :mod:`repro.consensus.batching`.
    """

    VC_TIMER = "minbft-vc"
    BATCH_TAG = "minbft-batch"
    REQ_TIMEOUT = 60.0

    def __init__(
        self,
        n: int,
        usig: USIG,
        verifier: USIGVerifier,
        scheme: SignatureScheme,
        signer: Signer,
        app: StateMachine,
        req_timeout: float | None = None,
        checkpoint_interval: int = 0,
        batching: bool = False,
        batch_delay: float = 0.2,
        batch_policy: Any = None,
        window_size: int = 0,
        timeout_policy: Any = None,
        reply_window: int = 8,
        gap_limit: int = 64,
    ) -> None:
        super().__init__()
        if n < 3 or n % 2 == 0:
            raise ConfigurationError(
                f"MinBFT runs with n = 2f+1 >= 3 replicas, got n={n}"
            )
        self.n = n
        self.f = (n - 1) // 2
        self.usig = usig
        self.verifier = verifier
        self.scheme = scheme
        self.signer = signer
        self.app = app
        self.req_timeout = req_timeout if req_timeout is not None else self.REQ_TIMEOUT
        if timeout_policy is None:
            from ..faults.timeouts import FixedTimeout  # lazy: faults builds on consensus

            timeout_policy = FixedTimeout(self.req_timeout)
        elif callable(timeout_policy) and not hasattr(timeout_policy, "current"):
            timeout_policy = timeout_policy()
        self.timeout_policy = timeout_policy

        self.view = 0
        self.in_view_change: Optional[int] = None
        self.next_seq: SeqNum = 1  # primary's next slot to assign
        self.exec_next: SeqNum = 1
        self.sent_log: list[tuple[Any, UI]] = []
        self._enforcer = UIOrderEnforcer(self._on_usig_released)
        # slot -> (view, prepare_counter, request) first-accepted prepare
        self._accepted: dict[SeqNum, tuple[int, SeqNum, Any]] = {}
        # vote key -> set of replicas
        self._votes: dict[tuple, set[ProcessId]] = {}
        self._certified: dict[SeqNum, Any] = {}
        self._proposed_keys: set[tuple] = set()
        # bounded executed-request memory + reply cache (replaces the old
        # unbounded _executed_keys set and latest-only _client_cache, which
        # a multi-outstanding client would race past)
        self._dedup = ClientDedup(reply_window=reply_window, gap_limit=gap_limit)
        self._pending: dict[tuple, Any] = {}  # request_key -> request
        self._expected_reproposals: dict[SeqNum, Any] = {}
        self._init_pipeline(batching, batch_policy, batch_delay, window_size)
        # checkpointing / garbage collection
        self.checkpoint_interval = checkpoint_interval
        self._ckpt_votes: dict[tuple, dict[ProcessId, tuple]] = {}
        self._ckpt_states: dict[SeqNum, Any] = {}  # my own state blobs by seq
        self.stable_seq: SeqNum = 0
        self._stable_cert: tuple = ()
        self._stable_state: Any = None
        self._log_base: SeqNum = 0  # my counter at the stable checkpoint
        # view-change machinery; each record: (entries, stable_seq, state_blob)
        self._rvc_votes: dict[int, set[ProcessId]] = {}
        self._rvc_sent: set[int] = set()
        self._vcs: dict[int, dict[ProcessId, tuple]] = {}
        self._new_view_sent: set[int] = set()
        self._vc_timer: Optional[int] = None
        # request arrival times feed the adaptive timeout's RTT estimator
        self._pending_since: dict[tuple, float] = {}
        # last verified NEW-VIEW (message, ui) — served to recovering peers
        self._latest_new_view: Optional[tuple] = None
        self._resynced: set[ProcessId] = set()
        self._started_incarnation: Optional[int] = None
        # forensics: replicas proven Byzantine (see consensus/forensics);
        # their messages and votes are refused from conviction on
        self._convicted: set[ProcessId] = set()
        # pre-execution state: the rollback anchor when no checkpoint has
        # stabilized yet (conviction may void every unattested slot)
        self._genesis_state = self._state_blob()
        # stats for benches
        self.commits_executed = 0
        self.view_changes_completed = 0
        self.log_entries_gced = 0
        self.resyncs_answered = 0
        self.malformed_rejects = 0
        self.convicted_rejects = 0

    # -- lifecycle --------------------------------------------------------------

    def on_start(self) -> None:
        # Restart hygiene: a previous incarnation's timer ids must never be
        # acted on by this one. The simulator purges a crashed pid's timers,
        # but a recycled replica object (or a factory that pre-builds its
        # replacement) could still carry ids across the reboot — clear them
        # and remember which incarnation armed our timers.
        self._vc_timer = None
        self._batch_timer = None
        self._batch_stalled = False
        self._started_incarnation = self.ctx.incarnation
        if self.ctx.incarnation > 0:
            self._request_resync()

    # -- identity helpers ------------------------------------------------------

    def primary_of(self, view: int) -> ProcessId:
        return view % self.n

    @property
    def is_primary(self) -> bool:
        return self.in_view_change is None and self.primary_of(self.view) == self.pid

    # -- USIG send path ----------------------------------------------------------

    def _usig_broadcast(self, message: tuple) -> None:
        ui = self.usig.create_ui(message)
        self.sent_log.append((message, ui))
        # consensus traffic stays inside the replica group (pids 0..n-1 by
        # the harness layout everywhere): clients, ingresses, and tenants
        # never consume USIG messages, and in a served deployment they can
        # outnumber replicas 10:1 — a full broadcast would amplify every
        # PREPARE/COMMIT (and every view-change re-proposal) by that factor
        wrapped = (USIG_WRAP, message, ui)
        for dst in range(self.n):
            self.ctx.send(dst, wrapped)

    # -- receive dispatch -----------------------------------------------------------

    _KNOWN_KINDS = frozenset(
        (USIG_WRAP, REQUEST, REQ_VIEW_CHANGE, RESYNC, RESYNC_INFO)
    )

    def on_message(self, src: ProcessId, msg: Any) -> None:
        if not (isinstance(msg, tuple) and msg and isinstance(msg[0], str)):
            self.malformed_rejects += 1
            return
        kind = msg[0]
        if kind == USIG_WRAP and len(msg) == 3:
            _, message, ui = msg
            if not ui_like(ui):
                self.malformed_rejects += 1
                return
            if not self.verifier.verify_ui(ui, message, ui.replica):
                self.malformed_rejects += 1
                return
            if not (0 <= ui.replica < self.n):
                self.malformed_rejects += 1
                return
            if ui.replica in self._convicted:
                self.convicted_rejects += 1
                return
            self._enforcer.submit(ui.replica, ui.counter, (message, ui))
        elif kind == REQUEST and len(msg) == 5:
            self._on_request(msg)
        elif kind == REQ_VIEW_CHANGE and len(msg) == 4:
            if src in self._convicted:
                self.convicted_rejects += 1
                return
            self._on_req_view_change(src, msg)
        elif kind == RESYNC and len(msg) == 4:
            self._on_resync(msg)
        elif kind == RESYNC_INFO and len(msg) == 7:
            self._on_resync_info(msg)
        else:
            # unknown kind, or a known kind with the wrong arity: typed
            # reject (Byzantine babble must never throw a replica)
            self.malformed_rejects += 1

    # -- client requests ---------------------------------------------------------------

    def _on_request(self, request: tuple) -> None:
        _, client, req_id, op, sig = request
        if not isinstance(req_id, int) or not isinstance(client, int):
            return
        if not (
            isinstance(sig, Signature)
            and sig.signer == client
            and self.scheme.verify(request_domain(client, req_id, op), sig)
        ):
            return
        if self._dedup.executed(client, req_id):
            result = self._dedup.reply(client, req_id)
            if result is not MISSING:  # retransmission of an answered request
                self.ctx.send(client, (REPLY, self.pid, req_id, result, self.view))
            return
        key = request_key(request)
        if key not in self._pending:
            self._pending[key] = request
            self._pending_since[key] = self.ctx.now
            self.batch_policy.note_arrival(self.ctx.now)
        if self.is_primary:
            self._propose_pending()
        if self._vc_timer is None and self._pending:
            self._vc_timer = self.ctx.set_timer(
                self.timeout_policy.current(), self.VC_TIMER
            )

    def _emit_slot(self, seq: SeqNum, proposal: Any) -> None:
        """PipelinedProposer hook: one assigned slot onto the wire."""
        self._usig_broadcast((PREPARE, self.view, seq, proposal))

    # -- USIG-ordered processing -----------------------------------------------------------

    def _on_usig_released(self, replica: ProcessId, counter: SeqNum, item: Any) -> None:
        message, ui = item
        if not (isinstance(message, tuple) and message and isinstance(message[0], str)):
            return
        kind = message[0]
        if kind == PREPARE and len(message) == 4:
            self._on_prepare(replica, ui, message)
        elif kind == COMMIT and len(message) == 5:
            self._on_commit(replica, ui, message)
        elif kind == CHECKPOINT and len(message) == 3:
            self._on_checkpoint(replica, ui, message)
        elif kind == VIEW_CHANGE and len(message) == 6:
            self._on_view_change(replica, ui, message)
        elif kind == NEW_VIEW and len(message) == 3:
            self._on_new_view(replica, ui, message)
        else:
            # USIG-signed babble: sequenced, authentic, still garbage
            self.malformed_rejects += 1

    def _valid_request(self, request: Any) -> bool:
        if not (isinstance(request, tuple) and len(request) == 5
                and request[0] == REQUEST):
            return False
        _, client, req_id, op, sig = request
        return (
            isinstance(client, int)
            and isinstance(req_id, int)
            and isinstance(sig, Signature)
            and sig.signer == client
            and self.scheme.verify(request_domain(client, req_id, op), sig)
        )

    def _valid_proposal(self, proposal: Any) -> bool:
        """A slot proposal: one valid request, or a non-empty BATCH of them
        with no duplicate request keys.

        Memoized in the scheme's protocol memo on the serialized proposal
        plus its exact-type fingerprint: the same proposal object is
        re-validated once per PREPARE and once per COMMIT at every replica,
        and validity is a deterministic pure function of (content, types).
        The fingerprint matters because a Byzantine primary could PREPARE a
        list-shaped copy of a request — identical serialization, rejected
        by the tuple isinstance checks — and a content-only key would cache
        that False for the genuine tuple proposal too, a liveness failure.
        Unserializable proposals (which can only come from Byzantine code)
        take the uncached path.
        """
        key = None
        if caching_enabled():
            try:
                key = ("minbft-proposal", canonical_bytes(proposal),
                       type_fingerprint(proposal))
            except SignatureError:
                key = None
            if key is not None:
                verdict = self.scheme.memo.get(key)
                if verdict is not None:
                    return verdict
        verdict = self._valid_proposal_uncached(proposal)
        if key is not None:
            self.scheme.memo.put(key, verdict)
        return verdict

    def _valid_proposal_uncached(self, proposal: Any) -> bool:
        requests = proposal_requests(proposal)
        if not requests:
            return False
        if not all(self._valid_request(r) for r in requests):
            return False
        keys = [request_key(r) for r in requests]
        return len(keys) == len(set(keys))

    def _on_prepare(self, replica: ProcessId, ui: UI, message: tuple) -> None:
        _, view, seq, request = message
        if not isinstance(view, int) or not isinstance(seq, int) or seq < 1:
            return
        if view != self.view or self.in_view_change is not None:
            return
        if replica != self.primary_of(view):
            return
        if not self._valid_proposal(request):
            return
        # after a view change the primary must re-propose exactly S
        expected = self._expected_reproposals.get(seq)
        if expected is not None and expected != request:
            return
        if seq in self._accepted and self._accepted[seq][0] >= view:
            return  # first PREPARE per slot wins within a view
        self._accepted[seq] = (view, ui.counter, request)
        for req in proposal_requests(request):
            self._proposed_keys.add(request_key(req))
        self._vote(replica, view, seq, request, ui)
        self._usig_broadcast((COMMIT, view, seq, request, ui))

    def _on_commit(self, replica: ProcessId, ui: UI, message: tuple) -> None:
        _, view, seq, request, prepare_ui = message
        if not isinstance(view, int) or not isinstance(seq, int):
            return
        if view != self.view or self.in_view_change is not None:
            return
        if not ui_like(prepare_ui):
            return
        if not self.verifier.verify_ui(
            prepare_ui, (PREPARE, view, seq, request), self.primary_of(view)
        ):
            return
        if not self._valid_proposal(request):
            return
        self._vote(replica, view, seq, request, prepare_ui)
        # the embedded prepare UI is verifiable proof of the primary's vote —
        # count it. This is load-bearing for liveness: a replica whose view
        # of the primary's stream is gapped (Byzantine primary) can still
        # assemble certificates from correct replicas' COMMITs alone.
        self._vote(self.primary_of(view), view, seq, request, prepare_ui)

    def _vote(self, replica: ProcessId, view: int, seq: SeqNum,
              request: Any, prepare_ui: UI) -> None:
        if replica in self._convicted:
            # a proven-Byzantine replica's vote (including the embedded
            # primary vote a COMMIT re-asserts) certifies nothing
            self.convicted_rejects += 1
            return
        key = (view, seq, prepare_ui.counter, content_hash(request))
        voters = self._votes.setdefault(key, set())
        voters.add(replica)
        if (
            len(voters) >= self.f + 1
            and seq >= self.exec_next  # executed slots leave _certified
            and seq not in self._certified
        ):
            self._certified[seq] = request
            self._execute_ready()

    # -- execution --------------------------------------------------------------------------

    def _is_executed(self, key: tuple) -> bool:
        """Whether (client, req_id) was executed — directly or via a
        checkpoint fast-forward (the dedup structure survives transfer)."""
        return self._dedup.executed(key[0], key[1])

    def _execute_ready(self) -> None:
        executed_any = False
        exec_start = self.exec_next
        while self.exec_next in self._certified:
            seq = self.exec_next
            proposal = self._certified[seq]
            requests = proposal_requests(proposal)
            slot_applied = False
            for request in requests:
                _, client, req_id, op, _sig = request
                key = request_key(request)
                if self._is_executed(key):
                    continue
                result = self.app.apply(op)
                self._dedup.record(client, req_id, result)
                self._pending.pop(key, None)
                since = self._pending_since.pop(key, None)
                if since is not None:
                    # arrival-to-execution latency is the "round trip" the
                    # view-change timer actually waits on — and the horizon
                    # the adaptive batch policy sizes its cap against
                    latency = self.ctx.now - since
                    self.timeout_policy.observe(latency)
                    self.batch_policy.note_commit(latency, len(requests))
                executed_any = True
                self.commits_executed += 1
                self.ctx.record(
                    "custom", event="execute", seq=seq, client=client,
                    req_id=req_id, op=op, result=result,
                )
                self.ctx.send(client, (REPLY, self.pid, req_id, result, self.view))
                self.on_execute(seq, request, result)
                slot_applied = True
            if not slot_applied:
                # every request in this slot was a duplicate already applied
                # from an earlier slot (retry storms get stale resubmits
                # batched before the dedup caches catch up); the slot is
                # ordered but a no-op — record it so stream auditors can
                # tell a benign hole from a lost slot
                self.noop_slots += 1
                self.ctx.record("custom", event="execute_noop", seq=seq)
            self.exec_next = seq + 1
            del self._certified[seq]
            if (
                self.checkpoint_interval
                and seq % self.checkpoint_interval == 0
            ):
                self._emit_checkpoint(seq)
        if executed_any:
            self.timeout_policy.note_progress()
        if not self._pending and self._vc_timer is not None:
            self.ctx.cancel_timer(self._vc_timer)
            self._vc_timer = None
        if self.exec_next != exec_start:
            # execution progress moved the window base: stalled proposals
            # (and stalled batch flushes) may proceed now
            self._pipeline_resume()

    # -- checkpointing / log garbage collection ------------------------------------------

    def _state_blob(self) -> tuple:
        """Transferable state at the current execution point."""
        return (
            "CKPT-STATE",
            self.app.snapshot(),
            self._dedup.snapshot(),
            self.exec_next,
        )

    def _emit_checkpoint(self, seq: SeqNum) -> None:
        blob = self._state_blob()
        self._ckpt_states[seq] = blob
        digest = content_hash(blob)
        self._usig_broadcast((CHECKPOINT, seq, digest))

    def _on_checkpoint(self, replica: ProcessId, ui: UI, message: tuple) -> None:
        _, seq, digest = message
        if not isinstance(seq, int) or not isinstance(digest, bytes):
            return
        key = (seq, digest)
        votes = self._ckpt_votes.setdefault(key, {})
        votes.setdefault(replica, (message, ui))
        # stabilize only once our own vote is in (log truncation needs the
        # counter of OUR checkpoint message)
        if (
            len(votes) >= self.f + 1
            and seq > self.stable_seq
            and self.pid in votes
        ):
            self._stabilize(seq, votes)

    def _stabilize(self, seq: SeqNum, votes: dict[ProcessId, tuple]) -> None:
        self.stable_seq = seq
        chosen = sorted(votes)[: self.f + 1]
        if self.pid not in chosen:
            chosen = [self.pid, *chosen[: self.f]]
        self._stable_cert = tuple(
            (r, votes[r][0], votes[r][1]) for r in sorted(chosen)
        )
        self._stable_state = self._ckpt_states.get(seq)
        my_counter = votes[self.pid][1].counter
        keep = [(m, u) for (m, u) in self.sent_log if u.counter > my_counter]
        self.log_entries_gced += len(self.sent_log) - len(keep)
        self.sent_log = keep
        self._log_base = my_counter
        # older checkpoint bookkeeping can go too
        self._ckpt_states = {s: b for s, b in self._ckpt_states.items() if s >= seq}
        # per-slot protocol state at or below the stable checkpoint is
        # settled: f+1 replicas attest to the executed prefix, so the
        # accepted-prepare / vote / certificate maps for those slots can
        # never be consulted again. Pruning here (plus _certified draining
        # at execution) is what bounds replica memory by
        # checkpoint_interval + window instead of O(total requests).
        self._accepted = {s: v for s, v in self._accepted.items() if s > seq}
        self._votes = {k: v for k, v in self._votes.items() if k[1] > seq}
        self._certified = {
            s: r for s, r in self._certified.items() if s >= self.exec_next
        }
        self._ckpt_votes = {
            k: v for k, v in self._ckpt_votes.items() if k[0] > seq
        }
        self._expected_reproposals = {
            s: r for s, r in self._expected_reproposals.items() if s > seq
        }
        self._proposed_keys = {
            k for k in self._proposed_keys if not self._is_executed(k)
        }
        self.ctx.record(
            "custom", event="checkpoint_stable", seq=seq,
            log_base=my_counter,
        )
        # a stabilized checkpoint moves the window's low watermark
        self._pipeline_resume()

    def on_execute(self, seq: SeqNum, request: Any, result: Any) -> None:
        """Hook: called once per locally executed slot (adapters override)."""

    def slot_state_size(self) -> int:
        """Total per-slot/per-request entries this replica holds.

        The 10^5-request soak asserts this stays bounded by the checkpoint
        interval + window (+ per-client O(1) dedup state), not by total
        requests served.
        """
        return (
            len(self._accepted)
            + sum(len(v) for v in self._votes.values())
            + len(self._certified)
            + len(self._proposed_keys)
            + len(self._ckpt_states)
            + len(self._ckpt_votes)
            + len(self._pending)
            + len(self.sent_log)
            + self._dedup.size()
        )

    # -- crash-recovery resync ---------------------------------------------------------------
    #
    # A rebooted replica keeps its trusted USIG but loses everything
    # volatile, including the UI-order enforcer's per-peer cursors. Peers'
    # frames acked by the dead incarnation are never retransmitted, so
    # without help the fresh enforcer waits forever at each peer's counter 1
    # and the recovered replica is deaf. The resync handshake repairs this:
    # the rebooted replica announces itself (signed, tagged with its new
    # incarnation as a nonce), and each peer answers with (a) its current
    # USIG counter — authorizing the enforcer to skip the unrecoverable
    # prefix of that peer's stream, which is safe because a peer can only
    # truncate its *own* stream — (b) its latest USIG-signed NEW-VIEW, whose
    # bundle is validated exactly like a live NEW-VIEW before the view is
    # adopted, and (c) its stable checkpoint certificate + state blob for
    # fast-forwarding execution. The nonce rejects replayed RESYNC-INFO from
    # before the latest reboot (stale-incarnation guard).

    def _request_resync(self) -> None:
        nonce = self.ctx.incarnation
        sig = self.signer.sign(resync_domain(self.pid, nonce))
        for dst in range(self.n):
            if dst != self.pid:
                self.ctx.send(dst, (RESYNC, self.pid, nonce, sig))

    def _on_resync(self, msg: tuple) -> None:
        _, claimed, nonce, sig = msg
        if not (
            isinstance(claimed, int)
            and 0 <= claimed < self.n
            and claimed != self.pid
            and isinstance(nonce, int)
        ):
            return
        if not (
            isinstance(sig, Signature)
            and sig.signer == claimed
            and self.scheme.verify(resync_domain(claimed, nonce), sig)
        ):
            return
        counter = self.usig.counter
        nv = self._latest_new_view
        stable = (
            (self.stable_seq, self._stable_cert, self._stable_state)
            if self.stable_seq > 0
            else None
        )
        digest = content_hash((counter, nv, stable))
        info_sig = self.signer.sign(resync_info_domain(self.pid, nonce, digest))
        self.resyncs_answered += 1
        self.ctx.send(
            claimed, (RESYNC_INFO, self.pid, nonce, counter, nv, stable, info_sig)
        )

    def _on_resync_info(self, msg: tuple) -> None:
        _, peer, nonce, counter, nv, stable, sig = msg
        if not (isinstance(peer, int) and 0 <= peer < self.n and peer != self.pid):
            return
        if nonce != self.ctx.incarnation:
            return  # stale: answers a resync from a previous incarnation
        if peer in self._resynced:
            return
        if not isinstance(counter, int) or counter < 0:
            return
        try:
            # attacker-controlled nv/stable may be unserializable garbage;
            # a typed reject, never an exception escaping the handler
            digest = content_hash((counter, nv, stable))
        except Exception:
            self.malformed_rejects += 1
            return
        if not (
            isinstance(sig, Signature)
            and sig.signer == peer
            and self.scheme.verify(resync_info_domain(peer, nonce, digest), sig)
        ):
            return
        self._resynced.add(peer)
        self._enforcer.resync(peer, counter)
        # newest view first: the bundle is the primary's USIG-signed NEW-VIEW,
        # validated exactly as if it had arrived through the live protocol
        if isinstance(nv, tuple) and len(nv) == 2:
            nv_msg, nv_ui = nv
            if (
                isinstance(nv_msg, tuple)
                and len(nv_msg) == 3
                and nv_msg[0] == NEW_VIEW
                and isinstance(nv_msg[1], int)
                and nv_msg[1] > self.view
                and ui_like(nv_ui)
                and self.verifier.verify_ui(
                    nv_ui, nv_msg, self.primary_of(nv_msg[1])
                )
            ):
                validated = self._validate_new_view_bundle(nv_msg[2])
                if validated is not None:
                    self._adopt_view(nv_msg[1], *validated)
        # then certified checkpoint state, which may be newer still
        if isinstance(stable, tuple) and len(stable) == 3:
            s_seq, cert, blob = stable
            checked = validate_checkpoint_cert(self.verifier, cert, self.f)
            if (
                checked is not None
                and checked[0] == s_seq
                and isinstance(blob, tuple)
                and len(blob) == 4
            ):
                try:
                    blob_ok = content_hash(blob) == checked[1]
                except Exception:
                    blob_ok = False
                if blob_ok:
                    self._fast_forward(s_seq, blob)

    # -- view change -------------------------------------------------------------------------

    def on_timer(self, tag: Any) -> None:
        if (
            self._started_incarnation is not None
            and self.ctx.incarnation != self._started_incarnation
        ):
            return  # a previous incarnation armed this timer
        if tag == self.BATCH_TAG:
            self._on_batch_timer()
            return
        if tag != self.VC_TIMER:
            return
        self._vc_timer = None
        if not self._pending and self.in_view_change is None:
            return
        # unproductive expiry: back the timeout off before re-arming
        self.timeout_policy.escalate()
        target = (self.in_view_change or self.view) + 1
        self._send_req_view_change(target)
        # keep escalating while stuck
        self._vc_timer = self.ctx.set_timer(
            self.timeout_policy.current(), self.VC_TIMER
        )

    def _send_req_view_change(self, new_view: int) -> None:
        if new_view in self._rvc_sent:
            return
        self._rvc_sent.add(new_view)
        sig = self.signer.sign(rvc_domain(self.pid, new_view))
        for dst in range(self.n):
            self.ctx.send(dst, (REQ_VIEW_CHANGE, self.pid, new_view, sig))

    def _on_req_view_change(self, src: ProcessId, msg: tuple) -> None:
        _, claimed, new_view, sig = msg
        if claimed != src or not isinstance(new_view, int):
            return
        if new_view <= self.view:
            return
        if not (
            isinstance(sig, Signature)
            and sig.signer == src
            and 0 <= src < self.n
            and self.scheme.verify(rvc_domain(src, new_view), sig)
        ):
            return
        votes = self._rvc_votes.setdefault(new_view, set())
        votes.add(src)
        if len(votes) >= self.f + 1 and (
            self.in_view_change is None or self.in_view_change < new_view
        ):
            self._enter_view_change(new_view)

    def _enter_view_change(self, new_view: int) -> None:
        if self.in_view_change is not None and self.in_view_change >= new_view:
            return
        self.in_view_change = new_view
        self.ctx.record("custom", event="view_change_start", new_view=new_view)
        self._send_req_view_change(new_view)  # join the chorus
        self._usig_broadcast((
            VIEW_CHANGE, new_view, self._log_base, self._stable_cert,
            self._stable_state, tuple(self.sent_log),
        ))
        if self._vc_timer is not None:
            self.ctx.cancel_timer(self._vc_timer)
        self._vc_timer = self.ctx.set_timer(
            self.timeout_policy.current(), self.VC_TIMER
        )
        self._maybe_send_new_view(new_view)

    def _validate_vc(self, replica: ProcessId, base: Any, cert: Any,
                     state_blob: Any, log: Any,
                     end_counter: SeqNum) -> Optional[tuple]:
        """Validate a VIEW-CHANGE body; returns (entries, stable_seq, blob).

        ``base = 0`` means a full log (no garbage collection yet). A
        non-zero base must come with a checkpoint certificate that (a) has
        f+1 matching attestations, (b) contains *this replica's* checkpoint
        message at exactly counter ``base`` — so nothing between the
        checkpoint and the VIEW-CHANGE can be hidden — and (c) matches the
        digest of the piggybacked state blob used for fast-forwarding.
        """
        if not isinstance(base, int) or base < 0:
            return None
        if base == 0:
            if cert != () or state_blob is not None:
                return None
            entries = verify_log_from(self.verifier, replica, log, 1, end_counter)
            if entries is None:
                return None
            return entries, 0, None
        checked = validate_checkpoint_cert(self.verifier, cert, self.f)
        if checked is None:
            return None
        stable_seq, digest, counters = checked
        if counters.get(replica) != base:
            return None
        try:
            if content_hash(state_blob) != digest:
                return None
        except Exception:
            return None
        entries = verify_log_from(
            self.verifier, replica, log, base + 1, end_counter
        )
        if entries is None:
            return None
        return entries, stable_seq, state_blob

    def _on_view_change(self, replica: ProcessId, ui: UI, message: tuple) -> None:
        _, new_view, base, cert, state_blob, log = message
        if not isinstance(new_view, int) or new_view <= self.view:
            return
        record = self._validate_vc(replica, base, cert, state_blob, log,
                                   ui.counter)
        if record is None:
            return
        self._vcs.setdefault(new_view, {})[replica] = (
            record, (base, cert, state_blob, log)
        )
        # f+1 replicas are changing views: join them even if we saw no RVCs
        if len(self._vcs[new_view]) >= self.f + 1 and (
            self.in_view_change is None or self.in_view_change < new_view
        ):
            self._enter_view_change(new_view)
        self._maybe_send_new_view(new_view)

    def _maybe_send_new_view(self, new_view: int) -> None:
        if (
            self.primary_of(new_view) == self.pid
            and len(self._vcs.get(new_view, {})) >= self.f + 1
            and new_view not in self._new_view_sent
            and self.in_view_change == new_view
        ):
            self._new_view_sent.add(new_view)
            chosen = sorted(self._vcs[new_view])[: self.f + 1]
            bundle = tuple(
                (r, *self._vcs[new_view][r][1]) for r in chosen
            )
            self._usig_broadcast((NEW_VIEW, new_view, bundle))

    def _validate_new_view_bundle(
        self, bundle: Any
    ) -> Optional[tuple[dict[SeqNum, Any], SeqNum, Any]]:
        """Validate a NEW-VIEW bundle of f+1 VIEW-CHANGE bodies.

        Returns ``(reproposals, best_stable, best_blob)`` or None. Shared
        by the live NEW-VIEW path and the crash-recovery resync path — both
        must apply identical verification before a view is adopted.
        """
        if not isinstance(bundle, tuple) or len(bundle) < self.f + 1:
            return None
        logs: dict[ProcessId, list[LogEntry]] = {}
        best_stable: SeqNum = 0
        best_blob: Any = None
        for item in bundle:
            if not (isinstance(item, tuple) and len(item) == 5):
                return None
            r, base, cert, state_blob, log = item
            if not (isinstance(r, int) and isinstance(log, tuple)):
                return None
            end_counter = (base if isinstance(base, int) else 0) + len(log) + 1
            record = self._validate_vc(r, base, cert, state_blob, log,
                                       end_counter)
            if record is None or r in logs:
                return None
            entries, stable_seq, blob = record
            logs[r] = entries
            if stable_seq > best_stable:
                best_stable, best_blob = stable_seq, blob
        if len(logs) < self.f + 1:
            return None
        reproposals = {
            seq: cand
            for seq, cand in compute_reproposals(logs).items()
            if seq > best_stable
        }
        return reproposals, best_stable, best_blob

    def _on_new_view(self, replica: ProcessId, ui: UI, message: tuple) -> None:
        _, new_view, bundle = message
        if not isinstance(new_view, int) or new_view <= self.view:
            return
        if replica != self.primary_of(new_view):
            return
        validated = self._validate_new_view_bundle(bundle)
        if validated is None:
            return
        self._latest_new_view = (message, ui)
        reproposals, best_stable, best_blob = validated
        self._adopt_view(new_view, reproposals, best_stable, best_blob)

    def _fast_forward(self, stable_seq: SeqNum, blob: Any) -> None:
        """Install a certified checkpoint state we fell behind of."""
        if blob is None or stable_seq < self.exec_next:
            return
        _tag, snapshot, dedup_image, exec_next = blob
        self.app.restore(snapshot)
        self._dedup.restore(dedup_image)
        self.exec_next = exec_next
        self._certified = {
            s: r for s, r in self._certified.items() if s >= exec_next
        }
        self._pending = {
            k: r for k, r in self._pending.items() if not self._is_executed(k)
        }
        self._pending_since = {
            k: t for k, t in self._pending_since.items() if k in self._pending
        }
        self.ctx.record(
            "custom", event="state_transfer", stable_seq=stable_seq,
            exec_next=exec_next,
        )
        self._execute_ready()
        self._pipeline_resume()  # the transfer itself moved the window base

    # -- forensic conviction / graceful degradation ------------------------------------

    def convict(self, culprit: ProcessId) -> None:
        """Quarantine a replica proven Byzantine (a transferable UI-conflict
        proof — see :mod:`repro.consensus.forensics`) and degrade gracefully.

        A compromised trusted counter voids MinBFT's core premise, so every
        slot not yet covered by a stable checkpoint is suspect: the culprit
        may have split the group with per-destination UIs and any f+1
        certificate it contributed to can disagree across survivors. The
        recovery is therefore: refuse all further input from the culprit
        (messages, votes, view-change requests), purge its held stream,
        roll state back to the last attested blob (stable checkpoint, or
        the pre-execution genesis state), and force a view change to the
        next view led by an unconvicted replica — the surviving f+1 re-form
        a live group and re-certify the voided slots consistently.
        """
        if culprit == self.pid or culprit in self._convicted:
            return
        self._convicted.add(culprit)
        self._enforcer.purge(culprit)
        self._rollback_to_attested()
        self.ctx.record("custom", event="convict", culprit=culprit)
        target = (self.in_view_change or self.view) + 1
        while self.primary_of(target) in self._convicted:
            target += 1
        self._send_req_view_change(target)
        if self._vc_timer is not None:
            self.ctx.cancel_timer(self._vc_timer)
        self._vc_timer = self.ctx.set_timer(
            self.timeout_policy.current(), self.VC_TIMER
        )

    def _rollback_to_attested(self) -> None:
        """Rewind execution to the newest state a quorum attested to."""
        if self.stable_seq > 0 and self._stable_state is not None:
            blob = self._stable_state
            base_seq = self.stable_seq
        else:
            blob = self._genesis_state
            base_seq = 0
        _tag, snapshot, dedup_image, exec_next = blob
        rolled_from = self.exec_next
        self.app.restore(snapshot)
        self._dedup.restore(dedup_image)
        self.exec_next = exec_next
        self._certified = {}
        self._votes = {}
        self._accepted = {s: v for s, v in self._accepted.items() if s <= base_seq}
        self._proposed_keys = {
            k for k in self._proposed_keys if self._is_executed(k)
        }
        if rolled_from != exec_next:
            self.ctx.record(
                "custom", event="rollback", to_seq=exec_next - 1,
                rolled_from=rolled_from - 1,
            )

    def _adopt_view(self, new_view: int, reproposals: dict[SeqNum, Any],
                    stable_seq: SeqNum = 0, stable_blob: Any = None) -> None:
        self.view = new_view
        self.in_view_change = None
        self.view_changes_completed += 1
        if stable_seq >= self.exec_next:
            self._fast_forward(stable_seq, stable_blob)
        self._expected_reproposals = {
            seq: cand.request for seq, cand in reproposals.items()
        }
        self._accepted = {}
        self._proposed_keys = set()
        self.ctx.record("custom", event="view_adopted", view=new_view)
        max_slot = max(reproposals, default=stable_seq)
        self.next_seq = max(max_slot + 1, self.exec_next)
        self.timeout_policy.note_progress()  # the view change delivered
        if self._vc_timer is not None:
            self.ctx.cancel_timer(self._vc_timer)
            self._vc_timer = None
        if self._batch_timer is not None:
            # a batch window opened under the old view must not flush into
            # the new one with a stale timer
            self.ctx.cancel_timer(self._batch_timer)
            self._batch_timer = None
        self._batch_stalled = False
        if self._pending:
            self._vc_timer = self.ctx.set_timer(
                self.timeout_policy.current(), self.VC_TIMER
            )
        if self.primary_of(new_view) == self.pid:
            # re-propose ALL of S in order — even slots we already executed,
            # because a lagging correct replica may still need a certificate
            # in the new view — then any fresh pending requests
            for seq in sorted(reproposals):
                cand = reproposals[seq]
                for req in proposal_requests(cand.request):
                    self._proposed_keys.add(request_key(req))
                self._usig_broadcast((PREPARE, new_view, seq, cand.request))
            self._propose_pending()
