"""Simulated cryptography: canonical serialization and unforgeable signatures.

The paper assumes *unforgeable transferable signatures* (Section 2). This
package provides a deterministic, dependency-free simulation with the same
interface contract:

- :func:`repro.crypto.serialize.canonical_bytes` — stable byte encoding of
  the immutable values protocols exchange, so signatures commit to content.
- :class:`repro.crypto.signatures.SignatureScheme` — issues per-process
  :class:`~repro.crypto.signatures.Signer` capabilities; holding a signer is
  the simulation's model of holding a private key. Verification requires
  only the scheme and the claimed signer id (transferability).
"""

from .serialize import canonical_bytes, content_hash
from .signatures import Signature, SignatureScheme, Signer

__all__ = [
    "canonical_bytes",
    "content_hash",
    "Signature",
    "SignatureScheme",
    "Signer",
]
