"""Simulated cryptography: canonical serialization and unforgeable signatures.

The paper assumes *unforgeable transferable signatures* (Section 2). This
package provides a deterministic, dependency-free simulation with the same
interface contract:

- :func:`repro.crypto.serialize.canonical_bytes` — stable byte encoding of
  the immutable values protocols exchange, so signatures commit to content.
- :class:`repro.crypto.signatures.SignatureScheme` — issues per-process
  :class:`~repro.crypto.signatures.Signer` capabilities; holding a signer is
  the simulation's model of holding a private key. Verification requires
  only the scheme and the claimed signer id (transferability).

The whole stack is memoized for the hot path (identity-keyed encoding
cache, per-scheme verification cache) with counters in :data:`STATS`;
:func:`caching_disabled` / :func:`set_caching` restore the uncached
reference behavior for baselines, and :func:`reset_crypto_caches` gives
each chaos run a cold, deterministic cache state.
"""

from .serialize import (
    STATS,
    BoundedCache,
    CryptoStats,
    caching_disabled,
    caching_enabled,
    canonical_bytes,
    content_hash,
    crypto_stats,
    reset_crypto_caches,
    set_caching,
)
from .signatures import TAG_LENGTH, Signature, SignatureScheme, Signer

__all__ = [
    "canonical_bytes",
    "content_hash",
    "crypto_stats",
    "caching_disabled",
    "caching_enabled",
    "reset_crypto_caches",
    "set_caching",
    "BoundedCache",
    "CryptoStats",
    "STATS",
    "Signature",
    "SignatureScheme",
    "Signer",
    "TAG_LENGTH",
]
