"""Canonical, deterministic serialization of protocol values.

Signatures must commit to message *content*, so the library needs a stable
byte encoding for every value protocols exchange. The encoding here is a
small, self-describing tag-length-value format over the closed set of types
the protocols use: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``, ``tuple``/``list`` (encoded identically — protocols treat both as
sequences), frozen dataclasses, ``frozenset`` (sorted by element encoding),
and ``dict`` (sorted by key encoding).

The format is injective on this domain: distinct values produce distinct
bytes, so a signature over :func:`canonical_bytes` is a commitment to the
value itself. This property is exercised by hypothesis tests.

Serialization is the floor every crypto operation stands on — one
Algorithm-1 broadcast serializes the same proof structures at every relay
hop — so the encoder is built for the hot path:

- **iterative spine** — the encoder walks sequences and dataclasses with an
  explicit stack instead of Python recursion (deep proof pyramids stay
  cheap; sets and maps, whose elements must be encoded separately for
  sorting, recurse through :func:`canonical_bytes` and so share the cache);
- **identity-keyed memoization** — the simulator passes message objects by
  reference, so the *same* proof tuple reaches every process; encodings of
  deeply immutable values are kept in a bounded LRU keyed by object
  identity (entries pin their value, which makes identity keys sound: an
  id can only be recycled after its entry is evicted, and every hit
  re-checks ``is``). Mutable values — lists, dicts, bytearrays, non-frozen
  dataclasses, and anything containing one — are never cached, so caching
  can never observe a stale encoding;
- **digest memoization** — :func:`content_hash` keeps its own identity LRU
  for values the encoder proved immutable;
- **type fingerprints** — the encoding deliberately erases distinctions
  validators make with ``isinstance`` (tuple vs list, dataclass class
  identity, bytes vs bytearray), so verdict memos keyed on it alone would
  let Byzantine look-alikes poison the genuine value's cache entry;
  :func:`type_fingerprint` is the memo-key companion that pins the exact
  runtime types.

Caching changes performance only: cached and uncached encodings are
extensionally identical (hypothesis-tested), and :func:`caching_disabled`
restores the uncached behavior for baselines and A/B benchmarks. All cache
and HMAC activity is counted in the module-global :data:`STATS`
(:class:`CryptoStats`), which the chaos harness snapshots per run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from ..errors import SignatureError

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_SEQ = b"L"
_TAG_SET = b"E"
_TAG_MAP = b"M"
_TAG_DATACLASS = b"C"


# ---------------------------------------------------------------------------
# Stats and cache plumbing
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class CryptoStats:
    """Counters for the crypto hot path (serialization, hashing, HMAC).

    One module-global instance (:data:`STATS`) counts process-wide; the
    chaos harness resets it at the start of each run and snapshots it into
    ``ChaosResult.stats["crypto"]``, so per-run numbers are a pure function
    of the run (identical between serial and parallel sweeps).

    ``hmac_ops`` counts every HMAC-SHA256 actually computed — signature
    signing and verification misses, plus TrInc attestations and checks —
    which is the hardware-cost proxy the hot-path bench reports.
    """

    serialize_hits: int = 0
    serialize_misses: int = 0
    hash_hits: int = 0
    hash_misses: int = 0
    verify_hits: int = 0
    verify_misses: int = 0
    cheap_rejects: int = 0
    hmac_ops: int = 0
    signs: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    def snapshot(self) -> "CryptoStats":
        return CryptoStats(**self.as_dict())

    def reset(self) -> None:
        for f in dataclasses.fields(self):
            setattr(self, f.name, 0)


STATS = CryptoStats()
"""Process-global crypto counters; see :class:`CryptoStats`."""


class BoundedCache:
    """A small LRU: plain dict speed on hit, bounded memory on miss floods.

    Used for every memo table in the crypto stack (encodings, digests,
    verification verdicts, protocol-level proof memos). Entries are evicted
    least-recently-*used* first.
    """

    __slots__ = ("_data", "maxsize")

    def __init__(self, maxsize: int = 1 << 14) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._data: OrderedDict = OrderedDict()
        self.maxsize = maxsize

    def get(self, key: Any, default: Any = None) -> Any:
        data = self._data
        entry = data.get(key, default)
        if entry is not default:
            data.move_to_end(key)
        return entry

    def put(self, key: Any, value: Any) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


_ENCODING_CACHE = BoundedCache(1 << 15)  # id(value) -> (value, bytes)
_DIGEST_CACHE = BoundedCache(1 << 15)  # id(value) -> (value, sha256)
_FINGERPRINT_CACHE = BoundedCache(1 << 15)  # id(value) -> (value, fingerprint)
_caching_enabled = True


def caching_enabled() -> bool:
    """Whether the crypto memo layer is active (see :func:`set_caching`)."""
    return _caching_enabled


def set_caching(enabled: bool) -> bool:
    """Enable/disable all crypto caches; returns the previous setting.

    Disabling restores the uncached reference behavior (every call
    serializes and HMACs from scratch) — the baseline the hot-path bench
    measures against. Existing entries are kept but not consulted.
    """
    global _caching_enabled
    previous = _caching_enabled
    _caching_enabled = bool(enabled)
    return previous


@contextmanager
def caching_disabled() -> Iterator[None]:
    """Context manager: run a block with the uncached reference behavior."""
    previous = set_caching(False)
    try:
        yield
    finally:
        set_caching(previous)


def reset_crypto_caches(reset_stats: bool = True) -> None:
    """Drop all cached encodings/digests (and by default zero :data:`STATS`).

    The chaos harness calls this at the start of every run so per-run cache
    counters — and therefore whole ``ChaosResult``s — are identical whether
    the sweep runs serially or across worker processes.
    """
    _ENCODING_CACHE.clear()
    _DIGEST_CACHE.clear()
    _FINGERPRINT_CACHE.clear()
    if reset_stats:
        STATS.reset()


def crypto_stats() -> CryptoStats:
    """A snapshot copy of the process-global :data:`STATS`."""
    return STATS.snapshot()


# ---------------------------------------------------------------------------
# The encoder
# ---------------------------------------------------------------------------


#: strings/bytes shorter than this are cheaper to re-encode than to cache
_SCALAR_CACHE_MIN = 64


def _encode_length(out: bytearray, n: int) -> None:
    out += struct.pack(">Q", n)


def _dataclass_frozen(tp: type) -> bool:
    params = getattr(tp, "__dataclass_params__", None)
    return bool(params is not None and params.frozen)


class _Frame:
    """An open container during iterative encoding."""

    __slots__ = ("value", "start", "immutable")

    def __init__(self, value: Any, start: int, immutable: bool) -> None:
        self.value = value
        self.start = start
        self.immutable = immutable


class _End:
    """Stack marker: the most recently opened container is complete."""

    __slots__ = ()


_END = _End()


def _cached_encoding(value: Any) -> Optional[bytes]:
    entry = _ENCODING_CACHE.get(id(value))
    if entry is not None and entry[0] is value:
        return entry[1]
    return None


def _encode(value: Any, out: bytearray) -> bool:
    """Append ``value``'s canonical encoding to ``out``.

    Returns True when ``value`` is *deeply immutable* — the gate for both
    encoding and digest memoization. The walk is iterative over the
    sequence/dataclass spine; ``frozenset`` and ``dict`` elements must be
    encoded separately (their byte encodings are what gets sorted) and
    reach the cache through nested :func:`canonical_bytes` calls.
    """
    root = _Frame(None, 0, True)
    frames = [root]
    stack = [value]
    while stack:
        v = stack.pop()
        if v is _END:
            frame = frames.pop()
            if frame.immutable:
                if _caching_enabled:
                    _ENCODING_CACHE.put(
                        id(frame.value), (frame.value, bytes(out[frame.start:]))
                    )
            else:
                frames[-1].immutable = False
            continue
        if v is None:
            out += _TAG_NONE
        elif v is True:
            out += _TAG_TRUE
        elif v is False:
            out += _TAG_FALSE
        elif isinstance(v, int):
            body = str(v).encode("ascii")
            out += _TAG_INT
            _encode_length(out, len(body))
            out += body
        elif isinstance(v, float):
            out += _TAG_FLOAT
            out += struct.pack(">d", v)
        elif isinstance(v, str):
            # long strings are worth an identity-cache entry of their own:
            # payloads embedded in relayed proofs re-encode at every
            # signature check otherwise (str is immutable, so this is sound)
            big = len(v) >= _SCALAR_CACHE_MIN
            if big and _caching_enabled:
                cached = _cached_encoding(v)
                if cached is not None:
                    out += cached
                    continue
            start = len(out)
            body = v.encode("utf-8")
            out += _TAG_STR
            _encode_length(out, len(body))
            out += body
            if big and _caching_enabled:
                _ENCODING_CACHE.put(id(v), (v, bytes(out[start:])))
        elif isinstance(v, (bytes, bytearray)):
            big = len(v) >= _SCALAR_CACHE_MIN and not isinstance(v, bytearray)
            if big and _caching_enabled:
                cached = _cached_encoding(v)
                if cached is not None:
                    out += cached
                    continue
            start = len(out)
            out += _TAG_BYTES
            _encode_length(out, len(v))
            out += bytes(v)
            if big and _caching_enabled:
                _ENCODING_CACHE.put(id(v), (v, bytes(out[start:])))
            if isinstance(v, bytearray):
                frames[-1].immutable = False
        elif isinstance(v, (tuple, list)):
            if _caching_enabled:
                cached = _cached_encoding(v)
                if cached is not None:
                    out += cached
                    continue
            frames.append(_Frame(v, len(out), not isinstance(v, list)))
            out += _TAG_SEQ
            _encode_length(out, len(v))
            stack.append(_END)
            stack.extend(reversed(v))
        elif isinstance(v, frozenset):
            if _caching_enabled:
                cached = _cached_encoding(v)
                if cached is not None:
                    out += cached
                    continue
            start = len(out)
            immutable = True
            encoded = []
            for item in v:
                body = bytearray()
                immutable &= _encode(item, body)
                encoded.append(bytes(body))
            encoded.sort()
            out += _TAG_SET
            _encode_length(out, len(encoded))
            for item in encoded:
                _encode_length(out, len(item))
                out += item
            if immutable:
                if _caching_enabled:
                    _ENCODING_CACHE.put(id(v), (v, bytes(out[start:])))
            else:
                frames[-1].immutable = False
        elif isinstance(v, dict):
            # dicts are mutable: encode (through the cache for the
            # elements) but neither store nor allow any enclosing
            # container to be stored
            items = []
            for key, val in v.items():
                kbody = bytearray()
                _encode(key, kbody)
                vbody = bytearray()
                _encode(val, vbody)
                items.append((bytes(kbody), bytes(vbody)))
            items.sort()
            out += _TAG_MAP
            _encode_length(out, len(items))
            for k, val in items:
                _encode_length(out, len(k))
                out += k
                _encode_length(out, len(val))
                out += val
            frames[-1].immutable = False
        elif dataclasses.is_dataclass(v) and not isinstance(v, type):
            if _caching_enabled:
                cached = _cached_encoding(v)
                if cached is not None:
                    out += cached
                    continue
            frames.append(_Frame(v, len(out), _dataclass_frozen(type(v))))
            name = type(v).__qualname__.encode("utf-8")
            out += _TAG_DATACLASS
            _encode_length(out, len(name))
            out += name
            fields = dataclasses.fields(v)
            _encode_length(out, len(fields))
            stack.append(_END)
            for f in reversed(fields):
                stack.append(getattr(v, f.name))
        else:
            raise SignatureError(
                f"cannot canonically serialize value of type {type(v).__name__}: {v!r}"
            )
    return root.immutable


def canonical_bytes(value: Any) -> bytes:
    """Encode ``value`` into its canonical byte representation.

    Raises :class:`~repro.errors.SignatureError` for values outside the
    supported domain (e.g. sets of unhashable items, arbitrary objects).
    Identical to the uncached reference encoding for every value; repeated
    calls on the same (immutable) object are O(1) via the identity LRU.
    """
    if _caching_enabled:
        cached = _cached_encoding(value)
        if cached is not None:
            STATS.serialize_hits += 1
            return cached
    out = bytearray()
    _encode(value, out)
    STATS.serialize_misses += 1
    return bytes(out)


def content_hash(value: Any) -> bytes:
    """SHA-256 digest of :func:`canonical_bytes`; used as a compact commitment."""
    if _caching_enabled:
        entry = _DIGEST_CACHE.get(id(value))
        if entry is not None and entry[0] is value:
            STATS.hash_hits += 1
            return entry[1]
    digest = hashlib.sha256(canonical_bytes(value)).digest()
    STATS.hash_misses += 1
    # pin the digest only for values the encoder proved deeply immutable
    # (their encoding is in the cache); scalars hash cheaply anyway
    if _caching_enabled and _cached_encoding(value) is not None:
        _DIGEST_CACHE.put(id(value), (value, digest))
    return digest


# ---------------------------------------------------------------------------
# Type fingerprints (memo-key companion to canonical_bytes)
# ---------------------------------------------------------------------------


def _cached_fingerprint(value: Any) -> Optional[tuple]:
    entry = _FINGERPRINT_CACHE.get(id(value))
    if entry is not None and entry[0] is value:
        return entry[1]
    return None


def _fp_sort_key(enc: bytes, fp: tuple) -> tuple:
    # type objects are not orderable, so ties on the encoding break on the
    # qualname path instead (deterministic within a process, which is all a
    # per-scheme memo key needs)
    return (enc, tuple(t.__qualname__ for t in fp))


def _fingerprint(value: Any, out: list) -> bool:
    """Append ``value``'s type fingerprint to ``out``; True when deeply immutable.

    Same walk shape, cache gating, and element ordering as :func:`_encode`,
    so fingerprint positions line up one-to-one between any two values with
    equal canonical encodings (the encoding commits every container length).
    """
    root = _Frame(None, 0, True)
    frames = [root]
    stack = [value]
    while stack:
        v = stack.pop()
        if v is _END:
            frame = frames.pop()
            if frame.immutable:
                if _caching_enabled:
                    _FINGERPRINT_CACHE.put(
                        id(frame.value), (frame.value, tuple(out[frame.start:]))
                    )
            else:
                frames[-1].immutable = False
            continue
        if isinstance(v, (tuple, list)):
            if _caching_enabled:
                cached = _cached_fingerprint(v)
                if cached is not None:
                    out.extend(cached)
                    continue
            frames.append(_Frame(v, len(out), not isinstance(v, list)))
            out.append(type(v))
            stack.append(_END)
            stack.extend(reversed(v))
        elif dataclasses.is_dataclass(v) and not isinstance(v, type):
            if _caching_enabled:
                cached = _cached_fingerprint(v)
                if cached is not None:
                    out.extend(cached)
                    continue
            frames.append(_Frame(v, len(out), _dataclass_frozen(type(v))))
            out.append(type(v))
            stack.append(_END)
            for f in reversed(dataclasses.fields(v)):
                stack.append(getattr(v, f.name))
        elif isinstance(v, frozenset):
            if _caching_enabled:
                cached = _cached_fingerprint(v)
                if cached is not None:
                    out.extend(cached)
                    continue
            start = len(out)
            out.append(type(v))
            immutable = True
            elems = []
            for item in v:
                sub: list = []
                immutable &= _fingerprint(item, sub)
                elems.append((canonical_bytes(item), tuple(sub)))
            elems.sort(key=lambda e: _fp_sort_key(*e))
            for _, sub_fp in elems:
                out.extend(sub_fp)
            if immutable:
                if _caching_enabled:
                    _FINGERPRINT_CACHE.put(id(v), (v, tuple(out[start:])))
            else:
                frames[-1].immutable = False
        elif isinstance(v, dict):
            out.append(type(v))
            items = []
            for key, val in v.items():
                ksub: list = []
                _fingerprint(key, ksub)
                vsub: list = []
                _fingerprint(val, vsub)
                items.append(
                    (canonical_bytes(key), tuple(ksub),
                     canonical_bytes(val), tuple(vsub))
                )
            items.sort(key=lambda e: _fp_sort_key(e[0], e[1]) + _fp_sort_key(e[2], e[3]))
            for _, ksub_fp, _, vsub_fp in items:
                out.extend(ksub_fp)
                out.extend(vsub_fp)
            frames[-1].immutable = False
        else:
            # scalars: the encoding pins their tag, but the exact runtime
            # type can still matter (bytearray encodes as bytes; an int/str
            # subclass can override comparison hooks a validator relies on)
            out.append(type(v))
            if isinstance(v, bytearray):
                frames[-1].immutable = False
    return root.immutable


def type_fingerprint(value: Any) -> tuple:
    """Flat preorder tuple of the exact runtime types inside ``value``.

    :func:`canonical_bytes` deliberately erases type distinctions that
    validators check with ``isinstance``: tuples and lists encode
    identically, a dataclass encoding commits only to ``__qualname__`` and
    field values (not class identity), and ``bytearray`` encodes as
    ``bytes``. A verdict memo keyed on the serialization alone therefore
    lets a Byzantine look-alike — a list-shaped copy of a proof, an
    impostor dataclass — share (and poison) the cache entry of the genuine
    value it mimics. Every verdict memo key must pair the canonical bytes
    with this fingerprint, so only values the uncached validators treat
    identically can share an entry.

    Deterministic per value content; identity-LRU cached for deeply
    immutable values like the encoding cache, so hot-path lookups are O(1)
    after the first walk. Raises :class:`~repro.errors.SignatureError` only
    where :func:`canonical_bytes` does (frozenset/dict elements outside the
    encodable domain).
    """
    if _caching_enabled:
        cached = _cached_fingerprint(value)
        if cached is not None:
            return cached
    out: list = []
    _fingerprint(value, out)
    return tuple(out)
