"""Canonical, deterministic serialization of protocol values.

Signatures must commit to message *content*, so the library needs a stable
byte encoding for every value protocols exchange. The encoding here is a
small, self-describing tag-length-value format over the closed set of types
the protocols use: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``, ``tuple``/``list`` (encoded identically — protocols treat both as
sequences), frozen dataclasses, ``frozenset`` (sorted by element encoding),
and ``dict`` (sorted by key encoding).

The format is injective on this domain: distinct values produce distinct
bytes, so a signature over :func:`canonical_bytes` is a commitment to the
value itself. This property is exercised by hypothesis tests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
from typing import Any

from ..errors import SignatureError

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_SEQ = b"L"
_TAG_SET = b"E"
_TAG_MAP = b"M"
_TAG_DATACLASS = b"C"


def _encode_length(out: bytearray, n: int) -> None:
    out += struct.pack(">Q", n)


def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        body = str(value).encode("ascii")
        out += _TAG_INT
        _encode_length(out, len(body))
        out += body
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out += _TAG_STR
        _encode_length(out, len(body))
        out += body
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_BYTES
        _encode_length(out, len(value))
        out += bytes(value)
    elif isinstance(value, (tuple, list)):
        out += _TAG_SEQ
        _encode_length(out, len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, frozenset):
        encoded = sorted(canonical_bytes(item) for item in value)
        out += _TAG_SET
        _encode_length(out, len(encoded))
        for item in encoded:
            _encode_length(out, len(item))
            out += item
    elif isinstance(value, dict):
        items = sorted(
            (canonical_bytes(k), canonical_bytes(v)) for k, v in value.items()
        )
        out += _TAG_MAP
        _encode_length(out, len(items))
        for k, v in items:
            _encode_length(out, len(k))
            out += k
            _encode_length(out, len(v))
            out += v
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__qualname__.encode("utf-8")
        out += _TAG_DATACLASS
        _encode_length(out, len(name))
        out += name
        fields = dataclasses.fields(value)
        _encode_length(out, len(fields))
        for f in fields:
            _encode(getattr(value, f.name), out)
    else:
        raise SignatureError(
            f"cannot canonically serialize value of type {type(value).__name__}: {value!r}"
        )


def canonical_bytes(value: Any) -> bytes:
    """Encode ``value`` into its canonical byte representation.

    Raises :class:`~repro.errors.SignatureError` for values outside the
    supported domain (e.g. sets of unhashable items, arbitrary objects).
    """

    out = bytearray()
    _encode(value, out)
    return bytes(out)


def content_hash(value: Any) -> bytes:
    """SHA-256 digest of :func:`canonical_bytes`; used as a compact commitment."""

    return hashlib.sha256(canonical_bytes(value)).digest()
