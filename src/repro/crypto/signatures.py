"""Simulated unforgeable transferable signatures.

The model follows the object-capability discipline used throughout this
library: a :class:`SignatureScheme` owns per-process secret keys and hands
out a :class:`Signer` capability to each process exactly once. Simulated
Byzantine processes receive *their own* signer only; since the secret key
bytes never appear outside this module, no in-simulation adversary can forge
a signature of another process. Verification needs only the scheme object
and the claimed signer id, so signatures are *transferable*: any process may
relay a signature it received and third parties can verify it, which is what
the L1/L2 proof construction of Algorithm 1 in the paper relies on.

Implementation detail: signatures are HMAC-SHA256 tags over the canonical
serialization of the payload, keyed by a per-process key derived from the
scheme seed. This keeps runs deterministic across platforms.

Hot path: the L1/L2 proof pyramids of Algorithm 1 (and MinBFT's USIG
certificates) carry the *same* signatures through every relay hop, so each
scheme keeps a bounded verification cache keyed by ``(signer,
payload_bytes, tag)`` — a signature transferred through proofs is
HMAC-verified once per scheme, after which verification is a dict lookup.
Correctness is unconditional: the key commits to the exact payload
encoding and tag, verification is deterministic, and the cache stores only
the boolean verdict, so cached and uncached verify are extensionally
identical (hypothesis-tested). Structurally malformed tags (wrong type or
length) are cheap-rejected before any serialization or HMAC. All activity
is counted in :data:`repro.crypto.serialize.STATS`.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from ..errors import SignatureError
from ..types import ProcessId
from .serialize import BoundedCache, STATS, caching_enabled, canonical_bytes

TAG_LENGTH = hashlib.sha256().digest_size
"""Length of every genuine signature tag (HMAC-SHA256 output, 32 bytes)."""


@dataclass(frozen=True, slots=True)
class Signature:
    """A transferable signature: ``signer`` claims authorship of a payload.

    The payload itself is *not* embedded; protocols carry ``(value,
    signature)`` pairs and verification recomputes the tag from the value.
    ``tag`` is an HMAC output, opaque to protocols.
    """

    signer: ProcessId
    tag: bytes

    def __repr__(self) -> str:
        return f"Signature(signer={self.signer}, tag={self.tag[:4].hex()}…)"


class Signer:
    """Capability to sign on behalf of one process.

    Instances are only constructed by :meth:`SignatureScheme.signer` and hold
    a reference to the scheme's private key table rather than key bytes, so
    even introspection-free "honest but curious" protocol code cannot leak a
    key through a trace.
    """

    __slots__ = ("_scheme", "_pid", "_revoked")

    def __init__(self, scheme: "SignatureScheme", pid: ProcessId) -> None:
        self._scheme = scheme
        self._pid = pid
        self._revoked = False

    @property
    def pid(self) -> ProcessId:
        return self._pid

    def sign(self, value: Any) -> Signature:
        """Produce a signature of ``value`` by this signer's process."""
        if self._revoked:
            raise SignatureError(f"signer for process {self._pid} was revoked")
        return self._scheme._sign(self._pid, value)

    def revoke(self) -> None:
        """Disable this capability (used by tests modeling key compromise recovery)."""
        self._revoked = True


class SignatureScheme:
    """Deterministic signature scheme for one simulation.

    Parameters
    ----------
    n:
        Number of processes; signer ids are ``0..n-1``.
    seed:
        Seed mixed into every per-process key. Two schemes with the same
        ``(n, seed)`` produce identical signatures, keeping simulations
        reproducible; schemes with different seeds reject each other's
        signatures, modeling distinct PKIs.
    """

    def __init__(self, n: int, seed: int = 0) -> None:
        if n <= 0:
            raise SignatureError(f"scheme needs at least one process, got n={n}")
        self._n = n
        self._seed = seed
        root = hashlib.sha256(f"repro-pki|{seed}".encode()).digest()
        self._keys: dict[ProcessId, bytes] = {
            pid: hashlib.sha256(root + pid.to_bytes(8, "big")).digest()
            for pid in range(n)
        }
        self._issued: set[ProcessId] = set()
        # (signer, payload_bytes, tag) -> bool; one HMAC per unique
        # signature transferred through this scheme's proofs
        self._verify_cache = BoundedCache(1 << 13)
        self.memo = BoundedCache(1 << 13)
        """Scratch memo for protocol-layer caches (verified L1/L2 proofs,
        proposal validity, …), scoped to this scheme so every run starts
        cold. Keys must commit to the full serialized content they cover."""

    @property
    def n(self) -> int:
        return self._n

    def signer(self, pid: ProcessId) -> Signer:
        """Issue the signing capability for ``pid``; valid at most once per pid.

        The once-only rule catches simulation wiring bugs where two process
        objects believe they are the same principal.
        """
        if pid not in self._keys:
            raise SignatureError(f"no such process id {pid} (n={self._n})")
        if pid in self._issued:
            raise SignatureError(f"signer for process {pid} already issued")
        self._issued.add(pid)
        return Signer(self, pid)

    def _sign(self, pid: ProcessId, value: Any) -> Signature:
        STATS.signs += 1
        STATS.hmac_ops += 1
        tag = hmac.new(self._keys[pid], canonical_bytes(value), hashlib.sha256)
        return Signature(signer=pid, tag=tag.digest())

    def verify(self, value: Any, signature: Signature) -> bool:
        """Check that ``signature`` is a valid signature of ``value``.

        Returns ``False`` (never raises) for wrong signers, tampered values,
        foreign-scheme signatures, and structurally odd tags — protocols
        treat all of these identically as "invalid signature".

        Tags that are not 32-byte byte strings are rejected before any
        serialization or HMAC work (no genuine tag has another shape), and
        verdicts are memoized per ``(signer, payload, tag)`` so relayed
        proofs cost one HMAC per unique signature.
        """
        if not isinstance(signature, Signature):
            return False
        tag = signature.tag
        if not isinstance(tag, (bytes, bytearray)) or len(tag) != TAG_LENGTH:
            STATS.cheap_rejects += 1
            return False
        key = self._keys.get(signature.signer)
        if key is None:
            return False
        try:
            payload = canonical_bytes(value)
        except SignatureError:
            return False
        cache_key = None
        if caching_enabled():
            cache_key = (signature.signer, payload, bytes(tag))
            verdict = self._verify_cache.get(cache_key)
            if verdict is not None:
                STATS.verify_hits += 1
                return verdict
            STATS.verify_misses += 1
        STATS.hmac_ops += 1
        expected = hmac.new(key, payload, hashlib.sha256).digest()
        verdict = hmac.compare_digest(expected, tag)
        if cache_key is not None:
            self._verify_cache.put(cache_key, verdict)
        return verdict

    def verify_signed(self, pair: Any, expected_signer: ProcessId | None = None) -> bool:
        """Verify a ``(value, Signature)`` pair as carried in protocol messages.

        Convenience used by protocol code: checks the pair shape, optionally
        that the claimed signer matches ``expected_signer``, then verifies.
        """
        if not (isinstance(pair, tuple) and len(pair) == 2):
            return False
        value, signature = pair
        if not isinstance(signature, Signature):
            return False
        if expected_signer is not None and signature.signer != expected_signer:
            return False
        return self.verify(value, signature)
