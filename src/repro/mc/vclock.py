"""Vector clocks and the independence relation for schedule exploration.

Dynamic partial-order reduction needs two ingredients: *dependence* — may
these transitions affect each other? — and *happens-before* — was one
causally forced after the other in the executed schedule? Both are defined
here over the simulator's transition alphabet (message deliveries, timer
firings, choice-marked callbacks such as scripted crashes and SRB-oracle
deliveries).

**Dependence.** A transition mutates exactly one process's state: the
delivery destination, the timer's owner, the crash target
(:func:`repro.sim.events.choice_target`). Two transitions with different
targets commute — delivering to ``p`` cannot change what delivering to
``q`` does — so dependence is simply *same target* (``None``, the unknown
target, is conservatively dependent with everything).

**Happens-before.** Clocks are plain ``dict[target, int]`` mappings,
component-joined as usual. A transition's clock joins (a) the clock of the
dispatch that *created* its event — a message can only race ahead of its
cause, never behind it — with (b) the clock of the last transition at the
same target, then advances its target's component. ``leq`` between two
executed clocks then decides "was the earlier transition a cause of the
later one, or did the schedule merely happen to order them?" — the latter
case is a race the explorer must backtrack on.
"""

from __future__ import annotations

from ..types import ProcessId

VClock = dict[ProcessId, int]
"""Component-wise vector clock, keyed by transition target (process id)."""


def leq(a: VClock, b: VClock) -> bool:
    """Pointwise ``a <= b``: every component of ``a`` is covered by ``b``."""
    return all(b.get(k, 0) >= v for k, v in a.items())


def join(a: VClock, b: VClock) -> VClock:
    """Component-wise maximum (a fresh dict; inputs are not mutated)."""
    out = dict(a)
    for k, v in b.items():
        if out.get(k, 0) < v:
            out[k] = v
    return out


def dependent(target_a: ProcessId | None, target_b: ProcessId | None) -> bool:
    """May transitions targeting these processes affect each other?

    Same target → dependent (they race on one process's state). Different
    targets → independent. An unknown target (``None``) is dependent with
    everything — soundness over reduction.
    """
    if target_a is None or target_b is None:
        return True
    return target_a == target_b
