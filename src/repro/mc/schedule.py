"""Serializable schedule identities for counterexample reproduction.

A schedule is the sequence of *choice* transitions the explorer dispatched,
identified by their scheduler sequence numbers. Sequence numbers are
deterministic — replaying the same prefix of choices against a fresh
simulation recreates byte-identical events with the same seqs — so the seq
list alone pins the execution. The id additionally carries a fingerprint
hash over the per-step transition descriptions; replay verifies it, so a
schedule id pasted against the wrong system (or a drifted codebase) fails
loudly instead of silently exploring something else.

Format: ``mc1:3-17-12-40:a91f03c2e4b7`` — version tag, dash-joined seqs,
12 hex chars of SHA-256 over the step fingerprints.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim.events import (
    Callback,
    Event,
    MessageDeliver,
    OpLinearize,
    OpRespond,
    TimerFire,
)

_VERSION = "mc1"


def event_fingerprint(ev: Event) -> tuple:
    """Content identity of a transition, independent of times and seqs.

    Used to hash schedules and to sanity-check replays: two executions of
    the same prefix must present the same fingerprint at each step.
    """
    p = ev.payload
    if isinstance(p, MessageDeliver):
        return ("deliver", p.src, p.dst, p.duplicate)
    if isinstance(p, TimerFire):
        return ("timer", p.pid, repr(p.tag))
    if isinstance(p, Callback):
        return ("callback", p.pid, p.label)
    if isinstance(p, OpLinearize):
        return ("linearize", p.pid, p.object_name, p.op)
    if isinstance(p, OpRespond):
        return ("respond", p.pid, p.object_name, p.op)
    return ("unknown", repr(p))  # pragma: no cover - exhaustive over Payload


def fingerprint_digest(fingerprints: tuple[tuple, ...]) -> str:
    h = hashlib.sha256("|".join(map(repr, fingerprints)).encode())
    return h.hexdigest()[:12]


@dataclass(frozen=True, slots=True)
class Schedule:
    """One explored execution: chosen seqs in order, plus a content hash."""

    steps: tuple[int, ...]
    digest: str

    @classmethod
    def from_run(cls, steps: tuple[int, ...],
                 fingerprints: tuple[tuple, ...]) -> "Schedule":
        return cls(steps=steps, digest=fingerprint_digest(fingerprints))

    @property
    def depth(self) -> int:
        return len(self.steps)


def schedule_id(schedule: Schedule) -> str:
    """Render a schedule as a copy-pasteable id string."""
    steps = "-".join(str(s) for s in schedule.steps)
    return f"{_VERSION}:{steps}:{schedule.digest}"


def parse_schedule_id(sid: str) -> Schedule:
    """Inverse of :func:`schedule_id`; raises on malformed ids."""
    parts = sid.strip().split(":")
    if len(parts) != 3 or parts[0] != _VERSION:
        raise ConfigurationError(
            f"malformed schedule id {sid!r}; expected '{_VERSION}:<seqs>:<hash>'"
        )
    _, steps_str, digest = parts
    try:
        steps = tuple(int(s) for s in steps_str.split("-")) if steps_str else ()
    except ValueError:
        raise ConfigurationError(
            f"malformed schedule id {sid!r}: non-integer step in {steps_str!r}"
        ) from None
    return Schedule(steps=steps, digest=digest)
