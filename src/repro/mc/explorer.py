"""Stateless DFS schedule exploration with dynamic partial-order reduction.

The explorer drives a fresh :class:`~repro.sim.runner.Simulation` (from a
user factory) through every interleaving of its *choice* transitions —
message deliveries, timer firings, choice-marked callbacks — up to a
bound. The simulator cannot be checkpointed, so the search is *stateless*
in the Verisoft/Flanagan–Godefroid sense: to visit a node of the schedule
tree, the whole prefix is re-executed from scratch (cheap here: one
execution is a few hundred microseconds of pure-Python event dispatch).

Between choices, *forced* events (scenario callbacks, shared-memory
linearizations) drain eagerly in canonical ``(time, seq)`` order — they
are deterministic glue, not scheduling freedom — so the branching factor
is exactly the number of co-enabled choice transitions.

Reduction (``dpor=True``, the default) is classic DPOR with sleep sets:

- every executed transition gets a vector clock (:mod:`repro.mc.vclock`)
  joining its event's *creation* clock — found by snapshotting the
  scheduler's seq watermark around each dispatch — its ``after``-chain
  predecessor's clock, and the last clock at its target process;
- executing ``t`` at depth ``d`` scans backwards for the deepest earlier
  transition that is dependent with ``t`` but not a cause of it (a race),
  and adds ``t`` (or, if ``t`` did not exist there, the whole enabled set)
  to that state's backtrack set;
- sleep sets prune sibling orders of independent transitions: after a
  subtree is fully explored its root transition goes to sleep, and sleeps
  through every sibling it is independent with.

Soundness caveat: with ``max_steps`` truncation a race below the horizon
can be missed — bounded DPOR is exhaustive only for systems that quiesce
within the bound. ``dpor=False`` (naive full enumeration) is the reference
oracle; ``tests/test_mc_explorer.py`` checks the two produce identical
verdicts on micro-systems.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from ..errors import ConfigurationError, PropertyViolation
from ..sim.events import Event, TimerFire, choice_target
from ..sim.runner import Simulation
from ..types import ProcessId
from .schedule import (
    Schedule,
    event_fingerprint,
    fingerprint_digest,
    parse_schedule_id,
    schedule_id,
)
from .vclock import VClock, dependent, join, leq

Factory = Callable[[], Any]
"""Builds one fresh, un-started system per execution. May return the
:class:`~repro.sim.runner.Simulation` itself, a tuple containing it, or
any object with a ``sim`` attribute — the extra structure (processes,
checkers) is handed back to ``check`` / ``on_leaf`` untouched."""


def _sim_of(state: Any) -> Simulation:
    if isinstance(state, Simulation):
        return state
    if isinstance(state, tuple):
        for item in state:
            if isinstance(item, Simulation):
                return item
    sim = getattr(state, "sim", None)
    if isinstance(sim, Simulation):
        return sim
    raise ConfigurationError(
        "factory must return a Simulation, a tuple containing one, or an "
        f"object with a .sim attribute; got {type(state).__name__}"
    )


@dataclass(frozen=True, slots=True)
class Violation:
    """One convicted schedule: its replayable id and what went wrong."""

    schedule: str
    message: str
    depth: int


@dataclass(slots=True)
class ExplorationResult:
    """What one exploration covered, and what it found.

    ``schedules`` counts maximal branches (quiescent leaves, truncated
    leaves, violation-aborted branches); comparing it between a
    ``dpor=True`` and a ``dpor=False`` run of the same system yields the
    reduction factor — the headline number of this subsystem.
    """

    dpor: bool = True
    schedules: int = 0
    transitions: int = 0
    """Choice transitions dispatched, replayed prefixes included — the
    actual work done, which is what schedules/sec benchmarks divide by."""
    max_depth: int = 0
    violations: list[Violation] = field(default_factory=list)
    sleep_pruned: int = 0
    truncated: int = 0
    complete: bool = True
    """False when ``max_schedules`` / ``stop_at_first_violation`` cut the
    search short; ``max_steps`` truncation is reported via ``truncated``."""

    @property
    def ok(self) -> bool:
        return not self.violations

    def reduction_vs(self, naive: "ExplorationResult") -> float:
        """How many times fewer schedules than ``naive`` explored."""
        return naive.schedules / max(self.schedules, 1)


def merge_results(results: Iterable[ExplorationResult]) -> ExplorationResult:
    """Combine shard results (e.g. from a parallel root split)."""
    merged = ExplorationResult()
    first = True
    for r in results:
        if first:
            merged.dpor = r.dpor
            first = False
        merged.schedules += r.schedules
        merged.transitions += r.transitions
        merged.max_depth = max(merged.max_depth, r.max_depth)
        merged.violations.extend(r.violations)
        merged.sleep_pruned += r.sleep_pruned
        merged.truncated += r.truncated
        merged.complete = merged.complete and r.complete
    return merged


@dataclass(slots=True)
class ReplayResult:
    """Outcome of re-executing one schedule id."""

    state: Any
    sim: Simulation
    violation: Optional[str]
    steps_applied: int


@dataclass(slots=True)
class _Frame:
    """One state on the current DFS path (the state *before* its choice)."""

    enabled_seqs: tuple[int, ...]
    targets: dict[int, Optional[ProcessId]]
    backtrack: set[int]
    done: set[int] = field(default_factory=set)
    sleep: set[int] = field(default_factory=set)
    pinned: bool = False
    """Shard roots: the forced choice is fixed; race-detected backtrack
    additions here belong to sibling shards and are never picked up."""
    chosen_target: Optional[ProcessId] = None
    chosen_clock: VClock = field(default_factory=dict)


_STOP = "stop"
_CONTINUE = "continue"


class Explorer:
    """Bounded exhaustive exploration of one system's schedule tree.

    ``check(state)`` runs at every *quiescent* leaf and returns a violation
    message or ``None``; :class:`~repro.errors.PropertyViolation` raised
    mid-branch by fail-fast streaming checkers convicts the branch at that
    step and prunes everything below it. ``on_leaf(state, schedule)`` runs
    at quiescent leaves after ``check`` — the hook exhaustive separation
    runners use to collect per-schedule views.

    ``choice_targets`` bounds the exploration: choices targeting other
    processes are dispatched eagerly in canonical order instead of
    branching — "quantify over the schedules at these processes, fix the
    rest" — which is how the separation scenarios stay tractable.
    ``fire_timers=False`` suppresses timer transitions entirely (they stay
    queued, never fire), the bound used for systems whose timers re-arm
    forever.
    """

    def __init__(
        self,
        factory: Factory,
        check: Optional[Callable[[Any], Optional[str]]] = None,
        on_leaf: Optional[Callable[[Any, Schedule], None]] = None,
        *,
        dpor: bool = True,
        max_steps: Optional[int] = None,
        max_schedules: Optional[int] = None,
        stop_at_first_violation: bool = False,
        fire_timers: bool = True,
        choice_targets: Optional[Iterable[ProcessId]] = None,
    ) -> None:
        self._factory = factory
        self._check = check
        self._on_leaf = on_leaf
        self._dpor = dpor
        self._max_steps = max_steps
        self._max_schedules = max_schedules
        self._stop_first = stop_at_first_violation
        self._fire_timers = fire_timers
        self._focus = None if choice_targets is None else frozenset(choice_targets)

    # -- execution machinery -------------------------------------------------

    def _fresh(self) -> tuple[Any, Simulation]:
        state = self._factory()
        sim = _sim_of(state)
        sim.enable_controlled()
        return state, sim

    def _settle(self, sim: Simulation) -> list[Event]:
        """Drain glue and out-of-bound choices; return the branching set."""
        while True:
            sim.drain_forced()
            forced_choice: Optional[Event] = None
            eligible: list[Event] = []
            for ev in sim.choice_events():
                payload = ev.payload
                if not self._fire_timers and isinstance(payload, TimerFire):
                    continue  # suppressed: stays queued, never fires
                if (
                    self._focus is not None
                    and choice_target(payload) not in self._focus
                ):
                    if forced_choice is None:
                        forced_choice = ev
                    continue
                eligible.append(ev)
            if forced_choice is None:
                return eligible
            sim.step_event(forced_choice)

    @staticmethod
    def _creation_clock(
        seq: int, bounds: list[int], depth_clocks: list[VClock]
    ) -> VClock:
        """Clock of the dispatch that created event ``seq`` ({} = setup)."""
        idx = bisect.bisect_right(bounds, seq)
        if idx == 0:
            return {}
        return depth_clocks[idx - 1]

    def _make_frame(self, eligible: Sequence[Event],
                    sleep: Iterable[int] = ()) -> _Frame:
        seqs = tuple(ev.seq for ev in eligible)
        targets = {ev.seq: choice_target(ev.payload) for ev in eligible}
        sleep_set = {s for s in sleep if s in targets}
        if self._dpor:
            seed = next((s for s in seqs if s not in sleep_set), None)
            backtrack = set() if seed is None else {seed}
        else:
            backtrack = set(seqs)
        return _Frame(
            enabled_seqs=seqs, targets=targets, backtrack=backtrack,
            sleep=sleep_set,
        )

    def _execute(
        self,
        frames: list[_Frame],
        path: list[int],
        fps: list[tuple],
        res: ExplorationResult,
        root_choice: Optional[int],
        root_sleep: tuple[int, ...],
    ) -> str:
        """Re-execute the prefix in ``path``, extend to one maximal branch.

        Persistent search state (``frames``' backtrack/done/sleep sets)
        survives across calls; simulator state and clocks are rebuilt. The
        branch ends at a quiescent leaf, a truncation, a sleep-blocked
        state, or a convicted violation. Returns ``_STOP`` to end the
        whole search (root-settle violation or stop-at-first-violation).
        """
        state, sim = self._fresh()
        bounds: list[int] = []
        depth_clocks: list[VClock] = []
        executed_clock: dict[int, VClock] = {}
        last_clock: dict[Optional[ProcessId], VClock] = {}

        def record_violation(message: str, depth: int) -> None:
            sched = Schedule.from_run(tuple(path), tuple(fps))
            res.violations.append(
                Violation(schedule=schedule_id(sched), message=message,
                          depth=depth)
            )

        try:
            eligible = self._settle(sim)
        except PropertyViolation as exc:
            # the deterministic prefix before any choice already violates:
            # every schedule shares it, so the search is over
            res.schedules += 1
            record_violation(str(exc), depth=0)
            return _STOP
        bounds.append(sim.scheduler.next_seq)

        if not frames:
            root = self._make_frame(
                eligible,
                sleep=(
                    eligible[i].seq for i in root_sleep if i < len(eligible)
                ),
            )
            if root_choice is not None:
                if root_choice >= len(eligible):
                    raise ConfigurationError(
                        f"root_choice {root_choice} out of range: only "
                        f"{len(eligible)} root transitions"
                    )
                root.backtrack = {eligible[root_choice].seq}
                root.pinned = True
            frames.append(root)

        depth = 0
        while True:
            frame = frames[depth]
            by_seq = {ev.seq: ev for ev in eligible}

            if depth == len(path):
                # leaf / prune checks apply where a new choice is due
                if not frame.enabled_seqs:
                    res.schedules += 1
                    res.max_depth = max(res.max_depth, depth)
                    message = self._check(state) if self._check else None
                    if message:
                        record_violation(message, depth)
                    if self._on_leaf is not None:
                        self._on_leaf(
                            state, Schedule.from_run(tuple(path), tuple(fps))
                        )
                    return _CONTINUE
                if all(s in frame.sleep for s in frame.enabled_seqs):
                    res.sleep_pruned += 1
                    return _CONTINUE
                if self._max_steps is not None and depth >= self._max_steps:
                    res.schedules += 1
                    res.truncated += 1
                    res.max_depth = max(res.max_depth, depth)
                    # sterilize: nothing below the horizon is explored, so
                    # this frame must never look like pending work to the
                    # backtrack scan (it would re-truncate forever)
                    frame.backtrack.clear()
                    return _CONTINUE
                todo = frame.backtrack - frame.done - frame.sleep
                if not todo:
                    # every required branch here is already covered
                    return _CONTINUE
                path.append(min(todo))
                del fps[depth:]

            choice_seq = path[depth]
            ev = by_seq.get(choice_seq)
            if ev is None:
                raise ConfigurationError(
                    f"schedule does not replay: seq {choice_seq} is not "
                    f"co-enabled at depth {depth} (nondeterministic factory?)"
                )
            if len(fps) == depth:
                fps.append(event_fingerprint(ev))
            frame.done.add(choice_seq)

            target = frame.targets.get(choice_seq)
            clock = dict(self._creation_clock(ev.seq, bounds, depth_clocks))
            if ev.after is not None:
                after_clock = executed_clock.get(ev.after.seq)
                if after_clock:
                    clock = join(clock, after_clock)
            if self._dpor:
                for j in range(depth - 1, -1, -1):
                    prev = frames[j]
                    if dependent(prev.chosen_target, target) and not leq(
                        prev.chosen_clock, clock
                    ):
                        if choice_seq in prev.targets:
                            prev.backtrack.add(choice_seq)
                        else:
                            prev.backtrack.update(prev.enabled_seqs)
                        break

            exec_clock = join(clock, last_clock.get(target, {}))
            exec_clock[target] = depth + 1
            frame.chosen_target = target
            frame.chosen_clock = exec_clock
            executed_clock[choice_seq] = exec_clock
            last_clock[target] = exec_clock
            depth_clocks.append(exec_clock)

            res.transitions += 1
            try:
                sim.step_event(ev)
                eligible = self._settle(sim)
            except PropertyViolation as exc:
                del path[depth + 1:]
                del fps[depth + 1:]
                res.max_depth = max(res.max_depth, depth + 1)
                res.schedules += 1
                record_violation(str(exc), depth + 1)
                del frames[depth + 1:]
                del path[depth:]
                return _STOP if self._stop_first else _CONTINUE
            bounds.append(sim.scheduler.next_seq)

            if depth + 1 == len(frames):
                child_sleep: set[int] = set()
                if self._dpor:
                    # explored siblings sleep through independent successors
                    asleep = (frame.sleep | frame.done) - {choice_seq}
                    child_sleep = {
                        s
                        for s in asleep
                        if s in frame.targets
                        and not dependent(frame.targets[s], target)
                    }
                frames.append(self._make_frame(eligible, sleep=child_sleep))
            depth += 1
            res.max_depth = max(res.max_depth, depth)

    # -- public API ----------------------------------------------------------

    def run(
        self,
        root_choice: Optional[int] = None,
        root_sleep: tuple[int, ...] = (),
    ) -> ExplorationResult:
        """Explore the schedule tree; see class docstring for the bounds.

        ``root_choice`` / ``root_sleep`` implement sharded exploration
        (:func:`repro.faults.chaos.exhaustive_sweep`): the shard explores
        only the subtree under the ``root_choice``-th root transition,
        with earlier siblings seeded asleep — a naive split at the root
        (all root branches covered across shards, so no cross-shard
        backtrack propagation is needed) and full DPOR below it.
        """
        res = ExplorationResult(dpor=self._dpor)
        frames: list[_Frame] = []
        path: list[int] = []
        fps: list[tuple] = []
        while True:
            outcome = self._execute(
                frames, path, fps, res, root_choice, root_sleep
            )
            if outcome == _STOP:
                res.complete = False
                break
            if self._stop_first and res.violations:
                res.complete = False
                break
            if (
                self._max_schedules is not None
                and res.schedules >= self._max_schedules
            ):
                res.complete = False
                break
            # deepest frame with an unexplored required branch
            d = len(frames) - 1
            while d >= 0:
                f = frames[d]
                if not f.pinned and (f.backtrack - f.done - f.sleep):
                    break
                d -= 1
            if d < 0:
                break
            del frames[d + 1:]
            del path[d:]
            del fps[d:]
        return res

    def replay(self, schedule: Schedule | str) -> ReplayResult:
        """Re-execute one schedule bit-exactly; verify its fingerprint.

        A :class:`~repro.errors.PropertyViolation` raised along the way is
        captured in the result (that is the counterexample reproducing),
        not re-raised. The digest is verified when every step applied; a
        mismatch means the schedule id belongs to a different system.
        """
        if isinstance(schedule, str):
            schedule = parse_schedule_id(schedule)
        state, sim = self._fresh()
        fingerprints: list[tuple] = []
        violation: Optional[str] = None
        applied = 0
        try:
            eligible = self._settle(sim)
            for seq in schedule.steps:
                ev = next((e for e in eligible if e.seq == seq), None)
                if ev is None:
                    raise ConfigurationError(
                        f"schedule does not replay: seq {seq} not co-enabled "
                        f"after {applied} steps"
                    )
                fingerprints.append(event_fingerprint(ev))
                sim.step_event(ev)
                applied += 1
                eligible = self._settle(sim)
        except PropertyViolation as exc:
            violation = str(exc)
        if (
            violation is None
            and applied == len(schedule.steps)
            and self._check is not None
        ):
            # quiescent-leaf checks (liveness audits) re-run here so their
            # counterexamples reproduce the same way fail-fast ones do
            violation = self._check(state)
        if applied == len(schedule.steps) and schedule.digest:
            digest = fingerprint_digest(tuple(fingerprints))
            if digest != schedule.digest:
                raise ConfigurationError(
                    f"schedule digest mismatch: id says {schedule.digest}, "
                    f"replay produced {digest} — wrong system or drifted code"
                )
        return ReplayResult(
            state=state, sim=sim, violation=violation, steps_applied=applied
        )


# -- module-level conveniences ---------------------------------------------


def explore(
    factory: Factory,
    check: Optional[Callable[[Any], Optional[str]]] = None,
    on_leaf: Optional[Callable[[Any, Schedule], None]] = None,
    **options: Any,
) -> ExplorationResult:
    """One-shot exploration; see :class:`Explorer` for the options."""
    return Explorer(factory, check=check, on_leaf=on_leaf, **options).run()


def replay_schedule(
    factory: Factory, schedule: Schedule | str, **options: Any
) -> ReplayResult:
    """Reproduce one counterexample schedule id against a fresh system."""
    return Explorer(factory, **options).replay(schedule)


def root_choice_count(factory: Factory, **options: Any) -> int:
    """Number of root transitions — the shard count for a parallel split."""
    explorer = Explorer(factory, **options)
    _, sim = explorer._fresh()
    return len(explorer._settle(sim))
