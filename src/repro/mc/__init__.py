"""Bounded model checking over the deterministic simulator.

The paper's separation arguments quantify over *schedules* — "in every
execution where these messages are delayed, …" — yet a seeded simulation
witnesses exactly one schedule per seed. For small configurations this
package replaces sampling with exhaustive, partial-order-reduced
exploration: drive the existing :class:`~repro.sim.runner.Simulation`
through every delivery interleaving up to a bound, with the streaming
trace checkers as the online oracle that convicts a branch at its first
permanent violation.

Layout:

- :mod:`repro.mc.vclock` — the independence relation and vector-clock
  happens-before tracking over deliver/timer/crash transitions;
- :mod:`repro.mc.schedule` — serializable schedule ids and bit-exact
  replay, for counterexample reproduction;
- :mod:`repro.mc.explorer` — stateless DFS with dynamic partial-order
  reduction (backtrack sets + sleep sets);
- :mod:`repro.mc.fixtures` — named model-checkable systems, including
  three planted-bug fixtures (one of which no seeded run can catch).

Scope: message-passing systems. Two transitions are independent iff they
target different processes; shared-memory linearization events are treated
as forced glue attributed to the choice that caused them, so systems whose
*choices* race through shared objects are out of scope for the reduction
(use ``dpor=False``).
"""

from .explorer import (
    ExplorationResult,
    Explorer,
    Violation,
    explore,
    merge_results,
    replay_schedule,
    root_choice_count,
)
from .schedule import Schedule, parse_schedule_id, schedule_id
from .vclock import dependent, join, leq

__all__ = [
    "ExplorationResult",
    "Explorer",
    "Schedule",
    "Violation",
    "dependent",
    "explore",
    "join",
    "leq",
    "merge_results",
    "parse_schedule_id",
    "replay_schedule",
    "root_choice_count",
    "schedule_id",
]
