"""Model-checkable systems, including three planted-bug fixtures.

Each entry in :data:`SYSTEMS` names a small configuration the bounded
model checker can sweep: a factory building a fresh un-started system, an
optional quiescent-leaf check, and the explorer options that define its
*configured bound* (focus set, depth cap, timer suppression). Workers of a
parallel exhaustive sweep resolve entries by name, so nothing here needs
to pickle across processes.

The planted bugs, in increasing order of how hard they are to catch:

- ``srb-eager`` — :class:`~repro.faults.chaos.EagerBrokenSRB` delivers on
  first sight of a signed value. Seeded chaos *does* catch this (that is
  its regression role); the model checker convicts it within a 3-step
  bound focused on one receiver, no luck required.
- ``minbft-stalling`` — :class:`~repro.faults.chaos.StallingPrimary`
  never proposes. A pure liveness bug: every schedule quiesces with zero
  executed requests, so the quiescent-leaf check convicts *all* leaves.
- ``srb-echo-gap`` — the detection-power fixture. A checkpoint fast-path
  (below) commits sequence ``k`` straight from another receiver's
  checkpoint without owning the prefix. Under the oracle's sampled delays
  the triggering order is *geometrically impossible* — the checkpoint for
  seq 2 cannot exist before t = 2.1, while VAL(1) always lands by t = 2.0
  — so every seeded run is clean (:func:`sampled_verdicts` demonstrates
  this over hundreds of seeds). The logical-order adversary of the model
  checker is not bound by drawn delays and convicts it in seconds: the
  Dolev–Spielrein bounded-model point, executable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core.srb import SRBStreamChecker
from ..core.srb_oracle import SRBOracle, SRBSenderHandle
from ..errors import ConfigurationError
from ..sim.adversary import LockStepSynchronous
from ..sim.process import Process, ProcessId
from ..sim.runner import Simulation
from ..types import ProcessId

IMMEDIATE = 0.05
"""Constant link delay for model-checked runs (times only break ties)."""

CHECKPOINT_EVERY = 2
"""A :class:`CheckpointRelay` broadcasts a checkpoint every this many
commits — which is why checkpoint 2 is the first (and only) one here."""


# ---------------------------------------------------------------------------
# The echo-gap protocol (fixture 3)
# ---------------------------------------------------------------------------


class CheckpointSender(Process):
    """Sender of the echo-gap fixture: broadcasts values at t=1, 2, …"""

    def __init__(self, oracle: SRBOracle, values: tuple = ("a", "b")) -> None:
        super().__init__()
        self.oracle = oracle
        self.values = values
        self._handle: Optional[SRBSenderHandle] = None

    def on_start(self) -> None:
        self._handle = self.oracle.sender_handle(self.pid)

    def broadcast_next(self, index: int) -> None:
        value = self.values[index]
        self.ctx.record("bcast", seq=index + 1, value=value)
        self._handle.broadcast(("V", index + 1, value))


class CheckpointRelay(Process):
    """Receiver with a checkpoint fast-path — deliberately broken.

    Correct behaviour: commit VAL(k) in sequence order, and after every
    :data:`CHECKPOINT_EVERY`-th commit broadcast ``("CHK", k, v)`` so a
    lagging peer can catch up. The planted bug is the catch-up path: a
    received checkpoint for ``k > committed`` is adopted *immediately*,
    without first obtaining the missing prefix — committing seq ``k`` over
    a gap, an SRB sequencing violation. Reachable only when a checkpoint
    overtakes the sender's first value, which sampled delays cannot
    produce (see module docstring) but a logical-order schedule can.
    """

    def __init__(self, oracle: SRBOracle, sender: ProcessId = 0) -> None:
        super().__init__()
        self.oracle = oracle
        self.sender = sender
        self._vals: dict[int, Any] = {}
        self._committed = 0
        self._handle: Optional[SRBSenderHandle] = None

    def on_start(self) -> None:
        self.oracle.subscribe(self.pid, self._on_deliver)
        self._handle = self.oracle.sender_handle(self.pid)

    def _on_deliver(self, src: ProcessId, seq: int, value: Any) -> None:
        if not isinstance(value, tuple) or not value:
            return
        if value[0] == "V" and src == self.sender:
            _, k, v = value
            self._vals[k] = v
            while self._committed + 1 in self._vals:
                nxt = self._committed + 1
                self._commit(nxt, self._vals[nxt])
        elif value[0] == "CHK" and src != self.sender:
            _, k, v = value
            if k > self._committed:
                # BUG: adopt the checkpoint without syncing the prefix
                self._commit(k, v)

    def _commit(self, k: int, v: Any) -> None:
        self._committed = k
        self.ctx.record("bcast_deliver", sender=self.sender, seq=k, value=v)
        if k % CHECKPOINT_EVERY == 0:
            self._handle.broadcast(("CHK", k, v))


def _echo_gap_policy(rng: Optional[random.Random]) -> Callable:
    """Delivery policy: no self-deliveries, nothing back to the sender.

    Both withheld legs are protocol no-ops (the sender never subscribes,
    a relay ignores its own checkpoint), dropped so they do not multiply
    the explored state space. ``rng`` picks sampled delays in [0.05, 1.0]
    for the seeded panel; ``None`` means the constant model-checking delay.
    """

    def policy(s, r, seq, now):
        if r == s or r == 0:
            return None
        return IMMEDIATE if rng is None else rng.uniform(IMMEDIATE, 1.0)

    return policy


def build_echo_gap(
    seed: int = 0, rng_delays: bool = False
) -> tuple[Simulation, SRBStreamChecker]:
    """n=3 echo-gap system: pid 0 sender, pids 1–2 checkpointing relays."""
    rng = random.Random(seed * 7919 + 5) if rng_delays else None
    oracle = SRBOracle(policy=_echo_gap_policy(rng), seed=seed,
                       record_trace=False)
    sender = CheckpointSender(oracle)
    procs = [sender, CheckpointRelay(oracle), CheckpointRelay(oracle)]
    sim = Simulation(procs, seed=seed)
    oracle.bind(sim)
    sim.at(1.0, lambda: sender.broadcast_next(0), label="bcast-1")
    sim.at(2.0, lambda: sender.broadcast_next(1), label="bcast-2")
    checker = SRBStreamChecker(
        0, correct=(1, 2), expect_complete=False,
        fail_fast=not rng_delays,
    )
    sim.attach_observer(checker)
    return sim, checker


def sampled_verdicts(
    seeds=range(200), horizon: float = 10.0
) -> list[bool]:
    """The seeded-panel control: one timed run per seed, True = clean.

    Every verdict is True — the echo-gap trigger is outside the sampled
    delay geometry — which is exactly what makes the fixture a proof of
    detection power beyond sampling (``tests/test_mc_fixtures.py``).
    """
    verdicts = []
    for seed in seeds:
        sim, checker = build_echo_gap(seed=seed, rng_delays=True)
        sim.run(until=horizon)
        report = checker.finish()
        verdicts.append(not report.all_violations())
    return verdicts


# ---------------------------------------------------------------------------
# Fixture factories (explorer-facing)
# ---------------------------------------------------------------------------


def echo_gap_factory() -> tuple[Simulation, SRBStreamChecker]:
    return build_echo_gap(seed=0, rng_delays=False)


def eager_srb_factory() -> tuple[Simulation, SRBStreamChecker]:
    """EagerBrokenSRB over the real message-passing stack, n=3, t=1."""
    from ..core.srb_from_uni import build_mp_srb_system
    from ..faults.chaos import EagerBrokenSRB

    def proc_factory(pid, transport, scheme, signer):
        return EagerBrokenSRB(transport, 0, 1, scheme, signer)

    sim, procs, _scheme = build_mp_srb_system(
        n=3, t=1, sender=0, seed=0,
        adversary=LockStepSynchronous(1.0),
        reliable=False,
        process_factory=proc_factory,
    )
    sim.at(1.0, lambda: procs[0].broadcast("mc-a"), label="bcast-1")
    sim.at(2.0, lambda: procs[0].broadcast("mc-b"), label="bcast-2")
    checker = SRBStreamChecker(
        0, correct=(0, 1, 2), expect_complete=False, fail_fast=True
    )
    sim.attach_observer(checker)
    return sim, checker


def _isolate_victim(clients: list, victim: ProcessId = 2) -> None:
    """Partition the victim replica from everyone but the primary.

    Clients stop addressing it and replica 1's sends to it are dropped
    (see the ``replica_wrapper`` at each call site), so the victim hears
    only the (possibly Byzantine) primary — and its own broadcasts. This
    is the adversary's strongest cut at n = 2f+1: the fork's minority
    side is exactly {primary, victim}, and every message the victim acts
    on is attacker-chosen. It also collapses the exploration's choice
    pool to the handful of deliveries that actually decide the outcome —
    bounded DPOR can only ever backtrack into transitions it has executed,
    so drowning the pool in no-op deliveries hides the interesting
    interleavings past any feasible depth.
    """
    for client in clients:
        client.replicas = tuple(
            pid for pid in client.replicas if pid != victim
        )


def equivocating_minbft_factory() -> tuple:
    """MinBFT f=1 under a PREPARE-equivocating primary with *intact* USIG.

    The attack forks the primary's stream: the victim receives only the
    alternative PREPARE, everyone else receives both. The victim is
    additionally partitioned from replica 1 (see :func:`_isolate_victim`),
    so the primary's stream is *all it has* — the hardest configuration
    for the hardware to defend. What the exploration certifies: the alt
    PREPARE burns the counter *after* the real one, so the victim's USIG
    order enforcer holds it behind a permanent gap — no interleaving of
    the victim's deliveries produces divergence or duplicate execution,
    and — the accountability half — no conviction: two UIs at *distinct*
    counters are not evidence.

    window_size=1 queues later requests *unproposed*, so the attack's
    alternative PREPARE carries a fresh request — the strongest fork.
    Unbounded pipelining proposes every request on arrival, leaving only
    stale (already-ordered) alternatives that dedup into noops.
    """
    from ..consensus.forensics import AccountabilityChecker
    from ..consensus.harness import build_minbft_system
    from ..consensus.safety import ReplicationStreamChecker
    from ..faults.attacks import AttackerProcess, PrepareEquivocation
    from ..sim.byzantine import ByzantineWrapper, drop_to

    attack = PrepareEquivocation()

    def wrapper(pid: int, r: Any) -> Any:
        if pid == 0:
            return AttackerProcess(r, attack)
        if pid == 1:
            return ByzantineWrapper(r, drop_to(2))  # the 1->2 link is cut
        return r

    sim, replicas, clients = build_minbft_system(
        f=1, n_clients=3, ops_per_client=1, app="counter", seed=0,
        adversary=LockStepSynchronous(1.0),
        replica_wrapper=wrapper,
        reliable=False,
        replica_options=dict(window_size=1),
    )
    _isolate_victim(clients)
    sim.declare_byzantine(0)
    checker = ReplicationStreamChecker([1, 2], fail_fast=True)
    sim.attach_observer(checker)
    forensics = AccountabilityChecker(replicas[1].verifier)
    sim.attach_observer(forensics)
    return sim, checker, forensics


def check_equivocation_contained(state: Any) -> Optional[str]:
    """Quiescent-leaf check for ``minbft-equivocation``.

    Safety violations abort mid-schedule via the fail-fast stream checker;
    this closes the two holes that check cannot see: a false conviction
    (intact hardware must leave no evidence) and a vacuous pass where the
    attack wedged a client instead of being absorbed.
    """
    _sim, checker, forensics = state
    if forensics.convicted:
        return (
            "accountability convicted "
            f"{sorted(forensics.convicted)} under intact hardware"
        )
    if len(checker.clients_done) < 3:
        return (
            "a client never finished in a quiescent schedule: "
            f"done={checker.clients_done}"
        )
    return None


def cloned_trinket_factory() -> tuple:
    """MinBFT f=1 whose primary's USIG key is extracted (cloned trinket).

    The :class:`~repro.faults.attacks.TraitorReplica` binds two different
    PREPAREs to one counter value — the exact capability the trusted
    hardware exists to remove. Same partition and window as
    ``minbft-equivocation`` (see :func:`_isolate_victim`): the *only*
    difference between the two cells is whether the hardware is intact.
    With a cloned trinket the alt PREPARE reuses the real one's counter,
    so the victim's order enforcer passes it straight through; the victim
    certifies the alt with {traitor, itself} = f+1 votes while replica 1
    certifies the real proposal with {traitor, itself} — the traitor's
    counter-signed vote counts in both halves, the split the paper's
    classification predicts when the hardware assumption fails. The
    exploration shows delivery orders where replicated state diverges
    (flagged by the fail-fast stream checker): safety at n = 2f+1 is gone.
    """
    from ..consensus.harness import build_minbft_system
    from ..consensus.minbft import MinBFTReplica
    from ..consensus.safety import ReplicationStreamChecker
    from ..faults.attacks import TraitorReplica
    from ..sim.byzantine import ByzantineWrapper, drop_to

    def factory(pid: int, **kw: Any):
        if pid == 0:
            return TraitorReplica(victims=(2,), **kw)
        return MinBFTReplica(**kw)

    sim, _replicas, clients = build_minbft_system(
        f=1, n_clients=3, ops_per_client=1, app="counter", seed=0,
        adversary=LockStepSynchronous(1.0),
        replica_factory=factory,
        replica_wrapper=(
            lambda pid, r: ByzantineWrapper(r, drop_to(2)) if pid == 1 else r
        ),
        reliable=False,
        replica_options=dict(window_size=1),
    )
    _isolate_victim(clients)
    sim.declare_byzantine(0)
    checker = ReplicationStreamChecker([1, 2], fail_fast=True)
    sim.attach_observer(checker)
    return sim, checker


def stalling_minbft_factory() -> Simulation:
    """StallingPrimary MinBFT, f=1, one client, one request."""
    from ..consensus.harness import build_minbft_system
    from ..faults.chaos import StallingPrimary

    sim, _replicas, _clients = build_minbft_system(
        f=1, n_clients=1, ops_per_client=1, app="counter", seed=0,
        adversary=LockStepSynchronous(1.0),
        replica_factory=lambda pid, **kw: StallingPrimary(**kw),
        reliable=False,
    )
    return sim


def check_stalled_execution(state: Any) -> Optional[str]:
    """Quiescent-leaf liveness check: did any request ever execute?"""
    sim = state if isinstance(state, Simulation) else state[0]
    executed = sim.trace.events(
        "custom", predicate=lambda e: e.field("event") == "execute"
    )
    if not executed:
        return (
            "no request executed in a quiescent schedule: the primary "
            "stalls and no timer-free path can route around it"
        )
    return None


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MCSystem:
    """One named model-checkable configuration and its configured bound."""

    name: str
    factory: Callable[[], Any]
    check: Optional[Callable[[Any], Optional[str]]]
    options: dict = field(default_factory=dict)
    expect_violation: bool = False
    description: str = ""


SYSTEMS: dict[str, MCSystem] = {
    s.name: s
    for s in (
        MCSystem(
            name="srb-eager",
            factory=eager_srb_factory,
            check=None,
            options=dict(choice_targets=(1,), max_steps=2),
            expect_violation=True,
            description=(
                "EagerBrokenSRB sequencing bug; bound: deliveries to "
                "receiver 1, depth 2"
            ),
        ),
        MCSystem(
            name="minbft-stalling",
            factory=stalling_minbft_factory,
            check=check_stalled_execution,
            options=dict(fire_timers=False),
            expect_violation=True,
            description=(
                "StallingPrimary liveness bug; bound: timers suppressed, "
                "quiescent leaves audited for executions"
            ),
        ),
        MCSystem(
            name="minbft-equivocation",
            factory=equivocating_minbft_factory,
            check=check_equivocation_contained,
            options=dict(choice_targets=(2,), fire_timers=False),
            expect_violation=False,
            description=(
                "PREPARE equivocation with intact USIG, victim partitioned "
                "to the primary; exhaustive over the victim's delivery "
                "orders (~2.5k complete schedules) — every one must stay "
                "safe and conviction-free"
            ),
        ),
        MCSystem(
            name="minbft-cloned-trinket",
            factory=cloned_trinket_factory,
            check=None,
            options=dict(choice_targets=(2,), fire_timers=False),
            expect_violation=True,
            description=(
                "key-extracted USIG equivocation (compromised hardware), "
                "same partition as minbft-equivocation; exhaustive over "
                "the victim's delivery orders — safety at n=2f+1 "
                "collapses on every complete schedule"
            ),
        ),
        MCSystem(
            name="srb-echo-gap",
            factory=echo_gap_factory,
            check=None,
            options=dict(),
            expect_violation=True,
            description=(
                "checkpoint fast-path gap commit; unreachable under "
                "sampled delays, convicted by logical-order exploration"
            ),
        ),
    )
}


def get_system(name: str) -> MCSystem:
    if name not in SYSTEMS:
        raise ConfigurationError(
            f"unknown model-checked system {name!r}; have {sorted(SYSTEMS)}"
        )
    return SYSTEMS[name]
