"""Walk through the paper's §4.1 impossibility proof as three executions.

Run:  python examples/separation_walkthrough.py

The claim: sequenced reliable broadcast cannot implement unidirectional
rounds when n > 2f and f > 1. The proof builds three schedules; this
script runs them against a fault-tolerant candidate protocol and narrates
what each scenario forces.
"""

from repro.core import run_srb_separation


def main() -> int:
    n, f = 6, 2
    out = run_srb_separation(n=n, f=f, seed=0)
    q, c1, c2 = out.sets["Q"], out.sets["C1"], out.sets["C2"]

    print(f"n = {n}, f = {f}; partition: Q = {tuple(q)}, C1 = {tuple(c1)}, "
          f"C2 = {tuple(c2)}\n")

    print("Scenario 1 — C1 crashed; C2 -> Q arbitrarily delayed.")
    print(f"  finished the round: {sorted(out.scenario1.finished)}")
    print(f"  => C2 member {tuple(c2)[0]} moved on WITHOUT hearing C1.\n")

    print("Scenario 2 — C2 crashed; C1 -> Q arbitrarily delayed.")
    print(f"  finished the round: {sorted(out.scenario2.finished)}")
    print(f"  => C1 member {tuple(c1)[0]} moved on WITHOUT hearing C2.\n")

    print("Scenario 3 — nobody faulty; everything out of C1 and C2 delayed.")
    print(f"  finished the round: {sorted(out.scenario3.finished)}")
    print("  indistinguishability (local views, content + order):")
    print(f"    Q  sees scenario 3 == scenario 1 == scenario 2 : "
          f"{out.indistinguishable_q}")
    print(f"    C1 sees scenario 3 == scenario 2               : "
          f"{out.indistinguishable_c1}")
    print(f"    C2 sees scenario 3 == scenario 1               : "
          f"{out.indistinguishable_c2}")

    violations = out.directionality3.unidirectional_violations
    print(f"\n  unidirectionality violations in scenario 3: {len(violations)}")
    for v in violations:
        print(f"    pair ({v.p}, {v.q}) round {v.round!r}: {v.detail}")

    print(f"\nseparation demonstrated: {out.separation_holds}")
    print("(contrast: run examples/classification_report.py to see the f=1 "
          "corner case where reliable broadcast CAN implement the round)")
    return 0 if out.separation_holds else 1


if __name__ == "__main__":
    raise SystemExit(main())
