"""Regenerate Figure 1 from executions.

Run:  python examples/classification_report.py [seed]

Each arrow of the paper's classification diagram is executed — the
positive arrows run their construction and property-check it; the
separation runs the three adversarial scenarios of §4.1 and verifies the
unidirectionality violation plus the indistinguishability chain.
"""

import sys

from repro.core import render_figure, run_classification


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    print(f"executing every arrow of Figure 1 (seed={seed}) …\n")
    result = run_classification(seed=seed)
    print(render_figure(result))
    if result.all_ok:
        print("\nall arrows verified.")
        return 0
    print(f"\nFAILED arrows: {result.failures()}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
