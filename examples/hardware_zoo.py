"""A tour of the trusted-hardware zoo and what each piece refuses to do.

Run:  python examples/hardware_zoo.py

Every device in the paper's classification, exercised at its API:
the attack each one exists to stop is attempted and (verifiably) fails.
"""

from repro.hardware import (
    A2MAuthority,
    EnclaveAuthority,
    EnclaveProgram,
    PEATS,
    StickyRegister,
    SWMRRegister,
    TrincAuthority,
    UNSET,
    WILDCARD,
    single_inserter_per_slot,
)
from repro.errors import AccessDeniedError


def section(title):
    print("\n" + "=" * 64)
    print(title)
    print("=" * 64)


def trinc_tour():
    section("TrInc — trusted incrementer (trusted-log class)")
    auth = TrincAuthority(2, seed=1)
    t = auth.trinket(0)
    a = t.attest(1, "vote for block A")
    print(f"attest(1, block A) -> {a}")
    print(f"equivocation attempt attest(1, block B) -> {t.attest(1, 'vote for block B')}")
    st = t.status(nonce='fresh-challenge')
    print(f"status (non-advancing, real-TrInc feature) -> counter={st.value}, "
          f"verifies={auth.check_status(st, 0)}")


def a2m_tour():
    section("A2M — attested append-only memory (trusted-log class)")
    auth = A2MAuthority(2, seed=2)
    d = auth.device(0)
    log = d.create_log()
    d.append(log, "entry-1")
    d.append(log, "entry-2")
    s = d.lookup(log, 1, nonce=42)
    print(f"lookup(1) -> {s}")
    print(f"verifies -> {auth.check(s, 0)}")
    import dataclasses
    forged = dataclasses.replace(s, value="rewritten-history")
    print(f"forged statement verifies -> {auth.check(forged, 0)}")


def enclave_tour():
    section("Enclave — attested state machine (SGX/TrustZone class)")
    auth = EnclaveAuthority(1, seed=3)
    usig = EnclaveProgram("usig-v1", 0, lambda c, h: (c + 1, ("UI", c + 1, h)))
    e = auth.launch(0, usig)
    o1, o2 = e.invoke(b"m1"), e.invoke(b"m2")
    print(f"invoke #1 -> {o1.output}, invoke #2 -> {o2.output}")
    print(f"measurement pinning: check(.., 'usig-v1')={auth.check(o2, 0, 'usig-v1')}, "
          f"check(.., 'evil-v1')={auth.check(o2, 0, 'evil-v1')}")


def swmr_tour():
    section("SWMR register — shared-memory class (owner writes, all read)")
    reg = SWMRRegister("r0", owner=0)
    reg.execute(0, "write", ("owner's value",))
    print(f"process 1 reads -> {reg.execute(1, 'read', ())!r}")
    try:
        reg.execute(1, "write", ("hijack",))
    except AccessDeniedError as exc:
        print(f"process 1 writes -> DENIED ({exc})")


def sticky_tour():
    section("Sticky register — write-once (shared-memory class)")
    s = StickyRegister("decision")
    print(f"initial read -> {s.execute(0, 'read', ())!r} (is UNSET: "
          f"{s.execute(0, 'read', ()) is UNSET})")
    print(f"first write('commit-A') took effect -> {s.execute(1, 'write', ('commit-A',))}")
    print(f"second write('commit-B') took effect -> {s.execute(2, 'write', ('commit-B',))}")
    print(f"final value -> {s.execute(0, 'read', ())!r}")


def peats_tour():
    section("PEATS — policy-enforced tuple space (shared-memory class)")
    space = PEATS("board", policy=single_inserter_per_slot(0), arity=3)
    space.execute(1, "out", ((1, "round-1", "hello from p1"),))
    print(f"p2 reads p1's entries -> {space.execute(2, 'rdall', ((1, WILDCARD, WILDCARD),))}")
    try:
        space.execute(2, "out", ((1, "round-1", "forged as p1"),))
    except AccessDeniedError:
        print("p2 inserting under p1's name -> DENIED (policy checks the owner slot)")
    try:
        space.execute(1, "inp", ((1, WILDCARD, WILDCARD),))
    except AccessDeniedError:
        print("removing history -> DENIED (the policy makes the space append-only)")


if __name__ == "__main__":
    trinc_tour()
    a2m_tour()
    enclave_tour()
    swmr_tour()
    sticky_tour()
    peats_tour()
    print("\nAll refusals above are what 'non-equivocation hardware' means: "
          "a Byzantine host can stall or replay, but never fork history.")
