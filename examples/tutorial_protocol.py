"""The docs/TUTORIAL.md protocol, complete and runnable.

Run:  python examples/tutorial_protocol.py

An attested last-writer-wins register on TrInc: a Byzantine publisher
tries to fork readers; the hardware flattens the fork; a trace checker
verifies fork-freedom across seeds and adversaries.
"""

from repro.errors import PropertyViolation
from repro.hardware import TrincAuthority
from repro.sim import (
    DuplicatingAsynchronous,
    Process,
    ReliableAsynchronous,
    ScriptedAdversary,
    Simulation,
)


class LWWRegister(Process):
    """Replicated last-writer-wins register over attested versions."""

    def __init__(self, authority, trinket=None):
        super().__init__()
        self.authority = authority
        self.trinket = trinket
        self.latest = {}  # publisher -> (version, value)

    def publish(self, value):
        version = self.trinket.last_seq() + 1
        att = self.trinket.attest(version, value)
        self.ctx.broadcast(("LWW", att), include_self=True)

    def on_message(self, src, msg):
        if not (isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "LWW"):
            return
        att = msg[1]
        publisher = getattr(att, "trinket_id", None)
        if publisher is None or not self.authority.check(att, publisher):
            return
        if att.prev != att.seq - 1:
            return
        current = self.latest.get(publisher, (0, None))
        if att.seq > current[0]:
            self.latest[publisher] = (att.seq, att.message)
            self.ctx.record(
                "custom", event="adopt", publisher=publisher,
                version=att.seq, value=att.message,
            )
            self.ctx.broadcast(("LWW", att), include_self=False)


class ForkingPublisher(LWWRegister):
    """Attempts the fork the hardware exists to prevent."""

    def attack(self):
        a1 = self.trinket.attest(1, "A")
        assert self.trinket.attest(1, "B") is None  # the refusal
        b = self.trinket.attest(2, "B")
        for dst in range(self.ctx.n):
            self.ctx.send(dst, ("LWW", a1 if dst % 2 == 0 else b))


def check_fork_freedom(trace, correct):
    adopted = {}
    for ev in trace.events("custom"):
        if ev.field("event") != "adopt" or ev.pid not in set(correct):
            continue
        key = (ev.field("publisher"), ev.field("version"))
        value = ev.field("value")
        if key in adopted and adopted[key] != value:
            raise PropertyViolation(
                "lww-fork", f"{key}: {adopted[key]!r} vs {value!r}"
            )
        adopted[key] = value
    return adopted


def adversaries():
    yield "asynchronous", ReliableAsynchronous(0.0, 2.0)
    yield "duplicating", DuplicatingAsynchronous(dup_probability=0.5)
    yield "split 0->2", ScriptedAdversary(base_delay=0.05).withhold([0], [2])


def main() -> int:
    n = 4
    runs = 0
    for seed in range(10):
        for name, adversary in adversaries():
            authority = TrincAuthority(n, seed=seed)
            procs = [
                ForkingPublisher(authority, authority.trinket(0))
                if pid == 0
                else LWWRegister(authority)
                for pid in range(n)
            ]
            sim = Simulation(procs, adversary, seed=seed)
            sim.declare_byzantine(0)
            sim.at(0.1, procs[0].attack)
            sim.run(until=200.0)
            adopted = check_fork_freedom(sim.trace, correct=[1, 2, 3])
            runs += 1
    print(f"{runs} adversarial runs, fork-freedom held in every one")
    print(f"final adopted state (last run): {adopted}")
    print("the Byzantine publisher's best effort degraded to a legal update:")
    for pid in (1, 2, 3):
        print(f"  replica {pid} latest = {procs[pid].latest}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
