"""Quickstart: the paper's two hardware classes in thirty lines each.

Run:  python examples/quickstart.py

1. A *trusted log* (TrInc): non-equivocation by unique counters.
2. A *shared-memory* deployment: unidirectional rounds by write-then-scan,
   then sequenced reliable broadcast built on them (Algorithm 1).
"""

from repro.core import build_sm_srb_system, check_directionality, check_srb
from repro.hardware import TrincAuthority


def trusted_log_demo() -> None:
    print("=" * 64)
    print("1. TrInc: a counter value can be bound to at most one message")
    print("=" * 64)
    authority = TrincAuthority(n=2, seed=7)
    trinket = authority.trinket(0)

    a1 = trinket.attest(1, "transfer $10 to alice")
    print(f"attest c=1  -> {a1}")
    print(f"verifies    -> {authority.check(a1, 0)}")

    a2 = trinket.attest(1, "transfer $10 to bob   (equivocation attempt)")
    print(f"attest c=1 again -> {a2}   (the hardware refuses)")

    a3 = trinket.attest(2, "transfer $10 to bob")
    print(f"attest c=2  -> {a3}")
    print()


def srb_over_shared_memory_demo() -> None:
    print("=" * 64)
    print("2. Shared memory -> unidirectional rounds -> SRB (Algorithm 1)")
    print("=" * 64)
    n, t = 5, 2
    sim, processes, _scheme = build_sm_srb_system(n=n, t=t, sender=0, seed=42)

    sim.at(0.5, lambda: processes[0].broadcast("block #1"))
    sim.at(1.0, lambda: processes[0].broadcast("block #2"))
    sim.crash_at(4, 2.0)  # one of the 2t+1 processes dies mid-protocol

    sim.run(until=500.0)

    direction = check_directionality(sim.trace, correct=range(n - 1))
    print(f"round directionality observed : {direction.classify()}")

    srb = check_srb(sim.trace, sender=0, correct=range(n - 1))
    print(f"SRB properties                : {'all hold' if srb.ok else srb.all_violations()}")
    for delivery in srb.deliveries[:6]:
        print(
            f"  process {delivery.receiver} delivered "
            f"(seq={delivery.seq}, {delivery.value!r}) at t={delivery.time:.2f}"
        )
    print(f"  … {len(srb.deliveries)} deliveries total "
          f"({n - 1} correct processes x 2 messages)")


if __name__ == "__main__":
    trusted_log_demo()
    srb_over_shared_memory_demo()
