"""A replicated bank on MinBFT — trusted-hardware BFT with n = 2f+1.

Run:  python examples/minbft_bank.py

Three replicas (f = 1), each with a USIG built on its TrInc trinket, run a
ledger with overdraft protection. Two clients hammer it; mid-run the
primary crashes and the view change takes over. The example prints the
replicated state and verifies all correct replicas converged to the same
ledger — with only 2f+1 replicas, which classic BFT cannot do.
"""

from repro.consensus import build_minbft_system, check_replication
from repro.workloads import bank_transfers


def main() -> int:
    f = 1
    workloads = [
        bank_transfers(10, seed=1, accounts=3),
        bank_transfers(10, seed=2, accounts=3),
    ]
    sim, replicas, clients = build_minbft_system(
        f=f,
        n_clients=2,
        app="bank",
        seed=11,
        workloads=workloads,
        req_timeout=20.0,
        retry_timeout=60.0,
    )
    n = len(replicas)
    print(f"MinBFT: n = {n} replicas tolerate f = {f} Byzantine (PBFT would need {3*f+1})")
    print(f"clients: {len(clients)} x {len(workloads[0])} ledger operations")

    print("\ncrashing the view-0 primary at t=3.0 …")
    sim.crash_at(0, 3.0)

    sim.run(until=20_000.0)

    correct = list(range(1, n))
    report = check_replication(
        sim.trace,
        correct,
        expected_ops={n: len(workloads[0]), n + 1: len(workloads[1])},
    )
    print(f"replication safety + client liveness: "
          f"{'OK' if report.ok else report.violations + report.liveness_violations}")

    for pid in correct:
        replica = replicas[pid]
        print(f"\nreplica {pid} (view {replica.view}, "
              f"{replica.commits_executed} ops executed):")
        for account, balance in sorted(replica.app.accounts.items()):
            print(f"   {account}: {balance}")

    digests = {replicas[pid].app.digest() for pid in correct}
    print(f"\ndistinct state digests across correct replicas: {len(digests)}")
    return 0 if report.ok and len(digests) == 1 else 1


if __name__ == "__main__":
    raise SystemExit(main())
